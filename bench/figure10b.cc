/**
 * @file
 * Figure 10(b): sensitivity of SBRP-near's speedup over epoch-near to
 * the NVM bandwidth (50/100/200% of Table 1's 84 GB/s read, 42 GB/s
 * write). Both models are re-run at each bandwidth.
 *
 * Expected shape: noticeable SBRP speedups at every point (the paper
 * reports ~15/15/12% means): more bandwidth moderates the buffering
 * advantage for log-heavy apps but helps bursty ones.
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

const std::vector<double> kScale = {0.5, 1.0, 2.0};

std::string
bwLabel(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g%%", s * 100.0);
    return buf;
}

void
registerAll()
{
    for (const auto &app : kApps) {
        for (double s : kScale) {
            for (ModelKind m : {ModelKind::Epoch, ModelKind::Sbrp}) {
                std::string key = app + "/" + bwLabel(s) + "/" +
                                  toString(m);
                registerSim("figure10b/" + key, [app, s, m, key]() {
                    SystemConfig cfg = SystemConfig::paperDefault(
                        m, SystemDesign::PmNear);
                    cfg.nvmBwScale = s;
                    AppRunResult r = runConfig(app, cfg);
                    g_store.put(key, r);
                    return r.forwardCycles;
                });
            }
        }
    }
}

void
printFigure()
{
    printHeading("Figure 10(b): SBRP-near speedup over epoch-near, "
                 "varying NVM bandwidth", SystemConfig::paperDefault());
    std::vector<std::string> cols;
    for (double s : kScale)
        cols.push_back(bwLabel(s));
    printHeader("app", cols);

    std::map<std::string, std::vector<double>> per_bw;
    for (const auto &app : kApps) {
        std::vector<double> row;
        for (double s : kScale) {
            double epoch = static_cast<double>(
                g_store.get(app + "/" + bwLabel(s) + "/epoch")
                    .forwardCycles);
            double sbrp = static_cast<double>(
                g_store.get(app + "/" + bwLabel(s) + "/SBRP")
                    .forwardCycles);
            row.push_back(epoch / sbrp);
            per_bw[bwLabel(s)].push_back(epoch / sbrp);
        }
        printRow(app, row);
    }
    std::vector<double> mean;
    for (double s : kScale)
        mean.push_back(geomean(per_bw[bwLabel(s)]));
    printRow("GMean", mean);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
