/**
 * @file
 * Table 2: the applications used in the evaluation — workload
 * parameters (paper scale vs this reproduction's scale), the class of
 * scoped PMO each needs, and its crash-recovery scheme. Also reports
 * per-app instruction/persist counts as a sanity inventory.
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

struct Row
{
    const char *app;
    const char *paperParams;
    const char *ourParams;
    const char *pmo;
    const char *recovery;
};

const Row kRows[] = {
    {"gpKVS", "~64K pairs", "61440 pairs", "Intra-thread", "Logging"},
    {"HM", "~50K entries", "30720 inserts", "Intra-thread", "Logging"},
    {"SRAD", "512 sq. matrix", "~61K pixels", "Intra-thread", "Native"},
    {"Red", "~4M ints", "~491K ints", "Blk/dev-interthread", "Native"},
    {"MQ", "2K batches", "720 batches", "Intra/blk-interthread",
     "Logging"},
    {"Scan", "~120K ints", "~61K ints", "Blk-interthread", "Native"},
};

void
registerAll()
{
    for (const Row &row : kRows) {
        std::string app = row.app;
        registerSim(std::string("table2/") + row.app + "/inventory",
                    [app]() {
            SystemConfig cfg = SystemConfig::paperDefault(
                ModelKind::Sbrp, SystemDesign::PmNear);
            auto a = makeApp(app, ModelKind::Sbrp);
            KernelProgram k = [&]() {
                NvmDevice nvm;
                a->setupNvm(nvm);
                GpuSystem gpu(cfg, nvm);
                a->setupGpu(gpu);
                return a->forward();
            }();
            return k.totalInstructions();
        });
    }
}

void
printTable()
{
    printHeading("Table 2: Applications used in evaluation",
                 SystemConfig::paperDefault());
    std::printf("%-8s %-16s %-16s %-22s %-10s\n", "App", "Paper params",
                "Our params", "Scoped PMO", "Recovery");
    for (const Row &r : kRows) {
        std::printf("%-8s %-16s %-16s %-22s %-10s\n", r.app,
                    r.paperParams, r.ourParams, r.pmo, r.recovery);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    benchmark::Shutdown();
    return 0;
}
