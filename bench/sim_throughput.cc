/**
 * @file
 * sim_throughput — host-side simulator performance, not a paper figure.
 *
 * Measures simulation throughput (simulated Mcycles per wall second,
 * launches per second) for every app under every model at both system
 * designs, test scale. The quiescence-aware scheduler's win shows up on
 * stall-heavy configurations (PM-far, barrier/epoch): the cycle-stepped
 * loop burned host time ticking idle SMs through persist-drain and
 * memory-stall spans that the sleep/wake engine skips in one jump.
 *
 * Plain chrono timing (no google-benchmark): a simulation run is
 * deterministic, so one warm-up plus a few timed repeats is enough, and
 * the binary stays usable in CI without benchmark-framework filtering.
 * Numbers are recorded in EXPERIMENTS.md ("Simulator throughput").
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/registry.hh"
#include "common/config.hh"
#include "gpu/gpu_system.hh"
#include "mem/nvm_device.hh"

using namespace sbrp;

namespace
{

struct Combo
{
    ModelKind model;
    SystemDesign design;
    const char *name;
};

const Combo kCombos[] = {
    {ModelKind::Sbrp, SystemDesign::PmNear, "sbrp/near"},
    {ModelKind::Sbrp, SystemDesign::PmFar, "sbrp/far"},
    {ModelKind::Epoch, SystemDesign::PmNear, "epoch/near"},
    {ModelKind::Epoch, SystemDesign::PmFar, "epoch/far"},
    {ModelKind::Gpm, SystemDesign::PmFar, "gpm/far"},
    {ModelKind::ScopedBarrier, SystemDesign::PmNear, "barrier/near"},
    {ModelKind::ScopedBarrier, SystemDesign::PmFar, "barrier/far"},
};

constexpr int kRepeats = 3;

/** One timed simulation; returns (cycles, best-of-repeats seconds). */
std::pair<std::uint64_t, double>
timeOne(const std::string &app_name, const Combo &c)
{
    std::uint64_t cycles = 0;
    double best = 1e100;
    for (int rep = 0; rep < kRepeats + 1; ++rep) {   // +1 warm-up.
        auto app = makeRegisteredApp(app_name, c.model);
        SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);
        NvmDevice nvm;
        app->setupNvm(nvm);
        GpuSystem gpu(cfg, nvm);
        app->setupGpu(gpu);
        auto t0 = std::chrono::steady_clock::now();
        auto res = gpu.launch(app->forward());
        auto t1 = std::chrono::steady_clock::now();
        if (!app->verify(nvm)) {
            std::fprintf(stderr, "%s/%s: durable state WRONG\n",
                         app_name.c_str(), c.name);
            std::exit(1);
        }
        cycles = res.cycles;
        double s = std::chrono::duration<double>(t1 - t0).count();
        if (rep > 0)
            best = std::min(best, s);
    }
    return {cycles, best};
}

} // namespace

int
main()
{
    std::printf("%-8s %-13s %12s %12s %12s\n", "app", "config",
                "sim_cycles", "Mcycles/s", "launches/s");
    double total_cycles = 0, total_secs = 0;
    for (const Combo &c : kCombos) {
        for (const std::string &name : appRegistryNames()) {
            auto [cycles, secs] = timeOne(name, c);
            total_cycles += static_cast<double>(cycles);
            total_secs += secs;
            std::printf("%-8s %-13s %12llu %12.2f %12.1f\n",
                        name.c_str(), c.name,
                        static_cast<unsigned long long>(cycles),
                        static_cast<double>(cycles) / secs / 1e6,
                        1.0 / secs);
        }
    }
    std::printf("\naggregate: %.2f Mcycles/s over %.0f simulated cycles "
                "(%.3f s host)\n",
                total_cycles / total_secs / 1e6, total_cycles,
                total_secs);
    return 0;
}
