/**
 * @file
 * sim_throughput — host-side simulator performance, not a paper figure.
 *
 * Measures simulation throughput (simulated Mcycles per wall second,
 * launches per second) for every app under every model at both system
 * designs, test scale. The quiescence-aware scheduler's win shows up on
 * stall-heavy configurations (PM-far, barrier/epoch): the cycle-stepped
 * loop burned host time ticking idle SMs through persist-drain and
 * memory-stall spans that the sleep/wake engine skips in one jump.
 *
 * Also reports persist-ack latency percentiles (p50/p95/p99 of the
 * SBRP model's per-SM persist_ack_cycles histograms, pooled): simulated
 * quantities, so they double as regression-gate metrics next to
 * sim_cycles. Models without buffered acks show "-".
 *
 * Plain chrono timing (no google-benchmark): a simulation run is
 * deterministic, so one warm-up plus a few timed repeats is enough, and
 * the binary stays usable in CI without benchmark-framework filtering.
 * Numbers are recorded in EXPERIMENTS.md ("Simulator throughput").
 *
 * Usage:
 *   sim_throughput [--apps Red,Scan,MQ] [--json out.json]
 *
 * --json writes a flat metric map consumed by tools/bench_diff.py:
 * cycle/percentile metrics are exact (deterministic), *_per_sec metrics
 * are host-dependent and advisory.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/registry.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/gpu_system.hh"
#include "mem/nvm_device.hh"

using namespace sbrp;

namespace
{

struct Combo
{
    ModelKind model;
    SystemDesign design;
    const char *name;
};

const Combo kCombos[] = {
    {ModelKind::Sbrp, SystemDesign::PmNear, "sbrp/near"},
    {ModelKind::Sbrp, SystemDesign::PmFar, "sbrp/far"},
    {ModelKind::Epoch, SystemDesign::PmNear, "epoch/near"},
    {ModelKind::Epoch, SystemDesign::PmFar, "epoch/far"},
    {ModelKind::Gpm, SystemDesign::PmFar, "gpm/far"},
    {ModelKind::ScopedBarrier, SystemDesign::PmNear, "barrier/near"},
    {ModelKind::ScopedBarrier, SystemDesign::PmFar, "barrier/far"},
};

constexpr int kRepeats = 3;

struct RunResult
{
    std::uint64_t cycles = 0;
    double best = 1e100;       ///< Best-of-repeats wall seconds.
    Distribution ack;          ///< Pooled per-SM persist-ack latency.
};

/** One timed simulation (warm-up + kRepeats). */
RunResult
timeOne(const std::string &app_name, const Combo &c)
{
    RunResult r;
    for (int rep = 0; rep < kRepeats + 1; ++rep) {   // +1 warm-up.
        auto app = makeRegisteredApp(app_name, c.model);
        SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);
        NvmDevice nvm;
        app->setupNvm(nvm);
        GpuSystem gpu(cfg, nvm);
        app->setupGpu(gpu);
        auto t0 = std::chrono::steady_clock::now();
        auto res = gpu.launch(app->forward());
        auto t1 = std::chrono::steady_clock::now();
        if (!app->verify(nvm)) {
            std::fprintf(stderr, "%s/%s: durable state WRONG\n",
                         app_name.c_str(), c.name);
            std::exit(1);
        }
        r.cycles = res.cycles;
        double s = std::chrono::duration<double>(t1 - t0).count();
        if (rep > 0)
            r.best = std::min(r.best, s);
        if (rep == kRepeats) {   // Deterministic: any rep would do.
            r.ack.reset();
            for (SmId i = 0; i < cfg.numSms; ++i) {
                const Distribution *d =
                    gpu.sm(i).stats().findDist("persist_ack_cycles");
                if (d)
                    r.ack.merge(*d);
            }
        }
    }
    return r;
}

std::vector<std::string>
splitApps(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> apps = appRegistryNames();
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--apps" && i + 1 < argc) {
            apps = splitApps(argv[++i]);
        } else if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (a == "--help" || a == "-h") {
            std::printf(
                "sim_throughput — simulator throughput benchmark\n\n"
                "  --apps <a,b,..>  comma-separated app subset\n"
                "                   (default: all registered apps)\n"
                "  --json <f>       write a flat metric map for\n"
                "                   tools/bench_diff.py\n"
                "  --help, -h       print this listing and exit\n");
            return 0;
        } else {
            std::fprintf(stderr,
                         "sim_throughput: unknown option '%s'\n", a.c_str());
            return 2;
        }
    }

    std::printf("%-8s %-13s %12s %12s %12s %8s %8s %8s\n", "app",
                "config", "sim_cycles", "Mcycles/s", "launches/s",
                "ack_p50", "ack_p95", "ack_p99");
    std::ostringstream json;
    json << "{\n  \"bench\": \"sim_throughput\"";
    double total_cycles = 0, total_secs = 0;
    for (const Combo &c : kCombos) {
        for (const std::string &name : apps) {
            RunResult r = timeOne(name, c);
            total_cycles += static_cast<double>(r.cycles);
            total_secs += r.best;
            char p50[24] = "-", p95[24] = "-", p99[24] = "-";
            if (r.ack.count() > 0) {
                std::snprintf(p50, sizeof p50, "%llu",
                              static_cast<unsigned long long>(
                                  r.ack.p50()));
                std::snprintf(p95, sizeof p95, "%llu",
                              static_cast<unsigned long long>(
                                  r.ack.p95()));
                std::snprintf(p99, sizeof p99, "%llu",
                              static_cast<unsigned long long>(
                                  r.ack.p99()));
            }
            std::printf("%-8s %-13s %12llu %12.2f %12.1f %8s %8s %8s\n",
                        name.c_str(), c.name,
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<double>(r.cycles) / r.best / 1e6,
                        1.0 / r.best, p50, p95, p99);
            std::string key = name + "/" + c.name;
            json << ",\n  \"" << key << "/sim_cycles\": " << r.cycles;
            char host[64];
            std::snprintf(host, sizeof host, "%.2f",
                          static_cast<double>(r.cycles) / r.best / 1e6);
            json << ",\n  \"" << key << "/mcycles_per_sec\": " << host;
            std::snprintf(host, sizeof host, "%.1f", 1.0 / r.best);
            json << ",\n  \"" << key << "/launches_per_sec\": " << host;
            if (r.ack.count() > 0) {
                json << ",\n  \"" << key << "/ack_p50\": " << r.ack.p50()
                     << ",\n  \"" << key << "/ack_p95\": " << r.ack.p95()
                     << ",\n  \"" << key << "/ack_p99\": " << r.ack.p99();
            }
        }
    }
    json << "\n}\n";
    std::printf("\naggregate: %.2f Mcycles/s over %.0f simulated cycles "
                "(%.3f s host)\n",
                total_cycles / total_secs / 1e6, total_cycles,
                total_secs);
    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        os << json.str();
        std::printf("metrics JSON: %s\n", json_path.c_str());
    }
    return 0;
}
