/**
 * @file
 * Verifies the observability layers' "disabled costs nothing" claims.
 *
 * Runs the same Red/sbrp/near simulation several ways — tracing,
 * provenance and windowed metrics compiled in but disabled (null
 * pointers, the production default), tracing enabled, tracing
 * enabled+serialized, provenance enabled, provenance
 * enabled+serialized, and windowed metrics enabled (+serialized) —
 * and reports wall time per run. With every layer disabled each
 * instrumentation site must reduce to a single pointer null-check;
 * the bare run is expected to stay within 1% of the
 * pre-instrumentation baseline, which in practice means "no
 * measurable difference between repeated bare runs".
 *
 * All variants must agree on kernel cycles: instrumentation only
 * observes, it never perturbs timing.
 *
 * Usage:
 *   trace_overhead                 # google-benchmark wall-time table
 *   trace_overhead --json out.json # flat metric map for bench_diff.py
 *
 * --json switches to plain chrono timing (warm-up + best-of-3, like
 * sim_throughput) and writes exact metrics (sim_cycles with
 * provenance/metrics off/on, ops begun, audit records, windows
 * closed — all deterministic) plus advisory *_ms wall times. The
 * committed baseline lives at tests/golden/BENCH_trace_overhead.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/reduction.hh"
#include "common/trace.hh"
#include "obs/provenance.hh"
#include "obs/timeseries.hh"

using namespace sbrp;

namespace
{

SystemConfig
benchConfig()
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.model = ModelKind::Sbrp;
    cfg.design = SystemDesign::PmNear;
    return cfg;
}

/** One full simulated run; returns kernel cycles. */
Cycle
runOnce(TraceSink *sink, PersistProvenance *prov = nullptr,
        MetricsTimeseries *metrics = nullptr)
{
    SystemConfig cfg = benchConfig();
    ReductionApp app(cfg.model, ReductionParams::bench());
    NvmDevice nvm;
    app.setupNvm(nvm);
    GpuSystem gpu(cfg, nvm, nullptr, sink, prov, metrics);
    app.setupGpu(gpu);
    return gpu.launch(app.forward()).cycles;
}

Cycle g_bare_cycles = 0;
Cycle g_traced_cycles = 0;
Cycle g_prov_cycles = 0;
Cycle g_metrics_cycles = 0;

void
BM_Bare(benchmark::State &state)
{
    for (auto _ : state)
        g_bare_cycles = runOnce(nullptr);
}

void
BM_Traced(benchmark::State &state)
{
    for (auto _ : state) {
        TraceSink sink;
        g_traced_cycles = runOnce(&sink);
        benchmark::DoNotOptimize(sink.eventCount());
    }
}

void
BM_TracedSerialized(benchmark::State &state)
{
    for (auto _ : state) {
        TraceSink sink;
        g_traced_cycles = runOnce(&sink);
        std::ostringstream os;
        sink.writeJson(os);
        benchmark::DoNotOptimize(os.str().size());
    }
}

void
BM_Provenance(benchmark::State &state)
{
    for (auto _ : state) {
        PersistProvenance prov;
        g_prov_cycles = runOnce(nullptr, &prov);
        benchmark::DoNotOptimize(prov.opsBegun());
    }
}

void
BM_ProvenanceSerialized(benchmark::State &state)
{
    for (auto _ : state) {
        PersistProvenance prov;
        g_prov_cycles = runOnce(nullptr, &prov);
        benchmark::DoNotOptimize(prov.auditJson().size());
    }
}

void
BM_Metrics(benchmark::State &state)
{
    for (auto _ : state) {
        MetricsTimeseries metrics;
        g_metrics_cycles = runOnce(nullptr, nullptr, &metrics);
        benchmark::DoNotOptimize(metrics.windowsClosed());
    }
}

void
BM_MetricsSerialized(benchmark::State &state)
{
    for (auto _ : state) {
        MetricsTimeseries metrics;
        g_metrics_cycles = runOnce(nullptr, nullptr, &metrics);
        benchmark::DoNotOptimize(metrics.jsonl().size());
    }
}

BENCHMARK(BM_Bare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracedSerialized)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Provenance)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProvenanceSerialized)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Metrics)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MetricsSerialized)->Unit(benchmark::kMillisecond);

/** Wall milliseconds of one call, best of `reps` after one warm-up. */
template <typename F>
double
bestOfMs(F &&f, int reps = 3)
{
    double best = 1e100;
    for (int i = 0; i < reps + 1; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        f();
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (i > 0)
            best = std::min(best, ms);
    }
    return best;
}

/** --json mode: deterministic metrics + advisory wall times. */
int
writeMetrics(const std::string &path)
{
    Cycle bare_cycles = 0, prov_cycles = 0;
    std::uint64_t ops = 0, commits = 0;
    double bare_ms = bestOfMs([&] { bare_cycles = runOnce(nullptr); });
    double prov_ms = bestOfMs([&] {
        PersistProvenance prov;
        prov_cycles = runOnce(nullptr, &prov);
        ops = prov.opsBegun();
        commits = prov.audit().size();
    });
    double prov_ser_ms = bestOfMs([&] {
        PersistProvenance prov;
        runOnce(nullptr, &prov);
        volatile std::size_t n = prov.auditJson().size();
        (void)n;
    });
    double traced_ms = bestOfMs([&] {
        TraceSink sink;
        runOnce(&sink);
        volatile std::size_t n = sink.eventCount();
        (void)n;
    });
    Cycle metrics_cycles = 0;
    std::uint64_t windows = 0;
    double metrics_ms = bestOfMs([&] {
        MetricsTimeseries metrics;
        metrics_cycles = runOnce(nullptr, nullptr, &metrics);
        windows = metrics.windowsClosed();
    });
    double metrics_ser_ms = bestOfMs([&] {
        MetricsTimeseries metrics;
        runOnce(nullptr, nullptr, &metrics);
        volatile std::size_t n = metrics.jsonl().size();
        (void)n;
    });

    if (bare_cycles != prov_cycles) {
        std::fprintf(stderr,
                     "FAIL: provenance-on run took %llu cycles, bare "
                     "%llu (provenance must not perturb timing)\n",
                     static_cast<unsigned long long>(prov_cycles),
                     static_cast<unsigned long long>(bare_cycles));
        return 1;
    }
    if (bare_cycles != metrics_cycles) {
        std::fprintf(stderr,
                     "FAIL: metrics-on run took %llu cycles, bare "
                     "%llu (sampling must not perturb timing)\n",
                     static_cast<unsigned long long>(metrics_cycles),
                     static_cast<unsigned long long>(bare_cycles));
        return 1;
    }

    std::ostringstream json;
    json << "{\n  \"bench\": \"trace_overhead\"";
    const char *key = "Red/sbrp/near";
    json << ",\n  \"" << key << "/sim_cycles\": " << bare_cycles;
    json << ",\n  \"" << key << "/prov_sim_cycles\": " << prov_cycles;
    json << ",\n  \"" << key << "/prov_ops_begun\": " << ops;
    json << ",\n  \"" << key << "/prov_audit_records\": " << commits;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", bare_ms);
    json << ",\n  \"" << key << "/bare_ms\": " << buf;
    std::snprintf(buf, sizeof buf, "%.3f", prov_ms);
    json << ",\n  \"" << key << "/prov_ms\": " << buf;
    std::snprintf(buf, sizeof buf, "%.3f", prov_ser_ms);
    json << ",\n  \"" << key << "/prov_serialized_ms\": " << buf;
    std::snprintf(buf, sizeof buf, "%.3f", traced_ms);
    json << ",\n  \"" << key << "/traced_ms\": " << buf;
    json << ",\n  \"" << key << "/metrics_sim_cycles\": "
         << metrics_cycles;
    json << ",\n  \"" << key << "/metrics_windows\": " << windows;
    std::snprintf(buf, sizeof buf, "%.3f", metrics_ms);
    json << ",\n  \"" << key << "/metrics_ms\": " << buf;
    std::snprintf(buf, sizeof buf, "%.3f", metrics_ser_ms);
    json << ",\n  \"" << key << "/metrics_serialized_ms\": " << buf;
    json << "\n}\n";

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return 2;
    }
    os << json.str();
    std::printf("bare %.3f ms, provenance-on %.3f ms (+%.1f%%), "
                "serialized %.3f ms, traced %.3f ms\n",
                bare_ms, prov_ms,
                100.0 * (prov_ms - bare_ms) / bare_ms, prov_ser_ms,
                traced_ms);
    std::printf("metrics-on %.3f ms (+%.1f%%), serialized %.3f ms, "
                "%llu windows\n", metrics_ms,
                100.0 * (metrics_ms - bare_ms) / bare_ms,
                metrics_ser_ms,
                static_cast<unsigned long long>(windows));
    std::printf("%llu ops, %llu commits, cycles agree at %llu\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(bare_cycles));
    std::printf("metrics JSON: %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Pull out our own flag before google-benchmark sees the argv.
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[i + 1];
            for (int j = i; j + 2 <= argc; ++j)
                argv[j] = argv[j + 2];
            argc -= 2;
            break;
        }
    }
    if (!json_path.empty())
        return writeMetrics(json_path);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Observation-only check: neither layer may perturb timing.
    for (Cycle observed :
         {g_traced_cycles, g_prov_cycles, g_metrics_cycles}) {
        if (g_bare_cycles != 0 && observed != 0 &&
                g_bare_cycles != observed) {
            std::fprintf(stderr,
                         "FAIL: instrumented run took %llu cycles, bare "
                         "%llu (observers must not perturb the "
                         "simulation)\n",
                         static_cast<unsigned long long>(observed),
                         static_cast<unsigned long long>(g_bare_cycles));
            return 1;
        }
    }
    std::printf("instrumented and bare runs agree%s\n",
                g_bare_cycles ? "" : " (bare not run)");
    return 0;
}
