/**
 * @file
 * Verifies the tracer's "disabled tracing costs nothing" claim.
 *
 * Runs the same Red/sbrp/near simulation three ways — tracing compiled
 * in but disabled (null TraceBuffer*, the production default), tracing
 * enabled, and enabled+serialized — and reports wall time per run.
 * With tracing disabled every instrumentation site must reduce to a
 * single pointer null-check; the untraced run is expected to stay
 * within 1% of the pre-instrumentation baseline, which in practice
 * means "no measurable difference between repeated untraced runs".
 *
 * The traced and untraced runs must also agree on kernel cycles:
 * instrumentation only observes, it never perturbs timing.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/reduction.hh"
#include "common/trace.hh"

using namespace sbrp;

namespace
{

SystemConfig
benchConfig()
{
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.model = ModelKind::Sbrp;
    cfg.design = SystemDesign::PmNear;
    return cfg;
}

/** One full simulated run; returns kernel cycles. */
Cycle
runOnce(TraceSink *sink)
{
    SystemConfig cfg = benchConfig();
    ReductionApp app(cfg.model, ReductionParams::bench());
    NvmDevice nvm;
    app.setupNvm(nvm);
    GpuSystem gpu(cfg, nvm, nullptr, sink);
    app.setupGpu(gpu);
    return gpu.launch(app.forward()).cycles;
}

Cycle g_untraced_cycles = 0;
Cycle g_traced_cycles = 0;

void
BM_Untraced(benchmark::State &state)
{
    for (auto _ : state)
        g_untraced_cycles = runOnce(nullptr);
}

void
BM_Traced(benchmark::State &state)
{
    for (auto _ : state) {
        TraceSink sink;
        g_traced_cycles = runOnce(&sink);
        benchmark::DoNotOptimize(sink.eventCount());
    }
}

void
BM_TracedSerialized(benchmark::State &state)
{
    for (auto _ : state) {
        TraceSink sink;
        g_traced_cycles = runOnce(&sink);
        std::ostringstream os;
        sink.writeJson(os);
        benchmark::DoNotOptimize(os.str().size());
    }
}

BENCHMARK(BM_Untraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracedSerialized)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Observation-only check: the tracer must not perturb timing.
    if (g_untraced_cycles != 0 && g_traced_cycles != 0 &&
            g_untraced_cycles != g_traced_cycles) {
        std::fprintf(stderr,
                     "FAIL: traced run took %llu cycles, untraced %llu "
                     "(tracing must not perturb the simulation)\n",
                     static_cast<unsigned long long>(g_traced_cycles),
                     static_cast<unsigned long long>(g_untraced_cycles));
        return 1;
    }
    std::printf("traced and untraced runs agree%s\n",
                g_untraced_cycles ? "" : " (untraced not run)");
    return 0;
}
