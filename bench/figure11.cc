/**
 * @file
 * Figure 11: recovery-kernel runtime under epoch-near vs SBRP-near,
 * normalized to epoch-near (lower is better), with the crash injected
 * mid-run — the steady state where the most transactions are in flight
 * (maximum undo-log contents / unfinished native state).
 *
 * Expected shape: averages within a few percent; gpKVS slightly slower
 * under SBRP (its recovery bulk-persists through a buffered dFence,
 * while the epoch barrier flushes eagerly). Also reports the worst-case
 * recovery time as a fraction of crash-free execution (paper: 0.7-42%).
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

void
registerAll()
{
    for (const auto &app : kApps) {
        for (ModelKind m : {ModelKind::Epoch, ModelKind::Sbrp}) {
            std::string key = app + "/" + toString(m);
            registerSim("figure11/" + key, [app, m, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    m, SystemDesign::PmNear);
                // Worst-case crash: measure the crash-free runtime,
                // then crash right before completion.
                Cycle total;
                {
                    auto probe = makeApp(app, m);
                    total = AppHarness::runCrashFree(*probe, cfg)
                                .forwardCycles;
                }
                auto a = makeApp(app, m);
                Cycle at = std::max<Cycle>(1, total / 2);
                AppRunResult r = AppHarness::runCrashRecover(*a, cfg, at);
                if (!r.consistent) {
                    std::fprintf(stderr,
                                 "BENCH BUG: %s unrecoverable (%s)\n",
                                 app.c_str(), toString(m));
                    std::abort();
                }
                r.forwardCycles = total;   // Keep crash-free for ratio.
                g_store.put(key, r);
                return r.recoveryCycles;
            });
        }
    }
}

void
printFigure()
{
    printHeading("Figure 11: Normalized runtime of the recovery kernel "
                 "(SBRP-near vs epoch-near; lower is better)",
                 SystemConfig::paperDefault());
    printHeader("app", {"epoch", "SBRP", "rec/fwd%"});

    std::vector<double> ratios;
    for (const auto &app : kApps) {
        const AppRunResult &e = g_store.get(app + "/epoch");
        const AppRunResult &s = g_store.get(app + "/SBRP");
        double norm = static_cast<double>(s.recoveryCycles) /
                      static_cast<double>(e.recoveryCycles);
        ratios.push_back(norm);
        double frac = 100.0 * static_cast<double>(s.recoveryCycles) /
                      static_cast<double>(s.forwardCycles);
        printRow(app, {1.0, norm, frac});
    }
    printRow("GMean", {1.0, geomean(ratios), 0.0});
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
