/**
 * @file
 * Figure 10(a): sensitivity of SBRP-near's speedup over epoch-near to
 * the persist-buffer size, expressed as the fraction of L1 lines the PB
 * covers (12.5/25/50/100%; 50% is the default).
 *
 * Expected shape: 50% within ~1% of 100%; very small buffers hurt
 * (gpKVS); occasional anomalies where smaller buffers win by flushing
 * eagerly off the critical path (HM in the paper).
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

const std::vector<double> kCoverage = {0.125, 0.25, 0.5, 1.0};

std::string
covLabel(double c)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g%%", c * 100.0);
    return buf;
}

void
registerAll()
{
    for (const auto &app : kApps) {
        registerSim("figure10a/" + app + "/epoch-near", [app]() {
            SystemConfig cfg = SystemConfig::paperDefault(
                ModelKind::Epoch, SystemDesign::PmNear);
            AppRunResult r = runConfig(app, cfg);
            g_store.put(app + "/epoch", r);
            return r.forwardCycles;
        });
        for (double c : kCoverage) {
            std::string key = app + "/" + covLabel(c);
            registerSim("figure10a/" + key, [app, c, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    ModelKind::Sbrp, SystemDesign::PmNear);
                cfg.pbCoverage = c;
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.forwardCycles;
            });
        }
    }
}

void
printFigure()
{
    printHeading("Figure 10(a): SBRP-near speedup over epoch-near, "
                 "varying L1 coverage of the persist buffer",
                 SystemConfig::paperDefault());
    std::vector<std::string> cols;
    for (double c : kCoverage)
        cols.push_back(covLabel(c));
    printHeader("app", cols);

    std::map<std::string, std::vector<double>> per_cov;
    for (const auto &app : kApps) {
        double epoch = static_cast<double>(
            g_store.get(app + "/epoch").forwardCycles);
        std::vector<double> row;
        for (double c : kCoverage) {
            double s = epoch / static_cast<double>(
                g_store.get(app + "/" + covLabel(c)).forwardCycles);
            row.push_back(s);
            per_cov[covLabel(c)].push_back(s);
        }
        printRow(app, row);
    }
    std::vector<double> mean;
    for (double c : kCoverage)
        mean.push_back(geomean(per_cov[covLabel(c)]));
    printRow("GMean", mean);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
