/**
 * @file
 * Figure 9: SBRP-far speedup over epoch-far when the PM-far system
 * supports eADR (persists become durable at the battery-backed host LLC
 * rather than the NVM controller's WPQ).
 *
 * Expected shape: close to the no-eADR speedups — eADR removes persist
 * latency but not the PCIe bandwidth bottleneck, and SBRP's scopes and
 * buffering still cut PCIe traversals.
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

void
registerAll()
{
    for (const auto &app : kApps) {
        for (ModelKind m : {ModelKind::Epoch, ModelKind::Sbrp}) {
            std::string key = app + "/" + toString(m);
            registerSim("figure9/" + key, [app, m, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    m, SystemDesign::PmFar);
                cfg.persistPoint = PersistPoint::Eadr;
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.forwardCycles;
            });
        }
    }
}

void
printFigure()
{
    SystemConfig ref = SystemConfig::paperDefault(ModelKind::Sbrp,
                                                  SystemDesign::PmFar);
    ref.persistPoint = PersistPoint::Eadr;
    printHeading("Figure 9: SBRP-far speedup over epoch-far with eADR",
                 ref);
    printHeader("app", {"SBRP-far"});

    std::vector<double> all;
    for (const auto &app : kApps) {
        double epoch = static_cast<double>(
            g_store.get(app + "/epoch").forwardCycles);
        double sbrp = static_cast<double>(
            g_store.get(app + "/SBRP").forwardCycles);
        double speedup = epoch / sbrp;
        all.push_back(speedup);
        printRow(app, {speedup});
    }
    printRow("GMean", {geomean(all)});
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
