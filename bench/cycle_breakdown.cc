/**
 * @file
 * cycle_breakdown — the cycle-attribution matrix behind the paper's
 * "where do the cycles go" discussion, and the perf-regression gate's
 * primary input.
 *
 * Runs every requested app under every model/design combination
 * (crash-free, test scale), harvests the GpuSystem's exact cycle
 * ledger, re-checks the ledger's sum invariants, and writes a flat
 * metric map (BENCH_cycle_breakdown.json) that tools/bench_diff.py
 * compares against the committed baseline in tests/golden/. Every
 * metric here is a simulated quantity — deterministic run-to-run — so
 * the diff gate treats any drift as a regression (or an intentional
 * timing change that must re-baseline).
 *
 * Usage:
 *   cycle_breakdown [--apps Red,Scan,MQ] [--out BENCH_cycle_breakdown.json]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/registry.hh"
#include "common/config.hh"
#include "gpu/cycle_ledger.hh"
#include "gpu/gpu_system.hh"
#include "mem/nvm_device.hh"

using namespace sbrp;

namespace
{

struct Combo
{
    ModelKind model;
    SystemDesign design;
    const char *name;
};

const Combo kCombos[] = {
    {ModelKind::Sbrp, SystemDesign::PmNear, "sbrp/near"},
    {ModelKind::Sbrp, SystemDesign::PmFar, "sbrp/far"},
    {ModelKind::Epoch, SystemDesign::PmNear, "epoch/near"},
    {ModelKind::Epoch, SystemDesign::PmFar, "epoch/far"},
    {ModelKind::Gpm, SystemDesign::PmFar, "gpm/far"},
    {ModelKind::ScopedBarrier, SystemDesign::PmNear, "barrier/near"},
    {ModelKind::ScopedBarrier, SystemDesign::PmFar, "barrier/far"},
};

std::vector<std::string>
splitApps(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> apps = appRegistryNames();
    std::string out_path = "BENCH_cycle_breakdown.json";
    bool bench_scale = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--apps" && i + 1 < argc) {
            apps = splitApps(argv[++i]);
        } else if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--scale" && i + 1 < argc) {
            bench_scale = std::string(argv[++i]) == "b";
        } else if (a == "--help" || a == "-h") {
            std::printf(
                "cycle_breakdown — exact cycle-attribution matrix\n\n"
                "  --apps <a,b,..>  comma-separated app subset\n"
                "                   (default: all registered apps)\n"
                "  --out <f>        metrics JSON for tools/bench_diff.py\n"
                "                   (default BENCH_cycle_breakdown.json)\n"
                "  --scale <t|b>    workload scale: test or bench\n"
                "                   (default t)\n"
                "  --help, -h       print this listing and exit\n");
            return 0;
        } else {
            std::fprintf(stderr,
                         "cycle_breakdown: unknown option '%s'\n",
                         a.c_str());
            return 2;
        }
    }

    std::printf("%-8s %-13s %12s %12s %12s  top categories\n", "app",
                "config", "sim_cycles", "warp_cycles", "drain_cycles");
    std::ostringstream json;
    json << "{\n  \"bench\": \"cycle_breakdown\"";
    for (const Combo &c : kCombos) {
        for (const std::string &name : apps) {
            auto app = makeRegisteredApp(name, c.model, bench_scale);
            if (!app) {
                std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
                return 2;
            }
            SystemConfig cfg =
                SystemConfig::testDefault(c.model, c.design);
            NvmDevice nvm;
            app->setupNvm(nvm);
            GpuSystem gpu(cfg, nvm);
            app->setupGpu(gpu);
            auto res = gpu.launch(app->forward());
            if (!app->verify(nvm)) {
                std::fprintf(stderr, "%s/%s: durable state WRONG\n",
                             name.c_str(), c.name);
                return 1;
            }
            auto bd = gpu.cycleBreakdown();

            // The tentpole invariants, re-checked on every cell: warp
            // categories sum to the warp-active tally, and the drain
            // categories cover each SM's share of the drain window.
            if (bd.warpCycles() != bd.warpActiveCycles) {
                std::fprintf(stderr,
                             "%s/%s: warp ledger broke: %llu != %llu\n",
                             name.c_str(), c.name,
                             static_cast<unsigned long long>(
                                 bd.warpCycles()),
                             static_cast<unsigned long long>(
                                 bd.warpActiveCycles));
                return 1;
            }
            std::uint64_t drain_window =
                static_cast<std::uint64_t>(cfg.numSms) *
                (res.cycles - res.execCycles);
            if (bd.drainCycles() != drain_window) {
                std::fprintf(stderr,
                             "%s/%s: drain ledger broke: %llu != %llu\n",
                             name.c_str(), c.name,
                             static_cast<unsigned long long>(
                                 bd.drainCycles()),
                             static_cast<unsigned long long>(
                                 drain_window));
                return 1;
            }

            // Two biggest categories for the human-readable row.
            std::size_t top1 = 0, top2 = 0;
            for (std::size_t k = 1; k < kNumCycleCats; ++k) {
                if (bd.cycles[k] > bd.cycles[top1]) {
                    top2 = top1;
                    top1 = k;
                } else if (bd.cycles[k] > bd.cycles[top2] || top2 == top1) {
                    top2 = k;
                }
            }
            std::printf("%-8s %-13s %12llu %12llu %12llu  %s %s\n",
                        name.c_str(), c.name,
                        static_cast<unsigned long long>(res.cycles),
                        static_cast<unsigned long long>(bd.warpCycles()),
                        static_cast<unsigned long long>(
                            bd.drainCycles()),
                        toString(static_cast<CycleCat>(top1)),
                        toString(static_cast<CycleCat>(top2)));

            std::string key = name + "/" + c.name;
            json << ",\n  \"" << key << "/sim_cycles\": " << res.cycles;
            json << ",\n  \"" << key << "/exec_cycles\": "
                 << res.execCycles;
            json << ",\n  \"" << key << "/warp_active_cycles\": "
                 << bd.warpActiveCycles;
            for (std::size_t k = 0; k < kNumCycleCats; ++k) {
                json << ",\n  \"" << key << "/"
                     << toString(static_cast<CycleCat>(k))
                     << "\": " << bd.cycles[k];
            }
        }
    }
    json << "\n}\n";
    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return 2;
    }
    os << json.str();
    std::printf("\nmetrics JSON: %s\n", out_path.c_str());
    return 0;
}
