/**
 * @file
 * Figure 7: breakdown of SBRP's speedup into the contribution of
 * buffers vs scopes, for the applications with intra-threadblock PMO
 * (Red, MQ, Scan) on PM-far and PM-near.
 *
 * Methodology (paper Section 7.2): convert all block-scope operations to
 * device scope — the resulting "buffers only" configuration keeps the
 * persist buffer but loses scoped ordering. The scope contribution is
 * the share of the full SBRP speedup the buffers-only variant does not
 * deliver. Expected shape: scopes dominate (~77% average), except MQ on
 * PM-far where buffering is everything.
 */

#include "bench_common.hh"

#include "apps/multiqueue.hh"
#include "apps/reduction.hh"
#include "apps/scan.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

const std::vector<std::string> kScopedApps = {"Red", "MQ", "Scan"};
const std::vector<SystemDesign> kDesigns = {SystemDesign::PmFar,
                                            SystemDesign::PmNear};

std::unique_ptr<PmApp>
makeScopedApp(const std::string &name, ModelKind model, bool device_only)
{
    if (name == "Red") {
        auto a = std::make_unique<ReductionApp>(model,
                                                ReductionParams::bench());
        a->setForceDeviceScope(device_only);
        return a;
    }
    if (name == "MQ") {
        auto a = std::make_unique<MultiqueueApp>(
            model, MultiqueueParams::bench());
        a->setForceDeviceScope(device_only);
        return a;
    }
    auto a = std::make_unique<ScanApp>(model, ScanParams::bench());
    a->setForceDeviceScope(device_only);
    return a;
}

void
registerAll()
{
    for (const auto &app : kScopedApps) {
        for (SystemDesign d : kDesigns) {
            std::string base = app + "/" + toString(d);
            registerSim("figure7/" + base + "/epoch", [app, d, base]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    ModelKind::Epoch, d);
                auto a = makeScopedApp(app, ModelKind::Epoch, false);
                AppRunResult r = AppHarness::runCrashFree(*a, cfg);
                g_store.put(base + "/epoch", r);
                return r.forwardCycles;
            });
            registerSim("figure7/" + base + "/sbrp", [app, d, base]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    ModelKind::Sbrp, d);
                auto a = makeScopedApp(app, ModelKind::Sbrp, false);
                AppRunResult r = AppHarness::runCrashFree(*a, cfg);
                g_store.put(base + "/sbrp", r);
                return r.forwardCycles;
            });
            registerSim("figure7/" + base + "/buffers_only",
                        [app, d, base]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    ModelKind::Sbrp, d);
                auto a = makeScopedApp(app, ModelKind::Sbrp, true);
                AppRunResult r = AppHarness::runCrashFree(*a, cfg);
                g_store.put(base + "/buffers_only", r);
                return r.forwardCycles;
            });
        }
    }
}

void
printFigure()
{
    printHeading("Figure 7: Speedup breakdown (buffers vs scopes)",
                 SystemConfig::paperDefault());
    printHeader("config", {"buffers%", "scopes%", "full_spd", "buf_spd"});

    for (const auto &app : kScopedApps) {
        for (SystemDesign d : kDesigns) {
            std::string base = app + "/" + toString(d);
            double epoch = static_cast<double>(
                g_store.get(base + "/epoch").forwardCycles);
            double full = epoch / static_cast<double>(
                g_store.get(base + "/sbrp").forwardCycles);
            double buffers = epoch / static_cast<double>(
                g_store.get(base + "/buffers_only").forwardCycles);

            // Contribution split of the SBRP gain over epoch.
            double gain_full = full - 1.0;
            double gain_buf = buffers - 1.0;
            double buf_share, scope_share;
            if (gain_full <= 0.0) {
                buf_share = scope_share = 0.0;
            } else {
                buf_share = std::min(1.0, std::max(0.0,
                    gain_buf / gain_full));
                scope_share = 1.0 - buf_share;
            }
            printRow("SBRP-" + std::string(toString(d)) + "/" + app,
                     {buf_share * 100.0, scope_share * 100.0, full,
                      buffers});
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
