/**
 * @file
 * Figure 8: L1 read misses for NVM data, normalized to epoch-far
 * (lower is better).
 *
 * Expected shape: SBRP dramatically reduces NVM-data L1 read misses for
 * gpKVS/HM (oFence does not invalidate the L1) and for Red/Scan (block
 * scope keeps PM data cached); SRAD persists at the end and MQ's logging
 * limits the benefit.
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

struct Config
{
    const char *label;
    ModelKind model;
    SystemDesign design;
};

const std::vector<Config> kConfigs = {
    {"epoch-far", ModelKind::Epoch, SystemDesign::PmFar},
    {"SBRP-far", ModelKind::Sbrp, SystemDesign::PmFar},
    {"epoch-near", ModelKind::Epoch, SystemDesign::PmNear},
    {"SBRP-near", ModelKind::Sbrp, SystemDesign::PmNear},
};

void
registerAll()
{
    for (const auto &app : kApps) {
        for (const auto &c : kConfigs) {
            std::string key = app + "/" + c.label;
            registerSim("figure8/" + key, [app, c, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(c.model,
                                                              c.design);
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.l1NvmReadMisses;
            });
        }
    }
}

void
printFigure()
{
    printHeading("Figure 8: L1 read misses for NVM data "
                 "(normalized to epoch-far; lower is better)",
                 SystemConfig::paperDefault());
    std::vector<std::string> cols;
    for (const auto &c : kConfigs)
        cols.push_back(c.label);
    printHeader("app", cols);

    for (const auto &app : kApps) {
        double base = static_cast<double>(
            g_store.get(app + "/epoch-far").l1NvmReadMisses);
        if (base == 0)
            base = 1;
        std::vector<double> row;
        for (const auto &c : kConfigs) {
            row.push_back(static_cast<double>(
                g_store.get(app + "/" + c.label).l1NvmReadMisses) / base);
        }
        printRow(app, row);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
