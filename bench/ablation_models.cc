/**
 * @file
 * Related-work ablation (paper Section 8): SBRP vs Gope et al.'s scoped
 * persist barriers, on both system designs, normalized to the epoch
 * model of each design.
 *
 * The scoped-barrier model stalls the issuing thread and drains the
 * buffer at *every* ordering operation; SBRP's buffers let intra- and
 * inter-thread PMO proceed without global synchronization. Expected
 * shape: SBRP >= scoped-barrier everywhere, with the largest gaps for
 * ordering-dense applications (gpKVS, HM, Scan, Red).
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

struct Config
{
    const char *label;
    ModelKind model;
    SystemDesign design;
};

const std::vector<Config> kConfigs = {
    {"epoch-far", ModelKind::Epoch, SystemDesign::PmFar},
    {"barrier-far", ModelKind::ScopedBarrier, SystemDesign::PmFar},
    {"SBRP-far", ModelKind::Sbrp, SystemDesign::PmFar},
    {"epoch-near", ModelKind::Epoch, SystemDesign::PmNear},
    {"barrier-near", ModelKind::ScopedBarrier, SystemDesign::PmNear},
    {"SBRP-near", ModelKind::Sbrp, SystemDesign::PmNear},
};

void
registerAll()
{
    for (const auto &app : kApps) {
        for (const auto &c : kConfigs) {
            std::string key = app + "/" + c.label;
            registerSim("ablation/" + key, [app, c, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(c.model,
                                                              c.design);
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.forwardCycles;
            });
        }
    }
}

void
printFigure()
{
    printHeading("Ablation: SBRP vs scoped persist barriers "
                 "(Gope et al.), speedup over the same design's epoch",
                 SystemConfig::paperDefault());
    printHeader("app", {"bar-far", "SBRP-far", "bar-near", "SBRP-near"});

    std::map<std::string, std::vector<double>> agg;
    for (const auto &app : kApps) {
        double far_base = static_cast<double>(
            g_store.get(app + "/epoch-far").forwardCycles);
        double near_base = static_cast<double>(
            g_store.get(app + "/epoch-near").forwardCycles);
        std::vector<double> row = {
            far_base / static_cast<double>(
                g_store.get(app + "/barrier-far").forwardCycles),
            far_base / static_cast<double>(
                g_store.get(app + "/SBRP-far").forwardCycles),
            near_base / static_cast<double>(
                g_store.get(app + "/barrier-near").forwardCycles),
            near_base / static_cast<double>(
                g_store.get(app + "/SBRP-near").forwardCycles),
        };
        printRow(app, row);
        agg["bf"].push_back(row[0]);
        agg["sf"].push_back(row[1]);
        agg["bn"].push_back(row[2]);
        agg["sn"].push_back(row[3]);
    }
    printRow("GMean", {geomean(agg["bf"]), geomean(agg["sf"]),
                       geomean(agg["bn"]), geomean(agg["sn"])});
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
