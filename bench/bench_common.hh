/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmarks.
 *
 * Each bench binary registers one google-benchmark item per simulated
 * configuration (Iterations(1): a simulation is deterministic), collects
 * results in a ResultStore, and prints the corresponding paper figure's
 * series after the benchmark run.
 */

#ifndef SBRP_BENCH_COMMON_HH
#define SBRP_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/hashmap.hh"
#include "apps/kvs.hh"
#include "apps/multiqueue.hh"
#include "apps/reduction.hh"
#include "apps/scan.hh"
#include "apps/srad.hh"

namespace sbrp_bench
{

using namespace sbrp;

inline const std::vector<std::string> kApps =
    {"gpKVS", "HM", "SRAD", "Red", "MQ", "Scan"};

/** Builds an application at paper-shaped bench scale. */
inline std::unique_ptr<PmApp>
makeApp(const std::string &name, ModelKind model)
{
    if (name == "gpKVS")
        return std::make_unique<KvsApp>(model, KvsParams::bench());
    if (name == "HM")
        return std::make_unique<HashmapApp>(model, HashmapParams::bench());
    if (name == "SRAD")
        return std::make_unique<SradApp>(model, SradParams::bench());
    if (name == "Red")
        return std::make_unique<ReductionApp>(model,
                                              ReductionParams::bench());
    if (name == "MQ")
        return std::make_unique<MultiqueueApp>(model,
                                               MultiqueueParams::bench());
    if (name == "Scan")
        return std::make_unique<ScanApp>(model, ScanParams::bench());
    std::fprintf(stderr, "unknown app %s\n", name.c_str());
    std::abort();
}

/** Result of one simulated configuration, keyed by a config string. */
class ResultStore
{
  public:
    void
    put(const std::string &key, const AppRunResult &r)
    {
        results_[key] = r;
    }

    const AppRunResult &
    get(const std::string &key) const
    {
        auto it = results_.find(key);
        if (it == results_.end()) {
            std::fprintf(stderr, "missing bench result '%s'\n",
                         key.c_str());
            std::abort();
        }
        return it->second;
    }

    bool has(const std::string &key) const
    { return results_.count(key) != 0; }

  private:
    std::map<std::string, AppRunResult> results_;
};

/** Runs one crash-free simulation; fills counters on the state. */
inline AppRunResult
runConfig(const std::string &app, const SystemConfig &cfg)
{
    auto a = makeApp(app, cfg.model);
    AppRunResult r = AppHarness::runCrashFree(*a, cfg);
    if (!r.consistent) {
        std::fprintf(stderr, "BENCH BUG: %s inconsistent under %s\n",
                     app.c_str(), cfg.describe().c_str());
        std::abort();
    }
    return r;
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Registers a 1-iteration benchmark that runs `fn` and stores results. */
template <typename Fn>
void
registerSim(const std::string &name, Fn fn)
{
    benchmark::RegisterBenchmark(name.c_str(),
        [fn](benchmark::State &state) {
            std::uint64_t cycles = 0;
            for (auto _ : state)
                cycles = fn();
            state.counters["sim_cycles"] =
                static_cast<double>(cycles);
        })->Iterations(1)->Unit(benchmark::kMillisecond);
}

/** Prints a separator + figure heading. */
inline void
printHeading(const std::string &title, const SystemConfig &reference)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("Table 1 config: %s\n", reference.describe().c_str());
    std::printf("==================================================="
                "===========\n");
}

/** Prints one CSV row (also human-readable with fixed columns). */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-8s", label.c_str());
    for (double v : values)
        std::printf(",%8.3f", v);
    std::printf("\n");
}

inline void
printHeader(const std::string &label, const std::vector<std::string> &cols)
{
    std::printf("%-8s", label.c_str());
    for (const auto &c : cols)
        std::printf(",%8s", c.c_str());
    std::printf("\n");
}

} // namespace sbrp_bench

#endif // SBRP_BENCH_COMMON_HH
