/**
 * @file
 * Figure 10(c): sensitivity of SBRP-near's speedup over epoch-near to
 * the window size (outstanding persists per SM): 2/4/6/8/10.
 *
 * Expected shape: 6 (the default) near the sweet spot — small windows
 * under-utilize the NVM, large ones congest it.
 *
 * The binary also prints two DESIGN.md ablations:
 *  - flush policies: eager vs lazy vs window (Section 6.2), and
 *  - FSM hazard precision: the paper's single-ACTR quiesce vs the
 *    per-warp flush-sequence barrier this implementation defaults to.
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

const std::vector<std::uint32_t> kWindows = {2, 4, 6, 8, 10};

void
registerAll()
{
    for (const auto &app : kApps) {
        registerSim("figure10c/" + app + "/epoch-near", [app]() {
            SystemConfig cfg = SystemConfig::paperDefault(
                ModelKind::Epoch, SystemDesign::PmNear);
            AppRunResult r = runConfig(app, cfg);
            g_store.put(app + "/epoch", r);
            return r.forwardCycles;
        });
        for (std::uint32_t w : kWindows) {
            std::string key = app + "/w" + std::to_string(w);
            registerSim("figure10c/" + key, [app, w, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    ModelKind::Sbrp, SystemDesign::PmNear);
                cfg.window = w;
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.forwardCycles;
            });
        }
        // Ablations: policies and FSM precision at the default window.
        for (FlushPolicy p : {FlushPolicy::Eager, FlushPolicy::Lazy}) {
            std::string key = app + "/" + toString(p);
            registerSim("figure10c/ablate/" + key, [app, p, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(
                    ModelKind::Sbrp, SystemDesign::PmNear);
                cfg.flushPolicy = p;
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.forwardCycles;
            });
        }
        registerSim("figure10c/ablate/" + app + "/actr", [app]() {
            SystemConfig cfg = SystemConfig::paperDefault(
                ModelKind::Sbrp, SystemDesign::PmNear);
            cfg.preciseFsm = false;   // Paper's single-ACTR quiesce.
            AppRunResult r = runConfig(app, cfg);
            g_store.put(app + "/actr", r);
            return r.forwardCycles;
        });
    }
}

void
printFigure()
{
    printHeading("Figure 10(c): SBRP-near speedup over epoch-near, "
                 "varying window sizes", SystemConfig::paperDefault());
    std::vector<std::string> cols;
    for (std::uint32_t w : kWindows)
        cols.push_back("w" + std::to_string(w));
    printHeader("app", cols);

    std::map<std::string, std::vector<double>> per_w;
    for (const auto &app : kApps) {
        double epoch = static_cast<double>(
            g_store.get(app + "/epoch").forwardCycles);
        std::vector<double> row;
        for (std::uint32_t w : kWindows) {
            double s = epoch / static_cast<double>(
                g_store.get(app + "/w" + std::to_string(w))
                    .forwardCycles);
            row.push_back(s);
            per_w["w" + std::to_string(w)].push_back(s);
        }
        printRow(app, row);
    }
    std::vector<double> mean;
    for (std::uint32_t w : kWindows)
        mean.push_back(geomean(per_w["w" + std::to_string(w)]));
    printRow("GMean", mean);

    printHeading("Ablation: flush policy and FSM precision "
                 "(speedup over epoch-near; window policy = figure "
                 "above at w6)", SystemConfig::paperDefault());
    printHeader("app", {"eager", "lazy", "actr"});
    for (const auto &app : kApps) {
        double epoch = static_cast<double>(
            g_store.get(app + "/epoch").forwardCycles);
        printRow(app, {
            epoch / static_cast<double>(
                g_store.get(app + "/eager").forwardCycles),
            epoch / static_cast<double>(
                g_store.get(app + "/lazy").forwardCycles),
            epoch / static_cast<double>(
                g_store.get(app + "/actr").forwardCycles),
        });
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
