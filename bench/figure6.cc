/**
 * @file
 * Figure 6: speedup of each persistency model over epoch-far, for all
 * six applications plus the geometric mean.
 *
 * Series (paper order): GPM, Epoch-far, SBRP-far, Epoch-near, SBRP-near.
 * Expected shape: epoch-far modestly beats GPM (~6% mean); SBRP-far
 * beats epoch-far (~14% mean, up to ~90% on Reduction); PM-near roughly
 * doubles PM-far; SBRP-near beats epoch-near (~15% mean).
 */

#include "bench_common.hh"

namespace
{

using namespace sbrp_bench;

ResultStore g_store;

struct Config
{
    const char *label;
    ModelKind model;
    SystemDesign design;
};

const std::vector<Config> kConfigs = {
    {"GPM", ModelKind::Gpm, SystemDesign::PmFar},
    {"epoch-far", ModelKind::Epoch, SystemDesign::PmFar},
    {"SBRP-far", ModelKind::Sbrp, SystemDesign::PmFar},
    {"epoch-near", ModelKind::Epoch, SystemDesign::PmNear},
    {"SBRP-near", ModelKind::Sbrp, SystemDesign::PmNear},
};

void
registerAll()
{
    for (const auto &app : kApps) {
        for (const auto &c : kConfigs) {
            std::string key = app + "/" + c.label;
            registerSim("figure6/" + key, [app, c, key]() {
                SystemConfig cfg = SystemConfig::paperDefault(c.model,
                                                              c.design);
                AppRunResult r = runConfig(app, cfg);
                g_store.put(key, r);
                return r.forwardCycles;
            });
        }
    }
}

void
printFigure()
{
    SystemConfig ref = SystemConfig::paperDefault();
    printHeading("Figure 6: Speedup over epoch-far of different models",
                 ref);

    std::vector<std::string> cols;
    for (const auto &c : kConfigs)
        cols.push_back(c.label);
    printHeader("app", cols);

    std::map<std::string, std::vector<double>> per_config;
    for (const auto &app : kApps) {
        double base = static_cast<double>(
            g_store.get(app + "/epoch-far").forwardCycles);
        std::vector<double> row;
        for (const auto &c : kConfigs) {
            double cyc = static_cast<double>(
                g_store.get(app + "/" + c.label).forwardCycles);
            double speedup = base / cyc;
            row.push_back(speedup);
            per_config[c.label].push_back(speedup);
        }
        printRow(app, row);
    }
    std::vector<double> mean;
    for (const auto &c : kConfigs)
        mean.push_back(geomean(per_config[c.label]));
    printRow("Mean", mean);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    benchmark::Shutdown();
    return 0;
}
