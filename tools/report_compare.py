#!/usr/bin/env python3
"""Compare crashfuzz campaign reports, ignoring execution-dependent keys.

Campaign reports (schema_version 4) are deterministic except for how
they were executed: the `execution` object (mode, jobs, shards, wall
timing, slowest points) and `wall_us` inside failing-point entries.
This tool strips those keys (the Python twin of
`campaignReportStripWall` in campaign.cc) and then deep-compares, so CI
can assert byte-level determinism of everything the simulator computed
while tolerating host timing noise — including that a sharded,
killed-and-resumed, merged campaign equals a single-process run.
Legacy schema-3 reports (top-level wall keys) are stripped the same
way.

Usage:
    report_compare.py CURRENT GOLDEN      # compare, diff on mismatch
    report_compare.py --strip REPORT      # print the stripped report

Exit codes: 0 = reports identical after stripping, 1 = mismatch,
2 = usage error, unreadable/truncated file, or malformed JSON.
"""

import argparse
import difflib
import json
import sys

from report_common import read_json_or_exit

WALL_KEYS = frozenset(("wall_us", "wall_us_total", "slowest_points",
                       "execution"))


def strip_wall(node):
    """Recursively remove execution-dependent keys from a report."""
    if isinstance(node, dict):
        return {k: strip_wall(v) for k, v in node.items()
                if k not in WALL_KEYS}
    if isinstance(node, list):
        return [strip_wall(v) for v in node]
    return node


def load(path):
    return read_json_or_exit("report_compare", path, producers="reports",
                             dash="—")


def dump(node):
    return json.dumps(node, indent=2, sort_keys=True)


def main():
    ap = argparse.ArgumentParser(
        description="Compare campaign reports without wall-clock keys")
    ap.add_argument("current", help="report to check")
    ap.add_argument("golden", nargs="?",
                    help="committed golden to compare against")
    ap.add_argument("--strip", action="store_true",
                    help="print CURRENT with wall keys removed and exit")
    args = ap.parse_args()

    current = strip_wall(load(args.current))
    if args.strip:
        print(dump(current))
        return 0
    if args.golden is None:
        ap.error("GOLDEN is required unless --strip is given")

    golden = strip_wall(load(args.golden))
    if current == golden:
        print(f"report_compare: {args.current} matches {args.golden} "
              "(wall-clock keys excluded)")
        return 0

    diff = difflib.unified_diff(
        dump(golden).splitlines(keepends=True),
        dump(current).splitlines(keepends=True),
        fromfile=args.golden, tofile=args.current)
    sys.stdout.writelines(diff)
    print(f"report_compare: {args.current} diverges from {args.golden}",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
