#!/usr/bin/env python3
"""Compare crashfuzz campaign reports, ignoring wall-clock keys.

Campaign reports (schema_version 3) are deterministic except for the
host wall-time keys: `wall_us_total`, the `slowest_points` array, and
`wall_us` inside failing-point entries. This tool strips those keys
(the Python twin of `campaignReportStripWall` in campaign.cc) and then
deep-compares, so CI can assert byte-level determinism of everything
the simulator computed while tolerating host timing noise.

Usage:
    report_compare.py CURRENT GOLDEN      # compare, diff on mismatch
    report_compare.py --strip REPORT      # print the stripped report

Exit codes: 0 = reports identical after stripping, 1 = mismatch,
2 = usage error or malformed JSON.
"""

import argparse
import difflib
import json
import sys

WALL_KEYS = frozenset(("wall_us", "wall_us_total", "slowest_points"))


def strip_wall(node):
    """Recursively remove wall-clock keys from a parsed report."""
    if isinstance(node, dict):
        return {k: strip_wall(v) for k, v in node.items()
                if k not in WALL_KEYS}
    if isinstance(node, list):
        return [strip_wall(v) for v in node]
    return node


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"report_compare: {path}: {e}", file=sys.stderr)
        sys.exit(2)


def dump(node):
    return json.dumps(node, indent=2, sort_keys=True)


def main():
    ap = argparse.ArgumentParser(
        description="Compare campaign reports without wall-clock keys")
    ap.add_argument("current", help="report to check")
    ap.add_argument("golden", nargs="?",
                    help="committed golden to compare against")
    ap.add_argument("--strip", action="store_true",
                    help="print CURRENT with wall keys removed and exit")
    args = ap.parse_args()

    current = strip_wall(load(args.current))
    if args.strip:
        print(dump(current))
        return 0
    if args.golden is None:
        ap.error("GOLDEN is required unless --strip is given")

    golden = strip_wall(load(args.golden))
    if current == golden:
        print(f"report_compare: {args.current} matches {args.golden} "
              "(wall-clock keys excluded)")
        return 0

    diff = difflib.unified_diff(
        dump(golden).splitlines(keepends=True),
        dump(current).splitlines(keepends=True),
        fromfile=args.golden, tofile=args.current)
    sys.stdout.writelines(diff)
    print(f"report_compare: {args.current} diverges from {args.golden}",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
