#!/usr/bin/env python3
"""Live operations console for a sharded crash campaign.

Usage:
    tools/campaign_top.py <journal-dir>
    tools/campaign_top.py <journal-dir> --once
    tools/campaign_top.py <journal-dir> --interval 2

Watches the journal directory of a running (or finished) campaign —
`crashfuzz --shards N --journal <dir> [--heartbeat-ms M]` — and
redraws a per-shard status table: verdict counts from the durable
journals, and rate/ETA/liveness from the advisory heartbeat sidecars
when the campaign was started with `--heartbeat-ms`.

Everything here is read-only and torn-tolerant. Journals are
fsync'd-per-line but may end mid-record when a worker is killed;
heartbeats are append-mode and may be torn or absent entirely. A line
that does not parse is skipped, never an error — this tool must be
safe to point at a campaign that is actively crashing, because that
is the whole point of a crash campaign.

`--once` renders a single frame and exits 0 (the deterministic mode CI
smokes); without it the table redraws every `--interval` seconds
(default 1) until interrupted. Exits 2 only on usage errors or a
missing journal directory. Only uses the Python standard library.
"""

import json
import os
import sys
import time

from report_common import run_main, tail_jsonl


def load_manifest(journal_dir):
    """Optional context: shard count and app name when present."""
    path = os.path.join(journal_dir, "manifest.json")
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def discover_shards(journal_dir, manifest):
    """Shard indices: manifest count, else journal files on disk."""
    if manifest and isinstance(manifest.get("shards"), int):
        return list(range(manifest["shards"]))
    shards = set()
    try:
        names = os.listdir(journal_dir)
    except OSError:
        return []
    for name in names:
        if name.startswith("shard-") and name.endswith(".journal"):
            try:
                shards.add(int(name[len("shard-"):-len(".journal")]))
            except ValueError:
                continue
    return sorted(shards)


def read_journal(journal_dir, shard):
    """Verdict tallies from one shard journal; torn lines skipped."""
    state = {"present": False, "total": 0, "done": 0, "failures": 0,
             "persist_faults": 0}
    records = tail_jsonl(os.path.join(journal_dir,
                                      f"shard-{shard}.journal"))
    for rec in records:
        if rec.get("kind") == "shard-journal":
            state["present"] = True
            state["total"] = rec.get("end", 0) - rec.get("begin", 0)
        elif "index" in rec:
            state["done"] += 1
            passed = (rec.get("crashed", False)
                      and rec.get("recovered_ok", False)
                      and rec.get("pmo_violations", 1) == 0
                      and rec.get("persist_faults", 1) == 0)
            if not passed:
                state["failures"] += 1
            state["persist_faults"] += rec.get("persist_faults", 0)
    return state


def read_heartbeat(journal_dir, shard):
    """Latest heartbeat record for a shard, or None."""
    records = tail_jsonl(os.path.join(
        journal_dir, f"shard-{shard}.heartbeat.jsonl"))
    latest = None
    for rec in records:
        if rec.get("kind") == "heartbeat":
            latest = rec
    return latest


def fmt_eta(ms):
    if ms <= 0:
        return "-"
    s = ms // 1000
    if s >= 3600:
        return f"{s // 3600}h{(s % 3600) // 60:02}m"
    if s >= 60:
        return f"{s // 60}m{s % 60:02}s"
    return f"{s}s"


def render(journal_dir, manifest, shards):
    lines = []
    app = ""
    if manifest:
        scenario = manifest.get("scenario", {})
        if isinstance(scenario, dict):
            app = scenario.get("app", "")
    title = f"campaign @ {journal_dir}"
    if app:
        title += f" ({app})"
    lines.append(title)
    lines.append(f"  {'shard':>5}  {'done':>12}  {'fail':>5}  "
                 f"{'faults':>6}  {'scen/s':>8}  {'eta':>7}  state")

    agg_done = agg_total = agg_fail = 0
    agg_rate = 0.0
    for shard in shards:
        j = read_journal(journal_dir, shard)
        hb = read_heartbeat(journal_dir, shard)
        done, total = j["done"], j["total"]
        if hb:  # Heartbeats carry the fresher counters.
            done = max(done, hb.get("done", 0))
            total = max(total, hb.get("total", 0))
        agg_done += done
        agg_total += total
        agg_fail += j["failures"]
        rate = "-"
        eta = "-"
        state = "no journal"
        if j["present"]:
            state = "complete" if total and done >= total else "running"
        if hb:
            if hb.get("final"):
                state = "complete" if total and done >= total \
                    else "stopped"
            else:
                r = hb.get("scenarios_per_sec", 0.0)
                agg_rate += r
                rate = f"{r:.1f}"
                eta = fmt_eta(hb.get("eta_ms", 0))
        progress = f"{done}/{total}" if total else str(done)
        lines.append(f"  {shard:>5}  {progress:>12}  "
                     f"{j['failures']:>5}  {j['persist_faults']:>6}  "
                     f"{rate:>8}  {eta:>7}  {state}")

    pct = 100.0 * agg_done / agg_total if agg_total else 0.0
    summary = (f"  total: {agg_done}/{agg_total} points ({pct:.1f}%), "
               f"{agg_fail} failures")
    if agg_rate > 0:
        remaining = agg_total - agg_done
        summary += f", {agg_rate:.1f} scen/s"
        if remaining > 0:
            summary += (", eta "
                        + fmt_eta(int(1000 * remaining / agg_rate)))
    lines.append(summary)
    return "\n".join(lines)


def main(argv):
    journal_dir = None
    once = False
    interval = 1.0
    rest = argv[1:]
    i = 0
    while i < len(rest):
        if rest[i] == "--once":
            once = True
            i += 1
        elif rest[i] == "--interval" and i + 1 < len(rest):
            try:
                interval = float(rest[i + 1])
            except ValueError:
                print("campaign_top: --interval expects seconds",
                      file=sys.stderr)
                return 2
            i += 2
        elif rest[i].startswith("--"):
            print(f"campaign_top: unknown option '{rest[i]}'",
                  file=sys.stderr)
            return 2
        elif journal_dir is None:
            journal_dir = rest[i]
            i += 1
        else:
            journal_dir = None
            break
    if journal_dir is None:
        print("usage: campaign_top.py <journal-dir> [--once] "
              "[--interval SECS]", file=sys.stderr)
        return 2
    if not os.path.isdir(journal_dir):
        print(f"campaign_top: {journal_dir}: not a directory",
              file=sys.stderr)
        return 2

    while True:
        manifest = load_manifest(journal_dir)
        shards = discover_shards(journal_dir, manifest)
        frame = render(journal_dir, manifest, shards)
        if once:
            print(frame)
            return 0
        # Clear + home, no curses: keeps the tool dependency-free and
        # safe to run over ssh/tmux/CI logs alike.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    run_main(main)
