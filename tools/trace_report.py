#!/usr/bin/env python3
"""Summarize an sbrpsim event trace (Chrome trace_event JSON).

Usage:
    tools/trace_report.py red.json
    tools/trace_report.py red.json --stats-json red-stats.json

Prints, per SM, a warp-stall breakdown: how many cycles warps spent in
each span category (compute, stall:mem, stall:odm_*, stall:edm_*, ...)
across all warp-slot tracks, plus trace-wide counter summaries (PB
occupancy, MC backlogs, WPQ depth).

Provenance-attached traces additionally carry flow events (ph s/t/f,
cat "flow"): one arrow chain per persist op, linking its component
spans. Those are summarized together with the fault:* retry instants
in one persist-op section — chains started/completed, steps, dangling
chains, and the retry/terminal-fault/backoff tallies.

With --stats-json (a file written by `sbrpsim --stats-json` on the same
run) it cross-checks the trace's warp-span sums against the simulator's
exact cycle ledger (`ledger_*` counters): spans are emitted at tick
observation times, so they may legitimately undercount the ledger
(Ready has no span, sub-observation states are quantized), but a span
sum materially EXCEEDING its ledger category means one of the two
accountings is broken.

An empty trace (empty file, `{}`, or no events) reports "no events" and
exits 0 -- an un-traced or early-exited run is not malformed. Exits
nonzero on malformed input, which lets CI use it to validate that the
simulator emits well-formed traces; a --stats-json document tagged
with a schema version this tool does not understand exits 2 with a
clear message instead of misreading the ledger counters.

Only uses the Python standard library.
"""

import json
import sys
from collections import defaultdict

from report_common import refuse_unknown_schema, run_main

# Trace span name -> cycle-ledger category (see src/gpu/cycle_ledger.hh).
# Prefix matching: stall:odm_dfence and stall:odm_rel_dev both land in
# odm_stall, mirroring Sm::categoryFor.
SPAN_TO_LEDGER = [
    ("compute", "compute"),
    ("stall:mem", "mem_latency"),
    ("stall:barrier", "barrier"),
    ("stall:spin_acquire", "spin_acquire"),
    ("stall:odm", "odm_stall"),
    ("stall:edm", "edm_stall"),
    ("stall:fence_drain", "fence_drain"),
    ("stall:model", "fence_drain"),
]

# A span sum exceeding its ledger category by BOTH margins means the
# trace and the ledger disagree beyond observation-quantization noise.
CROSSCHECK_REL = 0.10
CROSSCHECK_ABS = 10000

# The stats-JSON revisions this tool knows how to cross-check against
# (src/common/schema_versions.hh, kStats; `sbrpsim --version`): the
# ledger_* counter layout is identical in both — version 3 only moved
# the host wall-clock keys under `execution`. Older documents without
# the tag get the "old stats schema?" note; a tagged document with a
# version outside this set is refused with exit 2 -- the ledger_*
# counter layout may have changed under us.
KNOWN_STATS_SCHEMAS = (2, 3)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    if not text.strip():
        return None  # Empty file: an un-traced run, not an error.
    doc = json.loads(text)
    if isinstance(doc, dict) and not doc:
        return None  # Bare {}: no events recorded.
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' is not a list")
    return events


def ledger_totals(stats):
    """Sums ledger_* counters over the per-SM stat groups."""
    totals = defaultdict(int)
    for group, counters in stats.items():
        if not (group.startswith("sm") and
                group[2:].isdigit() and isinstance(counters, dict)):
            continue
        for name, value in counters.items():
            if (name.startswith("ledger_") and isinstance(value, int) and
                    name != "ledger_warp_active_cycles"):
                totals[name[len("ledger_"):]] += value
    return totals


def crosscheck(stall, stats_path):
    """Trace span sums vs the exact ledger.

    Returns 0 ok, 1 broken accounting or malformed stats, 2 for a
    stats schema version this tool does not understand.
    """
    try:
        with open(stats_path, "r", encoding="utf-8") as f:
            stats = json.load(f)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_report: {stats_path}: {e}", file=sys.stderr)
        return 1
    if not isinstance(stats, dict):
        print(f"trace_report: {stats_path}: not a stats document",
              file=sys.stderr)
        return 1
    version = stats.get("schema_version")
    if version is not None and version not in KNOWN_STATS_SCHEMAS:
        return refuse_unknown_schema("trace_report", stats_path, "stats",
                                     version, KNOWN_STATS_SCHEMAS,
                                     "ledger layout")
    totals = ledger_totals(stats)
    if not totals:
        print("\ncycle-ledger cross-check: no ledger_* counters in "
              f"{stats_path} (old stats schema?)")
        return 0

    span_by_cat = defaultdict(int)
    for name, cyc in stall.items():
        for prefix, cat in SPAN_TO_LEDGER:
            if name.startswith(prefix):
                span_by_cat[cat] += cyc
                break

    print("\ncycle-ledger cross-check (trace spans vs ledger_*):")
    broken = False
    for cat in sorted(set(span_by_cat) | set(totals)):
        spans = span_by_cat.get(cat, 0)
        ledger = totals.get(cat, 0)
        if spans == 0 and ledger == 0:
            continue
        over = spans - ledger
        bad = (over > CROSSCHECK_ABS and
               ledger > 0 and over > CROSSCHECK_REL * ledger) or \
              (ledger == 0 and spans > CROSSCHECK_ABS)
        mark = "BROKEN" if bad else "ok"
        print(f"  {cat:<16}  spans {spans:>12}  ledger {ledger:>12}  "
              f"{mark}")
        broken = broken or bad
    if broken:
        print("trace_report: span sums exceed the exact ledger beyond "
              "observation quantization", file=sys.stderr)
        return 1
    return 0


def main(argv):
    args = []
    stats_path = None
    rest = argv[1:]
    i = 0
    while i < len(rest):
        if rest[i] == "--stats-json" and i + 1 < len(rest):
            stats_path = rest[i + 1]
            i += 2
        elif rest[i].startswith("--"):
            print(f"trace_report: unknown option '{rest[i]}'",
                  file=sys.stderr)
            return 2
        else:
            args.append(rest[i])
            i += 1
    if len(args) != 1:
        print("usage: trace_report.py <trace.json> "
              "[--stats-json <stats.json>]", file=sys.stderr)
        return 2
    try:
        events = load(args[0])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_report: {args[0]}: {e}", file=sys.stderr)
        return 1
    if events is None or not events:
        print(f"{args[0]}: no events")
        return 0

    pid_names = {}
    spans = defaultdict(lambda: defaultdict(int))  # pid -> name -> cycles
    counters = defaultdict(lambda: [0, 0, 0])      # name -> [n, sum, max]
    instants = defaultdict(int)                    # (pid, name) -> count
    flows = defaultdict(lambda: [0, 0, 0])         # id -> [starts, steps, ends]
    flow_components = set()                        # pids touched by chains
    last_ts = None
    ordered = True

    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                pid_names[ev["pid"]] = ev["args"]["name"]
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            print(f"trace_report: event without numeric ts: {ev}",
                  file=sys.stderr)
            return 1
        if last_ts is not None and ts < last_ts:
            ordered = False
        last_ts = ts
        if ph == "X":
            spans[ev["pid"]][ev["name"]] += int(ev.get("dur", 0))
        elif ph == "C":
            v = ev.get("args", {}).get("value", 0)
            c = counters[ev["name"]]
            c[0] += 1
            c[1] += v
            c[2] = max(c[2], v)
        elif ph == "i":
            instants[(ev["pid"], ev["name"])] += 1
        elif ph in ("s", "t", "f"):
            # Flow events: one persist op's journey is one id-keyed
            # arrow chain across components.
            fid = ev.get("id")
            if fid is None:
                print(f"trace_report: flow event without id: {ev}",
                      file=sys.stderr)
                return 1
            flows[fid]["stf".index(ph)] += 1
            flow_components.add(ev["pid"])
        else:
            print(f"trace_report: unknown phase '{ph}'", file=sys.stderr)
            return 1

    if not ordered:
        print("trace_report: events are not sorted by timestamp",
              file=sys.stderr)
        return 1

    print(f"{args[0]}: {len(events)} events, "
          f"{len(pid_names)} components")

    for pid in sorted(spans):
        comp = pid_names.get(pid, f"pid{pid}")
        total = sum(spans[pid].values())
        if total == 0:
            continue
        print(f"\n{comp} — span cycles (sum over tracks):")
        width = max(len(n) for n in spans[pid])
        for name, cyc in sorted(spans[pid].items(),
                                key=lambda kv: -kv[1]):
            pct = 100.0 * cyc / total
            print(f"  {name:<{width}}  {cyc:>12}  {pct:5.1f}%")

    stall = defaultdict(int)
    for pid, by_name in spans.items():
        if not pid_names.get(pid, "").startswith("sm"):
            continue
        for name, cyc in by_name.items():
            stall[name] += cyc
    if stall:
        total = sum(stall.values())
        print("\nall SMs — warp cycle breakdown:")
        width = max(len(n) for n in stall)
        for name, cyc in sorted(stall.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * cyc / total
            print(f"  {name:<{width}}  {cyc:>12}  {pct:5.1f}%")

    if counters:
        print("\ncounters (samples / mean / max):")
        width = max(len(n) for n in counters)
        for name, (n, s, mx) in sorted(counters.items()):
            mean = s / n if n else 0.0
            print(f"  {name:<{width}}  {n:>8}  {mean:10.2f}  {mx:>8}")

    if instants:
        print("\ninstant events:")
        names = defaultdict(int)
        for (_, name), n in instants.items():
            names[name] += n
        width = max(len(n) for n in names)
        for name, n in sorted(names.items()):
            print(f"  {name:<{width}}  {n:>8}")

    # One persist-op section: the flow chains (provenance-attached
    # traces) and the fault:* retry instants describe the same ops —
    # a chain is the op's journey, the instants its injected mishaps.
    fault_names = defaultdict(int)
    for (_, name), n in instants.items():
        if name.startswith("fault:"):
            fault_names[name] += n
    print("\npersist ops (flow chains + fault instants):")
    if flows:
        started = sum(1 for s, _, _ in flows.values() if s)
        completed = sum(1 for s, _, e in flows.values() if s and e)
        steps = sum(t for _, t, _ in flows.values())
        dangling = [fid for fid, (s, _, e) in flows.items()
                    if bool(s) != bool(e)]
        comps = sorted(pid_names.get(p, f"pid{p}")
                       for p in flow_components)
        print(f"  flow chains started    {started:>8}")
        print(f"  flow chains completed  {completed:>8}")
        print(f"  flow steps             {steps:>8}")
        print(f"  dangling chains        {len(dangling):>8}")
        print(f"  components linked      {', '.join(comps)}")
        if dangling:
            shown = ", ".join(str(d) for d in sorted(dangling)[:8])
            print(f"  dangling op ids        {shown}")
    else:
        print("  no flow events (run without persist provenance)")
    if fault_names:
        # fault:* instants mark injected persist-path faults
        # (pcie_replay, wpq_nack, media_retry, sticky, exhausted);
        # fault_backoff_cycles is a running counter, so its max is
        # the total backoff the retry machine inserted.
        retried = sum(c for n, c in fault_names.items()
                      if n in ("fault:pcie_replay", "fault:wpq_nack",
                               "fault:media_retry"))
        terminal = sum(c for n, c in fault_names.items()
                       if n in ("fault:sticky", "fault:exhausted"))
        backoff = counters.get("fault_backoff_cycles", [0, 0, 0])[2]
        print(f"  faults retried         {retried:>8}")
        print(f"  terminal faults        {terminal:>8}")
        print(f"  backoff cycles         {backoff:>8}")
    else:
        print("  no fault events (run without --faults, or no "
              "faults fired)")

    if stats_path is not None:
        return crosscheck(stall, stats_path)
    return 0


if __name__ == "__main__":
    run_main(main)
