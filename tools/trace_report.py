#!/usr/bin/env python3
"""Summarize an sbrpsim event trace (Chrome trace_event JSON).

Usage:
    tools/trace_report.py red.json

Prints, per SM, a warp-stall breakdown: how many cycles warps spent in
each span category (compute, stall:mem, stall:odm_*, stall:edm_*, ...)
across all warp-slot tracks, plus trace-wide counter summaries (PB
occupancy, MC backlogs, WPQ depth).

Exits nonzero on malformed input, which lets CI use it to validate that
the simulator emits well-formed traces.

Only uses the Python standard library.
"""

import json
import sys
from collections import defaultdict


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' is not a list")
    return events


def main(argv):
    if len(argv) != 2:
        print("usage: trace_report.py <trace.json>", file=sys.stderr)
        return 2
    try:
        events = load(argv[1])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_report: {argv[1]}: {e}", file=sys.stderr)
        return 1

    pid_names = {}
    spans = defaultdict(lambda: defaultdict(int))  # pid -> name -> cycles
    counters = defaultdict(lambda: [0, 0, 0])      # name -> [n, sum, max]
    instants = defaultdict(int)                    # (pid, name) -> count
    last_ts = None
    ordered = True

    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                pid_names[ev["pid"]] = ev["args"]["name"]
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            print(f"trace_report: event without numeric ts: {ev}",
                  file=sys.stderr)
            return 1
        if last_ts is not None and ts < last_ts:
            ordered = False
        last_ts = ts
        if ph == "X":
            spans[ev["pid"]][ev["name"]] += int(ev.get("dur", 0))
        elif ph == "C":
            v = ev.get("args", {}).get("value", 0)
            c = counters[ev["name"]]
            c[0] += 1
            c[1] += v
            c[2] = max(c[2], v)
        elif ph == "i":
            instants[(ev["pid"], ev["name"])] += 1
        else:
            print(f"trace_report: unknown phase '{ph}'", file=sys.stderr)
            return 1

    if not ordered:
        print("trace_report: events are not sorted by timestamp",
              file=sys.stderr)
        return 1

    print(f"{argv[1]}: {len(events)} events, "
          f"{len(pid_names)} components")

    for pid in sorted(spans):
        comp = pid_names.get(pid, f"pid{pid}")
        total = sum(spans[pid].values())
        if total == 0:
            continue
        print(f"\n{comp} — span cycles (sum over tracks):")
        width = max(len(n) for n in spans[pid])
        for name, cyc in sorted(spans[pid].items(),
                                key=lambda kv: -kv[1]):
            pct = 100.0 * cyc / total
            print(f"  {name:<{width}}  {cyc:>12}  {pct:5.1f}%")

    stall = defaultdict(int)
    for pid, by_name in spans.items():
        if not pid_names.get(pid, "").startswith("sm"):
            continue
        for name, cyc in by_name.items():
            stall[name] += cyc
    if stall:
        total = sum(stall.values())
        print("\nall SMs — warp cycle breakdown:")
        width = max(len(n) for n in stall)
        for name, cyc in sorted(stall.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * cyc / total
            print(f"  {name:<{width}}  {cyc:>12}  {pct:5.1f}%")

    if counters:
        print("\ncounters (samples / mean / max):")
        width = max(len(n) for n in counters)
        for name, (n, s, mx) in sorted(counters.items()):
            mean = s / n if n else 0.0
            print(f"  {name:<{width}}  {n:>8}  {mean:10.2f}  {mx:>8}")

    if instants:
        print("\ninstant events:")
        names = defaultdict(int)
        for (_, name), n in instants.items():
            names[name] += n
        width = max(len(n) for n in names)
        for name, n in sorted(names.items()):
            print(f"  {name:<{width}}  {n:>8}")

        faults = {n: c for n, c in names.items() if n.startswith("fault:")}
        if faults:
            # fault:* instants mark injected persist-path faults
            # (pcie_replay, wpq_nack, media_retry, sticky, exhausted);
            # fault_backoff_cycles is a running counter, so its max is
            # the total backoff the retry machine inserted.
            retried = sum(c for n, c in faults.items()
                          if n in ("fault:pcie_replay", "fault:wpq_nack",
                                   "fault:media_retry"))
            terminal = sum(c for n, c in faults.items()
                           if n in ("fault:sticky", "fault:exhausted"))
            backoff = counters.get("fault_backoff_cycles", [0, 0, 0])[2]
            print("\nfault injection:")
            print(f"  faults retried      {retried:>8}")
            print(f"  terminal faults     {terminal:>8}")
            print(f"  backoff cycles      {backoff:>8}")

    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
