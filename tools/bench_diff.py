#!/usr/bin/env python3
"""Compare a bench metrics JSON against a committed baseline.

Both inputs are flat metric maps as written by `bench/cycle_breakdown
--out` and `bench/sim_throughput --json`:

    { "bench": "cycle_breakdown", "Red/sbrp/near/sim_cycles": 1573, ... }

Metrics fall into two classes:

  exact     Simulated quantities (cycle counts, ledger categories,
            latency percentiles). Deterministic run-to-run, so ANY
            drift -- in either direction -- fails the gate: a speedup
            you didn't intend is as suspicious as a slowdown, and an
            intended timing change must re-baseline.
  advisory  Host-dependent throughput (`*_per_sec`, `*wall*`, `*_ms`).
            Compared against a relative tolerance band (--rtol) and
            reported, but never fail the gate: CI machines vary.

Coverage asymmetries are advisory too: metrics only in the current run
are NEW (a bench gained a metric), metrics only in the baseline are
SKIPPED (e.g. CI runs a 3-app subset against the full-matrix baseline).

`--update-baselines` is the re-baselining half of the gate: it runs
every baseline-producing bench from `--build-dir` and rewrites the
committed JSONs under `--golden-dir` in one command, so an intended
timing change is a bench re-run plus a `git diff` review instead of a
manual copy dance.

Exit codes: 0 = no exact-metric regressions, 1 = at least one exact
metric drifted, 2 = usage error or malformed/unreadable JSON.
"""

import argparse
import json
import os
import subprocess
import sys

ADVISORY_PATTERNS = ("_per_sec", "wall", "_ms")

# Every bench whose output is a committed baseline: (binary relative to
# the build dir, the flag that routes its metrics JSON, baseline name).
# CI diffs subset runs against these full-matrix files (perf-regression
# job in .github/workflows/ci.yml).
BASELINE_BENCHES = [
    ("bench/cycle_breakdown", "--out", "BENCH_cycle_breakdown.json"),
    ("bench/sim_throughput", "--json", "BENCH_sim_throughput.json"),
    ("bench/trace_overhead", "--json", "BENCH_trace_overhead.json"),
]


def is_advisory(key):
    return any(p in key for p in ADVISORY_PATTERNS)


def load_metrics(path):
    """Returns {key: number} or raises ValueError/OSError."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError("top level is not an object")
    metrics = {}
    for key, value in data.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue  # "bench" tag and any other non-numeric metadata.
        metrics[key] = value
    return metrics


def compare(current, baseline, rtol):
    """Returns (regressions, warnings, infos) as lists of report lines."""
    regressions, warnings, infos = [], [], []
    skipped = {}  # bench cell (key minus trailing /metric) -> count
    for key in sorted(set(current) | set(baseline)):
        if key not in baseline:
            infos.append(f"NEW       {key} = {current[key]} "
                         "(not in baseline)")
            continue
        if key not in current:
            # A subset run skips whole cells; one note per cell, not per
            # metric, keeps CI logs readable.
            cell = key.rsplit("/", 1)[0] if "/" in key else key
            skipped[cell] = skipped.get(cell, 0) + 1
            continue
        cur, base = current[key], baseline[key]
        if is_advisory(key):
            if base != 0:
                rel = (cur - base) / base
                if abs(rel) > rtol:
                    warnings.append(
                        f"ADVISORY  {key}: {base} -> {cur} "
                        f"({rel:+.1%}, band ±{rtol:.0%}; host-dependent, "
                        "not gating)")
            elif cur != 0:
                warnings.append(
                    f"ADVISORY  {key}: 0 -> {cur} (host-dependent, "
                    "not gating)")
        elif cur != base:
            direction = "regressed" if cur > base else "improved"
            regressions.append(
                f"REGRESSED {key}: {base} -> {cur} ({direction}; exact "
                "metric -- intentional changes must re-baseline)")
    for cell in sorted(skipped):
        infos.append(f"SKIPPED   {cell} ({skipped[cell]} baseline "
                     "metric(s); not run this time)")
    return regressions, warnings, infos


def update_baselines(build_dir, golden_dir):
    """Regenerates every committed baseline; returns an exit code."""
    missing = [rel for rel, _, _ in BASELINE_BENCHES
               if not os.path.isfile(os.path.join(build_dir, rel))]
    if missing:
        names = " ".join(os.path.basename(m) for m in missing)
        print(f"bench_diff: missing bench binaries under '{build_dir}': "
              f"{', '.join(missing)}\n"
              f"  build them first: cmake --build {build_dir} "
              f"--target {names}", file=sys.stderr)
        return 2
    os.makedirs(golden_dir, exist_ok=True)
    for rel, flag, name in BASELINE_BENCHES:
        binary = os.path.join(build_dir, rel)
        out = os.path.join(golden_dir, name)
        print(f"bench_diff: running {rel} (full matrix) -> {out}")
        proc = subprocess.run([binary, flag, out],
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"bench_diff: {rel} exited {proc.returncode}; "
                  f"baseline '{out}' not trusted", file=sys.stderr)
            return 2
        try:
            metrics = load_metrics(out)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_diff: {rel} wrote an unusable baseline "
                  f"'{out}': {e}", file=sys.stderr)
            return 2
        if not metrics:
            print(f"bench_diff: {rel} wrote no numeric metrics to "
                  f"'{out}'", file=sys.stderr)
            return 2
        print(f"  {len(metrics)} metrics")
    print(f"bench_diff: {len(BASELINE_BENCHES)} baseline(s) updated "
          f"under {golden_dir} -- review with git diff before "
          "committing")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff bench metrics JSON against a baseline.")
    parser.add_argument("current", nargs="?",
                        help="metrics JSON from this run")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline JSON (tests/golden/)")
    parser.add_argument("--rtol", type=float, default=0.5,
                        help="advisory tolerance band for host-dependent "
                             "metrics (default 0.5 = ±50%%)")
    parser.add_argument("--report", metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--update-baselines", action="store_true",
                        help="re-run every baseline bench and rewrite "
                             "the committed JSONs in one command")
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding the bench binaries "
                             "(default: build)")
    parser.add_argument("--golden-dir", default="tests/golden",
                        help="where the committed baselines live "
                             "(default: tests/golden)")
    args = parser.parse_args(argv)

    if args.update_baselines:
        if args.current or args.baseline:
            parser.error("--update-baselines takes no metric files")
        return update_baselines(args.build_dir, args.golden_dir)
    if args.current is None or args.baseline is None:
        parser.error("need <current> and <baseline> metric files "
                     "(or --update-baselines)")

    try:
        current = load_metrics(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot load '{args.current}': {e}",
              file=sys.stderr)
        return 2
    try:
        baseline = load_metrics(args.baseline)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot load '{args.baseline}': {e}",
              file=sys.stderr)
        return 2

    regressions, warnings, infos = compare(current, baseline, args.rtol)
    compared = len(set(current) & set(baseline))

    lines = [f"bench_diff: {args.current} vs {args.baseline}",
             f"  {compared} metrics compared, "
             f"{len(regressions)} regressed, "
             f"{len(warnings)} advisory, {len(infos)} coverage notes", ""]
    lines += regressions + warnings + infos
    if not regressions:
        lines.append("PASS: all exact metrics match the baseline")
    else:
        lines.append(f"FAIL: {len(regressions)} exact metric(s) drifted")
    report = "\n".join(lines) + "\n"

    sys.stdout.write(report)
    if args.report:
        try:
            with open(args.report, "w") as f:
                f.write(report)
        except OSError as e:
            print(f"bench_diff: cannot write report: {e}",
                  file=sys.stderr)
            return 2
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
