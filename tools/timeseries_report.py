#!/usr/bin/env python3
"""Summarize windowed metrics JSONL (sbrpsim --metrics-json).

Usage:
    tools/timeseries_report.py red-metrics.jsonl
    tools/timeseries_report.py red-metrics.jsonl --warmup 2
    tools/timeseries_report.py red-metrics.jsonl --regress 25

Consumes the schema_version 1 metrics time-series (one header record,
optional folded-drop record, one record per closed window, one totals
record) and prints:

 - the run header: window size, app/model/design, window count;
 - a per-window table of the busiest counters (delta per window) and
   each distribution's windowed p50/p99;
 - steady-state detection: the earliest post-warmup window from which
   every later full window's activity rate stays within 25% of the
   median of the remaining windows — the region cycle-accurate
   summary statistics should be computed over.

It also re-verifies the invariant the simulator test-enforces, so the
report doubles as an offline checker: per-window counter deltas and
distribution deltas (plus the folded ring-overflow base) telescope
exactly to the end-of-run totals record.

`--warmup N` excludes the first N windows from steady-state and
regression analysis. `--regress <pct>` additionally fails (exit 1) if
any distribution's windowed p99 worsens by more than pct% from one
post-warmup window to the next — a cheap window-over-window latency
regression gate for CI.

Exits 0 on a clean report, 1 on a broken invariant or a flagged
regression, 2 on usage errors, an unreadable/truncated/malformed file,
or a schema version this tool does not understand (a newer simulator
wrote the document -- update the tool, do not guess at the layout).
Only uses the Python standard library.
"""

import sys

from report_common import (read_jsonl_or_exit,
                           refuse_unknown_schema, run_main)

# The metrics stream revision this tool knows how to read
# (src/common/schema_versions.hh, kMetrics; `sbrpsim --version`).
KNOWN_SCHEMA = 1

# A window's activity rate must sit within this fraction of the
# remaining windows' median to count as steady state.
STEADY_TOLERANCE = 0.25


def die(msg):
    print(f"timeseries_report: {msg}", file=sys.stderr)
    return 1


def merge_counters(acc, counters):
    for name, delta in counters.items():
        acc[name] = acc.get(name, 0) + delta


def merge_dists(acc, dists):
    for name, d in dists.items():
        slot = acc.setdefault(name, {"count": 0, "sum": 0, "buckets": {}})
        slot["count"] += d["count"]
        slot["sum"] += d["sum"]
        for b, n in d["buckets"].items():
            slot["buckets"][b] = slot["buckets"].get(b, 0) + n


def check_telescoping(windows, dropped, totals):
    """Windows + folded drop base must reproduce the totals record."""
    broken = []
    counters = {}
    dists = {}
    if dropped is not None:
        merge_counters(counters, dropped["counters"])
        merge_dists(dists, dropped["dists"])
    for w in windows:
        merge_counters(counters, w["counters"])
        merge_dists(dists, w["dists"])

    totals_counters = totals["counters"]
    for name in sorted(set(counters) | set(totals_counters)):
        got = counters.get(name, 0)
        want = totals_counters.get(name, 0)
        if got != want:
            broken.append(f"counter '{name}' does not telescope: "
                          f"window deltas sum to {got}, totals say "
                          f"{want}")
    totals_dists = totals["dists"]
    for name in sorted(set(dists) | set(totals_dists)):
        got = dists.get(name, {"count": 0, "sum": 0, "buckets": {}})
        want = totals_dists.get(name, {"count": 0, "sum": 0,
                                       "buckets": {}})
        if got["count"] != want["count"] or got["sum"] != want["sum"]:
            broken.append(f"dist '{name}' does not telescope: window "
                          f"deltas sum to count={got['count']}/"
                          f"sum={got['sum']}, totals say "
                          f"count={want['count']}/sum={want['sum']}")
            continue
        got_b = {b: n for b, n in got["buckets"].items() if n}
        want_b = {b: n for b, n in want["buckets"].items() if n}
        if got_b != want_b:
            broken.append(f"dist '{name}': bucket histogram does not "
                          f"telescope")
    return broken


def window_rate(w):
    """Activity per cycle: total counter movement in the window."""
    cycles = w["end"] - w["begin"]
    if cycles <= 0:
        return 0.0
    return sum(abs(v) for v in w["counters"].values()) / cycles


def detect_steady_state(windows, warmup):
    """Earliest window from which rates stay near the tail median."""
    # The trailing window is usually partial; judge full windows only.
    full = [w for w in windows[warmup:]
            if w["end"] - w["begin"] == windows[0]["end"] - windows[0]["begin"]]
    for start in range(len(full)):
        tail = full[start:]
        if len(tail) < 2:
            break
        rates = sorted(window_rate(w) for w in tail)
        median = rates[len(rates) // 2]
        if median == 0:
            continue
        if all(abs(window_rate(w) - median) <= STEADY_TOLERANCE * median
               for w in tail):
            return full[start]["index"]
    return None


def main(argv):
    path = None
    warmup = 0
    regress_pct = None
    rest = argv[1:]
    i = 0
    while i < len(rest):
        if rest[i] == "--warmup" and i + 1 < len(rest):
            try:
                warmup = int(rest[i + 1])
            except ValueError:
                print("timeseries_report: --warmup expects an integer",
                      file=sys.stderr)
                return 2
            i += 2
        elif rest[i] == "--regress" and i + 1 < len(rest):
            try:
                regress_pct = float(rest[i + 1])
            except ValueError:
                print("timeseries_report: --regress expects a percent",
                      file=sys.stderr)
                return 2
            i += 2
        elif rest[i].startswith("--"):
            print(f"timeseries_report: unknown option '{rest[i]}'",
                  file=sys.stderr)
            return 2
        elif path is None:
            path = rest[i]
            i += 1
        else:
            path = None
            break
    if path is None:
        print("usage: timeseries_report.py <metrics.jsonl> "
              "[--warmup N] [--regress PCT]", file=sys.stderr)
        return 2

    records = read_jsonl_or_exit("timeseries_report", path,
                                 producers="metrics streams")
    if not records or records[0].get("kind") != "metrics_header":
        return die(f"{path}: not a metrics time-series (no header)")
    header = records[0]
    version = header.get("schema_version")
    if version != KNOWN_SCHEMA:
        return refuse_unknown_schema("timeseries_report", path,
                                     "metrics", version, KNOWN_SCHEMA,
                                     "layout")

    dropped = None
    windows = []
    totals = None
    for rec in records[1:]:
        kind = rec.get("kind")
        if kind == "dropped":
            dropped = rec
        elif kind == "window":
            windows.append(rec)
        elif kind == "totals":
            totals = rec
        else:
            return die(f"{path}: unknown record kind {kind!r}")
    if totals is None:
        return die(f"{path}: missing totals record")

    meta = ", ".join(f"{k}={header[k]}" for k in ("app", "model",
                                                  "design")
                     if k in header)
    print(f"{path}: window {header['window']} cycles, "
          f"{totals['windows']} windows "
          f"({totals['windows_dropped']} folded), "
          f"{totals['end_cycle']} cycles total"
          + (f" [{meta}]" if meta else ""))

    broken = check_telescoping(windows, dropped, totals)
    for msg in broken:
        print(f"timeseries_report: {msg}", file=sys.stderr)

    # Busiest counters across the run make the per-window columns.
    cols = sorted(totals["counters"],
                  key=lambda n: abs(totals["counters"][n]),
                  reverse=True)[:6]
    if windows and cols:
        print("\nper-window counter deltas (busiest counters):")
        heads = [c.split(".")[-1][:14] for c in cols]
        print("  " + f"{'win':>4}  {'cycles':>15}  "
              + "  ".join(f"{h:>14}" for h in heads))
        for w in windows:
            cyc = f"[{w['begin']},{w['end']})"
            vals = "  ".join(f"{w['counters'].get(c, 0):>14}"
                             for c in cols)
            print(f"  {w['index']:>4}  {cyc:>15}  {vals}")

    dist_names = sorted(totals["dists"])
    if windows and dist_names:
        print("\nper-window distribution p50/p99:")
        for name in dist_names:
            cells = []
            for w in windows:
                d = w["dists"].get(name)
                cells.append(f"{d['p50']}/{d['p99']}" if d else "-")
            print(f"  {name:<40} " + "  ".join(f"{c:>11}"
                                               for c in cells))

    steady = detect_steady_state(windows, warmup)
    if steady is not None:
        print(f"\nsteady state from window {steady} "
              f"(rates within {STEADY_TOLERANCE:.0%} of tail median"
              + (f", first {warmup} windows excluded)" if warmup
                 else ")"))
    else:
        print("\nno steady-state region detected"
              + (f" (first {warmup} windows excluded)" if warmup
                 else ""))

    regressed = False
    if regress_pct is not None:
        post = windows[warmup:]
        for prev, cur in zip(post, post[1:]):
            for name in dist_names:
                a = prev["dists"].get(name)
                b = cur["dists"].get(name)
                if not a or not b or a["p99"] <= 0:
                    continue
                growth = 100.0 * (b["p99"] - a["p99"]) / a["p99"]
                if growth > regress_pct:
                    print(f"timeseries_report: window "
                          f"{cur['index']}: '{name}' p99 regressed "
                          f"{growth:.1f}% over window "
                          f"{prev['index']} ({a['p99']} -> "
                          f"{b['p99']}, limit {regress_pct:.1f}%)",
                          file=sys.stderr)
                    regressed = True

    if not broken:
        print("\ntelescoping: OK (windows + folded base == totals)")
    return 1 if broken or regressed else 0


if __name__ == "__main__":
    run_main(main)
