"""Shared input handling for the report tools.

Every report tool consumes JSON artifacts the simulator writes
atomically (src/common/atomic_io.hh), so they all need the same three
diagnostics, with the same exit-code contract (pinned by
tests/test_report_schemas.py):

 - an unreadable or empty file exits 2 — the producers write via
   tmp+rename, so an empty file means the producer never finished;
 - a JSON parse error is classified as a *truncated* document (the
   error sits at EOF, or an unterminated construct ran into it — the
   signature of a half-copied file) vs *malformed JSON*, both exit 2;
 - a document tagged with a schema version the tool does not
   understand is refused with exit 2 and a message naming both the
   seen and the understood versions — a newer simulator wrote it, so
   the right fix is updating the tool, not guessing at the fields.

This module is that one implementation; the per-tool wording knobs
(producer noun, dash style) exist because the historical messages are
pinned by tests and downstream scripts. Only uses the standard
library.
"""

import json
import os
import sys


def classify_decode_error(text, e):
    """'truncated report' vs 'malformed JSON' for a JSONDecodeError.

    An error at EOF (or an unterminated construct running into it) is
    the signature of a half-copied document; anything earlier means
    the producer wrote genuinely broken JSON.
    """
    truncated = e.pos >= len(text.rstrip()) or "Unterminated" in e.msg
    return "truncated report" if truncated else "malformed JSON"


def read_json_or_exit(tool, path, producers="reports", dash="--"):
    """Reads and parses one atomically-written JSON artifact.

    Exits 2 (SystemExit) with the pinned diagnostics on an unreadable,
    empty or unparseable file; `producers` and `dash` only shape the
    message ("provenance documents are written atomically -- ...").
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"{tool}: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not text.strip():
        print(f"{tool}: {path}: empty report (truncated write? "
              f"{producers} are written atomically {dash} an empty file "
              "means the producer never finished)", file=sys.stderr)
        sys.exit(2)
    try:
        return json.loads(text)
    except json.JSONDecodeError as e:
        print(f"{tool}: {path}: {classify_decode_error(text, e)}: {e}",
              file=sys.stderr)
        sys.exit(2)


def read_jsonl_or_exit(tool, path, producers="documents", dash="--"):
    """Reads an atomically-written JSONL artifact as a list of records.

    Same exit-2 contract as read_json_or_exit; the whole file was
    written in one atomic rename, so even a broken *last* line means
    truncation, not a torn append.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"{tool}: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not text.strip():
        print(f"{tool}: {path}: empty report (truncated write? "
              f"{producers} are written atomically {dash} an empty file "
              "means the producer never finished)", file=sys.stderr)
        sys.exit(2)
    records = []
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            print(f"{tool}: {path}:{n}: "
                  f"{classify_decode_error(line, e)}: {e}",
                  file=sys.stderr)
            sys.exit(2)
    return records


def tail_jsonl(path):
    """Best-effort JSONL reader for *append-mode* streams (heartbeats).

    Unlike the atomic artifacts, these are appended record-at-a-time by
    a live (possibly SIGKILLed) worker, so a torn or garbled trailing
    line is expected — it is skipped, never an error. Returns [] for a
    missing or empty file.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return []
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def run_main(main):
    """Runs a tool's main(argv) with the shared process plumbing.

    A reader closing the pipe early (`... | head`) is normal use for
    these tools, not an error: swallow the BrokenPipeError, point
    stdout at /dev/null so the interpreter's final implicit flush
    cannot raise again, and exit 0.
    """
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(0)


def refuse_unknown_schema(tool, path, artifact, version, known, layout):
    """Prints the pinned schema-refusal message; returns exit code 2.

    `known` may be a single version or a collection of accepted
    versions (the message then reads "not a version ... (2, 3)").
    """
    if isinstance(known, (set, frozenset, tuple, list)):
        versions = sorted(known)
    else:
        versions = [known]
    known_str = ", ".join(str(v) for v in versions)
    what = "a version" if len(versions) > 1 else "the version"
    print(f"{tool}: {path}: {artifact} schema_version {version!r} is "
          f"not {what} this tool understands ({known_str}); it was "
          f"written by a different simulator revision -- update "
          f"tools/{tool}.py rather than guessing at the {layout}",
          file=sys.stderr)
    return 2
