#!/usr/bin/env python3
"""Summarize persist-op provenance JSON (sbrpsim/crashfuzz --persist-trace).

Usage:
    tools/persist_report.py red-persist.json
    tools/persist_report.py red-persist.json --top 5

Consumes the schema_version 1 provenance document and prints:

 - the stage-residency waterfall: per-stage sample counts, total cycles,
   share of total ack latency, and min/p50/p95/p99/max — where each
   persist op's cycles went between issue and ack;
 - the top-K slowest completed ops with their full stage trails (issue
   cycle, ack latency, and the six per-stage residencies);
 - retry outliers: ops that needed more than one fabric attempt;
 - the persist-order audit stream: record count, scope mix, and the
   commit-cycle span.

It also re-verifies two invariants the simulator test-enforces, so the
report doubles as an offline checker:

 - the waterfall telescopes: the six per-stage cycle sums add up to the
   ack-latency sum (and per-op stage trails sum to each op's latency);
 - the audit stream is monotone in commit cycle (it was appended in
   durable-image write order).

Exits 0 on a clean report, 1 on a document with missing fields or a
broken invariant, 2 on usage errors, an unreadable/truncated/malformed
file (the producers write atomically, so a half-written document means
the producer never finished), or a schema version this tool does not
understand (a newer simulator wrote the document -- update the tool,
do not guess at the fields). Only uses the Python standard library.
"""

import sys

from report_common import (read_json_or_exit,
                           refuse_unknown_schema, run_main)

# The provenance document revision this tool knows how to read
# (src/common/schema_versions.hh, kProvenance; `sbrpsim --version`).
KNOWN_SCHEMA = 1

STAGES = ("issue_to_pb", "pb_residency", "fsm_hold", "fabric", "wpq",
          "media")


def die(msg):
    print(f"persist_report: {msg}", file=sys.stderr)
    return 1


def fmt_dist(d):
    return (f"{d['count']:>7}  {d['sum']:>12}  {d['min']:>8}  "
            f"{d['p50']:>8}  {d['p95']:>8}  {d['p99']:>8}  {d['max']:>8}")


def print_op_table(title, ops):
    print(f"\n{title}:")
    head = (f"  {'op_id':>16}  {'sm':>3}  {'addr':>10}  {'scope':<6}  "
            f"{'epoch':>5}  {'att':>3}  {'mrg':>3}  {'issue':>9}  "
            f"{'ack_lat':>8}")
    print(head)
    for op in ops:
        print(f"  {op['op_id']:>16}  {op['sm']:>3}  "
              f"{op['addr']:#10x}  {op['scope']:<6}  {op['epoch']:>5}  "
              f"{op['attempts']:>3}  {op['merges']:>3}  "
              f"{op['issue_cycle']:>9}  {op['ack_latency']:>8}")
        trail = "  ".join(f"{s}={op['stages'][s]}" for s in STAGES)
        print(f"    {trail}")


def check_op(op):
    """Per-op telescoping: the stage trail sums to the ack latency."""
    if op.get("faulted"):
        return True  # Faulted ops have no accept point; excluded.
    return sum(op["stages"][s] for s in STAGES) == op["ack_latency"]


def main(argv):
    path = None
    top = 10
    rest = argv[1:]
    i = 0
    while i < len(rest):
        if rest[i] == "--top" and i + 1 < len(rest):
            try:
                top = int(rest[i + 1])
            except ValueError:
                print("persist_report: --top expects an integer",
                      file=sys.stderr)
                return 2
            i += 2
        elif rest[i].startswith("--"):
            print(f"persist_report: unknown option '{rest[i]}'",
                  file=sys.stderr)
            return 2
        elif path is None:
            path = rest[i]
            i += 1
        else:
            path = None
            break
    if path is None:
        print("usage: persist_report.py <provenance.json> [--top N]",
              file=sys.stderr)
        return 2

    doc = read_json_or_exit("persist_report", path,
                            producers="provenance documents")
    if not isinstance(doc, dict):
        return die(f"{path}: not a provenance document")
    version = doc.get("schema_version")
    if version != KNOWN_SCHEMA:
        return refuse_unknown_schema("persist_report", path, "provenance",
                                     version, KNOWN_SCHEMA, "fields")
    for key in ("ops_begun", "ops_completed", "ops_faulted",
                "records_lost", "waterfall", "slowest_ops",
                "retry_outliers", "audit"):
        if key not in doc:
            return die(f"{path}: missing '{key}'")

    wf = doc["waterfall"]
    for key in STAGES + ("ack_latency",):
        if key not in wf:
            return die(f"{path}: waterfall missing '{key}'")

    print(f"{path}: {doc['ops_begun']} ops begun, "
          f"{doc['ops_completed']} completed, "
          f"{doc['ops_faulted']} faulted, "
          f"{doc['records_lost']} records lost")

    ack = wf["ack_latency"]
    print("\nstage-residency waterfall (cycles):")
    print(f"  {'stage':<13}  {'count':>7}  {'sum':>12}  {'%':>6}  "
          f"{'min':>8}  {'p50':>8}  {'p95':>8}  {'p99':>8}  {'max':>8}")
    stage_sum = 0
    for s in STAGES:
        d = wf[s]
        stage_sum += d["sum"]
        pct = 100.0 * d["sum"] / ack["sum"] if ack["sum"] else 0.0
        print(f"  {s:<13}  {d['count']:>7}  {d['sum']:>12}  {pct:>5.1f}%  "
              f"{d['min']:>8}  {d['p50']:>8}  {d['p95']:>8}  "
              f"{d['p99']:>8}  {d['max']:>8}")
    print(f"  {'ack latency':<13}  {fmt_dist(ack)}")

    broken = False
    if stage_sum != ack["sum"]:
        print(f"persist_report: waterfall does not telescope: stage sums "
              f"{stage_sum} != ack-latency sum {ack['sum']}",
              file=sys.stderr)
        broken = True

    slowest = doc["slowest_ops"][:top]
    if slowest:
        print_op_table(f"slowest ops (top {len(slowest)})", slowest)
    outliers = doc["retry_outliers"][:top]
    if outliers:
        print_op_table(
            f"retry outliers ({len(doc['retry_outliers'])} total, "
            f"showing {len(outliers)})", outliers)
    else:
        print("\nno retry outliers (every persist committed on its "
              "first attempt)")
    for op in slowest + outliers:
        if not check_op(op):
            print(f"persist_report: op {op['op_id']}: stage trail does "
                  f"not sum to its ack latency", file=sys.stderr)
            broken = True

    audit = doc["audit"]
    print(f"\npersist-order audit stream: {len(audit)} records")
    if audit:
        scopes = {}
        for rec in audit:
            scopes[rec["scope"]] = scopes.get(rec["scope"], 0) + 1
        mix = ", ".join(f"{k}={v}" for k, v in sorted(scopes.items()))
        print(f"  scope mix              {mix}")
        print(f"  first commit cycle     {audit[0]['commit_cycle']:>9}")
        print(f"  last commit cycle      {audit[-1]['commit_cycle']:>9}")
        cycles = [rec["commit_cycle"] for rec in audit]
        if cycles != sorted(cycles):
            print("persist_report: audit stream is not monotone in "
                  "commit cycle", file=sys.stderr)
            broken = True

    return 1 if broken else 0


if __name__ == "__main__":
    run_main(main)
