/**
 * @file
 * sbrpsim — command-line driver for the SBRP simulator.
 *
 * Runs one of the paper's six PM-aware applications under a chosen
 * persistency model and system design, optionally injecting a crash
 * and running recovery, and prints timing plus the key statistics.
 *
 * Usage:
 *   sbrpsim --app Red --model sbrp --design near
 *   sbrpsim --app gpKVS --model epoch --design far --crash 0.5
 *   sbrpsim --app Scan --model sbrp --window 10 --policy eager --stats
 *   sbrpsim --list
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "api/sbrp.hh"
#include "common/atomic_io.hh"
#include "common/schema_versions.hh"
#include "common/trace.hh"
#include "apps/app.hh"
#include "apps/registry.hh"
#include "crashtest/scenario.hh"
#include "obs/provenance.hh"
#include "obs/timeseries.hh"

using namespace sbrp;

namespace
{

void
usage()
{
    std::printf(
        "sbrpsim — scoped buffered persistency model simulator\n\n"
        "  --app <name>      gpKVS | HM | SRAD | Red | MQ | Scan | Ckpt\n"
        "  --model <m>       sbrp | epoch | gpm | barrier  (default sbrp)\n"
        "  --design <d>      near | far                    (default near)\n"
        "  --crash <frac>    crash at this fraction of the crash-free\n"
        "                    runtime, then power-cycle and recover\n"
        "  --window <n>      SBRP flush window              (default 6)\n"
        "  --policy <p>      window | eager | lazy          (default window)\n"
        "  --pb <frac>       persist buffer coverage of L1  (default 0.5)\n"
        "  --nvm-bw <scale>  NVM bandwidth scale            (default 1.0)\n"
        "  --eadr            persist point at the host LLC (PM-far only)\n"
        "  --faults <spec>   inject persist-path faults, e.g.\n"
        "                    pcie=1e-3,wpq=16,media=1e-3,sticky=1e-6\n"
        "  --fault-seed <n>  master seed for the fault schedule\n"
        "                    (default 1 when --faults is given)\n"
        "  --retry-budget <n>  max attempts per persist   (default 8)\n"
        "  --scale <t|b>     workload scale: test or bench  (default t)\n"
        "  --check           attach the formal PMO checker\n"
        "  --stats           dump all non-zero counters\n"
        "  --stats-json <f>  write statistics (counters + histograms)\n"
        "                    as JSON to <f>\n"
        "  --metrics-json <f>  sample every counter's and histogram's\n"
        "                    per-window delta plus boundary gauges (PB\n"
        "                    occupancy, WPQ depth, channel backlogs)\n"
        "                    into a JSONL time-series at <f>\n"
        "                    (summarize with tools/timeseries_report.py)\n"
        "  --metrics-window <n>  metrics sampling window in sim cycles\n"
        "                    (default 4096)\n"
        "  --trace <f>       write a Chrome trace_event JSON timeline to\n"
        "                    <f> (open in chrome://tracing or Perfetto;\n"
        "                    summarize with tools/trace_report.py)\n"
        "  --persist-trace <f>  record per-persist-op provenance and\n"
        "                    write the stage-residency waterfall, the\n"
        "                    slowest-op trails and the persist-order\n"
        "                    audit stream as JSON to <f> (summarize with\n"
        "                    tools/persist_report.py); combined with\n"
        "                    --trace, persist ops also appear as flow\n"
        "                    arrows linking the component spans\n"
        "  --audit-json <f>  like --persist-trace, and additionally\n"
        "                    cross-validate the observed commit order\n"
        "                    against the formal PMO checker (exit 1 on\n"
        "                    any divergence)\n"
        "  --unsafe-relaxed-order  FAULT INJECTION: let the SBRP drain\n"
        "                    ignore FSM/eviction ordering hazards (used\n"
        "                    to prove the audit cross-check detects a\n"
        "                    model that persists out of order)\n"
        "  --list-crash-points  run crash-free once and list the\n"
        "                    event-adjacent crash points the campaign\n"
        "                    engine would explore (see tools/crashfuzz)\n"
        "  --list            list applications and exit\n"
        "  --version         print the artifact schema versions and exit\n"
        "  --help, -h        print this listing and exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name;
    ModelKind model = ModelKind::Sbrp;
    SystemDesign design = SystemDesign::PmNear;
    double crash_frac = -1.0;
    bool bench_scale = false;
    bool check = false;
    bool dump_stats = false;
    bool list_crash_points = false;
    std::string trace_path;
    std::string stats_json_path;
    std::string persist_trace_path;
    std::string audit_json_path;
    std::string metrics_json_path;
    Cycle metrics_window = 0;   // 0 = MetricsTimeseries default.
    std::string model_name = "sbrp";
    std::string design_name = "near";
    SystemConfig cfg = SystemConfig::paperDefault();

    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage();
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app") {
            app_name = next(i);
        } else if (a == "--model") {
            std::string m = next(i);
            if (m == "sbrp") model = ModelKind::Sbrp;
            else if (m == "epoch") model = ModelKind::Epoch;
            else if (m == "gpm") model = ModelKind::Gpm;
            else if (m == "barrier") model = ModelKind::ScopedBarrier;
            else { usage(); return 2; }
            model_name = m;
        } else if (a == "--design") {
            std::string d = next(i);
            if (d == "near") design = SystemDesign::PmNear;
            else if (d == "far") design = SystemDesign::PmFar;
            else { usage(); return 2; }
            design_name = d;
        } else if (a == "--crash") {
            crash_frac = std::atof(next(i));
        } else if (a == "--window") {
            cfg.window = static_cast<std::uint32_t>(std::atoi(next(i)));
        } else if (a == "--policy") {
            std::string p = next(i);
            if (p == "window") cfg.flushPolicy = FlushPolicy::Window;
            else if (p == "eager") cfg.flushPolicy = FlushPolicy::Eager;
            else if (p == "lazy") cfg.flushPolicy = FlushPolicy::Lazy;
            else { usage(); return 2; }
        } else if (a == "--pb") {
            cfg.pbCoverage = std::atof(next(i));
        } else if (a == "--nvm-bw") {
            cfg.nvmBwScale = std::atof(next(i));
        } else if (a == "--eadr") {
            cfg.persistPoint = PersistPoint::Eadr;
        } else if (a == "--faults") {
            std::string err;
            if (!FaultSpec::parse(next(i), &cfg.faults, &err)) {
                std::fprintf(stderr, "sbrpsim: --faults: %s\n",
                             err.c_str());
                return 2;
            }
            if (cfg.seed == 0)
                cfg.seed = 1;
        } else if (a == "--fault-seed") {
            cfg.seed = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--retry-budget") {
            cfg.persistRetryBudget = static_cast<std::uint32_t>(
                std::atoi(next(i)));
        } else if (a == "--scale") {
            bench_scale = std::string(next(i)) == "b";
        } else if (a == "--check") {
            check = true;
        } else if (a == "--stats") {
            dump_stats = true;
        } else if (a == "--stats-json") {
            stats_json_path = next(i);
        } else if (a == "--metrics-json") {
            metrics_json_path = next(i);
        } else if (a == "--metrics-window") {
            metrics_window = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--trace") {
            trace_path = next(i);
        } else if (a == "--persist-trace") {
            persist_trace_path = next(i);
        } else if (a == "--audit-json") {
            audit_json_path = next(i);
        } else if (a == "--unsafe-relaxed-order") {
            cfg.unsafeRelaxedPersistOrder = true;
        } else if (a == "--list-crash-points") {
            list_crash_points = true;
        } else if (a == "--list") {
            for (std::size_t n = 0; n < appRegistryNames().size(); ++n)
                std::printf("%s%s", n ? " " : "",
                            appRegistryNames()[n].c_str());
            std::printf("\n");
            return 0;
        } else if (a == "--version") {
            std::printf("sbrpsim (sbrp-sim)\n%s\n",
                        schema::describeAll().c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "sbrpsim: unknown option '%s'\n\n",
                         argv[i]);
            usage();
            return 2;
        }
    }

    if (app_name.empty()) {
        usage();
        return 2;
    }
    auto app = makeRegisteredApp(app_name, model, bench_scale);
    if (!app) {
        std::fprintf(stderr, "unknown app '%s'\n", app_name.c_str());
        return 2;
    }
    app_name = resolveAppName(app_name);
    cfg.model = model;
    cfg.design = design;

    try {
        cfg.validate();
        std::printf("%s under %s\n", app_name.c_str(),
                    cfg.describe().c_str());

        if (list_crash_points) {
            CrashScenario scenario;
            scenario.app = app_name;
            scenario.cfg = cfg;
            scenario.benchScale = bench_scale;
            ScenarioRunner runner(scenario);
            CrashProbe probe = runner.probe();
            std::printf("crash-free horizon: %llu cycles\n",
                        static_cast<unsigned long long>(probe.horizon));
            std::printf("trace events classified: %llu "
                        "(%llu candidates pruned)\n",
                        static_cast<unsigned long long>(
                            probe.points.rawEvents),
                        static_cast<unsigned long long>(
                            probe.points.prunedCandidates));
            std::printf("crash points: %llu\n",
                        static_cast<unsigned long long>(
                            probe.points.points.size()));
            for (const CrashPoint &p : probe.points.points)
                std::printf("  %10llu  %s\n",
                            static_cast<unsigned long long>(p.cycle),
                            toString(p.kind));
            return 0;
        }

        if (crash_frac < 0.0) {
            AppRunResult r = AppHarness::runCrashFree(*app, cfg, check);
            std::printf("kernel runtime:  %llu cycles "
                        "(+%llu drain tail)\n",
                        static_cast<unsigned long long>(r.forwardCycles),
                        static_cast<unsigned long long>(
                            r.forwardDrainTail));
            std::printf("NVM line commits: %llu\n",
                        static_cast<unsigned long long>(r.nvmCommits));
            std::printf("L1 NVM read misses: %llu\n",
                        static_cast<unsigned long long>(
                            r.l1NvmReadMisses));
            std::printf("durable state: %s\n",
                        r.consistent ? "verified" : "WRONG");
            if (check)
                std::printf("PMO violations: %llu\n",
                            static_cast<unsigned long long>(
                                r.pmoViolations));
            if (!r.consistent)
                return 1;
        } else {
            Cycle total;
            {
                auto probe = makeRegisteredApp(app_name, model,
                                               bench_scale);
                total = AppHarness::runCrashFree(*probe, cfg)
                            .forwardCycles;
            }
            auto at = std::max<Cycle>(1, static_cast<Cycle>(
                total * crash_frac));
            AppRunResult r =
                AppHarness::runCrashRecover(*app, cfg, at, check);
            std::printf("crash-free runtime: %llu cycles\n",
                        static_cast<unsigned long long>(total));
            std::printf("power failed at:    %llu cycles\n",
                        static_cast<unsigned long long>(at));
            std::printf("recovery runtime:   %llu cycles "
                        "(%llu warp instructions)\n",
                        static_cast<unsigned long long>(r.recoveryCycles),
                        static_cast<unsigned long long>(
                            r.recoveryInstructions));
            std::printf("recovered state: %s\n",
                        r.consistent ? "CONSISTENT" : "CORRUPT");
            if (check)
                std::printf("PMO violations: %llu\n",
                            static_cast<unsigned long long>(
                                r.pmoViolations));
            if (!r.consistent)
                return 1;
        }

        const bool want_prov =
            !persist_trace_path.empty() || !audit_json_path.empty();
        const bool want_metrics = !metrics_json_path.empty();
        if (dump_stats || !trace_path.empty() ||
                !stats_json_path.empty() || want_prov || want_metrics) {
            // Re-run once with a live system to dump counters, collect
            // the event trace, record persist-op provenance and/or
            // sample the windowed metrics time-series.
            NvmDevice nvm;
            TraceSink sink;
            ExecutionTrace exec_trace;
            PersistProvenance prov;
            MetricsTimeseries metrics(metrics_window);
            metrics.setMeta("app", app_name);
            metrics.setMeta("model", model_name);
            metrics.setMeta("design", design_name);
            app = makeRegisteredApp(app_name, model, bench_scale);
            app->setupNvm(nvm);
            GpuSystem gpu(cfg, nvm,
                          audit_json_path.empty() ? nullptr : &exec_trace,
                          trace_path.empty() ? nullptr : &sink,
                          want_prov ? &prov : nullptr,
                          want_metrics ? &metrics : nullptr);
            app->setupGpu(gpu);
            auto wall0 = std::chrono::steady_clock::now();
            auto launch_res = gpu.launch(app->forward());
            auto wall1 = std::chrono::steady_clock::now();
            double wall_ms =
                std::chrono::duration<double, std::milli>(wall1 - wall0)
                    .count();
            if (dump_stats) {
                std::printf("\n--- statistics ---\n%s",
                            gpu.stats().dump().c_str());
                std::printf("\n%s",
                            gpu.cycleBreakdownTable().c_str());
            }
            if (!stats_json_path.empty()) {
                std::string json = gpu.stats().dumpJson();
                // Host-side throughput (under `execution`, the campaign
                // report v4 convention for environment-dependent keys)
                // and the cycle-attribution breakdown, spliced in next
                // to the schema version (simulation counters stay pure).
                char host[200];
                std::snprintf(host, sizeof host,
                              ",\n  \"execution\": {"
                              "\n    \"host_wall_ms\": %.3f,"
                              "\n    \"sim_cycles_per_sec\": %.0f"
                              "\n  }",
                              wall_ms,
                              wall_ms > 0.0
                                  ? static_cast<double>(
                                        launch_res.cycles) *
                                        1e3 / wall_ms
                                  : 0.0);
                std::string splice = std::string(host) + ",\n  " +
                                     gpu.cycleBreakdownJson();
                const std::string anchor =
                    "\"schema_version\": " +
                    std::to_string(schema::kStats);
                std::string::size_type at = json.find(anchor);
                if (at != std::string::npos)
                    json.insert(at + anchor.size(), splice);
                if (!json.empty() && json.back() == '\n')
                    json.pop_back();   // writeFileAtomic adds it back.
                if (!writeFileAtomic(stats_json_path, json)) {
                    std::fprintf(stderr, "cannot write '%s'\n",
                                 stats_json_path.c_str());
                    return 2;
                }
                std::printf("statistics JSON: %s\n",
                            stats_json_path.c_str());
            }
            if (want_metrics) {
                metrics.writeJsonlFile(metrics_json_path);
                std::printf("metrics time-series: %s (%llu windows, "
                            "%llu cycles/window)\n",
                            metrics_json_path.c_str(),
                            static_cast<unsigned long long>(
                                metrics.windowsClosed()),
                            static_cast<unsigned long long>(
                                metrics.window()));
            }
            if (!trace_path.empty()) {
                sink.writeJsonFile(trace_path);
                std::printf("event trace: %s (%llu events)\n",
                            trace_path.c_str(),
                            static_cast<unsigned long long>(
                                sink.eventCount()));
            }
            if (!persist_trace_path.empty()) {
                prov.writeAuditJsonFile(persist_trace_path);
                std::printf("persist provenance: %s (%llu ops, "
                            "%llu commits)\n",
                            persist_trace_path.c_str(),
                            static_cast<unsigned long long>(
                                prov.opsBegun()),
                            static_cast<unsigned long long>(
                                prov.audit().size()));
            }
            if (!audit_json_path.empty()) {
                prov.writeAuditJsonFile(audit_json_path);
                // Cross-validate the observed durable-commit order
                // against the formal model: the checker proves every
                // direct PMO edge agrees with commit indices, and the
                // audit stream itself must be monotone in commit cycle
                // (it was appended in durable-image write order).
                PmoChecker checker(exec_trace);
                std::vector<PmoViolation> violations = checker.check();
                std::uint64_t order_breaks = 0;
                Cycle last = 0;
                for (const PersistAuditRecord &rec : prov.audit()) {
                    if (rec.commitCycle < last)
                        ++order_breaks;
                    last = rec.commitCycle;
                }
                std::printf("persist-order audit: %s (%llu records, "
                            "%llu PMO violations, %llu cycle-order "
                            "breaks)\n",
                            audit_json_path.c_str(),
                            static_cast<unsigned long long>(
                                prov.audit().size()),
                            static_cast<unsigned long long>(
                                violations.size()),
                            static_cast<unsigned long long>(
                                order_breaks));
                for (std::size_t v = 0;
                     v < violations.size() && v < 8; ++v) {
                    std::printf("  divergence: %s\n",
                                violations[v].detail.c_str());
                }
                if (!violations.empty() || order_breaks != 0) {
                    std::fprintf(stderr,
                                 "sbrpsim: audit stream diverges from "
                                 "the model-permitted persist order\n");
                    return 1;
                }
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    return 0;
}
