/**
 * @file
 * crashfuzz — crash-consistency campaign driver.
 *
 * Runs an application once crash-free to enumerate event-adjacent crash
 * points, then crashes it at every point in parallel, judging each run
 * with the formal PMO checker and the app's recovery verifier. On
 * failure it bisects to the earliest failing crash cycle and writes a
 * self-contained replay artifact.
 *
 * Large campaigns can also run as a crash-tolerant sharded service: a
 * planner freezes the probe into a JSON manifest, worker processes
 * execute index shards journaling every verdict durably, a supervisor
 * respawns dead workers with backoff, and a merger folds the journals
 * into a report byte-identical (modulo the stripped `execution`
 * section) to a single-process run. Any piece can be killed — including
 * `kill -9` mid-record — and resumed with `--resume`.
 *
 * Usage:
 *   crashfuzz --app reduction --model sbrp --jobs 4 --budget 200 \
 *             --report r.json
 *   crashfuzz --app Red --model sbrp --list-points
 *   crashfuzz --app Red --faults pcie=1e-3,media=1e-3 --fault-seed 7
 *   crashfuzz --app Scan --fault-sweep 1e-4,1e-3,1e-2 --fault-seed 7
 *   crashfuzz --replay artifact.json
 *   crashfuzz --app Red --shards 4 --journal dir/ --report r.json
 *   crashfuzz --shards 4 --journal dir/ --resume --report r.json
 *   crashfuzz --manifest m.json --shard-index 2 --journal dir/ --resume
 *   crashfuzz --manifest m.json --journal dir/ --merge --report r.json
 *
 * Exit codes: 0 = campaign passed (or replay reproduced its recorded
 * outcome), 1 = violations found (or replay mismatched), 2 = usage or
 * infrastructure error (unknown app, malformed artifact, corrupt
 * journal, unwritable report), 3 = campaign incomplete or interrupted
 * (journals are clean; rerun with --resume).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/registry.hh"
#include "common/atomic_io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_versions.hh"
#include "crashtest/campaign.hh"
#include "obs/provenance.hh"
#include "svc/heartbeat.hh"
#include "svc/journal.hh"
#include "svc/manifest.hh"
#include "svc/merge.hh"
#include "svc/supervisor.hh"
#include "svc/worker.hh"

using namespace sbrp;

namespace
{

void
usage()
{
    std::printf(
        "crashfuzz — event-guided crash-consistency campaigns\n\n"
        "  --app <name>      gpKVS | HM | SRAD | Red | MQ | Scan | Ckpt\n"
        "                    (long aliases accepted: reduction, kvs, ...)\n"
        "  --model <m>       sbrp | epoch | gpm | barrier  (default sbrp)\n"
        "  --design <d>      near | far                    (default near)\n"
        "  --jobs <n>        worker threads                (default 1)\n"
        "  --budget <n>      max crash runs (deterministic truncation of\n"
        "                    the sorted point list; 0 = all points)\n"
        "  --wall-ms <n>     graceful wall-clock cutoff    (0 = none)\n"
        "  --report <f>      write the campaign report JSON to <f>\n"
        "  --stats-json <f>  write campaign counters as JSON to <f>\n"
        "  --persist-trace <f>  write the oracle run's persist-op\n"
        "                    provenance document (waterfall, slowest\n"
        "                    ops, audit stream) to <f>\n"
        "  --audit-json <f>  like --persist-trace, and additionally\n"
        "                    cross-validate the observed commit order\n"
        "                    against the PMO checker; exit 1 on any\n"
        "                    divergence (campaign mode only)\n"
        "  --list-points     enumerate crash points and exit\n"
        "  --no-minimize     skip failure bisection + replay artifact\n"
        "  --replay <f>      re-run the crash point recorded in a replay\n"
        "                    artifact; exit 0 iff the recorded outcome\n"
        "                    reproduces\n"
        "  --seed <n>        override the app's input seed (0 = default)\n"
        "  --scale <t|b>     workload scale: test or bench  (default t)\n"
        "  --paper-config    Table-1 hardware config instead of the\n"
        "                    reduced test config\n"
        "  --window <n>      SBRP flush window\n"
        "  --policy <p>      window | eager | lazy\n"
        "  --pb <frac>       persist buffer coverage of L1\n"
        "  --nvm-bw <scale>  NVM bandwidth scale\n"
        "  --eadr            persist point at the host LLC (PM-far only)\n"
        "  --faults <spec>   inject persist-path faults, e.g.\n"
        "                    pcie=1e-3,wpq=16,media=1e-3,sticky=1e-6\n"
        "                    (none = disabled)\n"
        "  --fault-seed <n>  master seed for fault schedules and the\n"
        "                    campaign shuffle (default 1 when faulting)\n"
        "  --fault-sweep <r1,r2,...>  one campaign per rate, with the\n"
        "                    PCIe-corrupt and NVM-transient rates both\n"
        "                    set to r; exit 0 iff every campaign passes\n"
        "  --retry-budget <n>  max attempts per persist (default 8)\n"
        "  --unsafe-relaxed-order  FAULT INJECTION: let the SBRP drain\n"
        "                    engine violate PMO (testing the oracles)\n"
        "\n"
        "Sharded campaigns (crash-tolerant, resumable):\n"
        "  --shards <n>      partition the campaign into n shards; with\n"
        "                    --journal, supervise worker processes and\n"
        "                    merge their journals; without, write the\n"
        "                    plan to --manifest and exit\n"
        "  --manifest <f>    manifest path (default <journal>/\n"
        "                    manifest.json in supervised mode)\n"
        "  --journal <dir>   directory for per-shard verdict journals\n"
        "  --shard-index <i> worker mode: run one manifest shard,\n"
        "                    journaling each verdict durably\n"
        "  --resume          continue from existing journals (torn\n"
        "                    trailing records are dropped; completed\n"
        "                    verdicts are never re-run)\n"
        "  --merge           fold the shard journals into one campaign\n"
        "                    report, byte-identical to a single-process\n"
        "                    run after stripping `execution`\n"
        "  --max-retries <n> worker respawns per shard     (default 3)\n"
        "  --shard-timeout-ms <n>  kill a worker whose journal stops\n"
        "                    growing for this long (default 60000)\n"
        "  --throttle-ms <n> sleep between crash points in workers\n"
        "                    (testing hook for kill/resume windows)\n"
        "  --heartbeat-ms <n>  workers append progress heartbeats to\n"
        "                    <journal>/shard-<i>.heartbeat.jsonl on\n"
        "                    this cadence; the supervisor prints an\n"
        "                    aggregated status line (stderr). 0 = off\n"
        "\n"
        "  --version         print the artifact schema versions and exit\n"
        "  --help, -h        print this listing and exit\n"
        "\n"
        "Exit codes: 0 pass, 1 violations, 2 usage/infrastructure/\n"
        "corruption error, 3 campaign incomplete (resumable)\n");
}

bool
writeFile(const std::string &path, const std::string &text)
{
    // Atomic (tmp + fsync + rename): a reader never observes a torn
    // report, no matter when this process is killed.
    return writeFileAtomic(path, text);
}

volatile std::sig_atomic_t g_stop = 0;

void
handleStop(int)
{
    g_stop = 1;
}

/** SIGINT/SIGTERM: finish the in-flight scenario, flush, exit clean. */
void
installStopHandlers()
{
    std::signal(SIGINT, handleStop);
    std::signal(SIGTERM, handleStop);
}

/** This binary's path, for worker re-exec. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return std::string(buf);
    }
    return std::string(argv0);
}

int
replayArtifact(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "crashfuzz: cannot read '%s'\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    std::string err;
    JsonValue v = JsonValue::parse(buf.str(), &err);
    if (v.isNull()) {
        std::fprintf(stderr, "crashfuzz: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }
    ReplayArtifact artifact;
    if (!ReplayArtifact::fromJson(v, &artifact, &err)) {
        std::fprintf(stderr, "crashfuzz: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }

    CrashScenario scenario = artifact.toScenario();
    std::printf("replaying %s under %s\n", scenario.app.c_str(),
                scenario.cfg.describe().c_str());
    std::printf("crash at cycle %llu (near %s), expecting %s\n",
                static_cast<unsigned long long>(artifact.crashCycle),
                toString(artifact.eventKind),
                artifact.expectViolation ? "a violation" : "recovery");

    ScenarioRunner runner(scenario);
    CrashVerdict verdict =
        runner.runCrashAt(artifact.crashCycle, artifact.eventKind);
    std::printf("observed: crashed=%s pmo_violations=%llu "
                "recovered=%s persist_faults=%llu\n",
                verdict.crashed ? "yes" : "no",
                static_cast<unsigned long long>(verdict.pmoViolations),
                verdict.recoveredOk ? "yes" : "no",
                static_cast<unsigned long long>(verdict.persistFaults));

    const bool failed = !verdict.pass();
    if (failed == artifact.expectViolation) {
        std::printf("replay: recorded outcome reproduced\n");
        return 0;
    }
    std::printf("replay: MISMATCH — artifact expected %s but the run "
                "%s\n",
                artifact.expectViolation ? "a violation" : "a pass",
                failed ? "failed" : "passed");
    return 1;
}

/** Loads + validates a manifest; prints and returns 2 on failure. */
int
loadManifest(const std::string &path, CampaignManifest *out)
{
    std::string err;
    if (!CampaignManifest::loadFile(path, out, &err)) {
        std::fprintf(stderr, "crashfuzz: %s\n", err.c_str());
        return 2;
    }
    return 0;
}

/** Worker mode: execute one shard of the manifest. */
int
runWorkerMode(const std::string &manifest_path, std::uint32_t shard,
              const std::string &journal_dir, bool resume,
              std::uint64_t throttle_ms, std::uint64_t heartbeat_ms)
{
    CampaignManifest manifest;
    if (int rc = loadManifest(manifest_path, &manifest))
        return rc;
    installStopHandlers();

    if (shard < manifest.shards) {
        const ShardRange &r = manifest.ranges[shard];
        std::printf("worker: shard %u/%u of %s, points [%llu, %llu)\n",
                    shard, manifest.shards,
                    manifest.scenario.app.c_str(),
                    static_cast<unsigned long long>(r.begin),
                    static_cast<unsigned long long>(r.end));
    }
    const ShardRunResult res =
        runShard(manifest, shard, journal_dir, resume, &g_stop,
                 throttle_ms, heartbeat_ms);
    if (res.tornTail) {
        std::printf("worker: dropped a torn trailing record (crashed "
                    "writer); its crash point re-runs\n");
    }
    switch (res.status) {
      case ShardRunStatus::Error:
        std::fprintf(stderr, "crashfuzz: %s\n", res.error.c_str());
        return 2;
      case ShardRunStatus::Interrupted:
        std::printf("worker: interrupted after %llu runs (%llu resumed); "
                    "journal is flushed — rerun with --resume\n",
                    static_cast<unsigned long long>(res.executed),
                    static_cast<unsigned long long>(res.skipped));
        return 3;
      case ShardRunStatus::Complete:
        break;
    }
    std::printf("worker: shard complete (%llu runs, %llu already "
                "journaled)\n",
                static_cast<unsigned long long>(res.executed),
                static_cast<unsigned long long>(res.skipped));
    return 0;
}

/**
 * Merges the shard journals and emits the campaign outputs. Shared by
 * --merge and the tail of supervised mode. Returns the process exit
 * code: 2 corruption, 1 violations, 3 clean-but-incomplete, 0 pass.
 */
int
finishMerge(const CampaignManifest &manifest,
            const std::string &journal_dir, bool resumed,
            const std::string &report_path,
            const std::string &stats_json_path,
            std::uint64_t heartbeat_ms = 0,
            std::uint32_t worker_restarts = 0)
{
    MergeOutcome mo;
    std::string err;
    if (!mergeShardJournals(manifest, journal_dir, &mo, &err)) {
        std::fprintf(stderr, "crashfuzz: %s\n", err.c_str());
        return 2;
    }
    mo.exec.resumed = resumed;
    if (heartbeat_ms != 0) {
        mo.exec.heartbeatMs = heartbeat_ms;
        mo.exec.workerRestarts = worker_restarts;
        for (std::uint32_t s = 0; s < manifest.shards; ++s) {
            mo.exec.heartbeatRecords += countHeartbeatRecords(
                shardHeartbeatPath(journal_dir, s));
        }
    }

    for (const ShardMergeInfo &s : mo.shards) {
        std::printf("  shard %u: %llu/%llu verdicts%s\n", s.shard,
                    static_cast<unsigned long long>(s.found),
                    static_cast<unsigned long long>(s.expected),
                    s.journalPresent
                        ? (s.complete ? "" : " [incomplete]")
                        : " [no journal]");
    }
    std::printf("merged: horizon %llu cycles, %llu crash points, "
                "%llu runs executed%s\n",
                static_cast<unsigned long long>(mo.result.probe.horizon),
                static_cast<unsigned long long>(
                    mo.result.probe.points.points.size()),
                static_cast<unsigned long long>(mo.result.runsExecuted),
                mo.result.budgetTruncated ? " [budget cutoff]" : "");
    std::printf("verdict: %s (%llu failing point%s)%s\n",
                mo.result.pass() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(mo.result.failures),
                mo.result.failures == 1 ? "" : "s",
                mo.complete ? "" : " [INCOMPLETE]");
    if (mo.result.hasMinimized) {
        std::printf("minimized: earliest failing crash cycle %llu "
                    "(%llu bisection probes)\n",
                    static_cast<unsigned long long>(
                        mo.result.minimized.cycle),
                    static_cast<unsigned long long>(
                        mo.result.minimized.probes));
    }

    if (!report_path.empty()) {
        JsonValue report =
            campaignReportJson(mo.cfg, mo.result, &mo.exec);
        if (!writeFile(report_path, report.dump(2))) {
            std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                         report_path.c_str());
            return 2;
        }
        std::printf("report: %s\n", report_path.c_str());
    }
    if (!stats_json_path.empty()) {
        StatGroup group("campaign");
        StatRegistry stats;
        stats.add(&group);
        if (mo.result.hasMinimized)
            group.stat("minimize_probes").inc(mo.result.minimized.probes);
        campaignExportStats(group, mo.result, mo.cfg.jobs);
        if (!writeFile(stats_json_path, stats.dumpJson())) {
            std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                         stats_json_path.c_str());
            return 2;
        }
        std::printf("statistics JSON: %s\n", stats_json_path.c_str());
    }

    if (!mo.result.pass())
        return 1;
    if (!mo.complete) {
        std::printf("campaign incomplete — rerun with --resume to "
                    "finish the listed shards\n");
        return 3;
    }
    return 0;
}

/** Supervised mode: drive every shard to completion, then merge. */
int
runSupervisedMode(const CampaignManifest &manifest,
                  const SupervisorOptions &opts, bool resumed,
                  const std::string &report_path,
                  const std::string &stats_json_path)
{
    installStopHandlers();
    std::printf("supervising %u shard worker%s over %llu crash "
                "points\n", manifest.shards,
                manifest.shards == 1 ? "" : "s",
                static_cast<unsigned long long>(manifest.pointsToRun()));
    const SupervisionResult sup =
        superviseShards(manifest, opts, &g_stop);

    for (const ShardStatus &s : sup.shards) {
        const char *outcome =
            s.outcome == ShardOutcome::Complete ? "complete"
            : s.outcome == ShardOutcome::Stopped ? "stopped"
                                                 : "INCOMPLETE";
        std::printf("  shard %u: %s (%u launch%s)%s%s\n", s.shard,
                    outcome, s.spawns, s.spawns == 1 ? "" : "es",
                    s.lastFailure.empty() ? "" : " — ",
                    s.lastFailure.c_str());
    }
    if (sup.stopped) {
        std::printf("campaign interrupted; journals are flushed — "
                    "rerun with --resume\n");
        return 3;
    }
    return finishMerge(manifest, opts.journalDir, resumed, report_path,
                       stats_json_path, opts.heartbeatMs,
                       sup.workerRestarts());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name;
    std::string report_path;
    std::string stats_json_path;
    std::string persist_trace_path;
    std::string audit_json_path;
    std::string replay_path;
    bool list_points = false;
    bool bench_scale = false;
    bool paper_config = false;
    std::uint64_t seed = 0;
    CampaignConfig campaign;

    ModelKind model = ModelKind::Sbrp;
    SystemDesign design = SystemDesign::PmNear;
    // Knobs applied after the base config is chosen.
    std::optional<std::uint32_t> window;
    std::optional<FlushPolicy> policy;
    std::optional<double> pb_coverage;
    std::optional<double> nvm_bw;
    bool eadr = false;
    bool unsafe_relaxed = false;
    FaultSpec faults;
    bool faults_given = false;
    std::uint64_t fault_seed = 0;
    std::optional<std::uint32_t> retry_budget;
    std::vector<double> sweep_rates;

    // Sharded-campaign modes.
    unsigned shards = 0;
    std::optional<std::uint32_t> shard_index;
    std::string manifest_path;
    std::string journal_dir;
    bool resume = false;
    bool merge = false;
    std::uint32_t max_retries = 3;
    std::uint64_t shard_timeout_ms = 60000;
    std::uint64_t throttle_ms = 0;
    std::uint64_t heartbeat_ms = 0;

    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage();
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app") {
            app_name = next(i);
        } else if (a == "--model") {
            if (!modelKindFromString(next(i), &model)) {
                usage();
                return 2;
            }
        } else if (a == "--design") {
            if (!systemDesignFromString(next(i), &design)) {
                usage();
                return 2;
            }
        } else if (a == "--jobs") {
            campaign.jobs =
                static_cast<unsigned>(std::strtoul(next(i), nullptr, 10));
        } else if (a == "--budget") {
            campaign.budgetRuns = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--wall-ms") {
            campaign.wallLimitMs = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--report") {
            report_path = next(i);
        } else if (a == "--stats-json") {
            stats_json_path = next(i);
        } else if (a == "--persist-trace") {
            persist_trace_path = next(i);
        } else if (a == "--audit-json") {
            audit_json_path = next(i);
        } else if (a == "--list-points") {
            list_points = true;
        } else if (a == "--no-minimize") {
            campaign.minimize = false;
        } else if (a == "--replay") {
            replay_path = next(i);
        } else if (a == "--seed") {
            seed = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--scale") {
            bench_scale = std::string(next(i)) == "b";
        } else if (a == "--paper-config") {
            paper_config = true;
        } else if (a == "--window") {
            window = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--policy") {
            FlushPolicy p;
            if (!flushPolicyFromString(next(i), &p)) {
                usage();
                return 2;
            }
            policy = p;
        } else if (a == "--pb") {
            pb_coverage = std::atof(next(i));
        } else if (a == "--nvm-bw") {
            nvm_bw = std::atof(next(i));
        } else if (a == "--eadr") {
            eadr = true;
        } else if (a == "--faults") {
            std::string err;
            if (!FaultSpec::parse(next(i), &faults, &err)) {
                std::fprintf(stderr, "crashfuzz: --faults: %s\n",
                             err.c_str());
                return 2;
            }
            faults_given = true;
        } else if (a == "--fault-seed") {
            fault_seed = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--fault-sweep") {
            std::istringstream ss(next(i));
            std::string tok;
            while (std::getline(ss, tok, ',')) {
                char *end = nullptr;
                double r = std::strtod(tok.c_str(), &end);
                if (tok.empty() || end != tok.c_str() + tok.size() ||
                        r < 0.0 || r > 1.0) {
                    std::fprintf(stderr,
                                 "crashfuzz: --fault-sweep: bad rate "
                                 "'%s'\n", tok.c_str());
                    return 2;
                }
                sweep_rates.push_back(r);
            }
            if (sweep_rates.empty()) {
                std::fprintf(stderr,
                             "crashfuzz: --fault-sweep needs rates\n");
                return 2;
            }
        } else if (a == "--retry-budget") {
            retry_budget = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--unsafe-relaxed-order") {
            unsafe_relaxed = true;
        } else if (a == "--shards") {
            shards = static_cast<unsigned>(
                std::strtoul(next(i), nullptr, 10));
            if (shards == 0) {
                std::fprintf(stderr,
                             "crashfuzz: --shards must be >= 1\n");
                return 2;
            }
        } else if (a == "--shard-index") {
            shard_index = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--manifest") {
            manifest_path = next(i);
        } else if (a == "--journal") {
            journal_dir = next(i);
        } else if (a == "--resume") {
            resume = true;
        } else if (a == "--merge") {
            merge = true;
        } else if (a == "--max-retries") {
            max_retries = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--shard-timeout-ms") {
            shard_timeout_ms = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--throttle-ms") {
            throttle_ms = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--heartbeat-ms") {
            heartbeat_ms = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--version") {
            std::printf("crashfuzz (sbrp-sim) replay artifact schema "
                        "%u\n%s\n", ReplayArtifact::kVersion,
                        schema::describeAll().c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "crashfuzz: unknown option '%s'\n\n",
                         argv[i]);
            usage();
            return 2;
        }
    }

    const bool want_prov =
        !persist_trace_path.empty() || !audit_json_path.empty();
    if (want_prov &&
            (!replay_path.empty() || !sweep_rates.empty() || list_points)) {
        std::fprintf(stderr,
                     "crashfuzz: --persist-trace/--audit-json apply to "
                     "campaign mode only\n");
        return 2;
    }

    // Sharded-mode flag algebra: exactly one of worker / merge /
    // supervised-or-plan, and none of them mixes with the single-shot
    // modes.
    const bool sharded = shards != 0 || shard_index || merge;
    if (sharded) {
        if ((shard_index && (shards != 0 || merge)) ||
                (merge && shards != 0)) {
            std::fprintf(stderr,
                         "crashfuzz: --shards, --shard-index and "
                         "--merge are mutually exclusive\n");
            return 2;
        }
        if (!replay_path.empty() || !sweep_rates.empty() ||
                list_points || want_prov) {
            std::fprintf(stderr,
                         "crashfuzz: sharded modes do not combine with "
                         "--replay/--fault-sweep/--list-points/"
                         "--persist-trace/--audit-json\n");
            return 2;
        }
        if ((shard_index || merge) && manifest_path.empty()) {
            std::fprintf(stderr,
                         "crashfuzz: %s requires --manifest\n",
                         merge ? "--merge" : "--shard-index");
            return 2;
        }
        if ((shard_index || merge) && journal_dir.empty()) {
            std::fprintf(stderr,
                         "crashfuzz: %s requires --journal\n",
                         merge ? "--merge" : "--shard-index");
            return 2;
        }
        if ((shard_index || merge) && !app_name.empty()) {
            std::fprintf(stderr,
                         "crashfuzz: worker/merge modes take their "
                         "scenario from the manifest, not --app\n");
            return 2;
        }
    } else if (resume) {
        std::fprintf(stderr,
                     "crashfuzz: --resume requires --shards or "
                     "--shard-index\n");
        return 2;
    }

    try {
        if (!replay_path.empty())
            return replayArtifact(replay_path);

        if (shard_index) {
            return runWorkerMode(manifest_path, *shard_index,
                                 journal_dir, resume, throttle_ms,
                                 heartbeat_ms);
        }
        if (merge) {
            CampaignManifest manifest;
            if (int rc = loadManifest(manifest_path, &manifest))
                return rc;
            return finishMerge(manifest, journal_dir, /*resumed=*/false,
                               report_path, stats_json_path,
                               heartbeat_ms);
        }

        SupervisorOptions sup;
        sup.selfExe = selfExePath(argv[0]);
        sup.journalDir = journal_dir;
        sup.maxRetries = max_retries;
        sup.progressTimeoutMs = shard_timeout_ms;
        sup.throttleMs = throttle_ms;
        sup.heartbeatMs = heartbeat_ms;

        // Supervised resume: the manifest on disk is the scenario of
        // record; CLI scenario flags only cross-check it.
        if (shards != 0 && resume) {
            if (journal_dir.empty()) {
                std::fprintf(stderr,
                             "crashfuzz: --resume needs --journal\n");
                return 2;
            }
            if (manifest_path.empty())
                manifest_path = journal_dir +
                    (journal_dir.back() == '/' ? "" : "/") +
                    "manifest.json";
            CampaignManifest manifest;
            if (int rc = loadManifest(manifest_path, &manifest))
                return rc;
            if (!app_name.empty() &&
                    resolveAppName(app_name) != manifest.scenario.app) {
                std::fprintf(stderr,
                             "crashfuzz: --app %s disagrees with the "
                             "manifest's scenario (%s)\n",
                             app_name.c_str(),
                             manifest.scenario.app.c_str());
                return 2;
            }
            if (manifest.shards != shards) {
                std::fprintf(stderr,
                             "crashfuzz: manifest was planned with %u "
                             "shards, not %u\n", manifest.shards,
                             shards);
                return 2;
            }
            sup.manifestPath = manifest_path;
            return runSupervisedMode(manifest, sup, /*resumed=*/true,
                                     report_path, stats_json_path);
        }

        if (app_name.empty()) {
            usage();
            return 2;
        }
        const std::string canonical = resolveAppName(app_name);
        if (canonical.empty()) {
            std::fprintf(stderr, "crashfuzz: unknown app '%s'\n",
                         app_name.c_str());
            return 2;
        }

        SystemConfig cfg = paper_config
            ? SystemConfig::paperDefault(model, design)
            : SystemConfig::testDefault(model, design);
        if (window)
            cfg.window = *window;
        if (policy)
            cfg.flushPolicy = *policy;
        if (pb_coverage)
            cfg.pbCoverage = *pb_coverage;
        if (nvm_bw)
            cfg.nvmBwScale = *nvm_bw;
        if (eadr)
            cfg.persistPoint = PersistPoint::Eadr;
        cfg.unsafeRelaxedPersistOrder = unsafe_relaxed;
        if (retry_budget)
            cfg.persistRetryBudget = *retry_budget;
        if (faults_given)
            cfg.faults = faults;
        if (fault_seed != 0)
            cfg.seed = fault_seed;
        else if (faults_given || !sweep_rates.empty())
            cfg.seed = 1;   // Faulting runs must be reproducible.
        cfg.validate();

        campaign.scenario.app = canonical;
        campaign.scenario.cfg = cfg;
        campaign.scenario.benchScale = bench_scale;
        campaign.scenario.seed = seed;
        campaign.paperConfig = paper_config;

        if (shards != 0) {
            CampaignManifest manifest =
                CampaignManifest::plan(campaign, shards);
            if (journal_dir.empty()) {
                // Plan-only: emit the manifest for external dispatch
                // (one worker per shard, on any machine).
                if (manifest_path.empty()) {
                    std::fprintf(stderr,
                                 "crashfuzz: planning without --journal "
                                 "requires --manifest\n");
                    return 2;
                }
                std::string err;
                if (!manifest.writeFile(manifest_path, &err)) {
                    std::fprintf(stderr, "crashfuzz: %s\n", err.c_str());
                    return 2;
                }
                std::printf("manifest: %s (%u shards over %llu crash "
                            "points, digest %s)\n", manifest_path.c_str(),
                            manifest.shards,
                            static_cast<unsigned long long>(
                                manifest.pointsToRun()),
                            manifest.digest.c_str());
                return 0;
            }

            std::string err;
            if (!ensureDirectories(journal_dir, &err)) {
                std::fprintf(stderr, "crashfuzz: %s\n", err.c_str());
                return 2;
            }
            // A fresh supervised run must not silently clobber durable
            // verdicts from an earlier one.
            for (std::uint32_t s = 0; s < manifest.shards; ++s) {
                const std::string p = shardJournalPath(journal_dir, s);
                if (::access(p.c_str(), F_OK) == 0) {
                    std::fprintf(stderr,
                                 "crashfuzz: journal '%s' already "
                                 "exists; pass --resume to continue or "
                                 "remove the journal directory\n",
                                 p.c_str());
                    return 2;
                }
            }
            if (manifest_path.empty())
                manifest_path = journal_dir +
                    (journal_dir.back() == '/' ? "" : "/") +
                    "manifest.json";
            if (!manifest.writeFile(manifest_path, &err)) {
                std::fprintf(stderr, "crashfuzz: %s\n", err.c_str());
                return 2;
            }
            std::printf("manifest: %s (digest %s)\n",
                        manifest_path.c_str(), manifest.digest.c_str());
            sup.manifestPath = manifest_path;
            return runSupervisedMode(manifest, sup, /*resumed=*/false,
                                     report_path, stats_json_path);
        }

        if (!sweep_rates.empty()) {
            // One campaign per rate: the rate drives both transient
            // fault classes; any sticky/WPQ settings from --faults are
            // held constant across the sweep.
            JsonValue combined = JsonValue::object();
            combined.set("schema_version",
                         JsonValue(std::uint64_t{schema::kCampaignReport}));
            JsonValue entries = JsonValue::array();
            bool all_pass = true;
            for (double r : sweep_rates) {
                CampaignConfig cc = campaign;
                cc.scenario.cfg.faults.pcieCorruptRate = r;
                cc.scenario.cfg.faults.nvmTransientRate = r;
                cc.scenario.cfg.validate();
                std::printf("%s under %s\n", canonical.c_str(),
                            cc.scenario.cfg.describe().c_str());
                CampaignEngine engine(cc);
                CampaignResult res = engine.run();
                std::printf("  rate %g: %s (%llu/%llu runs failing, "
                            "%llu persist faults)\n", r,
                            res.pass() ? "PASS" : "FAIL",
                            static_cast<unsigned long long>(res.failures),
                            static_cast<unsigned long long>(
                                res.runsExecuted),
                            static_cast<unsigned long long>(
                                engine.group().value("persist_faults")));
                all_pass = all_pass && res.pass();
                JsonValue entry = campaignReportJson(cc, res);
                entry.set("sweep_rate", JsonValue(r));
                entries.push(std::move(entry));
            }
            combined.set("sweep", std::move(entries));
            combined.set("pass", JsonValue(all_pass));
            std::printf("fault sweep: %s (%zu rates)\n",
                        all_pass ? "PASS" : "FAIL", sweep_rates.size());
            if (!report_path.empty()) {
                if (!writeFile(report_path, combined.dump(2))) {
                    std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                                 report_path.c_str());
                    return 2;
                }
                std::printf("report: %s\n", report_path.c_str());
            }
            return all_pass ? 0 : 1;
        }

        std::printf("%s under %s\n", canonical.c_str(),
                    cfg.describe().c_str());

        if (list_points) {
            ScenarioRunner runner(campaign.scenario);
            CrashProbe probe = runner.probe();
            std::printf("crash-free horizon: %llu cycles\n",
                        static_cast<unsigned long long>(probe.horizon));
            std::printf("crash points: %llu "
                        "(%llu raw events, %llu candidates pruned)\n",
                        static_cast<unsigned long long>(
                            probe.points.points.size()),
                        static_cast<unsigned long long>(
                            probe.points.rawEvents),
                        static_cast<unsigned long long>(
                            probe.points.prunedCandidates));
            for (const CrashPoint &p : probe.points.points)
                std::printf("  %10llu  %s\n",
                            static_cast<unsigned long long>(p.cycle),
                            toString(p.kind));
            return 0;
        }

        // The engine attaches this to the oracle run so --persist-trace
        // and --audit-json export the run's provenance document.
        PersistProvenance prov;
        if (want_prov)
            campaign.provenance = &prov;

        CampaignEngine engine(campaign);
        CampaignResult result = engine.run();

        std::printf("horizon %llu cycles, %llu crash points, "
                    "%llu runs executed%s%s\n",
                    static_cast<unsigned long long>(result.probe.horizon),
                    static_cast<unsigned long long>(
                        result.probe.points.points.size()),
                    static_cast<unsigned long long>(result.runsExecuted),
                    result.budgetTruncated ? " [budget cutoff]" : "",
                    result.wallTruncated ? " [wall cutoff]" : "");
        std::printf("verdict: %s (%llu failing point%s)\n",
                    result.pass() ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(result.failures),
                    result.failures == 1 ? "" : "s");
        if (result.hasMinimized) {
            std::printf("minimized: earliest failing crash cycle %llu "
                        "(%llu bisection probes)\n",
                        static_cast<unsigned long long>(
                            result.minimized.cycle),
                        static_cast<unsigned long long>(
                            result.minimized.probes));
        }

        if (!report_path.empty()) {
            JsonValue report = campaignReportJson(campaign, result);
            if (!writeFile(report_path, report.dump(2))) {
                std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                             report_path.c_str());
                return 2;
            }
            std::printf("report: %s\n", report_path.c_str());
        }
        if (!stats_json_path.empty()) {
            if (!writeFile(stats_json_path,
                           engine.stats().dumpJson())) {
                std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                             stats_json_path.c_str());
                return 2;
            }
            std::printf("statistics JSON: %s\n",
                        stats_json_path.c_str());
        }
        if (!persist_trace_path.empty()) {
            prov.writeAuditJsonFile(persist_trace_path);
            std::printf("persist provenance: %s (%llu ops, %llu "
                        "commits)\n",
                        persist_trace_path.c_str(),
                        static_cast<unsigned long long>(prov.opsBegun()),
                        static_cast<unsigned long long>(
                            prov.audit().size()));
        }
        if (!audit_json_path.empty()) {
            prov.writeAuditJsonFile(audit_json_path);
            // The probe already judged the oracle run with the PMO
            // checker; the audit stream adds the durable-image write
            // order, which must be monotone in commit cycle.
            std::uint64_t order_breaks = 0;
            Cycle last = 0;
            for (const PersistAuditRecord &rec : prov.audit()) {
                if (rec.commitCycle < last)
                    ++order_breaks;
                last = rec.commitCycle;
            }
            std::printf("persist-order audit: %s (%llu records, %llu "
                        "PMO violations, %llu cycle-order breaks)\n",
                        audit_json_path.c_str(),
                        static_cast<unsigned long long>(
                            prov.audit().size()),
                        static_cast<unsigned long long>(
                            result.probe.cleanPmoViolations),
                        static_cast<unsigned long long>(order_breaks));
            if (result.probe.cleanPmoViolations != 0 ||
                    order_breaks != 0) {
                std::fprintf(stderr,
                             "crashfuzz: audit stream diverges from the "
                             "model-permitted persist order\n");
                return 1;
            }
        }
        return result.pass() ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "crashfuzz: %s\n", e.what());
        return 2;
    }
}
