/**
 * @file
 * crashfuzz — crash-consistency campaign driver.
 *
 * Runs an application once crash-free to enumerate event-adjacent crash
 * points, then crashes it at every point in parallel, judging each run
 * with the formal PMO checker and the app's recovery verifier. On
 * failure it bisects to the earliest failing crash cycle and writes a
 * self-contained replay artifact.
 *
 * Usage:
 *   crashfuzz --app reduction --model sbrp --jobs 4 --budget 200 \
 *             --report r.json
 *   crashfuzz --app Red --model sbrp --list-points
 *   crashfuzz --app Red --faults pcie=1e-3,media=1e-3 --fault-seed 7
 *   crashfuzz --app Scan --fault-sweep 1e-4,1e-3,1e-2 --fault-seed 7
 *   crashfuzz --replay artifact.json
 *
 * Exit codes: 0 = campaign passed (or replay reproduced its recorded
 * outcome), 1 = violations found (or replay mismatched), 2 = usage or
 * infrastructure error (unknown app, malformed artifact, unwritable
 * report).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_versions.hh"
#include "crashtest/campaign.hh"
#include "obs/provenance.hh"

using namespace sbrp;

namespace
{

void
usage()
{
    std::printf(
        "crashfuzz — event-guided crash-consistency campaigns\n\n"
        "  --app <name>      gpKVS | HM | SRAD | Red | MQ | Scan | Ckpt\n"
        "                    (long aliases accepted: reduction, kvs, ...)\n"
        "  --model <m>       sbrp | epoch | gpm | barrier  (default sbrp)\n"
        "  --design <d>      near | far                    (default near)\n"
        "  --jobs <n>        worker threads                (default 1)\n"
        "  --budget <n>      max crash runs (deterministic truncation of\n"
        "                    the sorted point list; 0 = all points)\n"
        "  --wall-ms <n>     graceful wall-clock cutoff    (0 = none)\n"
        "  --report <f>      write the campaign report JSON to <f>\n"
        "  --stats-json <f>  write campaign counters as JSON to <f>\n"
        "  --persist-trace <f>  write the oracle run's persist-op\n"
        "                    provenance document (waterfall, slowest\n"
        "                    ops, audit stream) to <f>\n"
        "  --audit-json <f>  like --persist-trace, and additionally\n"
        "                    cross-validate the observed commit order\n"
        "                    against the PMO checker; exit 1 on any\n"
        "                    divergence (campaign mode only)\n"
        "  --list-points     enumerate crash points and exit\n"
        "  --no-minimize     skip failure bisection + replay artifact\n"
        "  --replay <f>      re-run the crash point recorded in a replay\n"
        "                    artifact; exit 0 iff the recorded outcome\n"
        "                    reproduces\n"
        "  --seed <n>        override the app's input seed (0 = default)\n"
        "  --scale <t|b>     workload scale: test or bench  (default t)\n"
        "  --paper-config    Table-1 hardware config instead of the\n"
        "                    reduced test config\n"
        "  --window <n>      SBRP flush window\n"
        "  --policy <p>      window | eager | lazy\n"
        "  --pb <frac>       persist buffer coverage of L1\n"
        "  --nvm-bw <scale>  NVM bandwidth scale\n"
        "  --eadr            persist point at the host LLC (PM-far only)\n"
        "  --faults <spec>   inject persist-path faults, e.g.\n"
        "                    pcie=1e-3,wpq=16,media=1e-3,sticky=1e-6\n"
        "                    (none = disabled)\n"
        "  --fault-seed <n>  master seed for fault schedules and the\n"
        "                    campaign shuffle (default 1 when faulting)\n"
        "  --fault-sweep <r1,r2,...>  one campaign per rate, with the\n"
        "                    PCIe-corrupt and NVM-transient rates both\n"
        "                    set to r; exit 0 iff every campaign passes\n"
        "  --retry-budget <n>  max attempts per persist (default 8)\n"
        "  --unsafe-relaxed-order  FAULT INJECTION: let the SBRP drain\n"
        "                    engine violate PMO (testing the oracles)\n"
        "  --version         print the artifact schema versions and exit\n"
        "  --help, -h        print this listing and exit\n");
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << text << "\n";
    return static_cast<bool>(os);
}

int
replayArtifact(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "crashfuzz: cannot read '%s'\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    std::string err;
    JsonValue v = JsonValue::parse(buf.str(), &err);
    if (v.isNull()) {
        std::fprintf(stderr, "crashfuzz: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }
    ReplayArtifact artifact;
    if (!ReplayArtifact::fromJson(v, &artifact, &err)) {
        std::fprintf(stderr, "crashfuzz: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }

    CrashScenario scenario = artifact.toScenario();
    std::printf("replaying %s under %s\n", scenario.app.c_str(),
                scenario.cfg.describe().c_str());
    std::printf("crash at cycle %llu (near %s), expecting %s\n",
                static_cast<unsigned long long>(artifact.crashCycle),
                toString(artifact.eventKind),
                artifact.expectViolation ? "a violation" : "recovery");

    ScenarioRunner runner(scenario);
    CrashVerdict verdict =
        runner.runCrashAt(artifact.crashCycle, artifact.eventKind);
    std::printf("observed: crashed=%s pmo_violations=%llu "
                "recovered=%s persist_faults=%llu\n",
                verdict.crashed ? "yes" : "no",
                static_cast<unsigned long long>(verdict.pmoViolations),
                verdict.recoveredOk ? "yes" : "no",
                static_cast<unsigned long long>(verdict.persistFaults));

    const bool failed = !verdict.pass();
    if (failed == artifact.expectViolation) {
        std::printf("replay: recorded outcome reproduced\n");
        return 0;
    }
    std::printf("replay: MISMATCH — artifact expected %s but the run "
                "%s\n",
                artifact.expectViolation ? "a violation" : "a pass",
                failed ? "failed" : "passed");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name;
    std::string report_path;
    std::string stats_json_path;
    std::string persist_trace_path;
    std::string audit_json_path;
    std::string replay_path;
    bool list_points = false;
    bool bench_scale = false;
    bool paper_config = false;
    std::uint64_t seed = 0;
    CampaignConfig campaign;

    ModelKind model = ModelKind::Sbrp;
    SystemDesign design = SystemDesign::PmNear;
    // Knobs applied after the base config is chosen.
    std::optional<std::uint32_t> window;
    std::optional<FlushPolicy> policy;
    std::optional<double> pb_coverage;
    std::optional<double> nvm_bw;
    bool eadr = false;
    bool unsafe_relaxed = false;
    FaultSpec faults;
    bool faults_given = false;
    std::uint64_t fault_seed = 0;
    std::optional<std::uint32_t> retry_budget;
    std::vector<double> sweep_rates;

    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage();
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app") {
            app_name = next(i);
        } else if (a == "--model") {
            if (!modelKindFromString(next(i), &model)) {
                usage();
                return 2;
            }
        } else if (a == "--design") {
            if (!systemDesignFromString(next(i), &design)) {
                usage();
                return 2;
            }
        } else if (a == "--jobs") {
            campaign.jobs =
                static_cast<unsigned>(std::strtoul(next(i), nullptr, 10));
        } else if (a == "--budget") {
            campaign.budgetRuns = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--wall-ms") {
            campaign.wallLimitMs = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--report") {
            report_path = next(i);
        } else if (a == "--stats-json") {
            stats_json_path = next(i);
        } else if (a == "--persist-trace") {
            persist_trace_path = next(i);
        } else if (a == "--audit-json") {
            audit_json_path = next(i);
        } else if (a == "--list-points") {
            list_points = true;
        } else if (a == "--no-minimize") {
            campaign.minimize = false;
        } else if (a == "--replay") {
            replay_path = next(i);
        } else if (a == "--seed") {
            seed = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--scale") {
            bench_scale = std::string(next(i)) == "b";
        } else if (a == "--paper-config") {
            paper_config = true;
        } else if (a == "--window") {
            window = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--policy") {
            FlushPolicy p;
            if (!flushPolicyFromString(next(i), &p)) {
                usage();
                return 2;
            }
            policy = p;
        } else if (a == "--pb") {
            pb_coverage = std::atof(next(i));
        } else if (a == "--nvm-bw") {
            nvm_bw = std::atof(next(i));
        } else if (a == "--eadr") {
            eadr = true;
        } else if (a == "--faults") {
            std::string err;
            if (!FaultSpec::parse(next(i), &faults, &err)) {
                std::fprintf(stderr, "crashfuzz: --faults: %s\n",
                             err.c_str());
                return 2;
            }
            faults_given = true;
        } else if (a == "--fault-seed") {
            fault_seed = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--fault-sweep") {
            std::istringstream ss(next(i));
            std::string tok;
            while (std::getline(ss, tok, ',')) {
                char *end = nullptr;
                double r = std::strtod(tok.c_str(), &end);
                if (tok.empty() || end != tok.c_str() + tok.size() ||
                        r < 0.0 || r > 1.0) {
                    std::fprintf(stderr,
                                 "crashfuzz: --fault-sweep: bad rate "
                                 "'%s'\n", tok.c_str());
                    return 2;
                }
                sweep_rates.push_back(r);
            }
            if (sweep_rates.empty()) {
                std::fprintf(stderr,
                             "crashfuzz: --fault-sweep needs rates\n");
                return 2;
            }
        } else if (a == "--retry-budget") {
            retry_budget = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--unsafe-relaxed-order") {
            unsafe_relaxed = true;
        } else if (a == "--version") {
            std::printf("crashfuzz (sbrp-sim) replay artifact schema "
                        "%u\n%s\n", ReplayArtifact::kVersion,
                        schema::describeAll().c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "crashfuzz: unknown option '%s'\n\n",
                         argv[i]);
            usage();
            return 2;
        }
    }

    const bool want_prov =
        !persist_trace_path.empty() || !audit_json_path.empty();
    if (want_prov &&
            (!replay_path.empty() || !sweep_rates.empty() || list_points)) {
        std::fprintf(stderr,
                     "crashfuzz: --persist-trace/--audit-json apply to "
                     "campaign mode only\n");
        return 2;
    }

    try {
        if (!replay_path.empty())
            return replayArtifact(replay_path);

        if (app_name.empty()) {
            usage();
            return 2;
        }
        const std::string canonical = resolveAppName(app_name);
        if (canonical.empty()) {
            std::fprintf(stderr, "crashfuzz: unknown app '%s'\n",
                         app_name.c_str());
            return 2;
        }

        SystemConfig cfg = paper_config
            ? SystemConfig::paperDefault(model, design)
            : SystemConfig::testDefault(model, design);
        if (window)
            cfg.window = *window;
        if (policy)
            cfg.flushPolicy = *policy;
        if (pb_coverage)
            cfg.pbCoverage = *pb_coverage;
        if (nvm_bw)
            cfg.nvmBwScale = *nvm_bw;
        if (eadr)
            cfg.persistPoint = PersistPoint::Eadr;
        cfg.unsafeRelaxedPersistOrder = unsafe_relaxed;
        if (retry_budget)
            cfg.persistRetryBudget = *retry_budget;
        if (faults_given)
            cfg.faults = faults;
        if (fault_seed != 0)
            cfg.seed = fault_seed;
        else if (faults_given || !sweep_rates.empty())
            cfg.seed = 1;   // Faulting runs must be reproducible.
        cfg.validate();

        campaign.scenario.app = canonical;
        campaign.scenario.cfg = cfg;
        campaign.scenario.benchScale = bench_scale;
        campaign.scenario.seed = seed;
        campaign.paperConfig = paper_config;

        if (!sweep_rates.empty()) {
            // One campaign per rate: the rate drives both transient
            // fault classes; any sticky/WPQ settings from --faults are
            // held constant across the sweep.
            JsonValue combined = JsonValue::object();
            combined.set("schema_version",
                         JsonValue(std::uint64_t{schema::kCampaignReport}));
            JsonValue entries = JsonValue::array();
            bool all_pass = true;
            for (double r : sweep_rates) {
                CampaignConfig cc = campaign;
                cc.scenario.cfg.faults.pcieCorruptRate = r;
                cc.scenario.cfg.faults.nvmTransientRate = r;
                cc.scenario.cfg.validate();
                std::printf("%s under %s\n", canonical.c_str(),
                            cc.scenario.cfg.describe().c_str());
                CampaignEngine engine(cc);
                CampaignResult res = engine.run();
                std::printf("  rate %g: %s (%llu/%llu runs failing, "
                            "%llu persist faults)\n", r,
                            res.pass() ? "PASS" : "FAIL",
                            static_cast<unsigned long long>(res.failures),
                            static_cast<unsigned long long>(
                                res.runsExecuted),
                            static_cast<unsigned long long>(
                                engine.group().value("persist_faults")));
                all_pass = all_pass && res.pass();
                JsonValue entry = campaignReportJson(cc, res);
                entry.set("sweep_rate", JsonValue(r));
                entries.push(std::move(entry));
            }
            combined.set("sweep", std::move(entries));
            combined.set("pass", JsonValue(all_pass));
            std::printf("fault sweep: %s (%zu rates)\n",
                        all_pass ? "PASS" : "FAIL", sweep_rates.size());
            if (!report_path.empty()) {
                if (!writeFile(report_path, combined.dump(2))) {
                    std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                                 report_path.c_str());
                    return 2;
                }
                std::printf("report: %s\n", report_path.c_str());
            }
            return all_pass ? 0 : 1;
        }

        std::printf("%s under %s\n", canonical.c_str(),
                    cfg.describe().c_str());

        if (list_points) {
            ScenarioRunner runner(campaign.scenario);
            CrashProbe probe = runner.probe();
            std::printf("crash-free horizon: %llu cycles\n",
                        static_cast<unsigned long long>(probe.horizon));
            std::printf("crash points: %llu "
                        "(%llu raw events, %llu candidates pruned)\n",
                        static_cast<unsigned long long>(
                            probe.points.points.size()),
                        static_cast<unsigned long long>(
                            probe.points.rawEvents),
                        static_cast<unsigned long long>(
                            probe.points.prunedCandidates));
            for (const CrashPoint &p : probe.points.points)
                std::printf("  %10llu  %s\n",
                            static_cast<unsigned long long>(p.cycle),
                            toString(p.kind));
            return 0;
        }

        // The engine attaches this to the oracle run so --persist-trace
        // and --audit-json export the run's provenance document.
        PersistProvenance prov;
        if (want_prov)
            campaign.provenance = &prov;

        CampaignEngine engine(campaign);
        CampaignResult result = engine.run();

        std::printf("horizon %llu cycles, %llu crash points, "
                    "%llu runs executed%s%s\n",
                    static_cast<unsigned long long>(result.probe.horizon),
                    static_cast<unsigned long long>(
                        result.probe.points.points.size()),
                    static_cast<unsigned long long>(result.runsExecuted),
                    result.budgetTruncated ? " [budget cutoff]" : "",
                    result.wallTruncated ? " [wall cutoff]" : "");
        std::printf("verdict: %s (%llu failing point%s)\n",
                    result.pass() ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(result.failures),
                    result.failures == 1 ? "" : "s");
        if (result.hasMinimized) {
            std::printf("minimized: earliest failing crash cycle %llu "
                        "(%llu bisection probes)\n",
                        static_cast<unsigned long long>(
                            result.minimized.cycle),
                        static_cast<unsigned long long>(
                            result.minimized.probes));
        }

        if (!report_path.empty()) {
            JsonValue report = campaignReportJson(campaign, result);
            if (!writeFile(report_path, report.dump(2))) {
                std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                             report_path.c_str());
                return 2;
            }
            std::printf("report: %s\n", report_path.c_str());
        }
        if (!stats_json_path.empty()) {
            if (!writeFile(stats_json_path,
                           engine.stats().dumpJson())) {
                std::fprintf(stderr, "crashfuzz: cannot write '%s'\n",
                             stats_json_path.c_str());
                return 2;
            }
            std::printf("statistics JSON: %s\n",
                        stats_json_path.c_str());
        }
        if (!persist_trace_path.empty()) {
            prov.writeAuditJsonFile(persist_trace_path);
            std::printf("persist provenance: %s (%llu ops, %llu "
                        "commits)\n",
                        persist_trace_path.c_str(),
                        static_cast<unsigned long long>(prov.opsBegun()),
                        static_cast<unsigned long long>(
                            prov.audit().size()));
        }
        if (!audit_json_path.empty()) {
            prov.writeAuditJsonFile(audit_json_path);
            // The probe already judged the oracle run with the PMO
            // checker; the audit stream adds the durable-image write
            // order, which must be monotone in commit cycle.
            std::uint64_t order_breaks = 0;
            Cycle last = 0;
            for (const PersistAuditRecord &rec : prov.audit()) {
                if (rec.commitCycle < last)
                    ++order_breaks;
                last = rec.commitCycle;
            }
            std::printf("persist-order audit: %s (%llu records, %llu "
                        "PMO violations, %llu cycle-order breaks)\n",
                        audit_json_path.c_str(),
                        static_cast<unsigned long long>(
                            prov.audit().size()),
                        static_cast<unsigned long long>(
                            result.probe.cleanPmoViolations),
                        static_cast<unsigned long long>(order_breaks));
            if (result.probe.cleanPmoViolations != 0 ||
                    order_breaks != 0) {
                std::fprintf(stderr,
                             "crashfuzz: audit stream diverges from the "
                             "model-permitted persist order\n");
                return 1;
            }
        }
        return result.pass() ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "crashfuzz: %s\n", e.what());
        return 2;
    }
}
