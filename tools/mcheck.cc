/**
 * @file
 * mcheck — stateless model checker for the litmus corpus.
 *
 * Exhaustively explores warp-interleaving and persist-reordering
 * schedules of each litmus pattern under schedule control (src/mc/),
 * judging every explored schedule with the formal PMO checker, the
 * durable-image predicate, and the persist-order audit stream. The
 * verdict per (pattern, model) is either an absence proof ("all N
 * schedules explored, 0 violations" — N after commutativity pruning)
 * or a minimal violating schedule, written as a self-contained JSON
 * replay artifact.
 *
 * Usage:
 *   mcheck --all --report mc.json
 *   mcheck --pattern chain --model sbrp --unsafe-relaxed-order \
 *          --artifacts out/
 *   mcheck --replay out/mc_chain_sbrp.json
 *
 * Exit codes: 0 = explored, no violations (or replay reproduced its
 * artifact byte-identically), 1 = violations found (or replay
 * mismatched), 2 = usage or infrastructure error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_io.hh"
#include "common/json.hh"
#include "common/schema_versions.hh"
#include "formal/litmus_corpus.hh"
#include "mc/controller.hh"
#include "mc/explorer.hh"
#include "mc/schedule.hh"

using namespace sbrp;

namespace
{

void
usage()
{
    std::printf(
        "mcheck — exhaustive schedule exploration of litmus patterns\n\n"
        "  --pattern <name>  explore one pattern (see --list)\n"
        "  --all             explore every registered pattern\n"
        "  --small           with --all: only the small patterns\n"
        "  --list            list registered patterns and exit\n"
        "  --model <m>       sbrp | epoch | gpm | barrier | all\n"
        "                    (default sbrp)\n"
        "  --design <d>      near | far                 (default near)\n"
        "  --bound <n>       max schedules per pattern  (default 4096)\n"
        "  --preempt-bound <n>  max non-default issue picks per\n"
        "                    schedule                   (default 8)\n"
        "  --defer-bound <n> max flush deferrals per PB entry\n"
        "                    (default 1)\n"
        "  --defer-cycles <n>  defer window length      (default 24)\n"
        "  --no-prune        disable commutativity pruning (full\n"
        "                    enumeration of the bounded space)\n"
        "  --window <n>      SBRP flush window\n"
        "  --policy <p>      window | eager | lazy\n"
        "  --nvm-bw <scale>  NVM bandwidth scale (default 0.25: a\n"
        "                    narrow write path widens commit-order\n"
        "                    margins without changing verdicts)\n"
        "  --unsafe-relaxed-order  FAULT INJECTION: seeded PMO bug in\n"
        "                    the SBRP drain engine (oracle check)\n"
        "  --report <f>      write the verdict table as JSON to <f>\n"
        "  --stats-json <f>  write exploration counters as JSON to <f>\n"
        "  --artifacts <dir> write violating-schedule artifacts into\n"
        "                    <dir>/mc_<pattern>_<model>.json\n"
        "  --replay <f>      re-execute a recorded schedule strictly;\n"
        "                    exit 0 iff the run is byte-identical\n"
        "  --version         print tool and artifact schema versions\n"
        "  --help, -h        print this listing and exit\n");
}

bool
writeFile(const std::string &path, const std::string &text)
{
    // writeFileAtomic appends the trailing newline itself.
    std::string body = text;
    if (!body.empty() && body.back() == '\n')
        body.pop_back();
    return writeFileAtomic(path, body);
}

struct Verdict
{
    std::string pattern;
    ModelKind model = ModelKind::Sbrp;
    ExploreResult result;
};

std::string
verdictLine(const Verdict &v)
{
    char buf[256];
    const ExploreResult &r = v.result;
    if (r.violationFound) {
        std::snprintf(buf, sizeof(buf),
                      "%-12s %-8s VIOLATION after %llu schedule%s — "
                      "minimized to %llu non-default decision%s "
                      "(%llu minimize runs)",
                      v.pattern.c_str(), toString(v.model),
                      static_cast<unsigned long long>(r.schedulesExplored),
                      r.schedulesExplored == 1 ? "" : "s",
                      static_cast<unsigned long long>(
                          r.violatingSchedule.nonDefaultCount()),
                      r.violatingSchedule.nonDefaultCount() == 1 ? "" : "s",
                      static_cast<unsigned long long>(r.minimizeRuns));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%-12s %-8s ok: %llu schedule%s explored, %llu "
                      "alternative%s pruned, depth %llu — %s, 0 violations",
                      v.pattern.c_str(), toString(v.model),
                      static_cast<unsigned long long>(r.schedulesExplored),
                      r.schedulesExplored == 1 ? "" : "s",
                      static_cast<unsigned long long>(r.alternativesPruned),
                      r.alternativesPruned == 1 ? "" : "s",
                      static_cast<unsigned long long>(r.choicePoints),
                      r.complete ? "complete"
                                 : (r.hitScheduleBound ? "schedule bound hit"
                                                       : "bounded"));
    }
    return buf;
}

JsonValue
verdictJson(const Verdict &v)
{
    const ExploreResult &r = v.result;
    JsonValue j = JsonValue::object();
    j.set("pattern", JsonValue(v.pattern));
    j.set("model", JsonValue(std::string(toString(v.model))));
    j.set("schedules_explored", JsonValue(r.schedulesExplored));
    j.set("alternatives_pruned", JsonValue(r.alternativesPruned));
    j.set("preempt_skips", JsonValue(r.preemptSkips));
    j.set("choice_points", JsonValue(r.choicePoints));
    j.set("complete", JsonValue(r.complete));
    j.set("violation", JsonValue(r.violationFound));
    if (r.violationFound) {
        j.set("pmo_violations",
              JsonValue(std::uint64_t{r.violation.violations.size()}));
        j.set("durable_ok", JsonValue(r.violation.durableStateOk));
        j.set("audit_breaks", JsonValue(r.violation.auditOrderBreaks));
        j.set("minimal_non_default",
              JsonValue(r.violatingSchedule.nonDefaultCount()));
        j.set("minimize_runs", JsonValue(r.minimizeRuns));
    }
    return j;
}

McArtifact
makeArtifact(const Verdict &v, const SystemConfig &cfg,
             const ExploreLimits &limits)
{
    McArtifact a;
    a.pattern = v.pattern;
    a.model = v.model;
    a.design = cfg.design;
    a.window = cfg.window;
    a.policy = cfg.flushPolicy;
    a.preciseFsm = cfg.preciseFsm;
    a.nvmBwScale = cfg.nvmBwScale;
    a.unsafeRelaxedOrder = cfg.unsafeRelaxedPersistOrder;
    a.deferCycles = limits.deferCycles;
    a.deferBound = limits.deferBound;
    a.schedule = v.result.violatingSchedule;
    const LitmusRun &run = v.result.violation;
    a.expectViolations = run.violations.size();
    a.expectDurableOk = run.durableStateOk;
    a.expectAuditBreaks = run.auditOrderBreaks;
    a.expectCycles = run.cycles;
    a.expectDigest = mcDigestString(run.nvmDigest);
    return a;
}

int
replaySchedule(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "mcheck: cannot read '%s'\n", path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    std::string err;
    McArtifact a;
    if (!McArtifact::fromJson(buf.str(), &a, &err)) {
        std::fprintf(stderr, "mcheck: %s: %s\n", path.c_str(), err.c_str());
        return 2;
    }
    const LitmusPattern *pat = findLitmusPattern(a.pattern);
    if (!pat) {
        std::fprintf(stderr, "mcheck: %s: unknown pattern '%s'\n",
                     path.c_str(), a.pattern.c_str());
        return 2;
    }

    std::printf("replaying %s under %s/%s: %zu decisions, expecting "
                "%llu violation%s\n",
                a.pattern.c_str(), toString(a.model), toString(a.design),
                a.schedule.decisions.size(),
                static_cast<unsigned long long>(a.expectViolations),
                a.expectViolations == 1 ? "" : "s");

    McController ctl(McController::Mode::Replay, a.schedule, a.deferBound,
                     a.deferCycles);
    LitmusRun run = pat->scenario(a.model).runControlled(a.config(), &ctl);

    bool ok = true;
    if (ctl.diverged()) {
        std::printf("replay: DIVERGED — %s\n",
                    ctl.divergence().empty() ? "choice-point count mismatch"
                                             : ctl.divergence().c_str());
        ok = false;
    }
    const auto check = [&](const char *what, std::uint64_t got,
                           std::uint64_t want) {
        if (got == want)
            return;
        std::printf("replay: MISMATCH on %s: got %llu, recorded %llu\n",
                    what, static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(want));
        ok = false;
    };
    check("pmo_violations", run.violations.size(), a.expectViolations);
    check("durable_ok", run.durableStateOk ? 1 : 0,
          a.expectDurableOk ? 1 : 0);
    check("audit_breaks", run.auditOrderBreaks, a.expectAuditBreaks);
    check("cycles", run.cycles, a.expectCycles);
    if (mcDigestString(run.nvmDigest) != a.expectDigest) {
        std::printf("replay: MISMATCH on nvm digest: got %s, recorded "
                    "%s\n", mcDigestString(run.nvmDigest).c_str(),
                    a.expectDigest.c_str());
        ok = false;
    }
    if (ok) {
        std::printf("replay: byte-identical (cycles=%llu digest=%s)\n",
                    static_cast<unsigned long long>(run.cycles),
                    mcDigestString(run.nvmDigest).c_str());
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string pattern_name;
    bool all = false;
    bool small_only = false;
    bool list = false;
    std::string model_arg = "sbrp";
    SystemDesign design = SystemDesign::PmNear;
    std::string report_path;
    std::string stats_json_path;
    std::string artifacts_dir;
    std::string replay_path;
    std::uint32_t window = 0;
    bool window_set = false;
    FlushPolicy policy = FlushPolicy::Window;
    bool policy_set = false;
    double nvm_bw = 0.25;
    bool unsafe_relaxed = false;
    ExploreLimits limits;

    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage();
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--pattern") {
            pattern_name = next(i);
        } else if (a == "--all") {
            all = true;
        } else if (a == "--small") {
            small_only = true;
        } else if (a == "--list") {
            list = true;
        } else if (a == "--model") {
            model_arg = next(i);
        } else if (a == "--design") {
            if (!systemDesignFromString(next(i), &design)) {
                usage();
                return 2;
            }
        } else if (a == "--bound") {
            limits.maxSchedules = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--preempt-bound") {
            limits.preemptBound = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--defer-bound") {
            limits.deferBound = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
        } else if (a == "--defer-cycles") {
            limits.deferCycles = std::strtoull(next(i), nullptr, 10);
        } else if (a == "--no-prune") {
            limits.prune = false;
        } else if (a == "--window") {
            window = static_cast<std::uint32_t>(
                std::strtoul(next(i), nullptr, 10));
            window_set = true;
        } else if (a == "--policy") {
            if (!flushPolicyFromString(next(i), &policy)) {
                usage();
                return 2;
            }
            policy_set = true;
        } else if (a == "--nvm-bw") {
            nvm_bw = std::atof(next(i));
        } else if (a == "--unsafe-relaxed-order") {
            unsafe_relaxed = true;
        } else if (a == "--report") {
            report_path = next(i);
        } else if (a == "--stats-json") {
            stats_json_path = next(i);
        } else if (a == "--artifacts") {
            artifacts_dir = next(i);
        } else if (a == "--replay") {
            replay_path = next(i);
        } else if (a == "--version") {
            std::printf("mcheck (sbrp-sim) artifact schema %u\n%s\n",
                        schema::kMcSchedule, schema::describeAll().c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "mcheck: unknown option '%s'\n\n",
                         argv[i]);
            usage();
            return 2;
        }
    }

    if (!replay_path.empty())
        return replaySchedule(replay_path);

    if (list) {
        for (const LitmusPattern &p : litmusCorpus()) {
            std::printf("%-12s %s%s\n", p.name.c_str(), p.summary.c_str(),
                        p.small ? "" : "  [large]");
        }
        return 0;
    }

    if (!all && pattern_name.empty()) {
        std::fprintf(stderr, "mcheck: pick --pattern <name> or --all\n\n");
        usage();
        return 2;
    }

    std::vector<const LitmusPattern *> patterns;
    if (all) {
        for (const LitmusPattern &p : litmusCorpus()) {
            if (!small_only || p.small)
                patterns.push_back(&p);
        }
    } else {
        const LitmusPattern *p = findLitmusPattern(pattern_name);
        if (!p) {
            std::fprintf(stderr, "mcheck: unknown pattern '%s' "
                         "(try --list)\n", pattern_name.c_str());
            return 2;
        }
        patterns.push_back(p);
    }

    if (!artifacts_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(artifacts_dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "mcheck: cannot create artifacts dir '%s': %s\n",
                         artifacts_dir.c_str(), ec.message().c_str());
            return 2;
        }
    }

    std::vector<ModelKind> models;
    if (model_arg == "all") {
        models = {ModelKind::Gpm, ModelKind::Epoch, ModelKind::Sbrp,
                  ModelKind::ScopedBarrier};
    } else {
        ModelKind m;
        if (!modelKindFromString(model_arg, &m)) {
            usage();
            return 2;
        }
        models.push_back(m);
    }

    std::vector<Verdict> verdicts;
    std::uint64_t total_runs = 0;
    bool any_violation = false;

    for (const LitmusPattern *p : patterns) {
        for (ModelKind m : models) {
            // GPM is defined only for PM-far (it avoids hardware
            // changes); keep --model all usable from the default design.
            SystemDesign d = m == ModelKind::Gpm ? SystemDesign::PmFar
                                                 : design;
            SystemConfig cfg = SystemConfig::testDefault(m, d);
            cfg.nvmBwScale = nvm_bw;
            cfg.unsafeRelaxedPersistOrder = unsafe_relaxed;
            if (window_set)
                cfg.window = window;
            if (policy_set)
                cfg.flushPolicy = policy;

            Verdict v;
            v.pattern = p->name;
            v.model = m;
            v.result = McExplorer(*p, cfg, limits).explore();
            total_runs += v.result.schedulesExplored +
                          v.result.minimizeRuns;
            std::printf("%s\n", verdictLine(v).c_str());

            if (v.result.violationFound) {
                any_violation = true;
                if (!artifacts_dir.empty()) {
                    McArtifact art = makeArtifact(v, cfg, limits);
                    std::string path = artifacts_dir + "/mc_" + p->name +
                                       "_" + toString(m) + ".json";
                    if (!writeFile(path, art.toJson())) {
                        std::fprintf(stderr,
                                     "mcheck: cannot write '%s'\n",
                                     path.c_str());
                        return 2;
                    }
                    std::printf("  wrote %s\n", path.c_str());
                }
            }
            verdicts.push_back(std::move(v));
        }
    }

    std::uint64_t violating = 0;
    for (const Verdict &v : verdicts)
        violating += v.result.violationFound ? 1 : 0;
    std::printf("\n%zu combination%s checked, %llu total runs: %llu "
                "violating\n", verdicts.size(),
                verdicts.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(total_runs),
                static_cast<unsigned long long>(violating));

    if (!report_path.empty() || !stats_json_path.empty()) {
        JsonValue doc = JsonValue::object();
        doc.set("schema_version",
                JsonValue(std::uint64_t{schema::kMcReport}));
        doc.set("kind", JsonValue(std::string("mc_report")));
        doc.set("design", JsonValue(std::string(toString(design))));
        doc.set("unsafe_relaxed_order", JsonValue(unsafe_relaxed));
        doc.set("total_runs", JsonValue(total_runs));
        doc.set("violating_combinations", JsonValue(violating));
        JsonValue arr = JsonValue::array();
        for (const Verdict &v : verdicts)
            arr.push(verdictJson(v));
        doc.set("verdicts", std::move(arr));
        const std::string text = doc.dump(2) + "\n";
        for (const std::string &path : {report_path, stats_json_path}) {
            if (path.empty())
                continue;
            if (!writeFile(path, text)) {
                std::fprintf(stderr, "mcheck: cannot write '%s'\n",
                             path.c_str());
                return 2;
            }
        }
    }

    return any_violation ? 1 : 0;
}
