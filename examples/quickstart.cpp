/**
 * @file
 * Quickstart: allocate persistent memory, run a kernel that persists
 * data under SBRP, crash it, power-cycle, and inspect what survived.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "api/sbrp.hh"

using namespace sbrp;

int
main()
{
    // The physical NVM outlives every GPU power cycle.
    NvmDevice nvm;
    Addr data = nvm.allocate("quickstart.data", 64 * 4);

    // A Table-1-shaped GPU running the SBRP persistency model with the
    // NVM onboard (PM-near).
    SystemConfig cfg = SystemConfig::paperDefault(ModelKind::Sbrp,
                                                  SystemDesign::PmNear);

    // --- 1. A kernel that persists 64 ints, ordered by an oFence.  ---
    // Lane i writes data[i] = i+1, fences, then writes a completion
    // marker; the marker can only be durable after all the data.
    Addr marker = nvm.allocate("quickstart.done", 4);
    {
        GpuSystem gpu(cfg, nvm);
        KernelProgram k("quickstart", 1, 64);
        for (std::uint32_t w = 0; w < 2; ++w) {
            WarpBuilder wb(k.warp(0, w), 32);
            wb.storeImm([&, w](std::uint32_t l) {
                return data + 4 * (w * 32 + l);
            }, [w](std::uint32_t l) { return w * 32 + l + 1; });
            wb.ofence();
            if (w == 0) {
                wb.storeImm([&](std::uint32_t) { return marker; },
                            [](std::uint32_t) { return 1; },
                            mask::lane(0));
            }
            wb.dfence();
        }
        auto res = gpu.launch(k);
        std::printf("clean run: %llu cycles (%llu until kernel retire)\n",
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(res.execCycles));
    }

    std::printf("durable after clean run: data[0]=%u data[63]=%u "
                "marker=%u\n",
                nvm.durable().read32(data),
                nvm.durable().read32(data + 63 * 4),
                nvm.durable().read32(marker));

    // --- 2. The same kernel, crashed early: the persistency model ---
    // guarantees we never see the marker without the data.
    NvmDevice nvm2;
    Addr data2 = nvm2.allocate("quickstart.data", 64 * 4);
    Addr marker2 = nvm2.allocate("quickstart.done", 4);
    {
        GpuSystem gpu(cfg, nvm2);
        KernelProgram k("quickstart_crash", 1, 64);
        for (std::uint32_t w = 0; w < 2; ++w) {
            WarpBuilder wb(k.warp(0, w), 32);
            wb.storeImm([&, w](std::uint32_t l) {
                return data2 + 4 * (w * 32 + l);
            }, [w](std::uint32_t l) { return w * 32 + l + 1; });
            wb.ofence();
            if (w == 0) {
                wb.storeImm([&](std::uint32_t) { return marker2; },
                            [](std::uint32_t) { return 1; },
                            mask::lane(0));
            }
        }
        auto res = gpu.launch(k, 40);   // Power fails at cycle 40.
        std::printf("crashed at cycle %llu\n",
                    static_cast<unsigned long long>(res.cycles));
    }   // GPU state (caches, persist buffers, in-flight writes): gone.

    bool all_data = true;
    for (std::uint32_t i = 0; i < 64; ++i) {
        if (nvm2.durable().read32(data2 + 4 * i) != i + 1)
            all_data = false;
    }
    std::uint32_t m = nvm2.durable().read32(marker2);
    std::printf("after crash: data complete=%s marker=%u\n",
                all_data ? "yes" : "no", m);
    if (m == 1 && !all_data) {
        std::printf("PMO VIOLATION: marker persisted before its data!\n");
        return 1;
    }
    std::printf("invariant held: marker implies data "
                "(oFence ordered the persists)\n");
    return 0;
}
