/**
 * @file
 * A GPU-accelerated persistent key-value store with write-ahead undo
 * logging (the paper's gpKVS, Section 7.1 / Figure 4), driven through
 * its full life cycle: batch insert, power failure mid-batch, recovery
 * kernel, and verification — comparing SBRP against the epoch model.
 *
 * Run: ./build/examples/persistent_kvs
 */

#include <cstdio>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/kvs.hh"

using namespace sbrp;

namespace
{

void
demo(ModelKind model, SystemDesign design)
{
    KvsParams params;
    params.blocks = 8;
    params.threadsPerBlock = 128;
    params.pairsPerThread = 3;
    params.slotsPerThread = 4;

    SystemConfig cfg = SystemConfig::paperDefault(model, design);
    std::printf("\n--- gpKVS under %s on PM-%s ---\n", toString(model),
                toString(design));

    // Crash-free run first, to size the crash point.
    Cycle total;
    {
        KvsApp app(model, params);
        AppRunResult r = AppHarness::runCrashFree(app, cfg);
        total = r.forwardCycles;
        std::printf("insert batch:   %8llu cycles, %llu line commits, "
                    "table %s\n",
                    static_cast<unsigned long long>(r.forwardCycles),
                    static_cast<unsigned long long>(r.nvmCommits),
                    r.consistent ? "correct" : "WRONG");
    }

    // Now pull the plug mid-batch and recover.
    KvsApp app(model, params);
    AppRunResult r = AppHarness::runCrashRecover(app, cfg, total / 2);
    std::printf("crash at 50%%:   power failed %llu cycles in\n",
                static_cast<unsigned long long>(r.forwardCycles));
    std::printf("recovery:       %8llu cycles (%.1f%% of the batch), "
                "store is %s\n",
                static_cast<unsigned long long>(r.recoveryCycles),
                100.0 * static_cast<double>(r.recoveryCycles) /
                    static_cast<double>(total),
                r.consistent ? "CONSISTENT (every pair whole, every "
                               "thread a clean prefix)"
                             : "CORRUPT");
}

} // namespace

int
main()
{
    std::printf("gpKVS: parallel inserts, undo-logged per thread\n");
    std::printf("  log entry -> oFence -> new pair -> oFence -> commit\n");
    demo(ModelKind::Sbrp, SystemDesign::PmNear);
    demo(ModelKind::Sbrp, SystemDesign::PmFar);
    demo(ModelKind::Epoch, SystemDesign::PmNear);
    return 0;
}
