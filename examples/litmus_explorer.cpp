/**
 * @file
 * Litmus explorer: small two-thread persistency litmus tests run under
 * every model with a crash sweep, validated against the formal SBRP
 * model (PmoChecker). Also demonstrates the paper's *scoped persistency
 * bug* (Section 5.3): using a narrower scope than the program needs
 * removes the formal ordering edge entirely.
 *
 * Run: ./build/examples/litmus_explorer
 */

#include <cstdio>

#include "api/sbrp.hh"

using namespace sbrp;

namespace
{

/** Message-passing litmus: Wx -> pRel f / pAcq f -> Wy. */
LitmusScenario
messagePassing(Scope scope, std::uint32_t blocks)
{
    return LitmusScenario(
        "message-passing",
        [](NvmDevice &nvm) {
            nvm.allocate("mp.x", 128);
            nvm.allocate("mp.y", 128);
            nvm.allocate("mp.flag", 128);
        },
        [scope, blocks](NvmDevice &nvm) {
            Addr x = nvm.open("mp.x").base;
            Addr y = nvm.open("mp.y").base;
            Addr flag = nvm.open("mp.flag").base;

            KernelProgram k("mp", blocks, 32);
            // Producer: thread 0 of block 0.
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 41; },
                          mask::lane(0))
                .prel([&](std::uint32_t) { return flag; }, 1, scope,
                      mask::lane(0));
            // Consumer: thread 0 of the last block.
            WarpBuilder(k.warp(blocks - 1, 0), 32)
                .pacq([&](std::uint32_t) { return flag; }, 1, scope,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return y; },
                          [](std::uint32_t) { return 42; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            // The recoverability invariant: y durable implies x durable.
            std::uint32_t x = nvm.durable().read32(nvm.open("mp.x").base);
            std::uint32_t y = nvm.durable().read32(nvm.open("mp.y").base);
            return y == 0 || x == 41;
        });
}

void
run(const char *title, const LitmusScenario &scenario,
    const SystemConfig &cfg)
{
    LitmusReport rep = scenario.run(
        cfg, {0.05, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9});
    std::printf("%-46s crash-free=%llu cycles, runs=%zu, "
                "PMO violations=%llu, durable-state %s\n",
                title,
                static_cast<unsigned long long>(rep.crashFreeCycles),
                rep.runs.size(),
                static_cast<unsigned long long>(rep.totalViolations()),
                rep.allOk() ? "OK" : "BROKEN");
}

} // namespace

int
main()
{
    std::printf("Message-passing litmus (Wx ; pRel f || pAcq f ; Wy), "
                "crash-swept:\n\n");

    // Same-block producer/consumer: block scope suffices.
    SystemConfig near_cfg = SystemConfig::testDefault(
        ModelKind::Sbrp, SystemDesign::PmNear);
    run("SBRP-near, same block, block scope",
        messagePassing(Scope::Block, 1), near_cfg);

    SystemConfig far_cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                     SystemDesign::PmFar);
    run("SBRP-far,  same block, block scope",
        messagePassing(Scope::Block, 1), far_cfg);

    // Cross-block: device scope is required...
    run("SBRP-near, cross block, device scope",
        messagePassing(Scope::Device, 2), near_cfg);

    // ...and this is the scoped persistency bug of Section 5.3: block
    // scope across threadblocks. The formal model imposes NO ordering
    // edge (the scope does not cover both threads), so the checker has
    // nothing to verify — but the recoverability invariant can break:
    // hardware may persist y before x.
    std::printf("\nScoped persistency bug (Section 5.3): block-scoped "
                "release used across blocks -\n");
    run("SBRP-near, cross block, BLOCK scope (bug)",
        messagePassing(Scope::Block, 2), near_cfg);
    std::printf("\n(The bug run reports zero PMO violations because the "
                "too-narrow scope\nremoves the formal edge; whether the "
                "durable state survives is luck, not\na guarantee — "
                "exactly why the paper calls these bugs insidious.)\n");
    return 0;
}
