/**
 * @file
 * Checkpointed long-running kernel — the paper's DNN-training
 * motivation (Section 1): partial results checkpoint to PM every K
 * iterations so a power failure costs at most one epoch of work, and
 * the checkpoint itself can never be torn.
 *
 * The example pulls the plug at many points and shows, for each, which
 * epoch survived and that the surviving snapshot is bit-exact.
 *
 * Run: ./build/examples/checkpointed_training
 */

#include <cstdio>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/checkpoint.hh"

using namespace sbrp;

int
main()
{
    CheckpointParams params;
    params.blocks = 8;
    params.threadsPerBlock = 128;
    params.itersPerEpoch = 6;
    params.epochs = 5;

    SystemConfig cfg = SystemConfig::paperDefault(ModelKind::Sbrp,
                                                  SystemDesign::PmNear);

    Cycle total;
    {
        CheckpointApp app(ModelKind::Sbrp, params);
        NvmDevice nvm;
        app.setupNvm(nvm);
        GpuSystem gpu(cfg, nvm);
        app.setupGpu(gpu);
        total = gpu.launch(app.forward()).cycles;
        std::printf("crash-free run: %llu cycles, %u epochs of %u "
                    "iterations checkpointed\n",
                    static_cast<unsigned long long>(total),
                    params.epochs, params.itersPerEpoch);
    }

    std::printf("\n%-12s %-22s %s\n", "crash point",
                "committed epochs/block", "snapshot integrity");
    for (double frac : {0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.97}) {
        CheckpointApp app(ModelKind::Sbrp, params);
        NvmDevice nvm;
        app.setupNvm(nvm);
        {
            GpuSystem gpu(cfg, nvm);
            app.setupGpu(gpu);
            gpu.launch(app.forward(),
                       std::max<Cycle>(1, static_cast<Cycle>(
                           total * frac)));
        }   // Power failure.

        // Which epoch did each block commit?
        std::uint32_t lo = ~0u, hi = 0;
        Addr ctr = nvm.open("ckpt.epoch").base;
        for (std::uint32_t b = 0; b < params.blocks; ++b) {
            std::uint32_t c = nvm.durable().read32(ctr + 128ull * b);
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
        bool ok = app.checkpointInvariant(nvm);
        std::printf("%9.0f%%   %10u..%-10u %s\n", frac * 100.0, lo, hi,
                    ok ? "complete (never torn)" : "TORN CHECKPOINT");
        if (!ok)
            return 1;
    }

    std::printf("\nThe committed epoch counter is ordered after the "
                "checkpoint data by the\nblock-scoped release/acquire "
                "chain plus an oFence — a crash can lose the\nnewest "
                "snapshot, never corrupt one. Restarting resumes from "
                "epoch*K\niterations instead of zero.\n");
    return 0;
}
