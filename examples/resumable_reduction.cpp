/**
 * @file
 * A crash-resumable tree reduction (the paper's running example,
 * Figures 2-3): partial sums live in persistent memory, published with
 * scoped releases, so after a power failure the computation resumes
 * from the last persisted state instead of restarting.
 *
 * This example crashes the kernel at several points and shows how much
 * of the re-run the embedded recovery check (`if (pArr[tid] != EMPTY)
 * return;`) skips each time.
 *
 * Run: ./build/examples/resumable_reduction
 */

#include <cstdio>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/reduction.hh"

using namespace sbrp;

int
main()
{
    ReductionParams params;
    params.blocks = 16;
    params.threadsPerBlock = 128;
    params.elemsPerThread = 8;

    SystemConfig cfg = SystemConfig::paperDefault(ModelKind::Sbrp,
                                                  SystemDesign::PmNear);

    Cycle total;
    {
        ReductionApp app(ModelKind::Sbrp, params);
        AppRunResult r = AppHarness::runCrashFree(app, cfg);
        total = r.forwardCycles;
        std::printf("crash-free reduction: %llu cycles, total=%llu "
                    "(verified: %s)\n",
                    static_cast<unsigned long long>(r.forwardCycles),
                    static_cast<unsigned long long>(
                        app.expectedTotal()),
                    r.consistent ? "yes" : "NO");
    }

    std::printf("\n%-12s %-14s %-18s %s\n", "crash point",
                "resume cycles", "work (warp instr)", "result");
    for (double frac : {0.15, 0.35, 0.55, 0.75, 0.95}) {
        ReductionApp app(ModelKind::Sbrp, params);
        auto at = static_cast<Cycle>(static_cast<double>(total) * frac);
        AppRunResult r = AppHarness::runCrashRecover(app, cfg, at);
        std::printf("%9.0f%%   %10llu    %14llu     %s\n", frac * 100.0,
                    static_cast<unsigned long long>(r.recoveryCycles),
                    static_cast<unsigned long long>(
                        r.recoveryInstructions),
                    r.consistent ? "correct total" : "WRONG TOTAL");
    }

    std::printf("\nLater crashes leave more subtree sums durable, so "
                "the resume run skips\nmore threads via the pArr[tid] "
                "!= EMPTY check (Figure 3, line 3) - watch\nthe "
                "executed-work column collapse. (Wall time is bounded "
                "below by the\nfinal block's serial accumulation, which "
                "only the durable total skips.)\n");
    return 0;
}
