/**
 * @file
 * A catalogue of persistency litmus patterns run under SBRP with crash
 * sweeps and the formal checker: ordered chains, transitive
 * message-passing through an intermediary, independent-writer
 * non-ordering, re-release of the same flag, multi-acquirer fan-out,
 * fan-in joins, and the scoped-bug shapes of Section 5.3.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"

namespace sbrp
{
namespace
{

SystemConfig
cfgFor(SystemDesign d)
{
    return SystemConfig::testDefault(ModelKind::Sbrp, d);
}

void
expectAllOk(const LitmusScenario &s, const SystemConfig &cfg)
{
    LitmusReport rep =
        s.run(cfg, {0.05, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9});
    for (const LitmusRun &r : rep.runs) {
        EXPECT_TRUE(r.violations.empty())
            << rep.name << " PMO violated, crash at "
            << r.crashAt.value_or(0)
            << ": " << (r.violations.empty() ? ""
                                             : r.violations[0].detail);
        EXPECT_TRUE(r.durableStateOk)
            << rep.name << " durable state broken, crash at "
            << r.crashAt.value_or(0);
    }
}

/** n writes by one thread, each fenced: durable set must be a prefix. */
TEST(LitmusPatterns, FencedChainIsPrefixClosed)
{
    constexpr std::uint32_t kN = 8;
    LitmusScenario s(
        "chain",
        [](NvmDevice &nvm) { nvm.allocate("chain", kN * 128); },
        [](NvmDevice &nvm) {
            Addr base = nvm.open("chain").base;
            KernelProgram k("chain", 1, 32);
            WarpBuilder wb(k.warp(0, 0), 32);
            for (std::uint32_t i = 0; i < kN; ++i) {
                wb.storeImm([base, i](std::uint32_t) {
                    return base + 128ull * i;
                }, [i](std::uint32_t) { return i + 1; }, mask::lane(0));
                wb.ofence(mask::lane(0));
            }
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            Addr base = nvm.open("chain").base;
            bool seen_zero = false;
            for (std::uint32_t i = 0; i < kN; ++i) {
                std::uint32_t v = nvm.durable().read32(base + 128ull * i);
                if (v == 0)
                    seen_zero = true;
                else if (seen_zero)
                    return false;   // Gap: later durable, earlier not.
            }
            return true;
        });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
    expectAllOk(s, cfgFor(SystemDesign::PmFar));
}

/** T0 -> T1 -> T2 transitive message passing within a block. */
TEST(LitmusPatterns, TransitiveChainThroughIntermediary)
{
    LitmusScenario s(
        "transitive",
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("y", 128);
            nvm.allocate("z", 128);
            nvm.allocate("flags", 256);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr y = nvm.open("y").base;
            Addr z = nvm.open("z").base;
            Addr f = nvm.open("flags").base;
            KernelProgram k("trans", 1, 96);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 1; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0));
            WarpBuilder(k.warp(0, 1), 32)
                .pacq([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return y; },
                          [](std::uint32_t) { return 2; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f + 128; }, 1,
                      Scope::Block, mask::lane(0));
            WarpBuilder(k.warp(0, 2), 32)
                .pacq([&](std::uint32_t) { return f + 128; }, 1,
                      Scope::Block, mask::lane(0))
                .storeImm([&](std::uint32_t) { return z; },
                          [](std::uint32_t) { return 3; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            std::uint32_t y = nvm.durable().read32(nvm.open("y").base);
            std::uint32_t z = nvm.durable().read32(nvm.open("z").base);
            if (z == 3 && (y != 2 || x != 1))
                return false;
            if (y == 2 && x != 1)
                return false;
            return true;
        });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
}

/** Independent writers: no ordering exists, any subset is legal. */
TEST(LitmusPatterns, IndependentWritersUnordered)
{
    LitmusScenario s(
        "independent",
        [](NvmDevice &nvm) { nvm.allocate("iw", 8 * 128); },
        [](NvmDevice &nvm) {
            Addr base = nvm.open("iw").base;
            KernelProgram k("iw", 1, 256);
            for (std::uint32_t w = 0; w < 8; ++w) {
                WarpBuilder(k.warp(0, w), 32)
                    .storeImm([base, w](std::uint32_t) {
                        return base + 128ull * w;
                    }, [w](std::uint32_t) { return w + 1; },
                       mask::lane(0));
            }
            return k;
        },
        [](const NvmDevice &, bool) { return true; });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
}

/** The same flag released twice with increasing epochs. */
TEST(LitmusPatterns, ReReleaseOrdersBothGenerations)
{
    LitmusScenario s(
        "re-release",
        [](NvmDevice &nvm) {
            nvm.allocate("d", 2 * 128);
            nvm.allocate("flag", 128);
        },
        [](NvmDevice &nvm) {
            Addr d = nvm.open("d").base;
            Addr f = nvm.open("flag").base;
            KernelProgram k("rr", 1, 64);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return d; },
                          [](std::uint32_t) { return 1; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return d + 128; },
                          [](std::uint32_t) { return 2; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 2, Scope::Block,
                      mask::lane(0));
            WarpBuilder(k.warp(0, 1), 32)
                .pacq([&](std::uint32_t) { return f; }, 2, Scope::Block,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return d + 4; },
                          [](std::uint32_t) { return 9; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            Addr d = nvm.open("d").base;
            // Consumer's write (d+4 = 9) implies both generations.
            if (nvm.durable().read32(d + 4) == 9) {
                return nvm.durable().read32(d) == 1 &&
                       nvm.durable().read32(d + 128) == 2;
            }
            return true;
        });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
}

/** One release, many acquirers (fan-out). */
TEST(LitmusPatterns, FanOutAllAcquirersOrdered)
{
    LitmusScenario s(
        "fan-out",
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("ys", 4 * 128);
            nvm.allocate("flag", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr ys = nvm.open("ys").base;
            Addr f = nvm.open("flag").base;
            KernelProgram k("fan", 1, 160);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 7; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0));
            for (std::uint32_t w = 1; w <= 4; ++w) {
                WarpBuilder(k.warp(0, w), 32)
                    .pacq([&](std::uint32_t) { return f; }, 1,
                          Scope::Block, mask::lane(0))
                    .storeImm([&, w](std::uint32_t) {
                        return ys + 128ull * (w - 1);
                    }, [w](std::uint32_t) { return w; }, mask::lane(0));
            }
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            Addr ys = nvm.open("ys").base;
            for (std::uint32_t w = 1; w <= 4; ++w) {
                if (nvm.durable().read32(ys + 128ull * (w - 1)) != 0 &&
                        x != 7) {
                    return false;
                }
            }
            return true;
        });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
}

/** Many releasers, one acquirer joining on all flags (fan-in). */
TEST(LitmusPatterns, FanInJoinOrdersAllProducers)
{
    LitmusScenario s(
        "fan-in",
        [](NvmDevice &nvm) {
            nvm.allocate("xs", 4 * 128);
            nvm.allocate("y", 128);
            nvm.allocate("flags", 4 * 128);
        },
        [](NvmDevice &nvm) {
            Addr xs = nvm.open("xs").base;
            Addr y = nvm.open("y").base;
            Addr f = nvm.open("flags").base;
            KernelProgram k("join", 1, 160);
            for (std::uint32_t w = 0; w < 4; ++w) {
                WarpBuilder(k.warp(0, w), 32)
                    .storeImm([&, w](std::uint32_t) {
                        return xs + 128ull * w;
                    }, [w](std::uint32_t) { return w + 1; },
                       mask::lane(0))
                    .prel([&, w](std::uint32_t) { return f + 128ull * w; },
                          1, Scope::Block, mask::lane(0));
            }
            WarpBuilder wb(k.warp(0, 4), 32);
            for (std::uint32_t w = 0; w < 4; ++w) {
                wb.pacq([&, w](std::uint32_t) { return f + 128ull * w; },
                        1, Scope::Block, mask::lane(0));
            }
            wb.storeImm([&](std::uint32_t) { return y; },
                        [](std::uint32_t) { return 99; }, mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            if (nvm.durable().read32(nvm.open("y").base) != 99)
                return true;
            Addr xs = nvm.open("xs").base;
            for (std::uint32_t w = 0; w < 4; ++w) {
                if (nvm.durable().read32(xs + 128ull * w) != w + 1)
                    return false;
            }
            return true;
        });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
    expectAllOk(s, cfgFor(SystemDesign::PmFar));
}

/** Device scope across blocks: the correct version of the 5.3 bug. */
TEST(LitmusPatterns, CrossBlockDeviceScopeOrdered)
{
    LitmusScenario s(
        "cross-block",
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("y", 128);
            nvm.allocate("flag", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr y = nvm.open("y").base;
            Addr f = nvm.open("flag").base;
            KernelProgram k("xb", 3, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 5; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Device,
                      mask::lane(0));
            // An unrelated middle block adds noise traffic.
            WarpBuilder(k.warp(1, 0), 32)
                .storeImm([&](std::uint32_t l) { return y + 4 + 4 * (l % 8); },
                          [](std::uint32_t) { return 1; },
                          mask::range(8, 16));
            WarpBuilder(k.warp(2, 0), 32)
                .pacq([&](std::uint32_t) { return f; }, 1, Scope::Device,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return y; },
                          [](std::uint32_t) { return 6; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            std::uint32_t y = nvm.durable().read32(nvm.open("y").base);
            return y != 6 || x == 5;
        });
    expectAllOk(s, cfgFor(SystemDesign::PmNear));
    expectAllOk(s, cfgFor(SystemDesign::PmFar));
}

// --- The registered corpus (formal/litmus_corpus.hh) ---
//
// The handwritten patterns above stay as SBRP crash-sweep coverage;
// the registry below is the shared, model-generic catalogue the model
// checker (tools/mcheck) explores.

TEST(LitmusCorpus, RegistryIsStableAndSearchable)
{
    const std::vector<LitmusPattern> &corpus = litmusCorpus();
    ASSERT_GE(corpus.size(), 7u);
    for (const LitmusPattern &p : corpus) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_FALSE(p.summary.empty());
        EXPECT_EQ(findLitmusPattern(p.name), &p);
    }
    EXPECT_EQ(findLitmusPattern("no-such-pattern"), nullptr);
    ASSERT_NE(findLitmusPattern("chain"), nullptr);
    EXPECT_TRUE(findLitmusPattern("chain")->ordered);
    ASSERT_NE(findLitmusPattern("independent"), nullptr);
    EXPECT_FALSE(findLitmusPattern("independent")->ordered);
}

/** Satellite inventory check: every registered pattern builds and runs
    crash-free under all four persistency models. */
TEST(LitmusCorpus, EveryPatternRunsCleanUnderAllFourModels)
{
    const std::pair<ModelKind, SystemDesign> combos[] = {
        {ModelKind::Gpm, SystemDesign::PmFar},
        {ModelKind::Epoch, SystemDesign::PmNear},
        {ModelKind::Sbrp, SystemDesign::PmNear},
        {ModelKind::ScopedBarrier, SystemDesign::PmNear},
    };
    for (const LitmusPattern &p : litmusCorpus()) {
        for (const auto &[m, d] : combos) {
            SystemConfig cfg = SystemConfig::testDefault(m, d);
            LitmusRun r = p.scenario(m).runControlled(cfg, nullptr);
            EXPECT_TRUE(r.violations.empty())
                << p.name << " under " << toString(m) << ": "
                << (r.violations.empty() ? ""
                                         : r.violations[0].detail);
            EXPECT_TRUE(r.durableStateOk)
                << p.name << " under " << toString(m);
            EXPECT_EQ(r.auditOrderBreaks, 0u)
                << p.name << " under " << toString(m);
            EXPECT_NE(r.nvmDigest, 0u) << p.name;
        }
    }
}

/** Corpus patterns also survive the crash-sweep harness under SBRP. */
TEST(LitmusCorpus, CrashSweepCleanUnderSbrp)
{
    for (const LitmusPattern &p : litmusCorpus()) {
        LitmusScenario s = p.scenario(ModelKind::Sbrp);
        LitmusReport rep =
            s.run(cfgFor(SystemDesign::PmNear), {0.25, 0.5, 0.75});
        EXPECT_TRUE(rep.allOk()) << p.name;
    }
}

} // namespace
} // namespace sbrp
