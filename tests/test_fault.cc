/**
 * Fault-injection + resilient-persist-path tests: FaultSpec parsing,
 * seeded fault plans, the fabric's link-replay/WPQ-nack/media retry
 * machine, poison propagation across power cycles, end-to-end app runs
 * under injected faults, campaign determinism with a pinned seed, and
 * the v2 replay-artifact schema.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/sbrp.hh"
#include "apps/registry.hh"
#include "common/json.hh"
#include "common/schema_versions.hh"
#include "crashtest/campaign.hh"
#include "crashtest/replay.hh"
#include "crashtest/scenario.hh"
#include "fault/injector.hh"
#include "gpu/mem_ctrl.hh"
#include "sim/event_queue.hh"

namespace sbrp
{
namespace
{

// --- FaultSpec ------------------------------------------------------

TEST(FaultSpec, ParsesAndDescribesCanonically)
{
    FaultSpec s;
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("pcie=1e-3,wpq=16,media=0.01,sticky=1e-6",
                                 &s, &err)) << err;
    EXPECT_DOUBLE_EQ(s.pcieCorruptRate, 1e-3);
    EXPECT_EQ(s.wpqCapacity, 16u);
    EXPECT_DOUBLE_EQ(s.nvmTransientRate, 0.01);
    EXPECT_DOUBLE_EQ(s.nvmStickyRate, 1e-6);
    EXPECT_TRUE(s.enabled());

    // describe() round-trips through parse().
    FaultSpec back;
    ASSERT_TRUE(FaultSpec::parse(s.describe(), &back, &err)) << err;
    EXPECT_EQ(back.describe(), s.describe());

    FaultSpec none;
    ASSERT_TRUE(FaultSpec::parse("none", &none, &err));
    EXPECT_FALSE(none.enabled());
    EXPECT_EQ(none.describe(), "none");
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    FaultSpec s;
    std::string err;
    EXPECT_FALSE(FaultSpec::parse("pcie=2.0", &s, &err));   // Rate > 1.
    EXPECT_FALSE(FaultSpec::parse("pcie=-0.1", &s, &err));
    EXPECT_FALSE(FaultSpec::parse("bogus=1", &s, &err));
    EXPECT_FALSE(FaultSpec::parse("pcie", &s, &err));
    EXPECT_FALSE(FaultSpec::parse("wpq=1.5", &s, &err));    // Not integral.
    EXPECT_FALSE(FaultSpec::parse("media=abc", &s, &err));
}

// --- Seeding --------------------------------------------------------

TEST(FaultInjector, RefusesUnseededConstruction)
{
    FaultSpec s;
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("media=0.5", &s, &err));
    EXPECT_THROW(FaultInjector(s, 0), FatalError);
    EXPECT_NO_THROW(FaultInjector(s, 1));
}

TEST(SystemConfig, FaultsWithoutSeedFailValidation)
{
    SystemConfig cfg = SystemConfig::testDefault();
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("media=0.5", &cfg.faults, &err));
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.seed = 7;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(FaultPlan, SameSeedSameSchedule)
{
    FaultPlan a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 256; ++i) {
        bool da = a.drawTransient(0.5);
        EXPECT_EQ(da, b.drawTransient(0.5));
        if (da != c.drawTransient(0.5))
            diverged = true;
    }
    EXPECT_TRUE(diverged);   // Different seeds: different schedules.
}

TEST(FaultPlan, StreamsAreIndependent)
{
    // Consuming PCIe draws must not shift the media schedule: each
    // fault class has its own stream, so enabling one class never
    // changes another's timeline.
    FaultPlan a(42), b(42);
    for (int i = 0; i < 64; ++i)
        (void)a.drawPcie(0.5);   // Burn the pcie stream on `a` only.
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.drawTransient(0.5), b.drawTransient(0.5));
}

// --- The fabric retry machine ---------------------------------------

struct FaultRig
{
    SystemConfig cfg;
    NvmDevice nvm;
    FunctionalMemory mem;
    EventQueue events;
    std::unique_ptr<MemoryFabric> fabric;
    Addr pm = 0;

    explicit FaultRig(const std::string &spec, std::uint64_t seed = 7,
                      std::uint32_t budget = 8,
                      SystemDesign design = SystemDesign::PmNear)
        : cfg(SystemConfig::testDefault(ModelKind::Sbrp, design))
    {
        std::string err;
        if (!FaultSpec::parse(spec, &cfg.faults, &err))
            throw std::runtime_error(err);
        cfg.seed = seed;
        cfg.persistRetryBudget = budget;
        mem.setBacking(&nvm.durable());
        fabric = std::make_unique<MemoryFabric>(cfg, events, nvm, mem,
                                                nullptr);
        pm = nvm.allocate("pm", 1 << 20);
    }

    Cycle
    drainAll(Cycle start = 0)
    {
        Cycle c = start;
        while (!fabric->idle()) {
            ++c;
            events.runUntil(c);
            if (c > 10'000'000)
                throw std::runtime_error("fabric never drained");
        }
        return c;
    }
};

TEST(FaultPath, TransientMediaFaultsRetireToSuccess)
{
    FaultRig rig("media=0.3");
    int acked = 0, ok = 0;
    for (int i = 0; i < 10; ++i) {
        rig.mem.write32(rig.pm + 128 * i, i + 1);
        rig.fabric->persistWrite(rig.pm + 128 * i, 0,
                                 [&](const PersistResult &r) {
            ++acked;
            ok += r.ok ? 1 : 0;
        });
    }
    rig.drainAll();
    EXPECT_EQ(acked, 10);
    EXPECT_EQ(ok, 10);   // Every fault retried to success (seed 7).
    EXPECT_EQ(rig.nvm.commitCount(), 10u);
    EXPECT_GT(rig.fabric->stats().value("fault_media_transient"), 0u);
    EXPECT_GT(rig.fabric->stats().value("fault_retries"), 0u);
    EXPECT_TRUE(rig.fabric->persistFaults().empty());
}

TEST(FaultPath, BudgetExhaustionReportsStructuredFault)
{
    // Certain media fault on every attempt: the budget must cap the
    // retries, the callback must still fire (no hang, no silent loss)
    // and the line must never commit.
    FaultRig rig("media=1.0", 7, 3);
    rig.mem.write32(rig.pm, 99);
    int acked = 0;
    PersistResult last;
    rig.fabric->persistWrite(rig.pm, 0, [&](const PersistResult &r) {
        ++acked;
        last = r;
    });
    rig.drainAll();
    EXPECT_EQ(acked, 1);
    EXPECT_FALSE(last.ok);
    EXPECT_EQ(last.fault.kind, PersistFaultKind::MediaRetryExhausted);
    EXPECT_EQ(last.fault.attempts, 3u);
    EXPECT_EQ(last.fault.lineAddr, rig.pm);
    EXPECT_EQ(rig.nvm.commitCount(), 0u);
    ASSERT_EQ(rig.fabric->persistFaults().size(), 1u);
    EXPECT_GT(rig.fabric->stats().value("fault_backoff_cycles"), 0u);
}

TEST(FaultPath, StickyFaultPoisonsLineAcrossPowerCycles)
{
    FaultRig rig("sticky=1.0");
    rig.mem.write32(rig.pm, 5);
    PersistResult last;
    rig.fabric->persistWrite(rig.pm, 0,
                             [&](const PersistResult &r) { last = r; });
    rig.drainAll();
    EXPECT_FALSE(last.ok);
    EXPECT_EQ(last.fault.kind, PersistFaultKind::MediaSticky);
    EXPECT_EQ(last.fault.attempts, 1u);   // Sticky: no budget burn.
    EXPECT_EQ(rig.nvm.commitCount(), 0u);
    EXPECT_TRUE(rig.nvm.isPoisoned(rig.pm));

    // A later persist to the poisoned line fails immediately.
    Cycle t = rig.drainAll() + 1;
    PersistResult again;
    rig.fabric->persistWrite(rig.pm, t,
                             [&](const PersistResult &r) { again = r; });
    rig.drainAll(t);
    EXPECT_FALSE(again.ok);
    EXPECT_EQ(again.fault.kind, PersistFaultKind::MediaSticky);

    // Media damage survives a power cycle via restoreImageFrom.
    NvmDevice replacement;
    replacement.restoreImageFrom(rig.nvm);
    EXPECT_TRUE(replacement.isPoisoned(rig.pm));
}

TEST(FaultPath, WpqBackpressureNacksThenRetires)
{
    FaultRig rig("wpq=1");
    int acked = 0, ok = 0;
    for (int i = 0; i < 8; ++i) {
        rig.mem.write32(rig.pm + 128 * i, i + 1);
        rig.fabric->persistWrite(rig.pm + 128 * i, 0,
                                 [&](const PersistResult &r) {
            ++acked;
            ok += r.ok ? 1 : 0;
        });
    }
    rig.drainAll();
    EXPECT_EQ(acked, 8);
    EXPECT_EQ(ok, 8);
    EXPECT_EQ(rig.nvm.commitCount(), 8u);
    EXPECT_GT(rig.fabric->stats().value("fault_wpq_nacks"), 0u);
}

TEST(FaultPath, PcieCorruptionTriggersLinkReplay)
{
    FaultRig always("pcie=1.0", 7, 2, SystemDesign::PmFar);
    always.mem.write32(always.pm, 1);
    PersistResult last;
    always.fabric->persistWrite(always.pm, 0,
                                [&](const PersistResult &r) { last = r; });
    always.drainAll();
    EXPECT_FALSE(last.ok);
    EXPECT_EQ(last.fault.kind, PersistFaultKind::LinkReplayExhausted);
    EXPECT_EQ(always.nvm.commitCount(), 0u);

    FaultRig some("pcie=0.4", 7, 8, SystemDesign::PmFar);
    int ok = 0;
    for (int i = 0; i < 10; ++i) {
        some.mem.write32(some.pm + 128 * i, i + 1);
        some.fabric->persistWrite(some.pm + 128 * i, 0,
                                  [&](const PersistResult &r) {
            ok += r.ok ? 1 : 0;
        });
    }
    some.drainAll();
    EXPECT_EQ(ok, 10);
    EXPECT_EQ(some.nvm.commitCount(), 10u);
    EXPECT_GT(some.fabric->stats().value("fault_pcie_replays"), 0u);
}

TEST(FaultPath, SameSeedSameFaultSchedule)
{
    auto run = [](std::uint64_t seed) {
        FaultRig rig("media=0.4", seed);
        for (int i = 0; i < 12; ++i) {
            rig.mem.write32(rig.pm + 128 * i, i + 1);
            rig.fabric->persistWrite(rig.pm + 128 * i, 0, nullptr);
        }
        rig.drainAll();
        return rig.fabric->stats().value("fault_media_transient");
    };
    EXPECT_EQ(run(7), run(7));
    // Different seeds give different schedules (for these seeds).
    EXPECT_NE(run(7), run(1234567));
}

// --- End to end: every app under SBRP with faults -------------------

TEST(FaultEndToEnd, AllAppsRetireEveryFaultUnderSbrp)
{
    // The acceptance bar: at a 1e-3 per-persist fault rate, every app
    // stays consistent, the PMO checker stays clean, and every
    // transient fault retires — no terminal faults, no hangs.
    for (const std::string &app : appRegistryNames()) {
        CrashScenario s;
        s.app = app;
        s.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
        std::string err;
        ASSERT_TRUE(FaultSpec::parse("pcie=1e-3,media=1e-3",
                                     &s.cfg.faults, &err));
        s.cfg.seed = 7;
        ScenarioRunner runner(s);
        CrashProbe p = runner.probe();
        EXPECT_TRUE(p.cleanConsistent) << app;
        EXPECT_EQ(p.cleanPmoViolations, 0u) << app;
        EXPECT_EQ(p.cleanPersistFaults, 0u) << app;
        EXPECT_GT(p.horizon, 0u) << app;
    }
}

// --- Campaign determinism with faults -------------------------------

TEST(FaultCampaign, PinnedSeedVerdictsIdenticalAcrossJobs)
{
    auto campaign = [](unsigned jobs) {
        CampaignConfig cc;
        cc.scenario.app = "Red";
        cc.scenario.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
        std::string err;
        FaultSpec::parse("pcie=5e-3,media=5e-3", &cc.scenario.cfg.faults,
                         &err);
        cc.scenario.cfg.seed = 42;
        cc.jobs = jobs;
        cc.budgetRuns = 10;
        cc.minimize = false;
        CampaignEngine engine(cc);
        CampaignResult res = engine.run();
        // Render verdicts + report to bytes; mask the jobs knob, which
        // is the one legitimate difference between the runs, and strip
        // the wall-clock keys (host timing, never deterministic).
        JsonValue report =
            campaignReportStripWall(campaignReportJson(cc, res));
        report.set("jobs", JsonValue(std::uint64_t{0}));
        std::string bytes = report.dump(2);
        for (const CrashVerdict &v : res.verdicts) {
            bytes += "|" + std::to_string(v.crashAt) + ":" +
                     std::to_string(v.executed) +
                     std::to_string(v.crashed) +
                     std::to_string(v.pmoViolations) +
                     std::to_string(v.recoveredOk) +
                     std::to_string(v.persistFaults);
        }
        return bytes;
    };
    const std::string one = campaign(1);
    const std::string four = campaign(4);
    EXPECT_EQ(one, four);
}

TEST(FaultCampaign, SameSeedSameJobsBitIdenticalOutputs)
{
    // Rerunning the identical faulty campaign must reproduce the full
    // report, the campaign stats JSON, and the minimized replay
    // artifact byte for byte. A crippled retry budget under a certain
    // media fault guarantees failures, so an artifact is captured.
    auto once = []() {
        CampaignConfig cc;
        cc.scenario.app = "MQ";
        cc.scenario.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
        std::string err;
        FaultSpec::parse("media=0.5", &cc.scenario.cfg.faults, &err);
        cc.scenario.cfg.seed = 7;
        cc.scenario.cfg.persistRetryBudget = 1;
        cc.jobs = 2;
        cc.budgetRuns = 12;
        cc.minimize = true;
        CampaignEngine engine(cc);
        CampaignResult res = engine.run();
        std::string bytes =
            campaignReportStripWall(campaignReportJson(cc, res)).dump(2);
        bytes += "|" + engine.stats().dumpJson();
        EXPECT_TRUE(res.hasMinimized);
        if (res.hasMinimized)
            bytes += "|" + res.artifact.toJson().dump(2);
        return bytes;
    };
    EXPECT_EQ(once(), once());
}

// --- Replay artifact v2 ---------------------------------------------

TEST(FaultReplay, V2RoundTripsFaultFields)
{
    CrashScenario s;
    s.app = "Red";
    s.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("pcie=1e-3,wpq=8,media=1e-3,sticky=1e-6",
                                 &s.cfg.faults, &err));
    s.cfg.seed = 99;
    s.cfg.persistRetryBudget = 5;
    s.cfg.retryBackoffBase = 32;

    CrashVerdict v;
    v.crashAt = 1000;
    ReplayArtifact a = ReplayArtifact::fromScenario(s, false, v);
    JsonValue j = a.toJson();

    ReplayArtifact back;
    ASSERT_TRUE(ReplayArtifact::fromJson(j, &back, &err)) << err;
    EXPECT_EQ(back.faultSpec, s.cfg.faults.describe());
    EXPECT_EQ(back.faultSeed, 99u);
    EXPECT_EQ(back.retryBudget, 5u);
    EXPECT_EQ(back.backoffBase, 32u);

    CrashScenario rebuilt = back.toScenario();
    EXPECT_EQ(rebuilt.cfg.faults.describe(), s.cfg.faults.describe());
    EXPECT_EQ(rebuilt.cfg.seed, 99u);
    EXPECT_EQ(rebuilt.cfg.persistRetryBudget, 5u);
    EXPECT_EQ(rebuilt.cfg.retryBackoffBase, 32u);
}

TEST(FaultReplay, V1ArtifactsStillParseWithFaultsDisabled)
{
    CrashScenario s;
    s.app = "Red";
    s.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
    CrashVerdict v;
    ReplayArtifact a = ReplayArtifact::fromScenario(s, false, v);
    JsonValue j = a.toJson();
    // A pre-fault-injection artifact: version 1, no fault fields.
    j.set("version", JsonValue(std::uint64_t{1}));

    ReplayArtifact back;
    std::string err;
    ASSERT_TRUE(ReplayArtifact::fromJson(j, &back, &err)) << err;
    EXPECT_EQ(back.faultSpec, "none");
    EXPECT_FALSE(back.toScenario().cfg.faults.enabled());
}

TEST(FaultReplay, V2RejectsEnabledFaultsWithoutSeed)
{
    CrashScenario s;
    s.app = "Red";
    s.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("media=0.5", &s.cfg.faults, &err));
    s.cfg.seed = 3;
    ReplayArtifact a =
        ReplayArtifact::fromScenario(s, false, CrashVerdict{});
    JsonValue j = a.toJson();
    j.set("fault_seed", JsonValue(std::uint64_t{0}));
    ReplayArtifact back;
    EXPECT_FALSE(ReplayArtifact::fromJson(j, &back, &err));
    EXPECT_NE(err.find("seed"), std::string::npos);
}

// --- Stats JSON schema ----------------------------------------------

TEST(StatsJson, CarriesSchemaVersionAndEscapesNames)
{
    StatGroup weird("we\"ird\ngroup");
    weird.stat("ctr\t1").inc(3);
    weird.dist("lat\"d").record(5);
    StatRegistry reg;
    reg.add(&weird);

    std::string err;
    JsonValue v = JsonValue::parse(reg.dumpJson(), &err);
    ASSERT_TRUE(v.isObject()) << err;
    ASSERT_NE(v.find("schema_version"), nullptr);
    EXPECT_EQ(v.find("schema_version")->asU64(), schema::kStats);
    const JsonValue *g = v.find("we\"ird\ngroup");
    ASSERT_NE(g, nullptr);
    const JsonValue *c = g->find("ctr\t1");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->asU64(), 3u);
    EXPECT_NE(g->find("lat\"d"), nullptr);
}

} // namespace
} // namespace sbrp
