/**
 * @file
 * Negative tests for the application verifiers: hand-corrupted durable
 * images must be rejected. A verifier that cannot fail would make every
 * crash-consistency test in the suite vacuous.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/kvs.hh"
#include "apps/multiqueue.hh"
#include "apps/reduction.hh"
#include "apps/scan.hh"
#include "apps/srad.hh"

namespace sbrp
{
namespace
{

/** Runs the app crash-free so the durable image is complete. */
template <typename App>
NvmDevice
runClean(App &app, const SystemConfig &cfg)
{
    NvmDevice nvm;
    app.setupNvm(nvm);
    GpuSystem gpu(cfg, nvm);
    app.setupGpu(gpu);
    gpu.launch(app.forward());
    return nvm;
}

void
corrupt32(NvmDevice &nvm, Addr a)
{
    std::uint32_t v = nvm.durable().read32(a) ^ 0x5a5a5a5a;
    std::uint8_t bytes[4];
    std::memcpy(bytes, &v, 4);
    nvm.commitLine(a, bytes, 4);
}

TEST(Verifiers, KvsRejectsTornPair)
{
    KvsApp app(ModelKind::Sbrp, KvsParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    ASSERT_TRUE(app.verify(nvm));
    ASSERT_TRUE(app.verifyRecovered(nvm));

    // Tear one pair's value: neither old-nor-new state.
    corrupt32(nvm, nvm.open("kvs.table").base + 4);
    EXPECT_FALSE(app.verify(nvm));
    EXPECT_FALSE(app.verifyRecovered(nvm));
}

TEST(Verifiers, KvsRejectsGapInPrefix)
{
    KvsParams p = KvsParams::test();
    KvsApp app(ModelKind::Sbrp, p);
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);

    // Erase thread 0's FIRST insert while its later ones remain: the
    // per-thread prefix property must fail.
    Addr table = nvm.open("kvs.table").base;
    std::uint8_t zeros[8] = {};
    bool rejected = false;
    for (std::uint32_t s = 0; s < p.slotsPerThread && !rejected; ++s) {
        NvmDevice copy = runClean(app, cfg);
        copy.commitLine(table + 8ull * s, zeros, 8);
        rejected = !app.verifyRecovered(copy);
    }
    EXPECT_TRUE(rejected);
}

TEST(Verifiers, ReductionRejectsWrongTotal)
{
    ReductionApp app(ModelKind::Sbrp, ReductionParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    ASSERT_TRUE(app.verify(nvm));
    corrupt32(nvm, nvm.open("red.out").base);
    EXPECT_FALSE(app.verify(nvm));
}

TEST(Verifiers, ReductionRejectsWrongSubtree)
{
    ReductionApp app(ModelKind::Sbrp, ReductionParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    corrupt32(nvm, nvm.open("red.parr").base + 4);   // Thread 1's sum.
    EXPECT_FALSE(app.verify(nvm));
}

TEST(Verifiers, MultiqueueRejectsEntryAboveTailRule)
{
    MultiqueueApp app(ModelKind::Sbrp, MultiqueueParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    ASSERT_TRUE(app.verifyRecovered(nvm));
    // Corrupt an entry below the tail.
    corrupt32(nvm, nvm.open("mq.entries").base);
    EXPECT_FALSE(app.verifyRecovered(nvm));
}

TEST(Verifiers, MultiqueueRejectsMisalignedTail)
{
    MultiqueueApp app(ModelKind::Sbrp, MultiqueueParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    std::uint32_t bad_tail = 7;   // Not a batch boundary.
    std::uint8_t bytes[4];
    std::memcpy(bytes, &bad_tail, 4);
    nvm.commitLine(nvm.open("mq.tail").base, bytes, 4);
    EXPECT_FALSE(app.verifyRecovered(nvm));
}

TEST(Verifiers, ScanRejectsWrongPrefixSum)
{
    ScanApp app(ModelKind::Sbrp, ScanParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    ASSERT_TRUE(app.verify(nvm));
    // The final iteration buffer is the last region chunk; flip the
    // first element of the final buffer via the app's own address
    // space: buf region, last iteration, g = 0.
    Addr buf = nvm.open("scan.buf").base;
    corrupt32(nvm, buf);   // Iteration-0 value feeds nothing at verify,
                           // so corrupt the whole region start...
    // Safer: corrupt every word until verify fails.
    bool rejected = !app.verify(nvm);
    Addr size = nvm.open("scan.buf").size;
    for (Addr off = 0; off < size && !rejected; off += 4) {
        corrupt32(nvm, buf + off);
        rejected = !app.verify(nvm);
    }
    EXPECT_TRUE(rejected);
}

TEST(Verifiers, SradRejectsWrongPixel)
{
    SradApp app(ModelKind::Sbrp, SradParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    ASSERT_TRUE(app.verify(nvm));
    corrupt32(nvm, nvm.open("srad.out").base + 8);
    EXPECT_FALSE(app.verify(nvm));
}

TEST(Verifiers, SradRejectsWrongNoise)
{
    SradApp app(ModelKind::Sbrp, SradParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    corrupt32(nvm, nvm.open("srad.noise").base + 8);
    EXPECT_FALSE(app.verify(nvm));
}

} // namespace
} // namespace sbrp

#include "apps/checkpoint.hh"

namespace sbrp
{
namespace
{

TEST(Verifiers, CheckpointRejectsTornSnapshot)
{
    CheckpointApp app(ModelKind::Sbrp, CheckpointParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    ASSERT_TRUE(app.verify(nvm));
    ASSERT_TRUE(app.checkpointInvariant(nvm));

    // Corrupt one word of the committed snapshot: torn checkpoint.
    CheckpointParams p = CheckpointParams::test();
    std::uint32_t buf = (p.epochs - 1) % 2;
    Addr b = nvm.open("ckpt.buffers").base +
             std::uint64_t(buf) * p.blocks * p.threadsPerBlock * 4;
    corrupt32(nvm, b + 8);
    EXPECT_FALSE(app.checkpointInvariant(nvm));
    EXPECT_FALSE(app.verify(nvm));
}

TEST(Verifiers, CheckpointRejectsOverrunCounter)
{
    CheckpointApp app(ModelKind::Sbrp, CheckpointParams::test());
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm = runClean(app, cfg);
    std::uint32_t bogus = 99;
    std::uint8_t bytes[4];
    std::memcpy(bytes, &bogus, 4);
    nvm.commitLine(nvm.open("ckpt.epoch").base, bytes, 4);
    EXPECT_FALSE(app.checkpointInvariant(nvm));
}

} // namespace
} // namespace sbrp
