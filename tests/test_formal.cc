/**
 * @file
 * Formal-model tests: the execution trace, the PMO checker's two rules
 * (including deliberate-violation detection — the checker must be able
 * to fail), scope sufficiency, and the litmus harness.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"

namespace sbrp
{
namespace
{

// --- ExecutionTrace ----------------------------------------------------

TEST(Trace, RecordsOpsInOrder)
{
    ExecutionTrace t;
    std::uint64_t p1 = t.recordPersist(0, 0, 0x100);
    std::uint64_t f = t.recordFence(TraceOp::Kind::OFence, 0, 0,
                                    Scope::Block);
    std::uint64_t p2 = t.recordPersist(0, 0, 0x200);
    EXPECT_LT(p1, f);
    EXPECT_LT(f, p2);
    EXPECT_EQ(t.ops().size(), 3u);
}

TEST(Trace, AcquireMatchesPublishedRelease)
{
    ExecutionTrace t;
    std::uint64_t rel = t.recordRel(0, 0, 0xF0, Scope::Block);
    // Not yet published: an acquire sees no match.
    t.recordAcq(1, 0, 0xF0, Scope::Block);
    EXPECT_EQ(t.ops().back().matchedRel, 0u);
    t.publishRel(0xF0, rel);
    t.recordAcq(2, 0, 0xF0, Scope::Block);
    EXPECT_EQ(t.ops().back().matchedRel, rel);
}

TEST(Trace, PendingStoresMoveToCommits)
{
    ExecutionTrace t;
    std::uint64_t a = t.recordPersist(0, 0, 0x100);
    std::uint64_t b = t.recordPersist(0, 0, 0x104);
    t.notePendingStore(0x100, a);
    t.notePendingStore(0x100, b);
    auto ids = t.takePending(0x100);
    EXPECT_EQ(ids.size(), 2u);
    EXPECT_TRUE(t.takePending(0x100).empty());
    t.recordCommit(ids);
    EXPECT_EQ(t.commits().size(), 1u);
}

// --- PmoChecker: hand-built traces -------------------------------------

/** Builds a two-persist trace with a fence between, committed in the
    given order. */
ExecutionTrace
fenceTrace(bool in_order)
{
    ExecutionTrace t;
    std::uint64_t a = t.recordPersist(0, 0, 0x100);
    t.recordFence(TraceOp::Kind::OFence, 0, 0, Scope::Block);
    std::uint64_t b = t.recordPersist(0, 0, 0x200);
    if (in_order) {
        t.recordCommit({a});
        t.recordCommit({b});
    } else {
        t.recordCommit({b});
        t.recordCommit({a});
    }
    return t;
}

TEST(Checker, FenceRuleAccepted)
{
    ExecutionTrace t = fenceTrace(true);
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
    EXPECT_EQ(c.stats().persists, 2u);
}

TEST(Checker, FenceRuleViolationDetected)
{
    ExecutionTrace t = fenceTrace(false);
    PmoChecker c(t);
    auto v = c.check();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "ofence");
}

TEST(Checker, SameBatchCommitIsLegal)
{
    // Both sides of a fence committing in the same line batch is fine
    // (atomic commit).
    ExecutionTrace t;
    std::uint64_t a = t.recordPersist(0, 0, 0x100);
    t.recordFence(TraceOp::Kind::DFence, 0, 0, Scope::Block);
    std::uint64_t b = t.recordPersist(0, 0, 0x104);
    t.recordCommit({a, b});
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
}

TEST(Checker, UncommittedEarlierPersistFlagsViolation)
{
    // b durable while a (before the fence) never committed: violation.
    ExecutionTrace t;
    t.recordPersist(0, 0, 0x100);   // a: never committed.
    t.recordFence(TraceOp::Kind::OFence, 0, 0, Scope::Block);
    std::uint64_t b = t.recordPersist(0, 0, 0x200);
    t.recordCommit({b});
    PmoChecker c(t);
    EXPECT_EQ(c.check().size(), 1u);
}

TEST(Checker, UnorderedPersistsNeverFlagged)
{
    ExecutionTrace t;
    std::uint64_t a = t.recordPersist(0, 0, 0x100);
    std::uint64_t b = t.recordPersist(0, 0, 0x200);
    t.recordCommit({b});
    t.recordCommit({a});
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
}

TEST(Checker, FencesOfOtherThreadsDoNotOrderMine)
{
    ExecutionTrace t;
    std::uint64_t a = t.recordPersist(0, 0, 0x100);
    t.recordFence(TraceOp::Kind::OFence, 1, 0, Scope::Block);   // T1!
    std::uint64_t b = t.recordPersist(0, 0, 0x200);
    t.recordCommit({b});
    t.recordCommit({a});
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
}

ExecutionTrace
relAcqTrace(Scope rel_scope, BlockId acq_block, bool in_order)
{
    ExecutionTrace t;
    std::uint64_t w1 = t.recordPersist(0, 0, 0x100);
    std::uint64_t rel = t.recordRel(0, 0, 0xF0, rel_scope);
    t.publishRel(0xF0, rel);
    t.recordAcq(64, acq_block, 0xF0, rel_scope);
    std::uint64_t w2 = t.recordPersist(64, acq_block, 0x200);
    if (in_order) {
        t.recordCommit({w1});
        t.recordCommit({w2});
    } else {
        t.recordCommit({w2});
        t.recordCommit({w1});
    }
    return t;
}

TEST(Checker, RelAcqAccepted)
{
    ExecutionTrace t = relAcqTrace(Scope::Block, 0, true);
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
    EXPECT_EQ(c.stats().relAcqEdgesChecked, 1u);
}

TEST(Checker, RelAcqViolationDetected)
{
    ExecutionTrace t = relAcqTrace(Scope::Block, 0, false);
    PmoChecker c(t);
    auto v = c.check();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "rel-acq");
}

TEST(Checker, TooNarrowScopeImposesNoEdge)
{
    // Section 5.3's scoped persistency bug: block-scoped release across
    // different blocks — the formal model has no edge, so even the
    // "wrong" commit order is accepted (the bug is in the program).
    ExecutionTrace t = relAcqTrace(Scope::Block, 1, false);
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
    EXPECT_EQ(c.stats().relAcqEdgesChecked, 0u);
}

TEST(Checker, DeviceScopeCoversBlocks)
{
    ExecutionTrace t = relAcqTrace(Scope::Device, 1, false);
    PmoChecker c(t);
    EXPECT_EQ(c.check().size(), 1u);
}

TEST(Checker, UnmatchedAcquireImposesNothing)
{
    ExecutionTrace t;
    std::uint64_t w1 = t.recordPersist(0, 0, 0x100);
    t.recordRel(0, 0, 0xF0, Scope::Block);   // Never published.
    t.recordAcq(64, 0, 0xF0, Scope::Block);
    std::uint64_t w2 = t.recordPersist(64, 0, 0x200);
    t.recordCommit({w2});
    t.recordCommit({w1});
    PmoChecker c(t);
    EXPECT_TRUE(c.check().empty());
}

TEST(Checker, TransitivityViaTotalOrder)
{
    // a -of-> b in T0; b released to T1 which persists c. Committing
    // c before a violates the chain; the per-edge checks catch it
    // because the commit order is total.
    ExecutionTrace t;
    std::uint64_t a = t.recordPersist(0, 0, 0x100);
    t.recordFence(TraceOp::Kind::OFence, 0, 0, Scope::Block);
    std::uint64_t b = t.recordPersist(0, 0, 0x200);
    std::uint64_t rel = t.recordRel(0, 0, 0xF0, Scope::Block);
    t.publishRel(0xF0, rel);
    t.recordAcq(33, 0, 0xF0, Scope::Block);
    std::uint64_t c_id = t.recordPersist(33, 0, 0x300);
    t.recordCommit({c_id});
    t.recordCommit({a});
    t.recordCommit({b});
    PmoChecker c(t);
    // b-before-c is violated (direct rel-acq edge); a-before-b holds.
    auto v = c.check();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "rel-acq");
}

// --- Litmus harness ----------------------------------------------------

TEST(Litmus, ReportsCrashFreeCyclesAndRuns)
{
    LitmusScenario s(
        "basic",
        [](NvmDevice &nvm) { nvm.allocate("x", 128); },
        [](NvmDevice &nvm) {
            KernelProgram k("k", 1, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return nvm.open("x").base; },
                          [](std::uint32_t) { return 1; }, mask::lane(0))
                .dfence(mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool crashed) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            return crashed ? (x == 0 || x == 1) : x == 1;
        });
    LitmusReport rep = s.run(SystemConfig::testDefault(), {0.5});
    EXPECT_EQ(rep.runs.size(), 2u);
    EXPECT_GT(rep.crashFreeCycles, 0u);
    EXPECT_FALSE(rep.runs[0].crashed);
    EXPECT_TRUE(rep.runs[1].crashed);
    EXPECT_TRUE(rep.allOk());
    EXPECT_EQ(rep.totalViolations(), 0u);
}

TEST(Litmus, JudgeFailureIsReported)
{
    LitmusScenario s(
        "impossible",
        [](NvmDevice &nvm) { nvm.allocate("x", 128); },
        [](NvmDevice &nvm) {
            (void)nvm;
            KernelProgram k("k", 1, 32);
            WarpBuilder(k.warp(0, 0), 32).mov(0, 1);
            return k;
        },
        [](const NvmDevice &, bool) { return false; });
    LitmusReport rep = s.run(SystemConfig::testDefault(), {});
    EXPECT_FALSE(rep.allOk());
}

} // namespace
} // namespace sbrp
