/**
 * @file
 * Unit tests for the common utilities: logging, warp bitmasks,
 * statistics, configuration validation, RNG and the event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bitmask.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "sim/event_queue.hh"

namespace sbrp
{
namespace
{

// --- Logging -----------------------------------------------------------

TEST(Log, FormatSubstitutesInOrder)
{
    EXPECT_EQ(log_detail::format("a %s b %s", 1, "x"), "a 1 b x");
    EXPECT_EQ(log_detail::format("no args"), "no args");
    EXPECT_EQ(log_detail::format("%s", 42), "42");
}

TEST(Log, FormatIgnoresExtraArguments)
{
    EXPECT_EQ(log_detail::format("one %s only", 1, 2, 3), "one 1 only");
}

TEST(Log, FormatEscapesDoublePercent)
{
    EXPECT_EQ(log_detail::format("100%% done"), "100% done");
    EXPECT_EQ(log_detail::format("%s%% of %s", 50, 10), "50% of 10");
    EXPECT_EQ(log_detail::format("%%"), "%");
    EXPECT_EQ(log_detail::format("%%%s", 1), "%1");
    // A trailing single % is literal.
    EXPECT_EQ(log_detail::format("tail %"), "tail %");
}

TEST(Log, PanicThrowsPanicError)
{
    EXPECT_THROW(sbrp_panic("boom %s", 7), PanicError);
}

TEST(Log, FatalThrowsFatalError)
{
    EXPECT_THROW(sbrp_fatal("bad config %s", "x"), FatalError);
}

TEST(Log, AssertPassesAndFails)
{
    EXPECT_NO_THROW(sbrp_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(sbrp_assert(false, "reason %s", 9), PanicError);
}

TEST(Log, MessagesCarryContext)
{
    try {
        sbrp_fatal("window %s too big", 99);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("window 99 too big"),
                  std::string::npos);
    }
}

// --- WarpMask ----------------------------------------------------------

TEST(WarpMask, SingleAndTest)
{
    for (std::uint32_t s : {0u, 1u, 15u, 31u}) {
        WarpMask m = WarpMask::single(s);
        EXPECT_EQ(m.count(), 1);
        EXPECT_TRUE(m.test(s));
        EXPECT_FALSE(m.test((s + 1) % 32));
    }
}

TEST(WarpMask, SingleOutOfRangePanics)
{
    EXPECT_THROW(WarpMask::single(32), PanicError);
}

TEST(WarpMask, SetClearCount)
{
    WarpMask m;
    EXPECT_TRUE(m.empty());
    m.set(3);
    m.set(17);
    EXPECT_EQ(m.count(), 2);
    m.clear(3);
    EXPECT_FALSE(m.test(3));
    EXPECT_TRUE(m.test(17));
    m.clearAll();
    EXPECT_TRUE(m.empty());
}

TEST(WarpMask, BitwiseOperators)
{
    WarpMask a(0b1010);
    WarpMask b(0b0110);
    EXPECT_EQ((a | b).raw(), 0b1110u);
    EXPECT_EQ((a & b).raw(), 0b0010u);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(WarpMask(0b0101)));
    a |= b;
    EXPECT_EQ(a.raw(), 0b1110u);
    a &= WarpMask(0b0110);
    EXPECT_EQ(a.raw(), 0b0110u);
    EXPECT_EQ((~WarpMask(0)).raw(), 0xffffffffu);
}

// --- Stats -------------------------------------------------------------

TEST(Stats, GroupRegistersAndReads)
{
    StatGroup g("sm0");
    g.stat("hits").inc();
    g.stat("hits").inc(4);
    EXPECT_EQ(g.value("hits"), 5u);
    EXPECT_EQ(g.value("unknown"), 0u);
    g.resetAll();
    EXPECT_EQ(g.value("hits"), 0u);
}

TEST(Stats, RegistrySumsByPrefix)
{
    StatGroup a("sm0.l1"), b("sm1.l1"), c("fabric");
    a.stat("read_misses").inc(3);
    b.stat("read_misses").inc(4);
    c.stat("read_misses").inc(100);
    StatRegistry reg;
    reg.add(&a);
    reg.add(&b);
    reg.add(&c);
    EXPECT_EQ(reg.sum("sm", "read_misses"), 7u);
    EXPECT_EQ(reg.sum("fabric", "read_misses"), 100u);
    EXPECT_EQ(reg.sum("gpu", "read_misses"), 0u);
}

TEST(Stats, DumpListsNonZeroOnly)
{
    StatGroup g("x");
    g.stat("zero");
    g.stat("one").inc();
    StatRegistry reg;
    reg.add(&g);
    std::string d = reg.dump();
    EXPECT_NE(d.find("x.one 1"), std::string::npos);
    EXPECT_EQ(d.find("x.zero"), std::string::npos);
}

TEST(Stats, DumpIsSortedByGroupName)
{
    StatGroup b("zz"), a("aa"), c("mm");
    a.stat("n").inc();
    b.stat("n").inc();
    c.stat("n").inc();
    StatRegistry reg;
    reg.add(&b);   // Registration order deliberately unsorted.
    reg.add(&a);
    reg.add(&c);
    std::string d = reg.dump();
    EXPECT_LT(d.find("aa.n"), d.find("mm.n"));
    EXPECT_LT(d.find("mm.n"), d.find("zz.n"));
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.p50(), 0u);
    EXPECT_EQ(d.p99(), 0u);
}

TEST(Distribution, TracksMinMaxMeanExactly)
{
    Distribution d;
    d.record(10);
    d.record(20);
    d.record(60);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.min(), 10u);
    EXPECT_EQ(d.max(), 60u);
    EXPECT_DOUBLE_EQ(d.mean(), 30.0);
}

TEST(Distribution, Log2Bucketing)
{
    Distribution d;
    d.record(0);    // bucket 0
    d.record(1);    // bucket 1
    d.record(2);    // bucket 2
    d.record(3);    // bucket 2
    d.record(4);    // bucket 3
    d.record(7);    // bucket 3
    d.record(8);    // bucket 4
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(2), 2u);
    EXPECT_EQ(d.bucketCount(3), 2u);
    EXPECT_EQ(d.bucketCount(4), 1u);
}

TEST(Distribution, PercentilesAreBucketApproximations)
{
    Distribution d;
    // 100 samples of 4 and one of 1000: p50 must report from the [4,7]
    // bucket, p99+ may reach the outlier's bucket.
    for (int i = 0; i < 100; ++i)
        d.record(4);
    d.record(1000);
    std::uint64_t p50 = d.p50();
    EXPECT_GE(p50, 4u);
    EXPECT_LE(p50, 7u);
    // Approximate percentiles stay within the observed value range.
    EXPECT_GE(d.percentile(1.0), d.min());
    EXPECT_LE(d.percentile(1.0), d.max());
}

TEST(Distribution, PercentileOrdering)
{
    Distribution d;
    for (std::uint64_t v = 1; v <= 1024; ++v)
        d.record(v);
    EXPECT_LE(d.percentile(0.10), d.p50());
    EXPECT_LE(d.p50(), d.p99());
    EXPECT_LE(d.p99(), d.max());
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.record(5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.p99(), 0u);
}

TEST(Distribution, InterpolatedPercentilesSpreadWithinABucket)
{
    // All 64 samples land in bucket 7 ([64,127]): midpoint-only
    // percentiles would collapse p50/p95/p99 onto one value, while
    // rank interpolation must keep them strictly ordered across the
    // bucket's range and inside the observed [min, max].
    Distribution d;
    for (std::uint64_t v = 64; v < 128; ++v)
        d.record(v);
    EXPECT_LT(d.p50(), d.p95());
    EXPECT_LT(d.p95(), d.p99());
    EXPECT_GE(d.p50(), d.min());
    EXPECT_LE(d.p99(), d.max());
    EXPECT_EQ(d.percentile(1.0), d.max());
}

TEST(Distribution, SingleSamplePercentilesClampToTheValue)
{
    Distribution d;
    d.record(100);
    EXPECT_EQ(d.p50(), 100u);
    EXPECT_EQ(d.p95(), 100u);
    EXPECT_EQ(d.p99(), 100u);
    EXPECT_EQ(d.percentile(0.0), 100u);
    EXPECT_EQ(d.percentile(1.0), 100u);
}

TEST(Distribution, MergePoolsExactly)
{
    Distribution a, b;
    a.record(4);
    a.record(8);
    b.record(1);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 1013u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 1000u);
    EXPECT_EQ(a.bucketCount(1), 1u);   // The 1 from b.
    EXPECT_EQ(a.bucketCount(3), 1u);   // The 4 from a.

    // Merging an empty distribution is a no-op (and must not corrupt
    // min via the empty sentinel).
    Distribution empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.min(), 1u);

    empty.merge(a);
    EXPECT_EQ(empty.count(), 4u);
    EXPECT_EQ(empty.min(), 1u);
    EXPECT_EQ(empty.max(), 1000u);
}

TEST(Distribution, InterpolationIsMonotoneAcrossBucketBoundaries)
{
    // Samples spanning four log2 buckets ([8,15], [16,31], [32,63],
    // [64,127]): a dense sweep of percentile(p) must be nondecreasing
    // through every bucket crossing — interpolating by rank within one
    // bucket must never report a value above the next bucket's picks.
    Distribution d;
    for (std::uint64_t v = 8; v < 128; ++v)
        d.record(v);
    std::uint64_t prev = 0;
    for (int i = 0; i <= 100; ++i) {
        std::uint64_t q = d.percentile(i / 100.0);
        EXPECT_GE(q, prev) << "p=" << i / 100.0;
        EXPECT_GE(q, d.min()) << "p=" << i / 100.0;
        EXPECT_LE(q, d.max()) << "p=" << i / 100.0;
        prev = q;
    }
    EXPECT_EQ(d.percentile(1.0), d.max());
}

TEST(Distribution, MergedPercentilesMatchPooledRecording)
{
    // Merging two histograms must be indistinguishable from recording
    // every sample into one: identical buckets mean identical
    // percentiles, not merely compatible summaries.
    Distribution left, right, pooled;
    for (std::uint64_t v = 1; v <= 300; ++v) {
        ((v % 2) ? left : right).record(v);
        pooled.record(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), pooled.count());
    EXPECT_EQ(left.sum(), pooled.sum());
    for (std::uint32_t b = 0; b < Distribution::kBuckets; ++b)
        EXPECT_EQ(left.bucketCount(b), pooled.bucketCount(b)) << b;
    for (int i = 0; i <= 20; ++i)
        EXPECT_EQ(left.percentile(i / 20.0), pooled.percentile(i / 20.0))
            << "p=" << i / 20.0;
}

TEST(Stats, DistributionAppearsInDump)
{
    StatGroup g("sm0");
    g.dist("lat").record(8);
    g.dist("lat").record(16);
    StatRegistry reg;
    reg.add(&g);
    std::string d = reg.dump();
    EXPECT_NE(d.find("sm0.lat"), std::string::npos);
    EXPECT_NE(d.find("count=2"), std::string::npos);
}

TEST(Stats, DumpJsonIsWellFormedAndSorted)
{
    StatGroup b("zz"), a("aa");
    a.stat("hits").inc(3);
    a.dist("lat").record(7);
    b.stat("miss").inc(1);
    StatRegistry reg;
    reg.add(&b);
    reg.add(&a);
    std::string j = reg.dumpJson();
    // Groups sorted: "aa" serialized before "zz".
    EXPECT_LT(j.find("\"aa\""), j.find("\"zz\""));
    EXPECT_NE(j.find("\"hits\": 3"), std::string::npos);
    EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
    // Braces balance (cheap well-formedness proxy).
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
}

// --- Config ------------------------------------------------------------

TEST(Config, PaperDefaultIsValid)
{
    EXPECT_NO_THROW(SystemConfig::paperDefault().validate());
    EXPECT_NO_THROW(SystemConfig::testDefault().validate());
}

TEST(Config, PaperGeometryMatchesTable1)
{
    SystemConfig cfg = SystemConfig::paperDefault();
    EXPECT_EQ(cfg.numSms, 30u);
    EXPECT_EQ(cfg.window, 6u);
    EXPECT_EQ(cfg.l1Bytes, 64u * 1024);
    EXPECT_EQ(cfg.l2Bytes, 3u * 1024 * 1024);
    EXPECT_EQ(cfg.l1Lines(), 512u);
    EXPECT_EQ(cfg.pbEntries(), 256u);   // 50% coverage default.
    EXPECT_EQ(cfg.maxThreadsPerBlock, 1024u);
}

TEST(Config, RejectsBadWarpSize)
{
    SystemConfig cfg;
    cfg.warpSize = 16;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, RejectsZeroWindow)
{
    SystemConfig cfg;
    cfg.window = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, RejectsBadPbCoverage)
{
    SystemConfig cfg;
    cfg.pbCoverage = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.pbCoverage = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, RejectsNonPowerOfTwoLine)
{
    SystemConfig cfg;
    cfg.lineBytes = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, EadrRequiresPmFar)
{
    SystemConfig cfg = SystemConfig::paperDefault(ModelKind::Sbrp,
                                                  SystemDesign::PmNear);
    cfg.persistPoint = PersistPoint::Eadr;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.design = SystemDesign::PmFar;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, GpmRequiresPmFar)
{
    SystemConfig cfg;
    cfg.model = ModelKind::Gpm;
    cfg.design = SystemDesign::PmNear;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, DescribeMentionsModelAndDesign)
{
    std::string d = SystemConfig::paperDefault(ModelKind::Epoch,
                                               SystemDesign::PmFar)
                        .describe();
    EXPECT_NE(d.find("epoch"), std::string::npos);
    EXPECT_NE(d.find("PM-far"), std::string::npos);
}

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UnitStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double u = r.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

// --- EventQueue --------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.runUntil(25);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameCycleFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&, i]() { order.push_back(i); });
    q.runUntil(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), ~0ull);
    q.schedule(17, []() {});
    EXPECT_EQ(q.nextEventCycle(), 17u);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() {
        ++fired;
        q.schedule(2, [&]() { ++fired; });
    });
    q.runUntil(3);
    EXPECT_EQ(fired, 2);
}

// --- Enum names --------------------------------------------------------

TEST(Types, ToStringCoversEnums)
{
    EXPECT_STREQ(toString(Space::Nvm), "nvm");
    EXPECT_STREQ(toString(Scope::Device), "device");
    EXPECT_STREQ(toString(SystemDesign::PmFar), "far");
    EXPECT_STREQ(toString(ModelKind::Gpm), "GPM");
    EXPECT_STREQ(toString(PersistPoint::Eadr), "eADR");
    EXPECT_STREQ(toString(FlushPolicy::Window), "window");
}

} // namespace
} // namespace sbrp
