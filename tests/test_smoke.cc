/**
 * @file
 * End-to-end smoke tests: tiny kernels through the full simulator on
 * every persistency model and system design.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"

namespace sbrp
{
namespace
{

SystemConfig
smallCfg(ModelKind model, SystemDesign design)
{
    return SystemConfig::testDefault(model, design);
}

/** One warp persists 32 ints and dfences; data must be durable. */
TEST(Smoke, SingleWarpPersistSbrp)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 32 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);

    KernelProgram k("persist32", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return data + 4 * l; },
                  [](std::uint32_t l) { return l + 100; })
        .dfence();

    auto res = gpu.launch(k);
    EXPECT_FALSE(res.crashed);
    EXPECT_GT(res.cycles, 0u);

    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(nvm.durable().read32(data + 4 * l), l + 100) << l;
}

TEST(Smoke, SingleWarpPersistEpochNear)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 32 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Epoch, SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);

    KernelProgram k("persist32", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return data + 4 * l; },
                  [](std::uint32_t l) { return l + 7; })
        .fence(Scope::System);

    auto res = gpu.launch(k);
    EXPECT_FALSE(res.crashed);
    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(nvm.durable().read32(data + 4 * l), l + 7) << l;
}

TEST(Smoke, GpmOnPmFar)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 32 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Gpm, SystemDesign::PmFar);
    GpuSystem gpu(cfg, nvm);

    KernelProgram k("persist32", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return data + 4 * l; },
                  [](std::uint32_t l) { return l; })
        .fence(Scope::System);

    auto res = gpu.launch(k);
    EXPECT_FALSE(res.crashed);
    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(nvm.durable().read32(data + 4 * l), l) << l;
}

/** Volatile (GDDR) stores never reach the durable image. */
TEST(Smoke, VolatileStoresStayVolatile)
{
    NvmDevice nvm;
    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);
    Addr buf = gpu.gddrAlloc(32 * 4);

    KernelProgram k("volatile", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return buf + 4 * l; },
                  [](std::uint32_t l) { return l + 1; })
        .dfence();

    gpu.launch(k);
    EXPECT_EQ(nvm.commitCount(), 0u);
    // Visible in the volatile view though.
    EXPECT_EQ(gpu.mem().read32(buf), 1u);
}

/** Crash immediately: nothing durable; after power-cycle, data is gone. */
TEST(Smoke, CrashLosesUncommitted)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 32 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.flushPolicy = FlushPolicy::Lazy;   // Keep everything buffered.
    {
        GpuSystem gpu(cfg, nvm);
        KernelProgram k("persist32", 1, 32);
        WarpBuilder(k.warp(0, 0), 32)
            .storeImm([&](std::uint32_t l) { return data + 4 * l; },
                      [](std::uint32_t l) { return l + 100; });
        auto res = gpu.launch(k, 5);   // Crash at cycle 5.
        EXPECT_TRUE(res.crashed);
    }
    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(nvm.durable().read32(data + 4 * l), 0u) << l;

    // Power-up again; the region reopens by name.
    GpuSystem gpu2(cfg, nvm);
    EXPECT_EQ(nvm.open("data").base, data);
    EXPECT_EQ(gpu2.mem().read32(data), 0u);
}

/** Two warps synchronize via block-scoped pRel/pAcq. */
TEST(Smoke, BlockScopedRelAcq)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 2 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    ExecutionTrace trace;
    GpuSystem gpu(cfg, nvm, &trace);
    Addr flag = gpu.gddrAlloc(4);

    KernelProgram k("relacq", 1, 64);   // Two warps.
    // Warp 0, lane 0: persist data[0], release flag.
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t) { return data; },
                  [](std::uint32_t) { return 11; }, mask::lane(0))
        .prel([&](std::uint32_t) { return flag; }, 1, Scope::Block,
              mask::lane(0));
    // Warp 1, lane 0: acquire flag, persist data[1].
    WarpBuilder(k.warp(0, 1), 32)
        .pacq([&](std::uint32_t) { return flag; }, 1, Scope::Block,
              mask::lane(0))
        .storeImm([&](std::uint32_t) { return data + 4; },
                  [](std::uint32_t) { return 22; }, mask::lane(0))
        .dfence(mask::lane(0));

    auto res = gpu.launch(k);
    EXPECT_FALSE(res.crashed);
    EXPECT_EQ(nvm.durable().read32(data), 11u);
    EXPECT_EQ(nvm.durable().read32(data + 4), 22u);

    PmoChecker checker(trace);
    auto violations = checker.check();
    EXPECT_TRUE(violations.empty());
    EXPECT_EQ(checker.stats().relAcqEdgesChecked, 1u);
}

/** Device-scoped release across blocks on different SMs. */
TEST(Smoke, DeviceScopedRelAcq)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 2 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    ExecutionTrace trace;
    GpuSystem gpu(cfg, nvm, &trace);
    Addr flag = gpu.gddrAlloc(4);

    KernelProgram k("relacq_dev", 2, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t) { return data; },
                  [](std::uint32_t) { return 33; }, mask::lane(0))
        .prel([&](std::uint32_t) { return flag; }, 1, Scope::Device,
              mask::lane(0));
    WarpBuilder(k.warp(1, 0), 32)
        .pacq([&](std::uint32_t) { return flag; }, 1, Scope::Device,
              mask::lane(0))
        .storeImm([&](std::uint32_t) { return data + 4; },
                  [](std::uint32_t) { return 44; }, mask::lane(0))
        .dfence(mask::lane(0));

    auto res = gpu.launch(k);
    EXPECT_FALSE(res.crashed);
    EXPECT_EQ(nvm.durable().read32(data), 33u);
    EXPECT_EQ(nvm.durable().read32(data + 4), 44u);

    PmoChecker checker(trace);
    EXPECT_TRUE(checker.check().empty());
    EXPECT_EQ(checker.stats().relAcqEdgesChecked, 1u);
}

/** oFence orders two persists from the same thread. */
TEST(Smoke, OFenceIntraThread)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 2 * 128);   // Two distinct lines.

    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    ExecutionTrace trace;
    GpuSystem gpu(cfg, nvm, &trace);

    KernelProgram k("ofence", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t) { return data; },
                  [](std::uint32_t) { return 1; }, mask::lane(0))
        .ofence(mask::lane(0))
        .storeImm([&](std::uint32_t) { return data + 128; },
                  [](std::uint32_t) { return 2; }, mask::lane(0))
        .dfence(mask::lane(0));

    gpu.launch(k);
    EXPECT_EQ(nvm.durable().read32(data), 1u);
    EXPECT_EQ(nvm.durable().read32(data + 128), 2u);

    PmoChecker checker(trace);
    EXPECT_TRUE(checker.check().empty());
    EXPECT_GE(checker.stats().fenceEpochsChecked, 2u);
}

/** Loads, barriers and compute run across many warps and blocks. */
TEST(Smoke, MixedKernelManyBlocks)
{
    NvmDevice nvm;
    Addr out = nvm.allocate("out", 8 * 64 * 4);

    SystemConfig cfg = smallCfg(ModelKind::Sbrp, SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);
    Addr in = gpu.gddrAlloc(8 * 64 * 4);
    for (std::uint32_t i = 0; i < 8 * 64; ++i)
        gpu.mem().write32(in + 4 * i, i * 3);

    KernelProgram k("mixed", 8, 64);
    for (BlockId b = 0; b < 8; ++b) {
        for (std::uint32_t w = 0; w < 2; ++w) {
            std::uint32_t base = b * 64 + w * 32;
            WarpBuilder(k.warp(b, w), 32)
                .load(0, [&](std::uint32_t l) {
                    return in + 4 * (base + l);
                })
                .addImm(0, 5)
                .compute(20)
                .barrier()
                .store([&](std::uint32_t l) {
                    return out + 4 * (base + l);
                }, 0)
                .dfence();
        }
    }

    auto res = gpu.launch(k);
    EXPECT_FALSE(res.crashed);
    for (std::uint32_t i = 0; i < 8 * 64; ++i)
        EXPECT_EQ(nvm.durable().read32(out + 4 * i), i * 3 + 5) << i;
}

/** The same kernel takes longer on PM-far than PM-near. */
TEST(Smoke, PmFarSlowerThanPmNear)
{
    auto run = [](SystemDesign design) {
        NvmDevice nvm;
        Addr data = nvm.allocate("data", 1024 * 4);
        SystemConfig cfg = smallCfg(ModelKind::Sbrp, design);
        GpuSystem gpu(cfg, nvm);
        KernelProgram k("stream", 1, 128);
        for (std::uint32_t w = 0; w < 4; ++w) {
            WarpBuilder wb(k.warp(0, w), 32);
            for (std::uint32_t rep = 0; rep < 8; ++rep) {
                wb.storeImm([&, w, rep](std::uint32_t l) {
                    return data + 4 * (rep * 128 + w * 32 + l);
                }, [](std::uint32_t l) { return l; });
                wb.ofence();
            }
            wb.dfence();
        }
        GpuSystem::LaunchResult res = gpu.launch(k);
        return res.cycles;
    };

    Cycle near_c = run(SystemDesign::PmNear);
    Cycle far_c = run(SystemDesign::PmFar);
    EXPECT_LT(near_c, far_c);
}

} // namespace
} // namespace sbrp
