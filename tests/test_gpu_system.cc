/**
 * @file
 * GpuSystem-level behaviours: cumulative clocks across launches, stat
 * aggregation, power-cycle workflows over one NvmDevice, namespace
 * persistence, and block dispatch balance.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"

namespace sbrp
{
namespace
{

KernelProgram
tinyKernel(Addr data)
{
    KernelProgram k("tiny", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([data](std::uint32_t l) { return data + 4 * l; },
                  [](std::uint32_t l) { return l + 1; })
        .dfence();
    return k;
}

TEST(GpuSystem, ClockAccumulatesAcrossLaunches)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    GpuSystem gpu(SystemConfig::testDefault(), nvm);
    EXPECT_EQ(gpu.nowCycle(), 0u);
    auto r1 = gpu.launch(tinyKernel(data));
    Cycle after1 = gpu.nowCycle();
    EXPECT_EQ(after1, r1.cycles);
    auto r2 = gpu.launch(tinyKernel(data));
    EXPECT_EQ(gpu.nowCycle(), after1 + r2.cycles);
}

TEST(GpuSystem, SumSmStatAggregates)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    GpuSystem gpu(SystemConfig::testDefault(), nvm);
    gpu.launch(tinyKernel(data));
    EXPECT_GT(gpu.sumSmStat("instructions"), 0u);
    EXPECT_GT(gpu.sumSmStat("persist_stores"), 0u);
    EXPECT_EQ(gpu.sumSmStat("no_such_counter"), 0u);
}

TEST(GpuSystem, StatsDumpMentionsFabricAndSms)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    GpuSystem gpu(SystemConfig::testDefault(), nvm);
    gpu.launch(tinyKernel(data));
    std::string d = gpu.stats().dump();
    EXPECT_NE(d.find("fabric.persist_writes"), std::string::npos);
    EXPECT_NE(d.find("sm0.instructions"), std::string::npos);
}

TEST(GpuSystem, PowerCycleKeepsNamespaceAndDurableData)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("survivor", 256);
    {
        GpuSystem gpu(SystemConfig::testDefault(), nvm);
        gpu.launch(tinyKernel(data));
    }   // Power off.
    {
        GpuSystem gpu(SystemConfig::testDefault(), nvm);
        EXPECT_EQ(nvm.open("survivor").base, data);
        // The fresh GPU reads durable contents through its volatile view.
        EXPECT_EQ(gpu.mem().read32(data + 4), 2u);
        // And can extend them.
        KernelProgram k("extend", 1, 32);
        WarpBuilder(k.warp(0, 0), 32)
            .load(0, [data](std::uint32_t l) { return data + 4 * l; })
            .addImm(0, 100)
            .store([data](std::uint32_t l) { return data + 4 * l; }, 0)
            .dfence();
        gpu.launch(k);
    }
    EXPECT_EQ(nvm.durable().read32(data + 4), 102u);
}

TEST(GpuSystem, ModelsCanBeSwappedAcrossPowerCycles)
{
    // Write under SBRP, recover/extend under the epoch model: the
    // durable format is model-independent.
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    {
        GpuSystem gpu(SystemConfig::testDefault(ModelKind::Sbrp,
                                                SystemDesign::PmNear),
                      nvm);
        gpu.launch(tinyKernel(data));
    }
    {
        GpuSystem gpu(SystemConfig::testDefault(ModelKind::Epoch,
                                                SystemDesign::PmNear),
                      nvm);
        KernelProgram k("epoch_read", 1, 32);
        WarpBuilder(k.warp(0, 0), 32)
            .load(0, [data](std::uint32_t l) { return data + 4 * l; })
            .store([data](std::uint32_t l) { return data + 128 + 4 * l; },
                   0)
            .fence(Scope::System);
        gpu.launch(k);
    }
    EXPECT_EQ(nvm.durable().read32(data + 128), 1u);
}

TEST(GpuSystem, DispatchBalancesBlocksAcrossSms)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 64 * 128);
    SystemConfig cfg = SystemConfig::testDefault();   // 4 SMs.
    GpuSystem gpu(cfg, nvm);
    KernelProgram k("spread", 8, 32);
    for (BlockId b = 0; b < 8; ++b) {
        WarpBuilder(k.warp(b, 0), 32)
            .storeImm([&, b](std::uint32_t l) {
                return data + 128ull * b + 4 * (l % 32);
            }, [](std::uint32_t l) { return l + 1; })
            .compute(200);
    }
    gpu.launch(k);
    // Every SM should have hosted at least one block.
    for (SmId i = 0; i < cfg.numSms; ++i)
        EXPECT_GE(gpu.sm(i).stats().value("blocks_launched"), 1u) << i;
}

TEST(GpuSystem, TraceIsOptional)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    ExecutionTrace trace;
    GpuSystem gpu(SystemConfig::testDefault(), nvm, &trace);
    gpu.launch(tinyKernel(data));
    EXPECT_GT(trace.size(), 0u);
    EXPECT_FALSE(trace.commits().empty());
}

TEST(GpuSystem, NulloptMeansNoCrash)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    GpuSystem gpu(SystemConfig::testDefault(), nvm);
    auto r = gpu.launch(tinyKernel(data), std::nullopt);
    EXPECT_FALSE(r.crashed);
}

TEST(GpuSystem, CrashAtCycleZeroReallyCrashes)
{
    // Cycle 0 used to be the "no crash" sentinel; it is now an honest
    // (immediate) crash point.
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 256);
    GpuSystem gpu(SystemConfig::testDefault(), nvm);
    auto r = gpu.launch(tinyKernel(data), Cycle{0});
    EXPECT_TRUE(r.crashed);
}

} // namespace
} // namespace sbrp
