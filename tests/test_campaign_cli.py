#!/usr/bin/env python3
"""End-to-end contract test for crashfuzz sharded campaigns.

Drives the real binary through the full crash-tolerant service loop:

  1. plan-only: --shards without --journal writes a digested manifest;
  2. worker mode: each shard journals its verdicts, exit 0;
  3. merge mode: the folded report is byte-identical (per
     tools/report_compare.py, which strips `execution`) to a
     single-process campaign of the same scenario;
  4. kill -9 a worker mid-shard, resume, merge: same report;
  5. SIGTERM a worker: it finishes the in-flight point, exits 3, and
     the journal stays clean for resume;
  6. a corrupted journal is refused with exit 2 by worker and merger;
  7. double resume is idempotent; fresh mode refuses existing journals;
  8. supervised mode (fork/exec workers) reproduces the same report;
  9. --replay on a nonexistent artifact exits 2; conflicting flag
     combinations exit 2.

Usage:
    test_campaign_cli.py <crashfuzz-binary> <report_compare.py>
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# MQ under the seeded --unsafe-relaxed-order bug fails with real
# failing points at this budget, so the compared reports carry the full
# failure tally, minimization and embedded replay artifact.
APP_ARGS = ["--app", "MQ", "--model", "sbrp", "--unsafe-relaxed-order",
            "--budget", "30"]


def run(args, **kw):
    return subprocess.run(args, capture_output=True, text=True, **kw)


def fail(msg, proc=None):
    print(f"FAIL {msg}")
    if proc is not None:
        print(f"  exit={proc.returncode}")
        print(f"  stdout: {proc.stdout.strip()[:2000]}")
        print(f"  stderr: {proc.stderr.strip()[:2000]}")
    return False


def main(argv):
    if len(argv) != 3:
        print("usage: test_campaign_cli.py <crashfuzz> <report_compare>",
              file=sys.stderr)
        return 2
    crashfuzz, report_compare = argv[1], argv[2]
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        single = os.path.join(tmp, "single.json")
        manifest = os.path.join(tmp, "manifest.json")

        # Reference: single-process campaign. The seeded
        # --unsafe-relaxed-order bug makes Red fail, so the report has
        # real failing points and a minimization — the richest document
        # to compare against.
        p = run([crashfuzz] + APP_ARGS +
                ["--jobs", "2", "--report", single])
        if p.returncode != 1:
            ok = fail("single-process campaign should exit 1", p)

        # 1. Plan-only mode writes a digested manifest.
        p = run([crashfuzz] + APP_ARGS +
                ["--shards", "3", "--manifest", manifest])
        if p.returncode != 0:
            ok = fail("plan-only should exit 0", p)
        else:
            with open(manifest, encoding="utf-8") as f:
                doc = json.load(f)
            if doc.get("kind") != "campaign-manifest":
                ok = fail(f"manifest kind {doc.get('kind')!r}")
            if len(doc.get("shard_ranges", [])) != 3:
                ok = fail("manifest should carry 3 shard ranges")
            if not doc.get("digest"):
                ok = fail("manifest should carry a digest")

        # 2. Worker mode: run every shard to completion.
        jdir = os.path.join(tmp, "journals")
        for shard in range(3):
            p = run([crashfuzz, "--manifest", manifest, "--journal",
                     jdir, "--shard-index", str(shard)])
            if p.returncode != 0:
                ok = fail(f"worker shard {shard} should exit 0", p)
            if not os.path.exists(
                    os.path.join(jdir, f"shard-{shard}.journal")):
                ok = fail(f"shard {shard} journal missing")

        # 3. Merge: byte-identical to the single-process report after
        # stripping the execution section.
        merged = os.path.join(tmp, "merged.json")
        p = run([crashfuzz, "--manifest", manifest, "--journal", jdir,
                 "--merge", "--report", merged])
        if p.returncode != 1:
            ok = fail("merge of a failing campaign should exit 1", p)
        p = run([sys.executable, report_compare, merged, single])
        if p.returncode != 0:
            ok = fail("merged report should equal single-process", p)

        # 7a. Double resume is idempotent: nothing re-runs.
        p = run([crashfuzz, "--manifest", manifest, "--journal", jdir,
                 "--shard-index", "0", "--resume"])
        if p.returncode != 0:
            ok = fail("double resume should exit 0", p)
        elif "already journaled" not in p.stdout:
            ok = fail("double resume should report skipped verdicts", p)

        # 7b. Fresh (non-resume) worker refuses the existing journal.
        p = run([crashfuzz, "--manifest", manifest, "--journal", jdir,
                 "--shard-index", "0"])
        if p.returncode != 2 or "--resume" not in (p.stderr + p.stdout):
            ok = fail("fresh worker over existing journal: want exit 2 "
                      "pointing at --resume", p)

        # 4. kill -9 a throttled worker mid-shard, then resume: the
        # merged report is still identical.
        kdir = os.path.join(tmp, "journals_kill")
        proc = subprocess.Popen(
            [crashfuzz, "--manifest", manifest, "--journal", kdir,
             "--shard-index", "1", "--throttle-ms", "200"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        time.sleep(0.7)
        proc.kill()                      # SIGKILL: may tear a record.
        proc.wait()
        for shard in range(3):
            p = run([crashfuzz, "--manifest", manifest, "--journal",
                     kdir, "--shard-index", str(shard), "--resume"])
            if p.returncode != 0:
                ok = fail(f"post-kill resume shard {shard}", p)
        kmerged = os.path.join(tmp, "merged_kill.json")
        p = run([crashfuzz, "--manifest", manifest, "--journal", kdir,
                 "--merge", "--report", kmerged])
        if p.returncode != 1:
            ok = fail("post-kill merge should exit 1 (failures)", p)
        p = run([sys.executable, report_compare, kmerged, single])
        if p.returncode != 0:
            ok = fail("killed+resumed report should equal "
                      "single-process", p)

        # 5. SIGTERM: graceful interrupt, exit 3, journal resumable.
        tdir = os.path.join(tmp, "journals_term")
        proc = subprocess.Popen(
            [crashfuzz, "--manifest", manifest, "--journal", tdir,
             "--shard-index", "0", "--throttle-ms", "200"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        time.sleep(0.7)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        if proc.returncode != 3:
            ok = fail(f"SIGTERM'd worker should exit 3, got "
                      f"{proc.returncode}; stdout {out[:500]!r} "
                      f"stderr {err[:500]!r}")
        p = run([crashfuzz, "--manifest", manifest, "--journal", tdir,
                 "--shard-index", "0", "--resume"])
        if p.returncode != 0:
            ok = fail("resume after SIGTERM should exit 0", p)

        # 6. Corruption: garbage injected mid-journal is refused by
        # worker resume and by the merger, exit 2 both times.
        cpath = os.path.join(jdir, "shard-2.journal")
        with open(cpath, encoding="utf-8") as f:
            lines = f.read().splitlines(keepends=True)
        lines.insert(len(lines) - 1, "GARBAGE\n")
        with open(cpath, "w", encoding="utf-8") as f:
            f.writelines(lines)
        p = run([crashfuzz, "--manifest", manifest, "--journal", jdir,
                 "--shard-index", "2", "--resume"])
        if p.returncode != 2:
            ok = fail("resume over corrupt journal should exit 2", p)
        p = run([crashfuzz, "--manifest", manifest, "--journal", jdir,
                 "--merge", "--report", os.path.join(tmp, "x.json")])
        if p.returncode != 2:
            ok = fail("merge over corrupt journal should exit 2", p)

        # A torn *trailing* record, by contrast, resumes cleanly.
        with open(cpath, "w", encoding="utf-8") as f:
            f.writelines(lines[:-2] + [lines[-1][: len(lines[-1]) // 2]])
        p = run([crashfuzz, "--manifest", manifest, "--journal", jdir,
                 "--shard-index", "2", "--resume"])
        if p.returncode != 0 or "torn" not in (p.stdout + p.stderr):
            ok = fail("torn trailing record should resume (exit 0, "
                      "naming the tear)", p)

        # 8. Supervised mode: fork/exec workers, merge, same report.
        sdir = os.path.join(tmp, "journals_sup")
        smerged = os.path.join(tmp, "merged_sup.json")
        p = run([crashfuzz] + APP_ARGS +
                ["--shards", "2", "--journal", sdir,
                 "--report", smerged])
        if p.returncode != 1:
            ok = fail("supervised failing campaign should exit 1", p)
        p = run([sys.executable, report_compare, smerged, single])
        if p.returncode != 0:
            ok = fail("supervised report should equal single-process",
                      p)
        # Supervised fresh mode refuses to clobber existing journals.
        p = run([crashfuzz] + APP_ARGS +
                ["--shards", "2", "--journal", sdir,
                 "--report", smerged])
        if p.returncode != 2:
            ok = fail("supervised fresh over existing journals should "
                      "exit 2", p)

        # 8b. Bursty journal growth under --throttle-ms must not trip
        # the progress timeout (the journal grows in bursts, but every
        # burst lands well inside the stall window), and the heartbeat
        # cadence must survive the throttled stretches: workers slice
        # their throttle sleeps so beats keep flowing mid-sleep.
        hdir = os.path.join(tmp, "journals_hb")
        hreport = os.path.join(tmp, "merged_hb.json")
        p = run([crashfuzz, "--app", "MQ", "--model", "sbrp",
                 "--budget", "8", "--shards", "2", "--journal", hdir,
                 "--report", hreport, "--throttle-ms", "250",
                 "--shard-timeout-ms", "1500", "--heartbeat-ms", "80"])
        if p.returncode != 0:
            ok = fail("throttled heartbeat campaign should exit 0", p)
        elif p.stdout.count("(1 launch)") != 2:
            ok = fail("bursty throttled journals must not look like "
                      "stalls (expected 1 launch per shard)", p)
        else:
            with open(hreport, encoding="utf-8") as f:
                hb = json.load(f)["execution"].get("heartbeat", {})
            if hb.get("worker_restarts") != 0:
                ok = fail(f"expected 0 worker restarts, got {hb}")
            if hb.get("interval_ms") != 80:
                ok = fail(f"heartbeat interval not recorded: {hb}")
            for shard in (0, 1):
                side = os.path.join(hdir,
                                    f"shard-{shard}.heartbeat.jsonl")
                beats = []
                with open(side, encoding="utf-8") as f:
                    for line in f:
                        try:
                            beats.append(json.loads(line))
                        except json.JSONDecodeError:
                            continue
                # 4 points x 250 ms throttle at an 80 ms cadence:
                # well over 4 beats unless slicing broke.
                if len(beats) < 4:
                    ok = fail(f"shard {shard}: cadence lost during "
                              f"throttle ({len(beats)} beats)")
                elif not beats[-1].get("final"):
                    ok = fail(f"shard {shard}: no final heartbeat")
            if hb.get("records", 0) < 8:
                ok = fail(f"merged heartbeat record count too low: "
                          f"{hb}")

        # The ops console renders one deterministic frame and exits 0.
        campaign_top = os.path.join(os.path.dirname(report_compare),
                                    "campaign_top.py")
        p = run([sys.executable, campaign_top, hdir, "--once"])
        if p.returncode != 0 or "total:" not in p.stdout:
            ok = fail("campaign_top --once should render and exit 0", p)

        # 9. Infrastructure and usage errors exit 2.
        for args, what in (
                (["--replay", os.path.join(tmp, "no-such.json")],
                 "nonexistent replay artifact"),
                (["--manifest", manifest, "--shard-index", "0"],
                 "worker without --journal"),
                (["--shard-index", "0", "--journal", jdir],
                 "worker without --manifest"),
                (["--manifest", manifest, "--journal", jdir, "--merge",
                  "--shard-index", "1"], "merge+worker conflict"),
                (APP_ARGS + ["--shards", "0"], "zero shards"),
                (APP_ARGS + ["--shards", "2", "--journal",
                             os.path.join(tmp, "j9"), "--replay",
                             "x.json"], "sharded replay conflict"),
                (APP_ARGS + ["--resume"], "bare --resume"),
                (["--app", "MQ", "--shards", "2"],
                 "plan-only without --manifest")):
            p = run([crashfuzz] + args)
            if p.returncode != 2:
                ok = fail(f"{what} should exit 2", p)

    if ok:
        print(f"ok   {crashfuzz}: plan/worker/kill/resume/merge/"
              "supervise contract holds")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
