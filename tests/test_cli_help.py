#!/usr/bin/env python3
"""CLI --help completeness test.

For each (binary, source) pair given on the command line:
  1. `binary --help` must exit 0 and print a usage listing;
  2. every flag the source actually parses (the `a == "--flag"`
     comparisons in its option loop) must appear in that listing;
  3. `binary -h` must print the same listing.

Extracting the flag set from the parser source keeps the test
self-maintaining: adding a flag without documenting it in usage() fails
here, with the missing flag named.

Usage:
    test_cli_help.py <binary> <source.cc> [<binary> <source.cc> ...]
"""

import re
import subprocess
import sys


def check_tool(binary, source):
    with open(source, "r", encoding="utf-8") as f:
        text = f.read()
    flags = sorted(set(re.findall(r'a == "(--[a-z0-9-]+)"', text)))
    if not flags:
        print(f"FAIL {binary}: no parsed flags found in {source} "
              "(extraction regex out of date?)")
        return False

    ok = True
    help_out = None
    for opt in ("--help", "-h"):
        proc = subprocess.run([binary, opt], capture_output=True,
                              text=True)
        if proc.returncode != 0:
            print(f"FAIL {binary} {opt}: exit {proc.returncode} "
                  f"(stderr: {proc.stderr.strip()!r})")
            ok = False
            continue
        if not proc.stdout.strip():
            print(f"FAIL {binary} {opt}: empty usage listing")
            ok = False
            continue
        if help_out is None:
            help_out = proc.stdout
        elif proc.stdout != help_out:
            print(f"FAIL {binary}: --help and -h listings differ")
            ok = False

    if help_out is not None:
        for flag in flags:
            if flag not in help_out:
                print(f"FAIL {binary}: flag {flag} is parsed but "
                      "missing from the --help listing")
                ok = False

    # Every tool must answer --version with exit 0 and name the
    # artifact schema versions (one shared source: schema_versions.hh).
    if "--version" not in flags:
        print(f"FAIL {binary}: no --version flag parsed")
        ok = False
    else:
        proc = subprocess.run([binary, "--version"], capture_output=True,
                              text=True)
        if proc.returncode != 0:
            print(f"FAIL {binary} --version: exit {proc.returncode}")
            ok = False
        elif "schemas:" not in proc.stdout:
            print(f"FAIL {binary} --version: output does not list the "
                  f"schema versions: {proc.stdout.strip()!r}")
            ok = False

    if ok:
        print(f"ok   {binary}: {len(flags)} flags all listed, "
              "--help/-h/--version exit 0")
    return ok


def main(argv):
    if len(argv) < 3 or len(argv) % 2 == 0:
        print("usage: test_cli_help.py <binary> <source.cc> "
              "[<binary> <source.cc> ...]", file=sys.stderr)
        return 2
    ok = True
    for i in range(1, len(argv), 2):
        ok = check_tool(argv[i], argv[i + 1]) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
