/**
 * @file
 * Windowed metrics time-series: the telescoping invariant, the
 * zero-cost-when-off guarantee, ring-overflow folding, crash and
 * power-cycle behavior, and the JSONL export contract.
 *
 * The headline invariant mirrors the provenance waterfall's: summed
 * over every emitted window (plus the folded ring-overflow base), the
 * per-window counter and Distribution deltas equal the end-of-run
 * registry aggregates exactly — counter by counter, histogram bucket
 * by bucket — across every app x model x design combination,
 * including fault-injected and mid-kernel-crash runs.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/registry.hh"
#include "common/config.hh"
#include "common/json.hh"
#include "fault/fault.hh"
#include "gpu/gpu_system.hh"
#include "mem/nvm_device.hh"
#include "obs/timeseries.hh"

namespace sbrp
{
namespace
{

struct Combo
{
    const char *app;
    ModelKind model;
    SystemDesign design;
};

std::string
comboName(const testing::TestParamInfo<Combo> &info)
{
    std::string n = info.param.app;
    n += "_";
    n += toString(info.param.model);
    n += "_";
    n += toString(info.param.design);
    std::string out;
    for (char c : n) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
    }
    return out;
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const char *app :
         {"gpKVS", "HM", "SRAD", "Red", "MQ", "Scan", "Ckpt"}) {
        out.push_back({app, ModelKind::Gpm, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmNear});
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmNear});
        out.push_back({app, ModelKind::ScopedBarrier,
                       SystemDesign::PmNear});
    }
    return out;
}

/** Final registry aggregates, captured while the system is alive. */
struct FinalAggregates
{
    std::map<std::string, std::uint64_t> counters;
    struct Dist
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, Distribution::kBuckets> buckets{};
    };
    std::map<std::string, Dist> dists;
};

FinalAggregates
snapshotRegistry(const StatRegistry &registry)
{
    FinalAggregates fin;
    for (const StatGroup *g : registry.groups()) {
        for (const auto &kv : g->all())
            fin.counters[g->name() + "." + kv.first] +=
                kv.second.value();
        for (const auto &kv : g->allDists()) {
            FinalAggregates::Dist &d =
                fin.dists[g->name() + "." + kv.first];
            d.count += kv.second.count();
            d.sum += kv.second.sum();
            for (std::uint32_t b = 0; b < Distribution::kBuckets; ++b)
                d.buckets[b] += kv.second.bucketCount(b);
        }
    }
    return fin;
}

/** Windows (+ folded base) must reproduce the registry aggregates. */
void
checkTelescoping(const MetricsTimeseries &metrics,
                 const FinalAggregates &fin, const std::string &what)
{
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, FinalAggregates::Dist> dists;
    const auto fold = [&](const MetricsWindow &w) {
        for (const auto &kv : w.counters)
            counters[kv.first] += kv.second;
        for (const auto &kv : w.dists) {
            FinalAggregates::Dist &d = dists[kv.first];
            d.count += kv.second.count;
            d.sum += kv.second.sum;
            for (const auto &b : kv.second.buckets)
                d.buckets[b.first] += b.second;
        }
    };
    fold(metrics.droppedBase());
    for (const MetricsWindow &w : metrics.windows())
        fold(w);

    for (const auto &kv : fin.counters) {
        const auto it = counters.find(kv.first);
        const std::int64_t got =
            it == counters.end() ? 0 : it->second;
        EXPECT_EQ(got, static_cast<std::int64_t>(kv.second))
            << what << ": counter '" << kv.first
            << "' does not telescope";
    }
    for (const auto &kv : fin.dists) {
        const auto it = dists.find(kv.first);
        const FinalAggregates::Dist got =
            it == dists.end() ? FinalAggregates::Dist{} : it->second;
        EXPECT_EQ(got.count, kv.second.count)
            << what << ": dist '" << kv.first << "' count";
        EXPECT_EQ(got.sum, kv.second.sum)
            << what << ": dist '" << kv.first << "' sum";
        for (std::uint32_t b = 0; b < Distribution::kBuckets; ++b) {
            EXPECT_EQ(got.buckets[b], kv.second.buckets[b])
                << what << ": dist '" << kv.first << "' bucket " << b;
        }
    }
}

/** Retained windows are contiguous, ordered, and span whole windows
    except the trailing partial one. */
void
checkWindowGeometry(const MetricsTimeseries &metrics,
                    const std::string &what)
{
    Cycle expect_begin = metrics.droppedBase().end;
    std::uint64_t last_index = 0;
    bool first = true;
    for (const MetricsWindow &w : metrics.windows()) {
        EXPECT_EQ(w.begin, expect_begin) << what << ": window "
                                         << w.index << " begin";
        EXPECT_GT(w.end, w.begin) << what;
        if (!first) {
            EXPECT_EQ(w.index, last_index + 1) << what;
        }
        first = false;
        last_index = w.index;
        expect_begin = w.end;
    }
}

/** Runs an app with a sampler attached; fills the final aggregates. */
GpuSystem::LaunchResult
runWithMetrics(const std::string &app_name, const SystemConfig &cfg,
               MetricsTimeseries *metrics, FinalAggregates *fin,
               std::optional<Cycle> crash_at = std::nullopt)
{
    NvmDevice nvm;
    auto app = makeRegisteredApp(app_name, cfg.model);
    EXPECT_TRUE(app) << app_name;
    app->setupNvm(nvm);
    GpuSystem gpu(cfg, nvm, nullptr, nullptr, nullptr, metrics);
    app->setupGpu(gpu);
    auto res = gpu.launch(app->forward(), crash_at);
    if (!crash_at) {
        EXPECT_TRUE(app->verify(nvm)) << app_name;
    }
    if (fin)
        *fin = snapshotRegistry(gpu.stats());
    return res;
}

class TimeseriesAllCombos : public testing::TestWithParam<Combo>
{
};

TEST_P(TimeseriesAllCombos, DeltasTelescopeAndTimingUnperturbed)
{
    const Combo c = GetParam();
    SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);
    const std::string what = comboName(
        testing::TestParamInfo<Combo>(c, 0));

    // Small window so every run closes several.
    MetricsTimeseries metrics(128);
    FinalAggregates fin;
    const auto with = runWithMetrics(c.app, cfg, &metrics, &fin);
    const auto without = runWithMetrics(c.app, cfg, nullptr, nullptr);

    // Zero-cost-when-off: sampling must not perturb timing.
    EXPECT_EQ(with.cycles, without.cycles) << what;

    EXPECT_GT(metrics.windowsClosed(), 1u) << what;
    checkWindowGeometry(metrics, what);
    checkTelescoping(metrics, fin, what);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TimeseriesAllCombos,
                         testing::ValuesIn(allCombos()), comboName);

TEST(TimeseriesFault, TelescopesUnderInjectedFaults)
{
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmFar);
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("pcie=2e-2,media=2e-2", &cfg.faults,
                                 &err)) << err;
    cfg.seed = 9;
    cfg.validate();
    MetricsTimeseries metrics(128);
    FinalAggregates fin;
    runWithMetrics("Red", cfg, &metrics, &fin);
    checkWindowGeometry(metrics, "Red faulted");
    checkTelescoping(metrics, fin, "Red faulted");
}

TEST(TimeseriesCrash, FinalizedOnCrashExit)
{
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmNear);
    MetricsTimeseries metrics(64);
    FinalAggregates fin;
    const auto res =
        runWithMetrics("Red", cfg, &metrics, &fin, Cycle{700});
    ASSERT_TRUE(res.crashed);
    // The crash exit finalizes the trailing partial window, so the
    // series telescopes to the aggregates at the instant of the crash.
    checkWindowGeometry(metrics, "Red crash");
    checkTelescoping(metrics, fin, "Red crash");
}

TEST(TimeseriesCrash, SamplerSurvivesPowerCycle)
{
    // Crash, destroy the system (drops the sampler's callbacks), then
    // attach the same sampler to the recovery system: the registry is
    // re-bound, deltas go negative across the fresh registry, and the
    // whole series telescopes to the *recovery* system's aggregates —
    // the last snapshot wins, exactly like a counter set backwards.
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmNear);
    MetricsTimeseries metrics(64);
    NvmDevice nvm;
    auto app = makeRegisteredApp("Red", cfg.model);
    ASSERT_TRUE(app);
    app->setupNvm(nvm);
    {
        GpuSystem gpu(cfg, nvm, nullptr, nullptr, nullptr, &metrics);
        app->setupGpu(gpu);
        auto res = gpu.launch(app->forward(), Cycle{700});
        ASSERT_TRUE(res.crashed);
    }
    FinalAggregates fin;
    {
        GpuSystem gpu(cfg, nvm, nullptr, nullptr, nullptr, &metrics);
        app->setupGpu(gpu);
        gpu.launch(app->recovery());
        fin = snapshotRegistry(gpu.stats());
    }
    EXPECT_TRUE(app->verifyRecovered(nvm));
    checkTelescoping(metrics, fin, "Red power cycle");

    // And the export still works with both systems gone.
    EXPECT_FALSE(metrics.jsonl().empty());
}

TEST(TimeseriesRing, OverflowFoldsIntoDroppedBase)
{
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmNear);
    // Tiny ring: most windows evict into the folded base.
    MetricsTimeseries metrics(64, /*capacity=*/2);
    FinalAggregates fin;
    runWithMetrics("Red", cfg, &metrics, &fin);
    EXPECT_GT(metrics.windowsDropped(), 0u);
    EXPECT_LE(metrics.windows().size(), 2u);
    EXPECT_EQ(metrics.windowsClosed(),
              metrics.windowsDropped() + metrics.windows().size());
    // The invariant survives eviction: dropped base + retained ==
    // totals.
    checkTelescoping(metrics, fin, "Red tiny ring");
}

TEST(TimeseriesExport, JsonlIsWellFormedAndDeterministic)
{
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmNear);
    MetricsTimeseries metrics(128);
    metrics.setMeta("app", "Red");
    metrics.setMeta("model", "sbrp");
    runWithMetrics("Red", cfg, &metrics, nullptr);

    const std::string text = metrics.jsonl();
    ASSERT_FALSE(text.empty());
    std::vector<std::string> kinds;
    std::size_t at = 0;
    while (at < text.size()) {
        std::size_t nl = text.find('\n', at);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        const std::string line = text.substr(at, end - at);
        at = end + 1;
        if (line.empty())
            continue;
        std::string err;
        JsonValue v = JsonValue::parse(line, &err);
        ASSERT_FALSE(v.isNull()) << err << ": " << line;
        const JsonValue *kind = v.find("kind");
        ASSERT_TRUE(kind && kind->isString()) << line;
        kinds.push_back(kind->asString());
    }
    ASSERT_GE(kinds.size(), 3u);
    EXPECT_EQ(kinds.front(), "metrics_header");
    EXPECT_EQ(kinds.back(), "totals");
    for (std::size_t i = 1; i + 1 < kinds.size(); ++i)
        EXPECT_TRUE(kinds[i] == "window" || kinds[i] == "dropped")
            << kinds[i];

    // Deterministic: an identical seeded run exports identical bytes.
    MetricsTimeseries again(128);
    again.setMeta("app", "Red");
    again.setMeta("model", "sbrp");
    runWithMetrics("Red", cfg, &again, nullptr);
    EXPECT_EQ(text, again.jsonl());
}

TEST(TimeseriesUnit, FinalizeIsIdempotentAndReArms)
{
    StatGroup group("g");
    StatRegistry registry;
    registry.add(&group);
    MetricsTimeseries metrics(registry, 10);

    group.stat("c").inc(3);
    metrics.closeThrough(10);   // Closes [0, 10).
    group.stat("c").inc(4);
    metrics.finalize(15);       // Trailing partial [10, 15).
    ASSERT_EQ(metrics.windows().size(), 2u);
    EXPECT_EQ(metrics.windows()[0].counters.at("g.c"), 3);
    EXPECT_EQ(metrics.windows()[1].counters.at("g.c"), 4);

    metrics.finalize(15);       // Idempotent: nothing moved.
    ASSERT_EQ(metrics.windows().size(), 2u);

    // A later launch keeps appending from the last sampled cycle:
    // the due full window [15, 20) picks up the new samples, then an
    // empty trailing partial closes the range at 22.
    group.stat("c").inc(5);
    metrics.finalize(22);
    ASSERT_EQ(metrics.windows().size(), 4u);
    EXPECT_EQ(metrics.windows()[2].begin, Cycle{15});
    EXPECT_EQ(metrics.windows()[2].end, Cycle{20});
    EXPECT_EQ(metrics.windows()[2].counters.at("g.c"), 5);
    EXPECT_EQ(metrics.windows()[3].begin, Cycle{20});
    EXPECT_EQ(metrics.windows()[3].end, Cycle{22});
    EXPECT_TRUE(metrics.windows()[3].counters.empty());
}

TEST(TimeseriesUnit, GaugesSampledAtEveryBoundary)
{
    StatGroup group("g");
    StatRegistry registry;
    registry.add(&group);
    MetricsTimeseries metrics(registry, 10);
    std::uint64_t level = 7;
    metrics.addGauge("level", [&] { return level; });

    metrics.closeThrough(10);
    level = 9;
    metrics.closeThrough(20);
    ASSERT_EQ(metrics.windows().size(), 2u);
    EXPECT_EQ(metrics.windows()[0].gauges.at("level"), 7u);
    EXPECT_EQ(metrics.windows()[1].gauges.at("level"), 9u);
}

} // namespace
} // namespace sbrp
