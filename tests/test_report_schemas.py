#!/usr/bin/env python3
"""Schema-version contract for the offline report tools.

tools/trace_report.py and tools/persist_report.py consume documents
tagged with a schema_version. A version the tool does not understand
must exit 2 with a message naming both versions -- never a KeyError
traceback, never a silently misread report.

Usage:
    test_report_schemas.py <trace_report.py> <persist_report.py>
"""

import json
import os
import subprocess
import sys
import tempfile


def run(args):
    return subprocess.run([sys.executable] + args, capture_output=True,
                          text=True)


def check(name, proc, want_exit, want_stderr=()):
    ok = proc.returncode == want_exit
    for needle in want_stderr:
        ok = ok and needle in proc.stderr
    if ok:
        print(f"ok   {name}")
        return True
    print(f"FAIL {name}: exit {proc.returncode} (wanted {want_exit}), "
          f"stderr: {proc.stderr.strip()[:500]!r}")
    if "Traceback" in proc.stderr:
        print("  (tool crashed with a traceback)")
    return False


def main(argv):
    if len(argv) != 3:
        print("usage: test_report_schemas.py <trace_report.py> "
              "<persist_report.py>", file=sys.stderr)
        return 2
    trace_report, persist_report = argv[1], argv[2]
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, doc):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            return path

        # A minimal non-empty trace so trace_report reaches the
        # --stats-json cross-check.
        trace = write("trace.json", {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0,
             "args": {"name": "sm0"}}]})

        future = write("stats-future.json", {"schema_version": 99})
        ok &= check("trace_report-unknown-stats-schema-exits-2",
                    run([trace_report, trace, "--stats-json", future]),
                    2, ("schema_version", "99", "2"))

        # An untagged stats document is the pre-versioning schema: the
        # tool keeps its "old stats schema?" note and exits 0.
        old = write("stats-old.json", {"sm0": {"other_counter": 1}})
        ok &= check("trace_report-untagged-stats-still-accepted",
                    run([trace_report, trace, "--stats-json", old]), 0)

        ok &= check("persist_report-unknown-schema-exits-2",
                    run([persist_report,
                         write("prov-future.json",
                               {"schema_version": 99})]),
                    2, ("schema_version", "99", "1"))
        ok &= check("persist_report-untagged-doc-exits-2",
                    run([persist_report,
                         write("prov-untagged.json", {"audit": []})]),
                    2, ("schema_version",))

        # Torn/truncated documents must be named as such and exit 2 --
        # the producers write atomically, so a half document means the
        # producer never finished, not that the report is merely odd.
        torn = os.path.join(tmp, "prov-torn.json")
        with open(torn, "w", encoding="utf-8") as f:
            f.write('{"schema_version": 1, "ops_begun": 3, "wat')
        ok &= check("persist_report-truncated-doc-exits-2",
                    run([persist_report, torn]), 2, ("truncated",))
        empty = os.path.join(tmp, "prov-empty.json")
        open(empty, "w", encoding="utf-8").close()
        ok &= check("persist_report-empty-doc-exits-2",
                    run([persist_report, empty]), 2, ("empty",))

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
