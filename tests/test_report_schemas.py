#!/usr/bin/env python3
"""Schema-version contract for the offline report tools.

tools/trace_report.py, tools/persist_report.py and
tools/timeseries_report.py consume documents tagged with a
schema_version. A version the tool does not understand must exit 2
with a message naming both versions -- never a KeyError traceback,
never a silently misread report.

Usage:
    test_report_schemas.py <trace_report.py> <persist_report.py> \
        <timeseries_report.py>
"""

import json
import os
import subprocess
import sys
import tempfile


def run(args):
    return subprocess.run([sys.executable] + args, capture_output=True,
                          text=True)


def check(name, proc, want_exit, want_stderr=()):
    ok = proc.returncode == want_exit
    for needle in want_stderr:
        ok = ok and needle in proc.stderr
    if ok:
        print(f"ok   {name}")
        return True
    print(f"FAIL {name}: exit {proc.returncode} (wanted {want_exit}), "
          f"stderr: {proc.stderr.strip()[:500]!r}")
    if "Traceback" in proc.stderr:
        print("  (tool crashed with a traceback)")
    return False


def main(argv):
    if len(argv) != 4:
        print("usage: test_report_schemas.py <trace_report.py> "
              "<persist_report.py> <timeseries_report.py>",
              file=sys.stderr)
        return 2
    trace_report, persist_report, timeseries_report = argv[1:4]
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, doc):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            return path

        # A minimal non-empty trace so trace_report reaches the
        # --stats-json cross-check.
        trace = write("trace.json", {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0,
             "args": {"name": "sm0"}}]})

        future = write("stats-future.json", {"schema_version": 99})
        ok &= check("trace_report-unknown-stats-schema-exits-2",
                    run([trace_report, trace, "--stats-json", future]),
                    2, ("schema_version", "99", "2", "3"))

        # An untagged stats document is the pre-versioning schema: the
        # tool keeps its "old stats schema?" note and exits 0.
        old = write("stats-old.json", {"sm0": {"other_counter": 1}})
        ok &= check("trace_report-untagged-stats-still-accepted",
                    run([trace_report, trace, "--stats-json", old]), 0)

        ok &= check("persist_report-unknown-schema-exits-2",
                    run([persist_report,
                         write("prov-future.json",
                               {"schema_version": 99})]),
                    2, ("schema_version", "99", "1"))
        ok &= check("persist_report-untagged-doc-exits-2",
                    run([persist_report,
                         write("prov-untagged.json", {"audit": []})]),
                    2, ("schema_version",))

        # Torn/truncated documents must be named as such and exit 2 --
        # the producers write atomically, so a half document means the
        # producer never finished, not that the report is merely odd.
        torn = os.path.join(tmp, "prov-torn.json")
        with open(torn, "w", encoding="utf-8") as f:
            f.write('{"schema_version": 1, "ops_begun": 3, "wat')
        ok &= check("persist_report-truncated-doc-exits-2",
                    run([persist_report, torn]), 2, ("truncated",))
        empty = os.path.join(tmp, "prov-empty.json")
        open(empty, "w", encoding="utf-8").close()
        ok &= check("persist_report-empty-doc-exits-2",
                    run([persist_report, empty]), 2, ("empty",))

        # Metrics time-series (JSONL): same contract, line-oriented.
        def write_jsonl(name, records):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                for rec in records:
                    f.write(json.dumps(rec) + "\n")
            return path

        header = {"kind": "metrics_header", "schema_version": 1,
                  "window": 64}
        totals = {"kind": "totals", "end_cycle": 64, "windows": 1,
                  "windows_dropped": 0, "counters": {"a": 3},
                  "dists": {}}
        good_win = {"kind": "window", "index": 0, "begin": 0,
                    "end": 64, "counters": {"a": 3}, "dists": {},
                    "gauges": {}}
        ok &= check("timeseries_report-clean-stream-exits-0",
                    run([timeseries_report,
                         write_jsonl("m-good.jsonl",
                                     [header, good_win, totals])]), 0)
        ok &= check("timeseries_report-unknown-schema-exits-2",
                    run([timeseries_report,
                         write_jsonl("m-future.jsonl",
                                     [dict(header, schema_version=99),
                                      totals])]),
                    2, ("schema_version", "99", "1"))
        bad_win = dict(good_win, counters={"a": 2})
        ok &= check("timeseries_report-broken-telescoping-exits-1",
                    run([timeseries_report,
                         write_jsonl("m-broken.jsonl",
                                     [header, bad_win, totals])]),
                    1, ("telescope",))
        torn_ts = os.path.join(tmp, "m-torn.jsonl")
        with open(torn_ts, "w", encoding="utf-8") as f:
            f.write(json.dumps(header) + "\n" + '{"kind": "tot')
        ok &= check("timeseries_report-truncated-stream-exits-2",
                    run([timeseries_report, torn_ts]), 2,
                    ("truncated",))
        empty_ts = os.path.join(tmp, "m-empty.jsonl")
        open(empty_ts, "w", encoding="utf-8").close()
        ok &= check("timeseries_report-empty-stream-exits-2",
                    run([timeseries_report, empty_ts]), 2, ("empty",))

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
