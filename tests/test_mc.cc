/**
 * @file
 * Stateless model checker (src/mc/): exploration verdicts, DPOR-style
 * pruning, schedule-replay determinism, artifact round-trips, and the
 * seeded `unsafeRelaxedPersistOrder` bug as the oracle check.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"
#include "common/schema_versions.hh"
#include "mc/controller.hh"
#include "mc/explorer.hh"
#include "mc/schedule.hh"

namespace sbrp
{
namespace
{

SystemConfig
mcConfig(ModelKind m, bool relaxed = false)
{
    SystemDesign d = m == ModelKind::Gpm ? SystemDesign::PmFar
                                         : SystemDesign::PmNear;
    SystemConfig cfg = SystemConfig::testDefault(m, d);
    // Narrow write path: commit-order margins widen, verdicts do not
    // change (matches the mcheck default).
    cfg.nvmBwScale = 0.25;
    cfg.unsafeRelaxedPersistOrder = relaxed;
    return cfg;
}

const LitmusPattern &
pattern(const std::string &name)
{
    const LitmusPattern *p = findLitmusPattern(name);
    EXPECT_NE(p, nullptr) << name;
    return *p;
}

TEST(McExplore, AbsenceProvedOnCorrectSbrp)
{
    for (const LitmusPattern &p : litmusCorpus()) {
        ExploreResult r =
            McExplorer(p, mcConfig(ModelKind::Sbrp), {}).explore();
        EXPECT_FALSE(r.violationFound) << p.name;
        EXPECT_TRUE(r.complete) << p.name;
        EXPECT_GE(r.schedulesExplored, 1u) << p.name;
        EXPECT_EQ(r.divergedRuns, 0u) << p.name;
    }
}

TEST(McExplore, SeededBugCaughtOnEveryOrderedPattern)
{
    for (const LitmusPattern &p : litmusCorpus()) {
        ExploreResult r =
            McExplorer(p, mcConfig(ModelKind::Sbrp, true), {}).explore();
        EXPECT_EQ(r.violationFound, p.ordered) << p.name;
        if (r.violationFound) {
            // The corpus engineers the violation onto the default
            // schedule, so the minimizer must reach zero non-default
            // decisions.
            EXPECT_EQ(r.violatingSchedule.nonDefaultCount(), 0u)
                << p.name;
        }
    }
}

TEST(McExplore, PruningCollapsesIndependentWriters)
{
    const LitmusPattern &p = pattern("independent");
    ExploreLimits pruned;
    ExploreResult with =
        McExplorer(p, mcConfig(ModelKind::Sbrp), pruned).explore();
    ExploreLimits full = pruned;
    full.prune = false;
    ExploreResult without =
        McExplorer(p, mcConfig(ModelKind::Sbrp), full).explore();

    // Address-disjoint writers commute: pruning collapses the whole
    // interleaving space to the canonical schedule; full enumeration
    // visits the bounded space and agrees on the verdict.
    EXPECT_EQ(with.schedulesExplored, 1u);
    EXPECT_GT(with.alternativesPruned, 0u);
    EXPECT_GT(without.schedulesExplored, with.schedulesExplored);
    EXPECT_TRUE(with.complete);
    EXPECT_TRUE(without.complete);
    EXPECT_FALSE(with.violationFound);
    EXPECT_FALSE(without.violationFound);
}

TEST(McExplore, DeferAlternativeExploredWhenLineIsRewritten)
{
    // re-release writes its flag line twice, so deferring the first
    // flush is a non-commuting alternative and must be explored.
    ExploreResult r = McExplorer(pattern("re-release"),
                                 mcConfig(ModelKind::Sbrp), {}).explore();
    EXPECT_GE(r.schedulesExplored, 2u);
    EXPECT_FALSE(r.violationFound);
    EXPECT_TRUE(r.complete);
}

TEST(McExplore, ScheduleBoundReportedHonestly)
{
    ExploreLimits limits;
    limits.prune = false;
    limits.maxSchedules = 3;
    ExploreResult r = McExplorer(pattern("independent"),
                                 mcConfig(ModelKind::Sbrp),
                                 limits).explore();
    EXPECT_TRUE(r.hitScheduleBound);
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.schedulesExplored, 3u);
}

TEST(McReplay, RecordedScheduleReplaysByteIdentically)
{
    const LitmusPattern &p = pattern("chain");
    SystemConfig cfg = mcConfig(ModelKind::Sbrp, true);
    ExploreLimits limits;
    McExplorer ex(p, cfg, limits);
    ExploreResult r = ex.explore();
    ASSERT_TRUE(r.violationFound);

    // Tolerant re-run reproduces the run bit for bit.
    McSchedule rec;
    LitmusRun again = ex.runSchedule(r.violatingSchedule, &rec);
    EXPECT_EQ(again.cycles, r.violation.cycles);
    EXPECT_EQ(again.nvmDigest, r.violation.nvmDigest);
    EXPECT_EQ(again.violations.size(), r.violation.violations.size());
    EXPECT_EQ(again.auditOrderBreaks, r.violation.auditOrderBreaks);
    EXPECT_EQ(rec, r.violatingSchedule);

    // Strict replay consumes the decision list exactly.
    McController strict(McController::Mode::Replay, r.violatingSchedule,
                        limits.deferBound, limits.deferCycles);
    LitmusRun strict_run =
        p.scenario(cfg.model).runControlled(cfg, &strict);
    EXPECT_FALSE(strict.diverged()) << strict.divergence();
    EXPECT_EQ(strict_run.nvmDigest, r.violation.nvmDigest);
    EXPECT_EQ(strict_run.cycles, r.violation.cycles);
}

TEST(McReplay, TruncatedScheduleDiverges)
{
    const LitmusPattern &p = pattern("chain");
    SystemConfig cfg = mcConfig(ModelKind::Sbrp, true);
    ExploreLimits limits;
    ExploreResult r = McExplorer(p, cfg, limits).explore();
    ASSERT_TRUE(r.violationFound);
    ASSERT_FALSE(r.violatingSchedule.decisions.empty());

    McSchedule truncated = r.violatingSchedule;
    truncated.decisions.pop_back();
    McController strict(McController::Mode::Replay, truncated,
                        limits.deferBound, limits.deferCycles);
    p.scenario(cfg.model).runControlled(cfg, &strict);
    EXPECT_TRUE(strict.diverged());
}

TEST(McArtifactJson, RoundTripsLosslessly)
{
    McArtifact a;
    a.pattern = "chain";
    a.model = ModelKind::Sbrp;
    a.design = SystemDesign::PmNear;
    a.window = 4;
    a.policy = FlushPolicy::Eager;
    a.preciseFsm = false;
    a.nvmBwScale = 0.25;
    a.unsafeRelaxedOrder = true;
    a.deferCycles = 17;
    a.deferBound = 2;
    McDecision di;
    di.kind = McDecisionKind::Issue;
    di.sm = 1;
    di.cands = {0, 3, 5};
    di.chosen = 2;
    McDecision df;
    df.kind = McDecisionKind::Flush;
    df.sm = 2;
    df.entry = 41;
    df.defer = true;
    a.schedule.decisions = {di, df};
    a.expectViolations = 3;
    a.expectDurableOk = false;
    a.expectAuditBreaks = 1;
    a.expectCycles = 427;
    a.expectDigest = mcDigestString(0xdeadbeefcafef00dull);

    McArtifact b;
    std::string err;
    ASSERT_TRUE(McArtifact::fromJson(a.toJson(), &b, &err)) << err;
    EXPECT_EQ(b.pattern, a.pattern);
    EXPECT_EQ(b.model, a.model);
    EXPECT_EQ(b.design, a.design);
    EXPECT_EQ(b.window, a.window);
    EXPECT_EQ(b.policy, a.policy);
    EXPECT_EQ(b.preciseFsm, a.preciseFsm);
    EXPECT_DOUBLE_EQ(b.nvmBwScale, a.nvmBwScale);
    EXPECT_EQ(b.unsafeRelaxedOrder, a.unsafeRelaxedOrder);
    EXPECT_EQ(b.deferCycles, a.deferCycles);
    EXPECT_EQ(b.deferBound, a.deferBound);
    EXPECT_EQ(b.schedule, a.schedule);
    EXPECT_EQ(b.expectViolations, a.expectViolations);
    EXPECT_EQ(b.expectDurableOk, a.expectDurableOk);
    EXPECT_EQ(b.expectAuditBreaks, a.expectAuditBreaks);
    EXPECT_EQ(b.expectCycles, a.expectCycles);
    EXPECT_EQ(b.expectDigest, a.expectDigest);

    SystemConfig cfg = b.config();
    EXPECT_EQ(cfg.model, ModelKind::Sbrp);
    EXPECT_EQ(cfg.window, 4u);
    EXPECT_TRUE(cfg.unsafeRelaxedPersistOrder);
}

TEST(McArtifactJson, RejectsMalformedInput)
{
    McArtifact out;
    std::string err;
    EXPECT_FALSE(McArtifact::fromJson("not json", &out, &err));
    EXPECT_FALSE(err.empty());

    EXPECT_FALSE(McArtifact::fromJson("{}", &out, &err));

    // Wrong schema version is a structured error naming the version.
    McArtifact a;
    a.pattern = "chain";
    std::string text = a.toJson();
    const std::string needle = "\"schema_version\": " +
                               std::to_string(schema::kMcSchedule);
    auto at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, needle.size(), "\"schema_version\": 99");
    EXPECT_FALSE(McArtifact::fromJson(text, &out, &err));
    EXPECT_NE(err.find("schema_version"), std::string::npos);
    EXPECT_NE(err.find("99"), std::string::npos);
}

TEST(McDigest, FormatsFixedWidthHex)
{
    EXPECT_EQ(mcDigestString(0), "0x0000000000000000");
    EXPECT_EQ(mcDigestString(0xee1a99704a9ecc51ull),
              "0xee1a99704a9ecc51");
}

} // namespace
} // namespace sbrp
