#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py (the perf-regression gate).

Run with the repo root's tools/ on the path:
    test_bench_diff.py <path-to-bench_diff.py>

Covers the gate's contract:
  - identical metrics pass (exit 0);
  - ANY exact-metric drift fails (exit 1), in both directions;
  - advisory (host-dependent) drift never fails, inside or outside the
    tolerance band;
  - coverage asymmetries (subset runs, new metrics) never fail;
  - malformed/missing JSON exits 2;
  - --update-baselines regenerates every committed baseline from the
    bench binaries in one command (smoke-tested against stub benches)
    and exits 2 when a binary is missing or fails.
"""

import importlib.util
import json
import os
import stat
import sys
import tempfile


def load_module(path):
    spec = importlib.util.spec_from_file_location("bench_diff", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class Harness:
    def __init__(self, mod, tmp):
        self.mod = mod
        self.tmp = tmp
        self.n = 0
        self.failures = []

    def write(self, data):
        self.n += 1
        path = os.path.join(self.tmp, f"m{self.n}.json")
        with open(path, "w") as f:
            if isinstance(data, str):
                f.write(data)
            else:
                json.dump(data, f)
        return path

    def diff(self, current, baseline, extra=None):
        argv = [self.write(current), self.write(baseline)]
        if extra:
            argv += extra
        return self.mod.main(argv)

    def check(self, name, got, want):
        if got == want:
            print(f"ok   {name}")
        else:
            print(f"FAIL {name}: exit {got}, wanted {want}")
            self.failures.append(name)


def main(argv):
    if len(argv) != 2:
        print("usage: test_bench_diff.py <bench_diff.py>",
              file=sys.stderr)
        return 2
    mod = load_module(argv[1])

    base = {"bench": "cycle_breakdown",
            "Red/sbrp/near/sim_cycles": 1573,
            "Red/sbrp/near/mem_latency": 7722,
            "Red/sbrp/near/mcycles_per_sec": 12.5}

    with tempfile.TemporaryDirectory() as tmp:
        h = Harness(mod, tmp)

        h.check("identical-passes", h.diff(dict(base), dict(base)), 0)

        up = dict(base)
        up["Red/sbrp/near/sim_cycles"] = 1574
        h.check("cycle-regression-fails", h.diff(up, base), 1)

        down = dict(base)
        down["Red/sbrp/near/sim_cycles"] = 1572
        h.check("cycle-improvement-also-fails", h.diff(down, base), 1)

        off_by_one_ledger = dict(base)
        off_by_one_ledger["Red/sbrp/near/mem_latency"] = 7723
        h.check("ledger-drift-fails", h.diff(off_by_one_ledger, base), 1)

        slow = dict(base)
        slow["Red/sbrp/near/mcycles_per_sec"] = 1.0
        h.check("advisory-drift-passes", h.diff(slow, base), 0)

        slow_tight = dict(base)
        slow_tight["Red/sbrp/near/mcycles_per_sec"] = 12.0
        h.check("advisory-drift-passes-any-rtol",
                h.diff(slow_tight, base, ["--rtol", "0.01"]), 0)

        subset = {"bench": "cycle_breakdown",
                  "Red/sbrp/near/sim_cycles": 1573}
        h.check("baseline-superset-passes", h.diff(subset, base), 0)

        superset = dict(base)
        superset["MQ/sbrp/near/sim_cycles"] = 999
        h.check("new-metric-passes", h.diff(superset, base), 0)

        h.check("malformed-current-exits-2",
                h.diff("{not json", dict(base)), 2)
        h.check("non-object-baseline-exits-2",
                h.diff(dict(base), "[1, 2]"), 2)
        missing = os.path.join(tmp, "nope.json")
        h.check("missing-baseline-exits-2",
                mod.main([h.write(dict(base)), missing]), 2)

        report = os.path.join(tmp, "report.txt")
        rc = h.diff(up, base, ["--report", report])
        with open(report) as f:
            text = f.read()
        h.check("report-written", rc, 1)
        h.check("report-names-the-metric",
                "Red/sbrp/near/sim_cycles" in text and "FAIL" in text,
                True)

        # --update-baselines smoke test: stub benches stand in for the
        # real binaries; each one writes a metrics JSON to the path its
        # output flag routes to, exactly like the real tools.
        build = os.path.join(tmp, "build")
        golden = os.path.join(tmp, "golden")
        os.makedirs(os.path.join(build, "bench"))

        def stub(rel, body):
            path = os.path.join(build, rel)
            with open(path, "w") as f:
                f.write("#!/bin/sh\n" + body)
            os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR)

        for rel, _, _ in mod.BASELINE_BENCHES:
            stub(rel, 'printf \'{"bench": "stub", "m": 1}\' > "$2"\n')
        h.check("update-baselines-runs-every-bench",
                mod.main(["--update-baselines", "--build-dir", build,
                          "--golden-dir", golden]), 0)
        written = all(
            os.path.isfile(os.path.join(golden, name))
            and mod.load_metrics(os.path.join(golden, name)) == {"m": 1}
            for _, _, name in mod.BASELINE_BENCHES)
        h.check("update-baselines-writes-committed-names", written, True)

        os.remove(os.path.join(build, mod.BASELINE_BENCHES[0][0]))
        h.check("update-baselines-missing-binary-exits-2",
                mod.main(["--update-baselines", "--build-dir", build,
                          "--golden-dir", golden]), 2)

        stub(mod.BASELINE_BENCHES[0][0], "exit 3\n")
        h.check("update-baselines-failing-bench-exits-2",
                mod.main(["--update-baselines", "--build-dir", build,
                          "--golden-dir", golden]), 2)

        stub(mod.BASELINE_BENCHES[0][0], 'printf "not json" > "$2"\n')
        h.check("update-baselines-bad-output-exits-2",
                mod.main(["--update-baselines", "--build-dir", build,
                          "--golden-dir", golden]), 2)

        if h.failures:
            print(f"{len(h.failures)} failure(s): "
                  f"{', '.join(h.failures)}")
            return 1
        print("all bench_diff tests passed")
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
