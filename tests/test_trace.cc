/**
 * @file
 * Tests for the event tracer: buffer/sink mechanics, Chrome trace JSON
 * well-formedness, cycle ordering, stable component identity, and the
 * observation-only guarantee (tracing must not perturb timing).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "api/sbrp.hh"
#include "apps/reduction.hh"
#include "common/trace.hh"
#include "obs/provenance.hh"

namespace sbrp
{
namespace
{

// --- Buffer / sink mechanics -------------------------------------------

TEST(TraceBuffer, EventsReachTheSink)
{
    TraceSink sink;
    Cycle clock = 0;
    sink.setClock(&clock);
    TraceBuffer *tb = sink.buffer("unit");

    clock = 5;
    tb->instant("tick");
    clock = 9;
    tb->counter("depth", 3);
    tb->spanAt("work", 2, 9);
    sink.flushAll();

    ASSERT_EQ(sink.eventCount(), 3u);
    const auto &evs = sink.events();
    EXPECT_STREQ(evs[0].event.name, "tick");
    EXPECT_EQ(evs[0].event.start, 5u);
    EXPECT_EQ(evs[0].event.kind, TraceEventKind::Instant);
    EXPECT_EQ(evs[1].event.value, 3u);
    EXPECT_EQ(evs[1].event.kind, TraceEventKind::Counter);
    EXPECT_EQ(evs[2].event.start, 2u);
    EXPECT_EQ(evs[2].event.end, 9u);
    EXPECT_EQ(evs[2].event.kind, TraceEventKind::Span);
}

TEST(TraceBuffer, NoClockMeansCycleZero)
{
    TraceSink sink;
    TraceBuffer *tb = sink.buffer("unit");
    EXPECT_EQ(tb->now(), 0u);
    tb->instant("x");
    sink.flushAll();
    EXPECT_EQ(sink.events()[0].event.start, 0u);
}

TEST(TraceBuffer, SpanEndClampsToStart)
{
    TraceSink sink;
    TraceBuffer *tb = sink.buffer("unit");
    tb->spanAt("w", 10, 4);
    sink.flushAll();
    EXPECT_EQ(sink.events()[0].event.end, 10u);
}

TEST(TraceSink, PidsFollowRegistrationOrder)
{
    TraceSink sink;
    EXPECT_EQ(sink.buffer("system")->pid(), 0u);
    EXPECT_EQ(sink.buffer("fabric")->pid(), 1u);
    EXPECT_EQ(sink.buffer("system")->pid(), 0u);   // Create-or-get.
    ASSERT_EQ(sink.components().size(), 2u);
    EXPECT_EQ(sink.components()[0], "system");
}

TEST(TraceSink, InternReturnsStablePointers)
{
    TraceSink sink;
    const char *a = sink.intern("kernel:red");
    const char *b = sink.intern("kernel:red");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "kernel:red");
}

TEST(TraceSink, RingDrainsWhenFull)
{
    TraceSink sink;
    TraceBuffer *tb = sink.buffer("unit");
    for (int i = 0; i < 5000; ++i)
        tb->instant("e");
    // More events than one ring capacity: some must have drained
    // without an explicit flush.
    EXPECT_GT(sink.eventCount(), 0u);
    sink.flushAll();
    EXPECT_EQ(sink.eventCount(), 5000u);
}

// --- JSON output --------------------------------------------------------

/** Naive structural validation honoring string escapes. */
void
expectBalancedJson(const std::string &j)
{
    long braces = 0, brackets = 0, quotes = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < j.size(); ++i) {
        char c = j[i];
        if (in_string) {
            if (c == '\\')
                ++i;   // Skip the escaped character.
            else if (c == '"')
                in_string = false, ++quotes;
            continue;
        }
        switch (c) {
          case '"': in_string = true; ++quotes; break;
          case '{': ++braces; break;
          case '}': --braces; break;
          case '[': ++brackets; break;
          case ']': --brackets; break;
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(quotes % 2, 0);
}

/** All "ts": values in emission order. */
std::vector<std::uint64_t>
timestamps(const std::string &j)
{
    std::vector<std::uint64_t> ts;
    std::size_t pos = 0;
    while ((pos = j.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        ts.push_back(std::stoull(j.substr(pos)));
    }
    return ts;
}

TEST(TraceJson, WellFormedAndCycleOrdered)
{
    TraceSink sink;
    Cycle clock = 0;
    sink.setClock(&clock);
    TraceBuffer *tb = sink.buffer("unit");
    sink.setTrackName("unit", 0, "main");

    clock = 30;
    tb->instant("late");
    tb->spanAt("early", 3, 20);
    clock = 7;
    tb->counter("mid", 1);

    std::ostringstream os;
    sink.writeJson(os);
    std::string j = os.str();

    expectBalancedJson(j);
    EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(j.find("\"process_name\""), std::string::npos);
    EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(j.find("\"displayTimeUnit\""), std::string::npos);

    // Emitted out of order above; the file must be sorted by cycle.
    std::vector<std::uint64_t> ts = timestamps(j);
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(TraceJson, EscapesNames)
{
    TraceSink sink;
    TraceBuffer *tb = sink.buffer("unit");
    tb->instant(sink.intern("quote\"back\\slash"));
    std::ostringstream os;
    sink.writeJson(os);
    std::string j = os.str();
    EXPECT_NE(j.find("quote\\\"back\\\\slash"), std::string::npos);
    expectBalancedJson(j);
}

TEST(TraceJson, FlowEventsSerializeAsArrowChains)
{
    TraceSink sink;
    Cycle clock = 0;
    sink.setClock(&clock);
    TraceBuffer *sm = sink.buffer("sm0");
    TraceBuffer *fabric = sink.buffer("fabric");

    const std::uint64_t id = (std::uint64_t{3} << 40) | 7;
    clock = 10;
    sm->flowStart("persist", id);
    clock = 25;
    fabric->flowStep("persist", id);
    sm->flowAt(TraceEventKind::FlowEnd, "persist", id, 40);

    std::ostringstream os;
    sink.writeJson(os);
    std::string j = os.str();
    expectBalancedJson(j);

    // One chain: start/step/end phases share the op id and category.
    EXPECT_NE(j.find("\"ph\":\"s\",\"cat\":\"flow\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"t\",\"cat\":\"flow\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"f\",\"cat\":\"flow\""), std::string::npos);
    const std::string id_field = "\"id\":" + std::to_string(id);
    std::size_t hits = 0;
    for (std::size_t p = j.find(id_field); p != std::string::npos;
         p = j.find(id_field, p + 1))
        ++hits;
    EXPECT_EQ(hits, 3u);

    // The terminating arrow binds to its enclosing slice; the others
    // must not carry the binding point.
    EXPECT_NE(j.find("\"bp\":\"e\""), std::string::npos);
    std::size_t s_pos = j.find("\"ph\":\"s\"");
    std::size_t s_end = j.find('}', s_pos);
    EXPECT_EQ(j.substr(s_pos, s_end - s_pos).find("\"bp\""),
              std::string::npos);

    // Cross-component: the step carries the fabric's pid, not the SM's.
    std::size_t t_pos = j.find("\"ph\":\"t\"");
    std::size_t t_end = j.find('}', t_pos);
    EXPECT_NE(j.substr(t_pos, t_end - t_pos).find("\"pid\":1"),
              std::string::npos);
}

// --- Traced full-system runs -------------------------------------------

struct RunOutcome
{
    Cycle cycles = 0;
    std::vector<std::string> components;
    std::string json;
};

RunOutcome
runRed(bool traced)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    ReductionApp app(cfg.model, ReductionParams::test());
    NvmDevice nvm;
    app.setupNvm(nvm);

    RunOutcome out;
    TraceSink sink;
    // Provenance rides along when tracing: flow events carry op ids, so
    // arrow chains only appear in provenance-attached traced runs.
    PersistProvenance prov;
    {
        GpuSystem gpu(cfg, nvm, nullptr, traced ? &sink : nullptr,
                      traced ? &prov : nullptr);
        app.setupGpu(gpu);
        out.cycles = gpu.launch(app.forward()).cycles;
    }
    if (traced) {
        out.components = sink.components();
        std::ostringstream os;
        sink.writeJson(os);
        out.json = os.str();
    }
    return out;
}

TEST(TraceSystem, TracingDoesNotPerturbTiming)
{
    RunOutcome untraced = runRed(false);
    RunOutcome traced = runRed(true);
    EXPECT_EQ(untraced.cycles, traced.cycles);
    EXPECT_FALSE(traced.json.empty());
}

TEST(TraceSystem, StableComponentIdentityAcrossRuns)
{
    RunOutcome a = runRed(true);
    RunOutcome b = runRed(true);
    ASSERT_FALSE(a.components.empty());
    EXPECT_EQ(a.components, b.components);
    // Fixed registration order: system, fabric, nvm, then the SMs.
    EXPECT_EQ(a.components[0], "system");
    EXPECT_EQ(a.components[1], "fabric");
    EXPECT_EQ(a.components[2], "nvm");
    EXPECT_EQ(a.components[3], "sm0");
    // Identical deterministic runs serialize identically.
    EXPECT_EQ(a.json, b.json);
}

TEST(TraceSystem, EmitsExpectedEventFamilies)
{
    RunOutcome r = runRed(true);
    expectBalancedJson(r.json);
    std::vector<std::uint64_t> ts = timestamps(r.json);
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
    EXPECT_NE(r.json.find("kernel:"), std::string::npos);
    EXPECT_NE(r.json.find("pb_entries"), std::string::npos);
    EXPECT_NE(r.json.find("pb:admit"), std::string::npos);
    EXPECT_NE(r.json.find("mc_write_backlog"), std::string::npos);
    EXPECT_NE(r.json.find("wpq_lines"), std::string::npos);
    EXPECT_NE(r.json.find("stall:"), std::string::npos);
}

TEST(TraceSystem, PersistFlowChainsAppearInTracedRuns)
{
    // A full traced run must link each persist op's component spans
    // into one flow chain: at least one start and one matched end.
    RunOutcome r = runRed(true);
    EXPECT_NE(r.json.find("\"cat\":\"flow\""), std::string::npos);
    EXPECT_NE(r.json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(r.json.find("\"ph\":\"f\""), std::string::npos);
}

// The device survives the system (crash model): destroying a traced
// GpuSystem must detach the NVM device's buffer and the clock so later
// use of either object stays safe.
TEST(TraceSystem, SinkOutlivesSystemSafely)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    ReductionApp app(cfg.model, ReductionParams::test());
    NvmDevice nvm;
    app.setupNvm(nvm);
    TraceSink sink;
    std::size_t events;
    {
        GpuSystem gpu(cfg, nvm, nullptr, &sink);
        app.setupGpu(gpu);
        gpu.launch(app.forward());
        events = sink.eventCount();
    }
    EXPECT_EQ(sink.clock(), nullptr);
    EXPECT_EQ(sink.eventCount(), events);
    // Writing after the system is gone must still work.
    std::ostringstream os;
    sink.writeJson(os);
    expectBalancedJson(os.str());
    // And a durable-image commit after detach must not touch the sink.
    std::vector<std::uint8_t> line(128, 0xab);
    Addr base = nvm.open("red.parr").base;
    nvm.commitLine(base, line.data(),
                   static_cast<std::uint32_t>(line.size()));
    EXPECT_EQ(sink.eventCount(), events);
}

} // namespace
} // namespace sbrp
