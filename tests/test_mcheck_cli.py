#!/usr/bin/env python3
"""End-to-end contract test for tools/mcheck.

Exercises the full loop the model checker promises:
  1. correct SBRP model: every small pattern explored to completion,
     zero violations, exit 0;
  2. seeded --unsafe-relaxed-order bug: every ordered pattern produces
     a violating schedule, exit 1, and a replay artifact per violation;
  3. each artifact replays byte-identically (exit 0);
  4. a tampered artifact fails replay (exit 1);
  5. malformed input and unknown patterns exit 2.

Usage:
    test_mcheck_cli.py <mcheck-binary>
"""

import json
import os
import subprocess
import sys
import tempfile


def run(args, **kw):
    return subprocess.run(args, capture_output=True, text=True, **kw)


def fail(msg, proc=None):
    print(f"FAIL {msg}")
    if proc is not None:
        print(f"  exit={proc.returncode}")
        print(f"  stdout: {proc.stdout.strip()[:2000]}")
        print(f"  stderr: {proc.stderr.strip()[:2000]}")
    return False


def main(argv):
    if len(argv) != 2:
        print("usage: test_mcheck_cli.py <mcheck-binary>",
              file=sys.stderr)
        return 2
    mcheck = argv[1]
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "report.json")

        # 1. Absence on the correct model.
        p = run([mcheck, "--all", "--small", "--report", report])
        if p.returncode != 0:
            ok = fail("correct model should exit 0", p)
        elif "0 violating" not in p.stdout:
            ok = fail("correct model should report 0 violating", p)
        else:
            with open(report, encoding="utf-8") as f:
                doc = json.load(f)
            if doc.get("kind") != "mc_report":
                ok = fail(f"report kind {doc.get('kind')!r}")
            for v in doc.get("verdicts", []):
                if v.get("violation") or not v.get("complete"):
                    ok = fail(f"verdict not a completed absence proof: "
                              f"{v}")

        # 2. The seeded bug must be caught on every ordered pattern.
        p = run([mcheck, "--all", "--small", "--unsafe-relaxed-order",
                 "--artifacts", tmp, "--report", report])
        if p.returncode != 1:
            ok = fail("seeded bug should exit 1", p)
        with open(report, encoding="utf-8") as f:
            doc = json.load(f)
        artifacts = []
        for v in doc.get("verdicts", []):
            # `independent` has no ordering edges: the only pattern
            # allowed (and required) to stay clean under the bug.
            want = v["pattern"] != "independent"
            if v.get("violation") != want:
                ok = fail(f"{v['pattern']}: violation={v.get('violation')}"
                          f", expected {want}")
            if want:
                path = os.path.join(
                    tmp, f"mc_{v['pattern']}_{v['model']}.json")
                if not os.path.exists(path):
                    ok = fail(f"missing artifact {path}")
                else:
                    artifacts.append(path)

        # 3. Byte-identical replay of every artifact.
        for path in artifacts:
            p = run([mcheck, "--replay", path])
            if p.returncode != 0 or "byte-identical" not in p.stdout:
                ok = fail(f"replay of {os.path.basename(path)}", p)

        # 4. Tampering with the expectation must fail the replay.
        if artifacts:
            with open(artifacts[0], encoding="utf-8") as f:
                art = json.load(f)
            art["expect"]["cycles"] += 1
            tampered = os.path.join(tmp, "tampered.json")
            with open(tampered, "w", encoding="utf-8") as f:
                json.dump(art, f)
            p = run([mcheck, "--replay", tampered])
            if p.returncode != 1:
                ok = fail("tampered artifact should exit 1", p)

        # 5. Infrastructure errors exit 2.
        garbage = os.path.join(tmp, "garbage.json")
        with open(garbage, "w", encoding="utf-8") as f:
            f.write("not json")
        for args, what in (
                ([mcheck, "--replay", garbage], "garbage artifact"),
                ([mcheck, "--pattern", "no-such"], "unknown pattern"),
                ([mcheck], "no pattern selection")):
            p = run(args)
            if p.returncode != 2:
                ok = fail(f"{what} should exit 2", p)

    if ok:
        print(f"ok   {mcheck}: explore/violate/replay/tamper/usage "
              "contract holds")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
