/**
 * Tier-1 tests for the sharded-campaign service layer (src/svc/): shard
 * planning, the job manifest codec and digest, the append-only fsync'd
 * verdict journal (torn-tail tolerance, corruption refusal, idempotent
 * resume), the shard worker, and the deterministic merger — including
 * the central invariant that a sharded run merged from journals is
 * byte-identical (stripped of the execution section) to a
 * single-process campaign.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/json.hh"
#include "crashtest/campaign.hh"
#include "crashtest/scenario.hh"
#include "svc/journal.hh"
#include "svc/manifest.hh"
#include "svc/merge.hh"
#include "svc/worker.hh"

namespace sbrp
{
namespace
{

CrashScenario
scenarioFor(const std::string &app, ModelKind model,
            bool unsafe_order = false)
{
    CrashScenario s;
    s.app = app;
    s.cfg = SystemConfig::testDefault(model);
    s.cfg.unsafeRelaxedPersistOrder = unsafe_order;
    return s;
}

CampaignConfig
campaignFor(const std::string &app, ModelKind model,
            std::uint64_t budget, bool unsafe_order = false)
{
    CampaignConfig cc;
    cc.scenario = scenarioFor(app, model, unsafe_order);
    cc.budgetRuns = budget;
    cc.minimize = false;
    cc.jobs = 1;
    return cc;
}

/** Unique scratch directory under the build tree. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        char buf[256];
        std::snprintf(buf, sizeof buf, "svc_test_%s_%d", tag.c_str(),
                      static_cast<int>(::getpid()));
        path_ = buf;
        std::string err;
        ensureDirectories(path_, &err);
    }
    ~TempDir()
    {
        // Best-effort cleanup; leftover files are harmless in the
        // build tree and aid debugging on failure.
        std::string cmd = "rm -rf '" + path_ + "'";
        (void)std::system(cmd.c_str());
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
readAll(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

void
writeAll(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << text;
}

// --- Shard planning -------------------------------------------------

TEST(ShardPlan, BalancedContiguousAndDeterministic)
{
    // 10 indices over 3 shards: sizes {4, 3, 3}, contiguous, gapless.
    std::vector<ShardRange> r = planShardRanges(10, 3);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].begin, 0u);
    EXPECT_EQ(r[0].end, 4u);
    EXPECT_EQ(r[1].begin, 4u);
    EXPECT_EQ(r[1].end, 7u);
    EXPECT_EQ(r[2].begin, 7u);
    EXPECT_EQ(r[2].end, 10u);

    // Pure function: same arguments, same layout.
    EXPECT_EQ(planShardRanges(10, 3)[1].begin, 4u);

    // More shards than points: trailing shards are empty, never lost.
    std::vector<ShardRange> wide = planShardRanges(2, 4);
    ASSERT_EQ(wide.size(), 4u);
    EXPECT_EQ(wide[0].size(), 1u);
    EXPECT_EQ(wide[1].size(), 1u);
    EXPECT_EQ(wide[2].size(), 0u);
    EXPECT_EQ(wide[3].size(), 0u);

    // Full coverage for a spread of (count, shards) pairs.
    for (std::uint64_t count : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
        for (unsigned shards : {1u, 2u, 3u, 8u, 13u}) {
            std::vector<ShardRange> p = planShardRanges(count, shards);
            ASSERT_EQ(p.size(), shards);
            std::uint64_t at = 0, lo = ~0ull, hi = 0;
            for (const ShardRange &s : p) {
                EXPECT_EQ(s.begin, at);
                at = s.end;
                lo = std::min(lo, s.size());
                hi = std::max(hi, s.size());
            }
            EXPECT_EQ(at, count);
            EXPECT_LE(hi - lo, 1u);   // Balanced to within one.
        }
    }
}

// --- Manifest codec -------------------------------------------------

TEST(Manifest, PlanRoundTripsThroughJsonWithDigest)
{
    CampaignConfig cc = campaignFor("Red", ModelKind::Sbrp, 24, true);
    CampaignManifest m = CampaignManifest::plan(cc, 3);
    EXPECT_EQ(m.shards, 3u);
    EXPECT_EQ(m.budgetRuns, 24u);
    ASSERT_EQ(m.ranges.size(), 3u);
    EXPECT_EQ(m.ranges.back().end, m.pointsToRun());
    EXPECT_FALSE(m.probe.points.points.empty());

    JsonValue j = m.toJson();
    EXPECT_FALSE(m.digest.empty());

    CampaignManifest back;
    std::string err;
    ASSERT_TRUE(CampaignManifest::fromJson(j, &back, &err)) << err;
    EXPECT_EQ(back.digest, m.digest);
    EXPECT_EQ(back.scenario.app, "Red");
    EXPECT_EQ(back.scenario.cfg.unsafeRelaxedPersistOrder, true);
    EXPECT_EQ(back.budgetRuns, m.budgetRuns);
    EXPECT_EQ(back.shards, m.shards);
    ASSERT_EQ(back.probe.points.points.size(),
              m.probe.points.points.size());
    for (std::size_t i = 0; i < m.probe.points.points.size(); ++i) {
        EXPECT_EQ(back.probe.points.points[i].cycle,
                  m.probe.points.points[i].cycle);
        EXPECT_EQ(back.probe.points.points[i].kind,
                  m.probe.points.points[i].kind);
    }
    EXPECT_EQ(back.slowestOps.size(), m.slowestOps.size());

    // Planning twice is deterministic down to the digest.
    EXPECT_EQ(CampaignManifest::plan(cc, 3).toJson().dump(0),
              j.dump(0));
}

TEST(Manifest, TamperedDocumentIsRefused)
{
    CampaignConfig cc = campaignFor("Red", ModelKind::Sbrp, 12, true);
    CampaignManifest m = CampaignManifest::plan(cc, 2);
    JsonValue j = m.toJson();

    // Flip plan content without refreshing the digest: refused.
    JsonValue tampered = j;
    tampered.set("budget_runs", JsonValue(std::uint64_t{99}));
    CampaignManifest out;
    std::string err;
    EXPECT_FALSE(CampaignManifest::fromJson(tampered, &out, &err));
    EXPECT_NE(err.find("digest"), std::string::npos) << err;

    // A wrong digest string is refused too.
    JsonValue baddig = j;
    baddig.set("digest", JsonValue(std::string("0000000000000000")));
    EXPECT_FALSE(CampaignManifest::fromJson(baddig, &out, &err));
}

TEST(Manifest, FileRoundTripAndMissingFile)
{
    TempDir dir("manifest");
    CampaignConfig cc = campaignFor("Red", ModelKind::Sbrp, 12, true);
    CampaignManifest m = CampaignManifest::plan(cc, 2);

    const std::string path = dir.path() + "/manifest.json";
    std::string err;
    ASSERT_TRUE(m.writeFile(path, &err)) << err;

    CampaignManifest back;
    ASSERT_TRUE(CampaignManifest::loadFile(path, &back, &err)) << err;
    EXPECT_EQ(back.digest, m.digest);

    EXPECT_FALSE(CampaignManifest::loadFile(dir.path() + "/nope.json",
                                            &back, &err));

    // Truncated manifest (torn copy, not a torn atomic write — those
    // can't happen) is refused, not misparsed.
    std::string text = readAll(path);
    writeAll(path, text.substr(0, text.size() / 2));
    EXPECT_FALSE(CampaignManifest::loadFile(path, &back, &err));
}

// --- Journal robustness ---------------------------------------------

class JournalFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::make_unique<TempDir>("journal");
        cc_ = campaignFor("Red", ModelKind::Sbrp, 12, true);
        manifest_ = CampaignManifest::plan(cc_, 2);
        path_ = shardJournalPath(dir_->path(), 0);
    }

    /** Runs shard 0 to completion and returns the journal bytes. */
    std::string completeShardZero()
    {
        ShardRunResult r =
            runShard(manifest_, 0, dir_->path(), /*resume=*/false);
        EXPECT_EQ(r.status, ShardRunStatus::Complete);
        EXPECT_EQ(r.executed, manifest_.ranges[0].size());
        return readAll(path_);
    }

    std::unique_ptr<TempDir> dir_;
    CampaignConfig cc_;
    CampaignManifest manifest_;
    std::string path_;
};

TEST_F(JournalFixture, CompleteJournalLoadsCleanly)
{
    completeShardZero();
    ShardJournalContents c;
    std::string err;
    EXPECT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Ok) << err;
    EXPECT_FALSE(c.tornTail);
    EXPECT_EQ(c.records.size(), manifest_.ranges[0].size());
    EXPECT_EQ(c.header.manifestDigest, manifest_.digest);
    EXPECT_EQ(c.header.begin, manifest_.ranges[0].begin);
    EXPECT_EQ(c.header.end, manifest_.ranges[0].end);

    // Wrong expected shard id is refused.
    EXPECT_EQ(loadShardJournal(path_, &manifest_, 1, &c, &err),
              JournalLoad::Corrupt);
}

TEST_F(JournalFixture, TornTrailingRecordIsToleratedAndResumed)
{
    std::string text = completeShardZero();

    // Tear the final record mid-line, as a kill -9 during write(2)
    // would: the loader drops exactly that line.
    const std::size_t cut = text.rfind("\"crash_cycle\"");
    ASSERT_NE(cut, std::string::npos);
    writeAll(path_, text.substr(0, cut));

    ShardJournalContents c;
    std::string err;
    ASSERT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Ok) << err;
    EXPECT_TRUE(c.tornTail);
    EXPECT_EQ(c.records.size(), manifest_.ranges[0].size() - 1);
    EXPECT_LT(c.validBytes, text.substr(0, cut).size());

    // Resume truncates the tear and re-runs only the torn point.
    ShardRunResult r =
        runShard(manifest_, 0, dir_->path(), /*resume=*/true);
    EXPECT_EQ(r.status, ShardRunStatus::Complete);
    EXPECT_EQ(r.executed, 1u);
    EXPECT_EQ(r.skipped, manifest_.ranges[0].size() - 1);

    // The rebuilt journal holds the full verdict set again.
    ASSERT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Ok) << err;
    EXPECT_FALSE(c.tornTail);
    EXPECT_EQ(c.records.size(), manifest_.ranges[0].size());
}

TEST_F(JournalFixture, MidFileGarbageIsCorruptNotTorn)
{
    std::string text = completeShardZero();

    // Inject garbage *before* the last line: that cannot be a torn
    // tail, so the loader must refuse the whole journal.
    const std::size_t last_nl = text.rfind('\n', text.size() - 2);
    ASSERT_NE(last_nl, std::string::npos);
    writeAll(path_, text.substr(0, last_nl + 1) + "GARBAGE\n" +
                        text.substr(last_nl + 1));

    ShardJournalContents c;
    std::string err;
    EXPECT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Corrupt);
    EXPECT_FALSE(err.empty());

    // The worker refuses to resume on top of corruption.
    ShardRunResult r =
        runShard(manifest_, 0, dir_->path(), /*resume=*/true);
    EXPECT_EQ(r.status, ShardRunStatus::Error);
}

TEST_F(JournalFixture, ForeignManifestJournalIsCorrupt)
{
    completeShardZero();

    // A journal written under a different plan (different budget →
    // different digest) must be refused even though it parses.
    CampaignConfig other = cc_;
    other.budgetRuns = 6;
    CampaignManifest foreign = CampaignManifest::plan(other, 2);
    ASSERT_NE(foreign.digest, manifest_.digest);

    ShardJournalContents c;
    std::string err;
    EXPECT_EQ(loadShardJournal(path_, &foreign, 0, &c, &err),
              JournalLoad::Corrupt);
    EXPECT_NE(err.find("digest"), std::string::npos) << err;
}

TEST_F(JournalFixture, DuplicateRecordsIdempotentConflictsCorrupt)
{
    std::string text = completeShardZero();
    const std::size_t last_nl = text.rfind('\n', text.size() - 2);
    ASSERT_NE(last_nl, std::string::npos);
    const std::string last_line = text.substr(last_nl + 1);

    // An identical re-appended record (worker killed between fsync and
    // bookkeeping, then resumed from a stale skip set) is benign.
    writeAll(path_, text + last_line);
    ShardJournalContents c;
    std::string err;
    ASSERT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Ok) << err;
    EXPECT_EQ(c.records.size(), manifest_.ranges[0].size());

    // A duplicate index with a *different* verdict means two writers
    // raced on the file — refuse.
    JsonValue dup = JsonValue::parse(last_line, &err);
    ASSERT_TRUE(dup.isObject()) << err;
    const JsonValue *was = dup.find("pmo_violations");
    ASSERT_NE(was, nullptr);
    dup.set("pmo_violations", JsonValue(was->asU64() + 1));
    // Keep a valid record after it so the conflicting line is
    // mid-file, not a candidate torn tail.
    writeAll(path_, text + dup.dump(0) + "\n" + last_line);
    EXPECT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Corrupt);
}

TEST_F(JournalFixture, DoubleResumeIsIdempotent)
{
    completeShardZero();
    for (int pass = 0; pass < 2; ++pass) {
        ShardRunResult r =
            runShard(manifest_, 0, dir_->path(), /*resume=*/true);
        EXPECT_EQ(r.status, ShardRunStatus::Complete);
        EXPECT_EQ(r.executed, 0u);
        EXPECT_EQ(r.skipped, manifest_.ranges[0].size());
    }
    // Fresh mode refuses the existing journal instead of clobbering.
    ShardRunResult r =
        runShard(manifest_, 0, dir_->path(), /*resume=*/false);
    EXPECT_EQ(r.status, ShardRunStatus::Error);
    EXPECT_NE(r.error.find("--resume"), std::string::npos);
}

TEST_F(JournalFixture, StopFlagInterruptsBetweenPointsCleanly)
{
    volatile std::sig_atomic_t stop = 1;   // Raised before any point.
    ShardRunResult r = runShard(manifest_, 0, dir_->path(),
                                /*resume=*/false, &stop);
    EXPECT_EQ(r.status, ShardRunStatus::Interrupted);
    EXPECT_EQ(r.executed, 0u);

    // The journal holds a valid header and zero records — resumable.
    ShardJournalContents c;
    std::string err;
    ASSERT_EQ(loadShardJournal(path_, &manifest_, 0, &c, &err),
              JournalLoad::Ok) << err;
    EXPECT_TRUE(c.records.empty());

    stop = 0;
    r = runShard(manifest_, 0, dir_->path(), /*resume=*/true, &stop);
    EXPECT_EQ(r.status, ShardRunStatus::Complete);
    EXPECT_EQ(r.executed, manifest_.ranges[0].size());
}

// --- Merge determinism ----------------------------------------------

/** Stripped deterministic projection of a campaign report. */
std::string
strippedReport(const CampaignConfig &cfg, const CampaignResult &r,
               const CampaignExecutionInfo *exec)
{
    return campaignReportStripWall(campaignReportJson(cfg, r, exec))
        .dump(2);
}

TEST(Merge, ShardCountInvariantAndByteIdenticalToSingleProcess)
{
    // Deliberately broken config (MQ fails under the seeded relaxed
    // -order bug at this budget) so the campaign has real failures and
    // the merged tally/minimization paths are exercised.
    CampaignConfig cc = campaignFor("MQ", ModelKind::Sbrp, 30, true);
    cc.minimize = true;

    CampaignResult single = CampaignEngine(cc).run();
    ASSERT_GT(single.failures, 0u);
    ASSERT_TRUE(single.hasMinimized);
    const std::string golden = strippedReport(cc, single, nullptr);

    for (unsigned shards : {1u, 2u, 3u}) {
        TempDir dir("merge" + std::to_string(shards));
        CampaignManifest m = CampaignManifest::plan(cc, shards);
        for (unsigned s = 0; s < shards; ++s) {
            ShardRunResult r =
                runShard(m, s, dir.path(), /*resume=*/false);
            ASSERT_EQ(r.status, ShardRunStatus::Complete);
        }
        MergeOutcome mo;
        std::string err;
        ASSERT_TRUE(mergeShardJournals(m, dir.path(), &mo, &err))
            << err;
        EXPECT_TRUE(mo.complete);
        EXPECT_EQ(mo.exec.mode, "merged");
        EXPECT_EQ(mo.result.failures, single.failures);
        EXPECT_EQ(mo.result.runsExecuted, single.runsExecuted);
        EXPECT_EQ(strippedReport(mo.cfg, mo.result, &mo.exec), golden)
            << "shard count " << shards
            << " diverged from single-process report";
    }
}

TEST(Merge, MissingJournalDegradesToIncompleteNeverDropped)
{
    CampaignConfig cc = campaignFor("Red", ModelKind::Sbrp, 12, true);
    TempDir dir("incomplete");
    CampaignManifest m = CampaignManifest::plan(cc, 3);

    // Run shards 0 and 2 only; shard 1's journal never exists.
    ASSERT_EQ(runShard(m, 0, dir.path(), false).status,
              ShardRunStatus::Complete);
    ASSERT_EQ(runShard(m, 2, dir.path(), false).status,
              ShardRunStatus::Complete);

    MergeOutcome mo;
    std::string err;
    ASSERT_TRUE(mergeShardJournals(m, dir.path(), &mo, &err)) << err;
    EXPECT_FALSE(mo.complete);
    ASSERT_EQ(mo.shards.size(), 3u);
    EXPECT_TRUE(mo.shards[0].complete);
    EXPECT_FALSE(mo.shards[1].journalPresent);
    EXPECT_FALSE(mo.shards[1].complete);
    EXPECT_TRUE(mo.shards[2].complete);
    EXPECT_EQ(mo.exec.incompleteShards, std::vector<std::uint64_t>{1});

    // The report carries every durable verdict and says so.
    EXPECT_EQ(mo.result.runsExecuted,
              m.ranges[0].size() + m.ranges[2].size());
    JsonValue rep = campaignReportJson(mo.cfg, mo.result, &mo.exec);
    const JsonValue *ex = rep.find("execution");
    ASSERT_NE(ex, nullptr);
    ASSERT_NE(ex->find("incomplete_shards"), nullptr);
    EXPECT_EQ(ex->find("incomplete_shards")->items().size(), 1u);

    // A corrupt journal, by contrast, fails the merge outright.
    const std::string p0 = shardJournalPath(dir.path(), 0);
    std::string text = readAll(p0);
    const std::size_t nl = text.find('\n');
    ASSERT_NE(nl, std::string::npos);
    writeAll(p0, text.substr(0, nl + 1) + "GARBAGE\n" +
                     text.substr(nl + 1));
    EXPECT_FALSE(mergeShardJournals(m, dir.path(), &mo, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Merge, ResumedShardsMergeIdenticallyToUninterrupted)
{
    CampaignConfig cc = campaignFor("MQ", ModelKind::Sbrp, 30, true);

    TempDir clean("clean");
    CampaignManifest m = CampaignManifest::plan(cc, 2);
    for (unsigned s = 0; s < 2; ++s)
        ASSERT_EQ(runShard(m, s, clean.path(), false).status,
                  ShardRunStatus::Complete);
    MergeOutcome a;
    std::string err;
    ASSERT_TRUE(mergeShardJournals(m, clean.path(), &a, &err)) << err;

    // Interrupted variant: shard 0 stops mid-range (simulated torn
    // write), then resumes; shard 1 runs straight through.
    TempDir rough("rough");
    ASSERT_EQ(runShard(m, 0, rough.path(), false).status,
              ShardRunStatus::Complete);
    const std::string p0 = shardJournalPath(rough.path(), 0);
    std::string text = readAll(p0);
    const std::size_t cut = text.rfind("\"crash_cycle\"");
    ASSERT_NE(cut, std::string::npos);
    writeAll(p0, text.substr(0, cut));   // kill -9 signature.
    ASSERT_EQ(runShard(m, 0, rough.path(), true).status,
              ShardRunStatus::Complete);
    ASSERT_EQ(runShard(m, 1, rough.path(), false).status,
              ShardRunStatus::Complete);
    MergeOutcome b;
    ASSERT_TRUE(mergeShardJournals(m, rough.path(), &b, &err)) << err;

    EXPECT_EQ(strippedReport(a.cfg, a.result, &a.exec),
              strippedReport(b.cfg, b.result, &b.exec));
}

} // namespace
} // namespace sbrp
