/**
 * @file
 * Cycle-attribution ledger tests (docs/OBSERVABILITY.md, "Cycle
 * attribution").
 *
 * The ledger's contract is exactness, not plausibility:
 *  - warp categories sum to `warps x active cycles` — per SM and
 *    system-wide — for every app x model x design combination, with
 *    and without fault injection, and on crashed launches;
 *  - drain categories sum to each SM's share of the end-of-kernel
 *    drain window (crash-free runs);
 *  - the breakdown is byte-identical run-to-run (pure accounting over
 *    a deterministic simulation);
 *  - campaign ledger counters are --jobs-invariant (verdicts are pure
 *    functions of their crash points);
 *  - attribution is meaningful: the PM-far ack tail lands in
 *    pcie_backlog, the PM-near tail in wpq_full.
 */

#include <gtest/gtest.h>

#include <string>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/registry.hh"
#include "crashtest/campaign.hh"
#include "gpu/cycle_ledger.hh"

namespace sbrp
{
namespace
{

struct Combo
{
    ModelKind model;
    SystemDesign design;
};

const Combo kCombos[] = {
    {ModelKind::Sbrp, SystemDesign::PmNear},
    {ModelKind::Sbrp, SystemDesign::PmFar},
    {ModelKind::Epoch, SystemDesign::PmNear},
    {ModelKind::Epoch, SystemDesign::PmFar},
    {ModelKind::Gpm, SystemDesign::PmFar},
    {ModelKind::ScopedBarrier, SystemDesign::PmNear},
    {ModelKind::ScopedBarrier, SystemDesign::PmFar},
};

/** Runs `app` crash-free and checks every ledger sum invariant. */
void
checkInvariants(const std::string &app_name, const SystemConfig &cfg)
{
    SCOPED_TRACE(app_name + " under " + cfg.describe());
    auto app = makeRegisteredApp(app_name, cfg.model);
    ASSERT_NE(app, nullptr);
    NvmDevice nvm;
    app->setupNvm(nvm);
    GpuSystem gpu(cfg, nvm);
    app->setupGpu(gpu);
    auto res = gpu.launch(app->forward());

    // Per-SM: warp categories telescope to the active-cycle tally, and
    // drain categories cover exactly this SM's drain window (the window
    // [exec end, launch end) is system-wide, so every SM has the same
    // share).
    for (SmId i = 0; i < cfg.numSms; ++i) {
        const CycleLedger &l = gpu.sm(i).ledger();
        EXPECT_EQ(l.warpCycles(), l.warpActiveCycles()) << "sm" << i;
        EXPECT_EQ(l.drainCycles(), res.cycles - res.execCycles)
            << "sm" << i;
    }

    // System-wide: the aggregate mirrors the per-SM sums.
    auto bd = gpu.cycleBreakdown();
    EXPECT_EQ(bd.warpCycles(), bd.warpActiveCycles);
    EXPECT_EQ(bd.drainCycles(),
              std::uint64_t{cfg.numSms} * (res.cycles - res.execCycles));

    // The published counters agree with the ledger accessors.
    EXPECT_EQ(gpu.sumSmStat("ledger_warp_active_cycles"),
              bd.warpActiveCycles);
    std::uint64_t published = 0;
    for (std::size_t c = 0; c < kNumCycleCats; ++c) {
        published += gpu.sumSmStat(
            std::string("ledger_") + toString(static_cast<CycleCat>(c)));
    }
    EXPECT_EQ(published, bd.total());
}

TEST(CycleLedger, SumInvariantEveryAppModelDesign)
{
    for (const Combo &c : kCombos) {
        for (const std::string &name : appRegistryNames())
            checkInvariants(name, SystemConfig::testDefault(c.model,
                                                            c.design));
    }
}

TEST(CycleLedger, SumInvariantUnderFaultInjection)
{
    for (const Combo &c : kCombos) {
        SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);
        std::string err;
        ASSERT_TRUE(FaultSpec::parse("pcie=1e-3,media=1e-3", &cfg.faults,
                                     &err)) << err;
        cfg.seed = 7;
        checkInvariants("Red", cfg);
        checkInvariants("gpKVS", cfg);
    }
}

TEST(CycleLedger, WarpInvariantHoldsOnCrashedLaunches)
{
    // A crash cuts warps off mid-state: finalization must close their
    // open spans so the telescoping sum still balances. The drain
    // invariant is exempt — a crash can land inside the drain window.
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmFar);
    for (Cycle crash_at : {Cycle{50}, Cycle{500}, Cycle{2000}}) {
        SCOPED_TRACE(crash_at);
        auto app = makeRegisteredApp("gpKVS", cfg.model);
        NvmDevice nvm;
        app->setupNvm(nvm);
        GpuSystem gpu(cfg, nvm);
        app->setupGpu(gpu);
        auto res = gpu.launch(app->forward(), crash_at);
        ASSERT_TRUE(res.crashed);
        for (SmId i = 0; i < cfg.numSms; ++i) {
            const CycleLedger &l = gpu.sm(i).ledger();
            EXPECT_EQ(l.warpCycles(), l.warpActiveCycles()) << "sm" << i;
        }
    }
}

TEST(CycleLedger, BreakdownByteIdenticalRunToRun)
{
    auto run = [](ModelKind m, SystemDesign d) {
        auto app = makeRegisteredApp("Scan", m);
        SystemConfig cfg = SystemConfig::testDefault(m, d);
        NvmDevice nvm;
        app->setupNvm(nvm);
        GpuSystem gpu(cfg, nvm);
        app->setupGpu(gpu);
        gpu.launch(app->forward());
        return gpu.cycleBreakdownJson();
    };
    EXPECT_EQ(run(ModelKind::Sbrp, SystemDesign::PmFar),
              run(ModelKind::Sbrp, SystemDesign::PmFar));
    EXPECT_EQ(run(ModelKind::Epoch, SystemDesign::PmNear),
              run(ModelKind::Epoch, SystemDesign::PmNear));
}

TEST(CycleLedger, DrainTailAttributionMatchesTheDesign)
{
    // gpKVS leaves buffered persists behind at kernel end under SBRP,
    // so the drain window is non-empty; the in-flight ack wait must
    // land behind the PCIe link on PM-far and at the WPQ on PM-near.
    auto drainCat = [](SystemDesign d, CycleCat want, CycleCat zero) {
        auto app = makeRegisteredApp("gpKVS", ModelKind::Sbrp);
        SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp, d);
        NvmDevice nvm;
        app->setupNvm(nvm);
        GpuSystem gpu(cfg, nvm);
        app->setupGpu(gpu);
        auto res = gpu.launch(app->forward());
        ASSERT_GT(res.cycles, res.execCycles) << "no drain tail";
        auto bd = gpu.cycleBreakdown();
        EXPECT_GT(bd.cycles[static_cast<std::size_t>(want)], 0u);
        EXPECT_EQ(bd.cycles[static_cast<std::size_t>(zero)], 0u);
    };
    drainCat(SystemDesign::PmFar, CycleCat::PcieBacklog,
             CycleCat::WpqFull);
    drainCat(SystemDesign::PmNear, CycleCat::WpqFull,
             CycleCat::PcieBacklog);
}

TEST(CycleLedger, CampaignLedgerCountersJobsInvariant)
{
    // Verdicts are pure functions of their crash points, so the summed
    // ledger counters cannot depend on how runs were spread across
    // workers. (The campaign's own "jobs" counter legitimately differs;
    // the report JSON is covered by the byte-identity test in
    // test_sim_core.cc.)
    CampaignConfig cc;
    cc.scenario.app = "Red";
    cc.scenario.cfg = SystemConfig::testDefault(ModelKind::Sbrp);
    cc.budgetRuns = 24;
    cc.minimize = false;

    auto ledgerCounters = [](const StatGroup &g) {
        std::string out;
        for (std::size_t c = 0; c < kNumCycleCats; ++c) {
            std::string key = std::string("ledger_") +
                              toString(static_cast<CycleCat>(c));
            out += key + "=" + std::to_string(g.value(key)) + "\n";
        }
        out += "ledger_warp_active_cycles=" +
               std::to_string(g.value("ledger_warp_active_cycles"));
        return out;
    };

    cc.jobs = 1;
    CampaignEngine base(cc);
    base.run();
    std::string golden = ledgerCounters(base.group());
    EXPECT_NE(golden.find("ledger_warp_active_cycles="),
              std::string::npos);

    cc.jobs = 3;
    CampaignEngine par(cc);
    par.run();
    EXPECT_EQ(ledgerCounters(par.group()), golden);
}

} // namespace
} // namespace sbrp
