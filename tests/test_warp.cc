/**
 * @file
 * Unit tests for the Warp runtime state: scheduling states, operand
 * selection, effective addressing and lane liveness.
 */

#include <gtest/gtest.h>

#include "gpu/warp.hh"

namespace sbrp
{
namespace
{

WarpProgram
prog()
{
    WarpProgram p;
    WarpBuilder(p, 32)
        .mov(0, 5)
        .load(1, [](std::uint32_t l) { return Addr(0x1000 + 4 * l); })
        .halt();
    return p;
}

TEST(Warp, IdentityAndThreads)
{
    WarpProgram p = prog();
    Warp w(&p, /*block=*/3, /*warpInBlock=*/2, /*slot=*/7, /*sm=*/1,
           /*firstThread=*/3 * 128 + 64);
    EXPECT_EQ(w.block(), 3u);
    EXPECT_EQ(w.warpInBlock(), 2u);
    EXPECT_EQ(w.slot(), 7u);
    EXPECT_EQ(w.sm(), 1u);
    EXPECT_EQ(w.thread(0), 448u);
    EXPECT_EQ(w.thread(31), 479u);
}

TEST(Warp, PcAdvancesToEnd)
{
    WarpProgram p = prog();
    Warp w(&p, 0, 0, 0, 0, 0);
    EXPECT_FALSE(w.atEnd());
    EXPECT_EQ(w.instr().op, Op::Mov);
    w.advance();
    EXPECT_EQ(w.instr().op, Op::Load);
    w.advance();
    w.advance();
    EXPECT_TRUE(w.atEnd());
}

TEST(Warp, IssuableStates)
{
    WarpProgram p = prog();
    Warp w(&p, 0, 0, 0, 0, 0);
    EXPECT_TRUE(w.issuable(0));
    w.setState(WarpState::WaitMem);
    EXPECT_FALSE(w.issuable(0));
    w.setState(WarpState::ModelRetry);
    EXPECT_TRUE(w.issuable(0));
    w.setState(WarpState::Busy);
    w.setBusyUntil(100);
    EXPECT_FALSE(w.issuable(99));
    EXPECT_TRUE(w.issuable(100));
    w.setState(WarpState::WaitSpin);
    EXPECT_FALSE(w.issuable(1000));
}

TEST(Warp, OutstandingCounting)
{
    WarpProgram p = prog();
    Warp w(&p, 0, 0, 0, 0, 0);
    w.addOutstanding(2);
    EXPECT_FALSE(w.completeOne());
    EXPECT_TRUE(w.completeOne());
    EXPECT_EQ(w.outstanding(), 0u);
    EXPECT_TRUE(w.completeOne());   // Saturates at zero.
}

TEST(Warp, OperandSelection)
{
    WarpProgram p;
    WarpBuilder b(p, 32);
    b.storeImm([](std::uint32_t l) { return Addr(0x100 + 4 * l); },
               [](std::uint32_t l) { return 10 + l; });
    b.store([](std::uint32_t l) { return Addr(0x200 + 4 * l); }, 2);
    WarpInstr scalar;
    scalar.op = Op::Store;
    scalar.src = kImmOperand;
    scalar.imm = 77;

    Warp w(&p, 0, 0, 0, 0, 0);
    w.setReg(5, 2, 1234);
    EXPECT_EQ(w.operand(p.code[0], 3), 13u);       // Per-lane imm.
    EXPECT_EQ(w.operand(p.code[1], 5), 1234u);     // Register.
    EXPECT_EQ(w.operand(scalar, 9), 77u);          // Scalar imm.
}

TEST(Warp, EffectiveAddressWithIndexRegister)
{
    WarpProgram p;
    WarpBuilder(p, 32)
        .storeIdx([](std::uint32_t) { return Addr(0x4000); }, 1, 0, 8);
    Warp w(&p, 0, 0, 0, 0, 0);
    w.setReg(2, 0, 5);   // Lane 2's index register = 5.
    EXPECT_EQ(w.effAddr(p.code[0], 2), 0x4000u + 5 * 8);
    w.setReg(3, 0, 0);
    EXPECT_EQ(w.effAddr(p.code[0], 3), 0x4000u);
}

TEST(Warp, LanesDeactivatePermanently)
{
    WarpProgram p = prog();
    Warp w(&p, 0, 0, 0, 0, 0);
    EXPECT_EQ(w.live(), 0xffffffffu);
    w.deactivate(0);
    w.deactivate(31);
    EXPECT_EQ(w.live(), 0x7ffffffeu);
    WarpInstr in;
    in.active = 0x0000ffff;
    EXPECT_EQ(w.effActive(in), 0x0000fffeu);
}

} // namespace
} // namespace sbrp
