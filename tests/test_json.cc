/** Unit tests for the minimal JSON reader/writer (common/json). */

#include <gtest/gtest.h>

#include "common/json.hh"

namespace sbrp
{
namespace
{

TEST(Json, ParsesScalars)
{
    std::string err;
    EXPECT_TRUE(JsonValue::parse("true", &err).asBool());
    EXPECT_FALSE(JsonValue::parse("false", &err).asBool());
    EXPECT_TRUE(JsonValue::parse("null", &err).isNull());
    EXPECT_TRUE(err.empty());
    EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e1", &err).asNumber(),
                     -125.0);
    EXPECT_EQ(JsonValue::parse("42", &err).asU64(), 42u);
    EXPECT_EQ(JsonValue::parse("\"hi\\n\\\"there\\\"\"", &err).asString(),
              "hi\n\"there\"");
}

TEST(Json, ParsesUnicodeEscapes)
{
    std::string err;
    JsonValue v = JsonValue::parse("\"a\\u0041b\"", &err);
    EXPECT_EQ(v.asString(), "aAb") << err;
}

TEST(Json, ParsesNestedStructures)
{
    std::string err;
    JsonValue v = JsonValue::parse(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"}", &err);
    ASSERT_TRUE(v.isObject()) << err;
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[1].asU64(), 2u);
    const JsonValue *b = a->items()[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->asBool());
    EXPECT_EQ(v.find("c")->asString(), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"open",
                            "1 2", "{\"a\" 1}", "[1]]", "nul"}) {
        std::string err;
        JsonValue v = JsonValue::parse(bad, &err);
        EXPECT_TRUE(v.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    std::string err;
    EXPECT_TRUE(JsonValue::parse(deep, &err).isNull());
    EXPECT_FALSE(err.empty());
}

TEST(Json, DumpParseRoundTrip)
{
    JsonValue o = JsonValue::object();
    o.set("n", JsonValue(std::uint64_t{123456789}));
    o.set("f", JsonValue(0.5));
    o.set("s", JsonValue(std::string("quote \" slash \\")));
    o.set("b", JsonValue(true));
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(std::uint64_t{1}));
    arr.push(JsonValue());
    o.set("a", std::move(arr));

    for (int indent : {0, 2}) {
        std::string err;
        JsonValue back = JsonValue::parse(o.dump(indent), &err);
        ASSERT_TRUE(back.isObject()) << err;
        EXPECT_EQ(back.find("n")->asU64(), 123456789u);
        EXPECT_DOUBLE_EQ(back.find("f")->asNumber(), 0.5);
        EXPECT_EQ(back.find("s")->asString(), "quote \" slash \\");
        EXPECT_TRUE(back.find("b")->asBool());
        EXPECT_TRUE(back.find("a")->items()[1].isNull());
    }
}

TEST(Json, IntegralNumbersDumpWithoutFraction)
{
    JsonValue v(std::uint64_t{7});
    EXPECT_EQ(v.dump(), "7");
}

} // namespace
} // namespace sbrp
