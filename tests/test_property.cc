/**
 * @file
 * Property-based tests: randomized persist/fence/release programs and
 * randomized crash points, validated against the formal model. The
 * invariant under test is the paper's central guarantee — at *every*
 * possible crash point, the durable set respects the persist memory
 * order (downward closure), for every flush policy and both system
 * designs.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"
#include "apps/hashmap.hh"
#include "apps/kvs.hh"
#include "apps/multiqueue.hh"
#include "apps/reduction.hh"
#include "apps/scan.hh"
#include "apps/srad.hh"
#include "common/rng.hh"

namespace sbrp
{
namespace
{

std::unique_ptr<PmApp>
makeTestApp(const std::string &name, ModelKind model)
{
    if (name == "gpKVS")
        return std::make_unique<KvsApp>(model, KvsParams::test());
    if (name == "HM")
        return std::make_unique<HashmapApp>(model, HashmapParams::test());
    if (name == "SRAD")
        return std::make_unique<SradApp>(model, SradParams::test());
    if (name == "Red")
        return std::make_unique<ReductionApp>(model,
                                              ReductionParams::test());
    if (name == "MQ")
        return std::make_unique<MultiqueueApp>(model,
                                               MultiqueueParams::test());
    return std::make_unique<ScanApp>(model, ScanParams::test());
}

struct PropertyCase
{
    std::uint64_t seed;
    SystemDesign design;
    FlushPolicy policy;
};

std::string
caseName(const testing::TestParamInfo<PropertyCase> &info)
{
    std::string n = "seed" + std::to_string(info.param.seed);
    n += "_";
    n += toString(info.param.design);
    n += "_";
    n += toString(info.param.policy);
    return n;
}

/**
 * Generates a structured-random kernel: `warps` warps in one block,
 * each alternating bursts of persist stores (random addresses from a
 * line pool) with oFences, then chained through block-scoped
 * release/acquire pairs (warp w+1 acquires what warp w released, so the
 * program is deadlock-free by construction).
 */
KernelProgram
randomKernel(Rng &rng, NvmDevice &nvm, Addr flags, std::uint32_t warps,
             std::uint32_t phases)
{
    Addr pool = nvm.open("pool").base;
    const std::uint32_t kLines = 64;

    KernelProgram k("prop", 1, warps * 32);
    for (std::uint32_t w = 0; w < warps; ++w) {
        WarpBuilder wb(k.warp(0, w), 32);
        for (std::uint32_t ph = 0; ph < phases; ++ph) {
            // Chained acquire: wait for the previous warp's phase.
            if (w > 0) {
                Addr flag = flags + ((w - 1) * phases + ph) * 4;
                wb.pacq([flag](std::uint32_t) { return flag; }, 1,
                        Scope::Block, mask::lane(0));
            }
            std::uint32_t bursts = 1 + rng.below(3) % 3;
            for (std::uint32_t bu = 0; bu < bursts; ++bu) {
                std::uint32_t line = static_cast<std::uint32_t>(
                    rng.below(kLines));
                std::uint32_t val = 1 + rng.next32() % 1000;
                wb.storeImm([pool, line](std::uint32_t l) {
                    return pool + 128ull * line + 4 * l;
                }, [val](std::uint32_t l) { return val + l; });
                if (rng.below(2) == 0)
                    wb.ofence();
            }
            // Release this warp's phase flag.
            Addr flag = flags + (w * phases + ph) * 4;
            wb.prel([flag](std::uint32_t) { return flag; }, 1,
                    Scope::Block, mask::lane(0));
        }
        if (rng.below(3) == 0)
            wb.dfence(mask::lane(0));
    }
    return k;
}

class RandomProgramPmo : public testing::TestWithParam<PropertyCase>
{
};

TEST_P(RandomProgramPmo, DurableSetRespectsPmoAtEveryCrash)
{
    const PropertyCase &pc = GetParam();
    Rng rng(pc.seed);

    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 pc.design);
    cfg.flushPolicy = pc.policy;

    // Measure the crash-free runtime once.
    Cycle total;
    {
        Rng gen(pc.seed);
        NvmDevice nvm;
        nvm.allocate("pool", 64 * 128);
        ExecutionTrace trace;
        GpuSystem gpu(cfg, nvm, &trace);
        Addr flags = gpu.gddrAlloc(4 * 32 * 4);
        auto res = gpu.launch(randomKernel(gen, nvm, flags, 4, 3));
        total = res.cycles;
        PmoChecker checker(trace);
        auto v = checker.check();
        EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].detail);
        EXPECT_GT(checker.stats().persists, 0u);
    }

    // Sweep random crash points.
    for (int i = 0; i < 6; ++i) {
        Cycle at = 1 + rng.below(std::max<Cycle>(total, 2));
        Rng gen(pc.seed);
        NvmDevice nvm;
        nvm.allocate("pool", 64 * 128);
        ExecutionTrace trace;
        {
            GpuSystem gpu(cfg, nvm, &trace);
            Addr flags = gpu.gddrAlloc(4 * 32 * 4);
            gpu.launch(randomKernel(gen, nvm, flags, 4, 3), at);
        }
        PmoChecker checker(trace);
        auto v = checker.check();
        EXPECT_TRUE(v.empty())
            << "crash at " << at << ": " << (v.empty() ? "" : v[0].detail);
    }
}

std::vector<PropertyCase>
propertyCases()
{
    std::vector<PropertyCase> cases;
    for (std::uint64_t seed : {11ull, 23ull, 37ull, 51ull, 68ull}) {
        for (SystemDesign d :
             {SystemDesign::PmFar, SystemDesign::PmNear}) {
            for (FlushPolicy p : {FlushPolicy::Window, FlushPolicy::Eager,
                                  FlushPolicy::Lazy}) {
                cases.push_back({seed, d, p});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramPmo,
                         testing::ValuesIn(propertyCases()), caseName);

/** The epoch models must satisfy their (fence-only) PMO too. */
class RandomEpochPmo : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomEpochPmo, FenceRuleHolds)
{
    std::uint64_t seed = GetParam();
    Rng rng(seed);
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Epoch,
                                                 SystemDesign::PmNear);

    NvmDevice nvm;
    Addr pool = nvm.allocate("pool", 64 * 128);
    ExecutionTrace trace;
    Cycle total;
    {
        GpuSystem gpu(cfg, nvm, &trace);
        KernelProgram k("prop_epoch", 1, 64);
        for (std::uint32_t w = 0; w < 2; ++w) {
            WarpBuilder wb(k.warp(0, w), 32);
            for (int ph = 0; ph < 4; ++ph) {
                std::uint32_t line = static_cast<std::uint32_t>(
                    rng.below(64));
                wb.storeImm([pool, line](std::uint32_t l) {
                    return pool + 128ull * line + 4 * l;
                }, [ph](std::uint32_t l) { return ph * 100 + l + 1; });
                wb.fence(Scope::System);
            }
        }
        total = gpu.launch(k).cycles;
    }
    {
        PmoChecker checker(trace);
        EXPECT_TRUE(checker.check().empty());
    }

    for (int i = 0; i < 4; ++i) {
        Cycle at = 1 + rng.below(std::max<Cycle>(total, 2));
        Rng gen(seed);
        NvmDevice nvm2;
        Addr pool2 = nvm2.allocate("pool", 64 * 128);
        ExecutionTrace trace2;
        {
            GpuSystem gpu(cfg, nvm2, &trace2);
            KernelProgram k("prop_epoch", 1, 64);
            for (std::uint32_t w = 0; w < 2; ++w) {
                WarpBuilder wb(k.warp(0, w), 32);
                for (int ph = 0; ph < 4; ++ph) {
                    std::uint32_t line = static_cast<std::uint32_t>(
                        gen.below(64));
                    wb.storeImm([pool2, line](std::uint32_t l) {
                        return pool2 + 128ull * line + 4 * l;
                    }, [ph](std::uint32_t l) {
                        return ph * 100 + l + 1;
                    });
                    wb.fence(Scope::System);
                }
            }
            gpu.launch(k, at);
        }
        PmoChecker checker(trace2);
        auto v = checker.check();
        EXPECT_TRUE(v.empty()) << "crash at " << at;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEpochPmo,
                         testing::Values(3ull, 7ull, 19ull, 42ull));

/** Random crash fractions against the full applications. */
struct AppCase
{
    const char *app;
    SystemDesign design;
    std::uint64_t seed;
};

std::string
appCaseName(const testing::TestParamInfo<AppCase> &info)
{
    return std::string(info.param.app) + "_" +
           toString(info.param.design) + "_s" +
           std::to_string(info.param.seed);
}

class RandomAppCrash : public testing::TestWithParam<AppCase>
{
};

TEST_P(RandomAppCrash, AlwaysRecoversConsistently)
{
    const AppCase &ac = GetParam();
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 ac.design);
    Cycle total;
    {
        auto app = makeTestApp(ac.app, ModelKind::Sbrp);
        total = AppHarness::runCrashFree(*app, cfg).forwardCycles;
    }
    Rng rng(ac.seed);
    for (int i = 0; i < 3; ++i) {
        auto app = makeTestApp(ac.app, ModelKind::Sbrp);
        Cycle at = 1 + rng.below(std::max<Cycle>(total, 2));
        AppRunResult r = AppHarness::runCrashRecover(*app, cfg, at, true);
        EXPECT_TRUE(r.consistent)
            << ac.app << " inconsistent, crash at " << at;
        EXPECT_EQ(r.pmoViolations, 0u)
            << ac.app << " PMO violation, crash at " << at;
    }
}

std::vector<AppCase>
appCases()
{
    std::vector<AppCase> cases;
    for (const char *app :
         {"gpKVS", "HM", "SRAD", "Red", "MQ", "Scan"}) {
        for (SystemDesign d :
             {SystemDesign::PmFar, SystemDesign::PmNear}) {
            for (std::uint64_t s : {101ull, 202ull}) {
                cases.push_back({app, d, s});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Apps, RandomAppCrash,
                         testing::ValuesIn(appCases()), appCaseName);

} // namespace
} // namespace sbrp
