/**
 * @file
 * Persist-op provenance: the waterfall sum invariant, the audit
 * stream's cross-checks, determinism, and the zero-cost-when-off
 * guarantee.
 *
 * The headline invariant mirrors the cycle ledger's: for every
 * completed, non-faulted persist op the six stage residencies telescope
 * to exactly the observed ack latency — across every app x model x
 * design combination, including fault-injected runs whose retries and
 * backoff all fold into the fabric stage.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/registry.hh"
#include "common/config.hh"
#include "formal/checker.hh"
#include "formal/trace.hh"
#include "gpu/gpu_system.hh"
#include "mem/nvm_device.hh"
#include "obs/provenance.hh"

namespace sbrp
{
namespace
{

struct Combo
{
    const char *app;
    ModelKind model;
    SystemDesign design;
};

std::string
comboName(const testing::TestParamInfo<Combo> &info)
{
    std::string n = info.param.app;
    n += "_";
    n += toString(info.param.model);
    n += "_";
    n += toString(info.param.design);
    std::string out;
    for (char c : n) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
    }
    return out;
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const char *app :
         {"gpKVS", "HM", "SRAD", "Red", "MQ", "Scan", "Ckpt"}) {
        out.push_back({app, ModelKind::Gpm, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmNear});
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmNear});
        out.push_back({app, ModelKind::ScopedBarrier,
                       SystemDesign::PmNear});
    }
    return out;
}

/** Runs an app crash-free with provenance (and optionally the formal
    trace) attached; returns the kernel cycle count. */
Cycle
runWithProvenance(const std::string &app_name, const SystemConfig &cfg,
                  PersistProvenance *prov,
                  ExecutionTrace *trace = nullptr,
                  NvmDevice *nvm_out = nullptr)
{
    NvmDevice local;
    NvmDevice &nvm = nvm_out ? *nvm_out : local;
    auto app = makeRegisteredApp(app_name, cfg.model);
    EXPECT_TRUE(app) << app_name;
    app->setupNvm(nvm);
    GpuSystem gpu(cfg, nvm, trace, nullptr, prov);
    app->setupGpu(gpu);
    auto res = gpu.launch(app->forward());
    EXPECT_TRUE(app->verify(nvm)) << app_name;
    return res.cycles;
}

/** Asserts the waterfall invariant over every live record and the
    aggregate histograms. */
void
checkWaterfall(const PersistProvenance &prov, const std::string &what)
{
    EXPECT_GT(prov.opsCompleted(), 0u) << what;
    EXPECT_EQ(prov.recordsLost(), 0u) << what;

    std::uint64_t clean = 0;
    for (const PersistOpRecord &r : prov.records()) {
        if (r.opId == 0)
            continue;
        EXPECT_TRUE(r.completed)
            << what << ": op " << r.opId << " still in flight";
        if (!r.completed || r.faulted)
            continue;
        ++clean;
        // Monotone journey...
        const Cycle fsm = r.tFsmBlock ? r.tFsmBlock : r.tFlush;
        EXPECT_LE(r.tIssue, r.tAdmit) << what;
        EXPECT_LE(r.tAdmit, fsm) << what;
        EXPECT_LE(fsm, r.tFlush) << what;
        EXPECT_LE(r.tFlush, r.tArrive) << what;
        EXPECT_LE(r.tArrive, r.tAccept) << what;
        EXPECT_LE(r.tAccept, r.tAck) << what;
        // ...whose stage residencies telescope to the ack latency.
        Cycle sum = 0;
        for (std::size_t s = 0; s < kNumPersistStages; ++s)
            sum += r.stageCycles(static_cast<PersistStage>(s));
        EXPECT_EQ(sum, r.ackLatency())
            << what << ": op " << r.opId << " stages do not telescope";
    }
    EXPECT_EQ(clean, prov.opsCompleted() - prov.opsFaulted()) << what;

    // Aggregate form: summed per-stage histograms equal the ack
    // histogram, in both population and total cycles.
    std::uint64_t stage_sum = 0;
    for (std::size_t s = 0; s < kNumPersistStages; ++s) {
        const Distribution &d =
            prov.stageDist(static_cast<PersistStage>(s));
        EXPECT_EQ(d.count(), prov.ackDist().count()) << what;
        stage_sum += d.sum();
    }
    EXPECT_EQ(stage_sum, prov.ackDist().sum()) << what;
}

class ProvenanceWaterfall : public testing::TestWithParam<Combo>
{
};

TEST_P(ProvenanceWaterfall, StageSumEqualsAckLatency)
{
    const Combo &c = GetParam();
    SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);
    PersistProvenance prov;
    runWithProvenance(c.app, cfg, &prov);
    const std::string what = std::string(c.app) + "/" +
                             toString(c.model) + "/" + toString(c.design);
    checkWaterfall(prov, what);
    // Every completed op committed durably exactly once.
    EXPECT_EQ(prov.audit().size(),
              prov.opsCompleted() - prov.opsFaulted());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ProvenanceWaterfall,
                         testing::ValuesIn(allCombos()), comboName);

TEST(ProvenanceFault, WaterfallHoldsUnderInjectedRetries)
{
    // PM-far with aggressive transient rates: PCIe corruptions and NVM
    // media faults force replays, which must all fold into the fabric
    // stage without breaking the telescoping sum.
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmFar);
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("pcie=2e-2,media=2e-2", &cfg.faults,
                                 &err)) << err;
    cfg.seed = 9;
    cfg.validate();

    PersistProvenance prov;
    runWithProvenance("Red", cfg, &prov);
    checkWaterfall(prov, "Red/sbrp/far faulted");

    // The schedule above is dense enough that some op retried.
    EXPECT_FALSE(prov.retryOutliers().empty());
    for (const PersistOpRecord &r : prov.retryOutliers())
        EXPECT_GT(r.attempts, 1u);
}

TEST(ProvenanceFault, TerminalFaultsExcludedFromWaterfall)
{
    // A crippled retry budget under a certain media fault guarantees
    // terminal persist faults; those ops complete as faulted and must
    // not pollute the stage histograms.
    SystemConfig cfg =
        SystemConfig::testDefault(ModelKind::Sbrp, SystemDesign::PmNear);
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("media=0.5", &cfg.faults, &err)) << err;
    cfg.seed = 7;
    cfg.persistRetryBudget = 1;
    cfg.validate();

    NvmDevice nvm;
    auto app = makeRegisteredApp("MQ", cfg.model);
    ASSERT_TRUE(app);
    app->setupNvm(nvm);
    PersistProvenance prov;
    {
        GpuSystem gpu(cfg, nvm, nullptr, nullptr, &prov);
        app->setupGpu(gpu);
        gpu.launch(app->forward());
        ASSERT_FALSE(gpu.fabric().persistFaults().empty());
    }
    EXPECT_GT(prov.opsFaulted(), 0u);
    EXPECT_EQ(prov.ackDist().count(),
              prov.opsCompleted() - prov.opsFaulted());
    checkWaterfall(prov, "MQ terminal faults");
}

class ProvenanceAudit : public testing::TestWithParam<Combo>
{
};

std::vector<Combo>
auditCombos()
{
    // The audit cross-check matrix: all seven apps under the two
    // models whose ordering semantics differ most.
    std::vector<Combo> out;
    for (const char *app :
         {"gpKVS", "HM", "SRAD", "Red", "MQ", "Scan", "Ckpt"}) {
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmNear});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmFar});
    }
    return out;
}

TEST_P(ProvenanceAudit, CommitOrderAgreesWithPmoChecker)
{
    const Combo &c = GetParam();
    SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);
    PersistProvenance prov;
    ExecutionTrace trace;
    runWithProvenance(c.app, cfg, &prov, &trace);

    // Formal cross-validation: the checker proves every PMO edge is
    // honored by commit indices...
    PmoChecker checker(trace);
    EXPECT_TRUE(checker.check().empty()) << c.app;

    // ...and the audit stream itself — appended in durable-image write
    // order — must be monotone in commit cycle, with unique op ids.
    ASSERT_FALSE(prov.audit().empty()) << c.app;
    Cycle last = 0;
    std::set<std::uint64_t> ids;
    for (const PersistAuditRecord &a : prov.audit()) {
        EXPECT_GE(a.commitCycle, last) << c.app;
        last = a.commitCycle;
        EXPECT_TRUE(ids.insert(a.opId).second)
            << c.app << ": op " << a.opId << " committed twice";
    }
}

INSTANTIATE_TEST_SUITE_P(SevenApps, ProvenanceAudit,
                         testing::ValuesIn(auditCombos()), comboName);

TEST(ProvenanceAudit, RelaxedOrderKnobProducesDivergence)
{
    // The known-broken drain engine must be caught by the formal
    // cross-check — proof the audit oracle can actually fail.
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp);
    cfg.unsafeRelaxedPersistOrder = true;
    PersistProvenance prov;
    ExecutionTrace trace;

    NvmDevice nvm;
    auto app = makeRegisteredApp("MQ", cfg.model);
    ASSERT_TRUE(app);
    app->setupNvm(nvm);
    {
        GpuSystem gpu(cfg, nvm, &trace, nullptr, &prov);
        app->setupGpu(gpu);
        gpu.launch(app->forward());
    }
    PmoChecker checker(trace);
    EXPECT_FALSE(checker.check().empty())
        << "relaxed persist order went undetected";
}

TEST(ProvenanceDeterminism, SeededRunsProduceByteIdenticalAuditJson)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp);
    PersistProvenance p1, p2;
    Cycle c1 = runWithProvenance("Red", cfg, &p1);
    Cycle c2 = runWithProvenance("Red", cfg, &p2);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(p1.auditJson(), p2.auditJson());
}

TEST(ProvenanceDeterminism, ProvenanceOffRunsAreCycleIdentical)
{
    // The zero-cost-when-off discipline: recording only observes
    // cycles the simulator already computed, so attaching provenance
    // must never perturb timing.
    for (ModelKind m : {ModelKind::Sbrp, ModelKind::Epoch,
                        ModelKind::ScopedBarrier}) {
        SystemConfig cfg = SystemConfig::testDefault(m);
        PersistProvenance prov;
        Cycle on = runWithProvenance("Scan", cfg, &prov);
        Cycle off = runWithProvenance("Scan", cfg, nullptr);
        EXPECT_EQ(on, off) << toString(m);
        EXPECT_GT(prov.opsBegun(), 0u) << toString(m);
    }
}

// --- Unit-level behavior ---------------------------------------------

TEST(ProvenanceUnit, OpIdPackingAndLookup)
{
    PersistProvenance prov;
    std::uint64_t id = prov.beginOp(5, 0x1000, Scope::Block, 3, 100);
    EXPECT_EQ(id, (std::uint64_t{6} << 40) | 1u);
    EXPECT_LT(id, std::uint64_t{1} << 53);   // Survives JSON doubles.

    const PersistOpRecord *r = prov.find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->smId, 5u);
    EXPECT_EQ(r->lineAddr, 0x1000u);
    EXPECT_EQ(r->epoch, 3u);
    EXPECT_EQ(r->tIssue, 100u);
    EXPECT_EQ(r->tAdmit, 100u);

    EXPECT_EQ(prov.find(0), nullptr);
    EXPECT_EQ(prov.find(id + 1), nullptr);
}

TEST(ProvenanceUnit, FirstFsmBlockWinsAndMergesCount)
{
    PersistProvenance prov;
    std::uint64_t id = prov.beginOp(0, 0x40, Scope::Device, 0, 10);
    prov.markFsmBlocked(id, 20);
    prov.markFsmBlocked(id, 30);   // Later holds don't move the mark.
    prov.noteMerge(id);
    prov.noteMerge(id);
    const PersistOpRecord *r = prov.find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->tFsmBlock, 20u);
    EXPECT_EQ(r->merges, 2u);
}

TEST(ProvenanceUnit, RingWrapOntoInFlightOpsCountsLoss)
{
    PersistProvenance prov(4, 2);   // Tiny ring: wraps after 4 opens.
    for (int i = 0; i < 6; ++i)
        prov.beginOp(0, 0x40 * i, Scope::Device, 0, i + 1);
    EXPECT_EQ(prov.opsBegun(), 6u);
    EXPECT_GT(prov.recordsLost(), 0u);
}

TEST(ProvenanceUnit, FullJourneyTelescopesAndAudits)
{
    PersistProvenance prov;
    std::uint64_t id = prov.beginOp(2, 0x80, Scope::Block, 1, 10);
    prov.markFsmBlocked(id, 15);
    prov.markFlush(id, 22);
    prov.noteAttempt(id);
    prov.noteAttempt(id);          // One retry.
    prov.markArrive(id, 40);       // Final attempt's arrival.
    prov.markAccept(id, 47);
    prov.recordCommit(id, 55);
    prov.complete(id, 55, false);

    const PersistOpRecord *r = prov.find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->completed);
    EXPECT_EQ(r->attempts, 2u);
    EXPECT_EQ(r->stageCycles(PersistStage::IssueToPb), 0u);
    EXPECT_EQ(r->stageCycles(PersistStage::PbResidency), 5u);
    EXPECT_EQ(r->stageCycles(PersistStage::FsmHold), 7u);
    EXPECT_EQ(r->stageCycles(PersistStage::Fabric), 18u);
    EXPECT_EQ(r->stageCycles(PersistStage::Wpq), 7u);
    EXPECT_EQ(r->stageCycles(PersistStage::Media), 8u);
    EXPECT_EQ(r->ackLatency(), 45u);

    ASSERT_EQ(prov.audit().size(), 1u);
    EXPECT_EQ(prov.audit()[0].opId, id);
    EXPECT_EQ(prov.audit()[0].commitCycle, 55u);
    ASSERT_EQ(prov.retryOutliers().size(), 1u);
    ASSERT_EQ(prov.slowest().size(), 1u);

    // The exported document carries the journey.
    std::string doc = prov.auditJson();
    EXPECT_NE(doc.find("\"audit\""), std::string::npos);
    EXPECT_NE(doc.find("\"waterfall\""), std::string::npos);
    EXPECT_NE(doc.find("\"retry_outliers\""), std::string::npos);
}

} // namespace
} // namespace sbrp
