/**
 * @file
 * Unit tests for the memory substrate: functional memory (including
 * copy-on-write backing), the address map, and the NVM device.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/address_map.hh"
#include "mem/functional_mem.hh"
#include "mem/nvm_device.hh"

namespace sbrp
{
namespace
{

// --- FunctionalMemory --------------------------------------------------

TEST(FunctionalMemory, ZeroInitialized)
{
    FunctionalMemory m;
    EXPECT_EQ(m.read32(0x1000), 0u);
    EXPECT_EQ(m.read64(0x2000), 0u);
    EXPECT_EQ(m.read8(0x3000), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(FunctionalMemory, ReadBackWidths)
{
    FunctionalMemory m;
    m.write8(0x10, 0xab);
    m.write32(0x20, 0xdeadbeef);
    m.write64(0x28, 0x0123456789abcdefull);
    EXPECT_EQ(m.read8(0x10), 0xab);
    EXPECT_EQ(m.read32(0x20), 0xdeadbeefu);
    EXPECT_EQ(m.read64(0x28), 0x0123456789abcdefull);
}

TEST(FunctionalMemory, UnalignedAccessPanics)
{
    FunctionalMemory m;
    EXPECT_THROW(m.read32(0x21), PanicError);
    EXPECT_THROW(m.write32(0x22, 1), PanicError);
    EXPECT_THROW(m.read64(0x24), PanicError);
}

TEST(FunctionalMemory, BlockCrossesPages)
{
    FunctionalMemory m;
    std::vector<std::uint8_t> src(8192);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = FunctionalMemory::kPageBytes - 100;
    m.writeBlock(base, src.data(), src.size());

    std::vector<std::uint8_t> dst(src.size());
    m.readBlock(base, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    EXPECT_GE(m.pageCount(), 2u);
}

TEST(FunctionalMemory, BackingReadThrough)
{
    FunctionalMemory durable;
    durable.write32(0x100, 77);
    FunctionalMemory vol;
    vol.setBacking(&durable);
    EXPECT_EQ(vol.read32(0x100), 77u);   // Falls through.
    EXPECT_EQ(vol.pageCount(), 0u);      // No copy for reads.
}

TEST(FunctionalMemory, BackingCopyOnWrite)
{
    FunctionalMemory durable;
    durable.write32(0x100, 77);
    durable.write32(0x104, 88);
    FunctionalMemory vol;
    vol.setBacking(&durable);

    vol.write32(0x100, 99);
    EXPECT_EQ(vol.read32(0x100), 99u);
    EXPECT_EQ(vol.read32(0x104), 88u);     // Copied page kept the rest.
    EXPECT_EQ(durable.read32(0x100), 77u); // Backing untouched.
}

TEST(FunctionalMemory, ClearDropsLocalNotBacking)
{
    FunctionalMemory durable;
    durable.write32(0x100, 5);
    FunctionalMemory vol;
    vol.setBacking(&durable);
    vol.write32(0x100, 6);
    vol.clear();
    EXPECT_EQ(vol.read32(0x100), 5u);
}

// --- Address map -------------------------------------------------------

TEST(AddressMap, SpaceBoundaries)
{
    EXPECT_EQ(addr_map::spaceOf(addr_map::kGddrBase), Space::Gddr);
    EXPECT_EQ(addr_map::spaceOf(addr_map::kNvmBase - 4), Space::Gddr);
    EXPECT_EQ(addr_map::spaceOf(addr_map::kNvmBase), Space::Nvm);
    EXPECT_TRUE(addr_map::isNvm(addr_map::kNvmBase + 12345));
}

TEST(AddressMap, LineBase)
{
    EXPECT_EQ(addr_map::lineBase(0x1234, 128), 0x1200u);
    EXPECT_EQ(addr_map::lineBase(0x1280, 128), 0x1280u);
    EXPECT_EQ(addr_map::lineBase(0x127f, 128), 0x1200u);
}

TEST(AddressMap, NvmOffset)
{
    EXPECT_EQ(addr_map::nvmOffset(addr_map::kNvmBase + 64), 64u);
    EXPECT_THROW(addr_map::nvmOffset(0x1000), PanicError);
}

// --- NvmDevice ---------------------------------------------------------

TEST(NvmDevice, AllocateOpenRoundTrip)
{
    NvmDevice nvm;
    Addr a = nvm.allocate("region-a", 1000);
    Addr b = nvm.allocate("region-b", 10);
    EXPECT_TRUE(addr_map::isNvm(a));
    EXPECT_NE(a, b);
    EXPECT_EQ(nvm.open("region-a").base, a);
    EXPECT_EQ(nvm.open("region-a").size, 1000u);
    EXPECT_TRUE(nvm.exists("region-b"));
    EXPECT_FALSE(nvm.exists("region-c"));
}

TEST(NvmDevice, AllocationsAreLineAligned)
{
    NvmDevice nvm;
    Addr a = nvm.allocate("a", 3);
    Addr b = nvm.allocate("b", 3);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 256);
}

TEST(NvmDevice, DuplicateNameIsFatal)
{
    NvmDevice nvm;
    nvm.allocate("dup", 8);
    EXPECT_THROW(nvm.allocate("dup", 8), FatalError);
}

TEST(NvmDevice, OpenMissingIsFatal)
{
    NvmDevice nvm;
    EXPECT_THROW(nvm.open("nope"), FatalError);
}

TEST(NvmDevice, ZeroByteAllocationIsFatal)
{
    NvmDevice nvm;
    EXPECT_THROW(nvm.allocate("zero", 0), FatalError);
}

TEST(NvmDevice, RemoveForgetsName)
{
    NvmDevice nvm;
    nvm.allocate("gone", 8);
    nvm.remove("gone");
    EXPECT_FALSE(nvm.exists("gone"));
    EXPECT_THROW(nvm.remove("gone"), FatalError);
}

TEST(NvmDevice, CommitLineWritesDurable)
{
    NvmDevice nvm;
    Addr a = nvm.allocate("data", 128);
    std::uint8_t payload[128];
    for (int i = 0; i < 128; ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    nvm.commitLine(a, payload, 128);
    EXPECT_EQ(nvm.commitCount(), 1u);
    EXPECT_EQ(nvm.durable().read8(a + 5), 5);
    EXPECT_EQ(nvm.durable().read8(a + 127), 127);
}

TEST(NvmDevice, CommitOutsideNvmPanics)
{
    NvmDevice nvm;
    std::uint8_t b[4] = {0, 0, 0, 0};
    EXPECT_THROW(nvm.commitLine(0x1000, b, 4), PanicError);
}

TEST(NvmDevice, TableListsRegions)
{
    NvmDevice nvm;
    nvm.allocate("x", 8);
    nvm.allocate("y", 8);
    EXPECT_EQ(nvm.table().size(), 2u);
    EXPECT_GT(nvm.allocatedBytes(), 0u);
}

TEST(NvmDevice, RestoreImageFromGolden)
{
    NvmDevice golden;
    Addr a = golden.allocate("data", 128);
    std::uint8_t payload[128];
    for (int i = 0; i < 128; ++i)
        payload[i] = static_cast<std::uint8_t>(i + 1);
    golden.commitLine(a, payload, 128);

    NvmDevice live;
    live.restoreImageFrom(golden);
    // Namespace table, allocator position and durable bytes all match.
    EXPECT_EQ(live.open("data").base, a);
    EXPECT_EQ(live.allocatedBytes(), golden.allocatedBytes());
    EXPECT_EQ(live.durable().read8(a + 7), 8);
    // The commit counter restarts: restored state is pre-run state.
    EXPECT_EQ(live.commitCount(), 0u);

    // Mutations to the live copy do not leak back into the golden one.
    std::uint8_t zeros[128] = {};
    live.commitLine(a, zeros, 128);
    EXPECT_EQ(live.durable().read8(a + 7), 0);
    EXPECT_EQ(golden.durable().read8(a + 7), 8);

    // Restoring again rolls the mutation back.
    live.restoreImageFrom(golden);
    EXPECT_EQ(live.durable().read8(a + 7), 8);
}

} // namespace
} // namespace sbrp
