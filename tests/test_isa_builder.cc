/**
 * @file
 * Unit tests for the device ISA, kernel programs and the warp builder.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "gpu/isa.hh"
#include "gpu/kernel.hh"

namespace sbrp
{
namespace
{

TEST(Isa, OpClassification)
{
    EXPECT_TRUE(isMemOp(Op::Load));
    EXPECT_TRUE(isMemOp(Op::Store));
    EXPECT_TRUE(isMemOp(Op::PAcq));
    EXPECT_TRUE(isMemOp(Op::ExitIf));
    EXPECT_FALSE(isMemOp(Op::OFence));
    EXPECT_FALSE(isMemOp(Op::Compute));

    EXPECT_TRUE(isPersistOp(Op::OFence));
    EXPECT_TRUE(isPersistOp(Op::DFence));
    EXPECT_TRUE(isPersistOp(Op::PRel));
    EXPECT_FALSE(isPersistOp(Op::Fence));
    EXPECT_FALSE(isPersistOp(Op::Store));
}

TEST(Isa, DescribeMentionsOpAndScope)
{
    WarpInstr in;
    in.op = Op::PAcq;
    in.scope = Scope::Device;
    in.laneAddrs.assign(32, 0x1234);
    std::string d = in.describe();
    EXPECT_NE(d.find("pacq"), std::string::npos);
    EXPECT_NE(d.find("device"), std::string::npos);
}

TEST(Kernel, GeometryAndThreadIds)
{
    KernelProgram k("t", 3, 96);
    EXPECT_EQ(k.numBlocks(), 3u);
    EXPECT_EQ(k.threadsPerBlock(), 96u);
    EXPECT_EQ(k.warpsPerBlock(), 3u);
    EXPECT_EQ(k.threadOf(0, 0, 0), 0u);
    EXPECT_EQ(k.threadOf(1, 0, 0), 96u);
    EXPECT_EQ(k.threadOf(2, 2, 5), 2 * 96 + 64 + 5u);
}

TEST(Kernel, RejectsBadGeometry)
{
    EXPECT_THROW(KernelProgram("x", 0, 32), FatalError);
    EXPECT_THROW(KernelProgram("x", 1, 0), FatalError);
    EXPECT_THROW(KernelProgram("x", 1, 2048), FatalError);
}

TEST(Kernel, WarpOutOfRangePanics)
{
    KernelProgram k("t", 2, 64);
    EXPECT_NO_THROW(k.warp(1, 1));
    EXPECT_THROW(k.warp(2, 0), PanicError);
    EXPECT_THROW(k.warp(0, 2), PanicError);
}

TEST(Kernel, TotalInstructions)
{
    KernelProgram k("t", 2, 32);
    WarpBuilder(k.warp(0, 0), 32).mov(0, 1).mov(1, 2);
    WarpBuilder(k.warp(1, 0), 32).mov(0, 1);
    EXPECT_EQ(k.totalInstructions(), 3u);
}

TEST(Builder, DefaultMaskCoversLaneCount)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder wb(k.warp(0, 0), 20);
    EXPECT_EQ(wb.defaultMask(), mask::firstN(20));
    wb.mov(0, 7);
    EXPECT_EQ(k.warp(0, 0).code[0].active, mask::firstN(20));
}

TEST(Builder, ExplicitMaskIntersectsDefault)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder wb(k.warp(0, 0), 8);
    wb.mov(0, 7, mask::range(4, 16));
    EXPECT_EQ(k.warp(0, 0).code[0].active, mask::range(4, 8));
}

TEST(Builder, LoadFillsActiveLaneAddrs)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .load(2, [](std::uint32_t l) { return Addr(0x1000 + 4 * l); },
              mask::range(1, 3));
    const WarpInstr &in = k.warp(0, 0).code[0];
    EXPECT_EQ(in.op, Op::Load);
    EXPECT_EQ(in.dst, 2);
    EXPECT_EQ(in.laneAddrs[1], 0x1004u);
    EXPECT_EQ(in.laneAddrs[2], 0x1008u);
    EXPECT_EQ(in.laneAddrs[0], 0u);   // Inactive lane untouched.
}

TEST(Builder, StoreImmFillsLaneValues)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([](std::uint32_t l) { return Addr(0x100 + 4 * l); },
                  [](std::uint32_t l) { return l * 10; });
    const WarpInstr &in = k.warp(0, 0).code[0];
    EXPECT_EQ(in.src, kImmOperand);
    EXPECT_EQ(in.laneImms[3], 30u);
}

TEST(Builder, IndexedOpsCarryRegisterAndScale)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .loadIdx(1, [](std::uint32_t) { return Addr(0x2000); }, 0, 8)
        .storeIdx([](std::uint32_t) { return Addr(0x3000); }, 2, 0, 4);
    EXPECT_EQ(k.warp(0, 0).code[0].idxReg, 0);
    EXPECT_EQ(k.warp(0, 0).code[0].idxScale, 8);
    EXPECT_EQ(k.warp(0, 0).code[1].src, 2);
    EXPECT_EQ(k.warp(0, 0).code[1].idxScale, 4);
}

TEST(Builder, SpinVariantsSetCondition)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .pacq([](std::uint32_t) { return Addr(0x10); }, 5, Scope::Block)
        .pacqNe([](std::uint32_t) { return Addr(0x10); }, 0,
                Scope::Device)
        .spinLoad([](std::uint32_t) { return Addr(0x10); }, 1)
        .spinLoadNe([](std::uint32_t) { return Addr(0x10); }, 0)
        .exitIfEq([](std::uint32_t) { return Addr(0x10); }, 1)
        .exitIfNe([](std::uint32_t) { return Addr(0x10); }, 0);
    const auto &code = k.warp(0, 0).code;
    EXPECT_FALSE(code[0].negate);
    EXPECT_EQ(code[0].scope, Scope::Block);
    EXPECT_TRUE(code[1].negate);
    EXPECT_EQ(code[1].scope, Scope::Device);
    EXPECT_FALSE(code[2].negate);
    EXPECT_TRUE(code[3].negate);
    EXPECT_EQ(code[4].op, Op::ExitIf);
    EXPECT_FALSE(code[4].negate);
    EXPECT_TRUE(code[5].negate);
}

TEST(Builder, ReleaseVariants)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .prel([](std::uint32_t) { return Addr(0x20); }, 9, Scope::Block)
        .prelReg([](std::uint32_t) { return Addr(0x24); }, 3,
                 Scope::Device);
    EXPECT_EQ(k.warp(0, 0).code[0].imm, 9u);
    EXPECT_EQ(k.warp(0, 0).code[0].src, kImmOperand);
    EXPECT_EQ(k.warp(0, 0).code[1].src, 3);
    EXPECT_EQ(k.warp(0, 0).code[1].scope, Scope::Device);
}

TEST(Builder, FenceFamily)
{
    KernelProgram k("t", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .fence(Scope::System)
        .ofence()
        .dfence()
        .barrier()
        .compute(50)
        .laneSum(1)
        .laneMax(2)
        .halt();
    const auto &code = k.warp(0, 0).code;
    EXPECT_EQ(code[0].op, Op::Fence);
    EXPECT_EQ(code[0].scope, Scope::System);
    EXPECT_EQ(code[1].op, Op::OFence);
    EXPECT_EQ(code[2].op, Op::DFence);
    EXPECT_EQ(code[3].op, Op::Barrier);
    EXPECT_EQ(code[4].computeCycles, 50);
    EXPECT_EQ(code[5].op, Op::LaneSum);
    EXPECT_EQ(code[6].op, Op::LaneMax);
    EXPECT_EQ(code[7].op, Op::Halt);
}

TEST(Mask, Helpers)
{
    EXPECT_EQ(mask::firstN(0), 0u);
    EXPECT_EQ(mask::firstN(32), 0xffffffffu);
    EXPECT_EQ(mask::firstN(4), 0xfu);
    EXPECT_EQ(mask::lane(31), 0x80000000u);
    EXPECT_EQ(mask::range(4, 8), 0xf0u);
    EXPECT_EQ(mask::range(8, 8), 0u);
}

} // namespace
} // namespace sbrp
