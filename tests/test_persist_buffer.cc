/**
 * @file
 * Unit tests for the persist buffer (PB): FIFO behaviour, warp-mask
 * tracking, oFence coalescing, capacity accounting, in-place
 * invalidation and the ordering/coalescing hazard queries of Section 6.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "persist/persist_buffer.hh"

namespace sbrp
{
namespace
{

constexpr Addr kLine = 0x100000000ull;

TEST(PersistBuffer, StartsEmpty)
{
    PersistBuffer pb(8);
    EXPECT_TRUE(pb.empty());
    EXPECT_TRUE(pb.hasSpace());
    EXPECT_EQ(pb.head(), nullptr);
    EXPECT_EQ(pb.lastId(), 0u);
}

TEST(PersistBuffer, FifoOrder)
{
    PersistBuffer pb(8);
    std::uint64_t a = pb.pushPersist(kLine, WarpMask::single(0));
    std::uint64_t b = pb.pushPersist(kLine + 128, WarpMask::single(1));
    EXPECT_LT(a, b);
    EXPECT_EQ(pb.head()->id, a);
    pb.popHead();
    EXPECT_EQ(pb.head()->id, b);
    pb.popHead();
    EXPECT_TRUE(pb.empty());
}

TEST(PersistBuffer, CapacityCountsPersistsOnly)
{
    PersistBuffer pb(2);
    pb.pushPersist(kLine, WarpMask::single(0));
    pb.pushOrder(PbType::DFence, WarpMask::single(0));
    pb.pushOrder(PbType::AcqBlock, WarpMask::single(1));
    EXPECT_TRUE(pb.hasSpace());
    pb.pushPersist(kLine + 128, WarpMask::single(0));
    EXPECT_FALSE(pb.hasSpace());
    EXPECT_EQ(pb.persistCount(), 2u);
    EXPECT_EQ(pb.size(), 4u);
}

TEST(PersistBuffer, OFenceCoalescesAtTail)
{
    PersistBuffer pb(8);
    std::uint64_t f1 = pb.pushOrder(PbType::OFence, WarpMask::single(0));
    std::uint64_t f2 = pb.pushOrder(PbType::OFence, WarpMask::single(1));
    EXPECT_EQ(f1, f2);   // Merged into one entry (Section 6.1).
    EXPECT_EQ(pb.size(), 1u);
    EXPECT_TRUE(pb.head()->warps.test(0));
    EXPECT_TRUE(pb.head()->warps.test(1));
}

TEST(PersistBuffer, OFenceDoesNotCoalesceAcrossPersist)
{
    PersistBuffer pb(8);
    std::uint64_t f1 = pb.pushOrder(PbType::OFence, WarpMask::single(0));
    pb.pushPersist(kLine, WarpMask::single(0));
    std::uint64_t f2 = pb.pushOrder(PbType::OFence, WarpMask::single(0));
    EXPECT_NE(f1, f2);
    EXPECT_EQ(pb.size(), 3u);
}

TEST(PersistBuffer, CoalesceMergesWarpBits)
{
    PersistBuffer pb(8);
    std::uint64_t id = pb.pushPersist(kLine, WarpMask::single(0));
    pb.coalesce(id, WarpMask::single(5));
    EXPECT_TRUE(pb.find(id)->warps.test(0));
    EXPECT_TRUE(pb.find(id)->warps.test(5));
}

TEST(PersistBuffer, FindMissesPoppedEntries)
{
    PersistBuffer pb(8);
    std::uint64_t a = pb.pushPersist(kLine, WarpMask::single(0));
    pb.popHead();
    EXPECT_EQ(pb.find(a), nullptr);
    EXPECT_EQ(pb.find(9999), nullptr);
}

TEST(PersistBuffer, InvalidateSkipsAtHead)
{
    PersistBuffer pb(8);
    std::uint64_t a = pb.pushPersist(kLine, WarpMask::single(0));
    std::uint64_t b = pb.pushPersist(kLine + 128, WarpMask::single(1));
    pb.invalidate(a);
    EXPECT_EQ(pb.size(), 1u);
    EXPECT_EQ(pb.head()->id, b);   // Invalid head skipped in place.
    EXPECT_EQ(pb.persistCount(), 1u);
}

TEST(PersistBuffer, InvalidateMidQueue)
{
    PersistBuffer pb(8);
    std::uint64_t a = pb.pushPersist(kLine, WarpMask::single(0));
    std::uint64_t b = pb.pushPersist(kLine + 128, WarpMask::single(1));
    std::uint64_t c = pb.pushPersist(kLine + 256, WarpMask::single(2));
    pb.invalidate(b);
    EXPECT_EQ(pb.head()->id, a);
    pb.popHead();
    EXPECT_EQ(pb.head()->id, c);   // b skipped.
    EXPECT_THROW(pb.invalidate(b), PanicError);
}

TEST(PersistBuffer, OrderingAfterTracksPerWarp)
{
    PersistBuffer pb(8);
    std::uint64_t p = pb.pushPersist(kLine, WarpMask::single(0));
    EXPECT_FALSE(pb.orderingAfter(p, WarpMask::single(0)));
    pb.pushOrder(PbType::OFence, WarpMask::single(0));
    EXPECT_TRUE(pb.orderingAfter(p, WarpMask::single(0)));
    EXPECT_FALSE(pb.orderingAfter(p, WarpMask::single(1)));
}

TEST(PersistBuffer, LastOrderIdOf)
{
    PersistBuffer pb(8);
    EXPECT_EQ(pb.lastOrderIdOf(3), 0u);
    std::uint64_t f = pb.pushOrder(PbType::RelBlock, WarpMask::single(3));
    EXPECT_EQ(pb.lastOrderIdOf(3), f);
}

TEST(PersistBuffer, OrderingBeforeRequiresOverlap)
{
    PersistBuffer pb(8);
    pb.pushOrder(PbType::OFence, WarpMask::single(0));
    std::uint64_t p = pb.pushPersist(kLine, WarpMask::single(0));
    std::uint64_t q = pb.pushPersist(kLine + 128, WarpMask::single(1));
    EXPECT_TRUE(pb.orderingBefore(p, pb.find(p)->warps));
    EXPECT_FALSE(pb.orderingBefore(q, pb.find(q)->warps));
}

TEST(PersistBuffer, CoalesceHazardPaperExample)
{
    // Paper Section 6.1: pX=a ; pY=b ; oFence ; pX=c must stall — pY is
    // a sibling of pX's entry before the fence.
    PersistBuffer pb(8);
    std::uint64_t px = pb.pushPersist(kLine, WarpMask::single(0));
    pb.pushPersist(kLine + 128, WarpMask::single(0));   // pY.
    pb.pushOrder(PbType::OFence, WarpMask::single(0));
    EXPECT_TRUE(pb.orderingAfter(px, WarpMask::single(0)));
    EXPECT_TRUE(pb.coalesceHazard(px, 0));
}

TEST(PersistBuffer, CoalesceHazardLoneEntryIsSafe)
{
    // A lone entry past an ordering point commits atomically with the
    // merged store: no hazard (keeps reductions inside the L1).
    PersistBuffer pb(8);
    std::uint64_t px = pb.pushPersist(kLine, WarpMask::single(0));
    pb.pushOrder(PbType::RelBlock, WarpMask::single(0));
    EXPECT_TRUE(pb.orderingAfter(px, WarpMask::single(0)));
    EXPECT_FALSE(pb.coalesceHazard(px, 0));
}

TEST(PersistBuffer, CoalesceHazardIgnoresOtherWarps)
{
    PersistBuffer pb(8);
    std::uint64_t px = pb.pushPersist(kLine, WarpMask::single(0));
    pb.pushPersist(kLine + 128, WarpMask::single(1));   // Other warp.
    pb.pushOrder(PbType::OFence, WarpMask::single(0));
    EXPECT_FALSE(pb.coalesceHazard(px, 0));
}

TEST(PersistBuffer, CoalesceHazardSegmented)
{
    // An earlier same-warp persist separated from pbk by a marker of
    // that warp is FSM-protected: no hazard.
    PersistBuffer pb(8);
    pb.pushPersist(kLine, WarpMask::single(0));          // Earlier seg.
    pb.pushOrder(PbType::OFence, WarpMask::single(0));   // Segment edge.
    std::uint64_t px = pb.pushPersist(kLine + 128, WarpMask::single(0));
    pb.pushOrder(PbType::OFence, WarpMask::single(0));
    EXPECT_FALSE(pb.coalesceHazard(px, 0));

    // But a sibling *inside* px's segment is a hazard.
    PersistBuffer pb2(8);
    pb2.pushOrder(PbType::OFence, WarpMask::single(0));
    std::uint64_t px2 = pb2.pushPersist(kLine, WarpMask::single(0));
    pb2.pushPersist(kLine + 128, WarpMask::single(0));
    pb2.pushOrder(PbType::OFence, WarpMask::single(0));
    EXPECT_TRUE(pb2.coalesceHazard(px2, 0));
}

TEST(PersistBuffer, TypeNamesAndClasses)
{
    EXPECT_STREQ(toString(PbType::Persist), "persist");
    EXPECT_STREQ(toString(PbType::RelDev), "rel_dev");
    EXPECT_FALSE(isOrderingType(PbType::Persist));
    EXPECT_TRUE(isOrderingType(PbType::OFence));
    EXPECT_TRUE(isOrderingType(PbType::AcqDev));
}

TEST(PersistBuffer, PopOfEmptyPanics)
{
    PersistBuffer pb(4);
    EXPECT_THROW(pb.popHead(), PanicError);
}

class PbCapacity : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PbCapacity, FillsToExactCapacity)
{
    std::uint32_t cap = GetParam();
    PersistBuffer pb(cap);
    for (std::uint32_t i = 0; i < cap; ++i) {
        EXPECT_TRUE(pb.hasSpace());
        pb.pushPersist(kLine + 128ull * i, WarpMask::single(i % 32));
    }
    EXPECT_FALSE(pb.hasSpace());
    pb.popHead();
    EXPECT_TRUE(pb.hasSpace());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PbCapacity,
                         testing::Values(1u, 2u, 7u, 64u, 256u, 512u));

} // namespace
} // namespace sbrp
