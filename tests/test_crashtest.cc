/**
 * Tier-1 tests for the crash-consistency campaign engine: the
 * crash-point oracle, the work-stealing queue, parallel-campaign
 * determinism, failure minimization, and the replay artifact pipeline
 * against a deliberately broken model configuration.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/registry.hh"
#include "common/json.hh"
#include "common/trace.hh"
#include "crashtest/campaign.hh"
#include "crashtest/crash_points.hh"
#include "crashtest/minimize.hh"
#include "crashtest/replay.hh"
#include "crashtest/scenario.hh"
#include "crashtest/work_queue.hh"

namespace sbrp
{
namespace
{

CrashScenario
scenarioFor(const std::string &app, ModelKind model,
            bool unsafe_order = false)
{
    CrashScenario s;
    s.app = app;
    s.cfg = SystemConfig::testDefault(model);
    s.cfg.unsafeRelaxedPersistOrder = unsafe_order;
    return s;
}

// --- The oracle -----------------------------------------------------

TEST(CrashPoints, SyntheticTraceExpandsClampsAndDedups)
{
    TraceSink sink;
    Cycle clock = 0;
    sink.setClock(&clock);
    TraceBuffer *tb = sink.buffer("system");

    clock = 1;
    tb->instant("pb:admit");      // -> {1, 2} (0 clamps away).
    clock = 10;
    tb->instant("pb:flush");      // -> {9, 10, 11}.
    clock = 11;
    tb->instant("l1:evict_pm");   // 10, 11 collide; adds 12.
    clock = 20;
    tb->spanAt("stall:odm_dfence", 15, 20);  // Span END: {19, 20, 21}.
    clock = 30;
    tb->counter("wpq_lines", 3);  // -> {29, 30}; 31 > horizon clamps.
    tb->instant("not:interesting");

    CrashPointSet set = enumerateCrashPoints(sink, 30);
    EXPECT_EQ(set.horizon, 30u);
    EXPECT_EQ(set.rawEvents, 5u);

    std::vector<Cycle> cycles;
    for (const CrashPoint &p : set.points)
        cycles.push_back(p.cycle);
    EXPECT_EQ(cycles, (std::vector<Cycle>{1, 2, 9, 10, 11, 12,
                                          19, 20, 21, 29, 30}));
    // 5 events x 3 candidates = 15; 11 survived.
    EXPECT_EQ(set.prunedCandidates, 4u);

    // The span end maps to DFenceRetire, not the instant kinds.
    EXPECT_EQ(set.points[7].cycle, 20u);
    EXPECT_EQ(set.points[7].kind, CrashEventKind::DFenceRetire);
    // At cycle 11 both PbPop's c+1 and L1PmEvict's c collide; the
    // lowest-ordered kind (PbPop) wins deterministically.
    EXPECT_EQ(set.points[4].cycle, 11u);
    EXPECT_EQ(set.points[4].kind, CrashEventKind::PbPop);
}

TEST(CrashPoints, OracleIsDeterministicAndSorted)
{
    CrashScenario s = scenarioFor("Red", ModelKind::Sbrp);
    ScenarioRunner r1(s);
    CrashProbe p1 = r1.probe();

    EXPECT_TRUE(p1.cleanConsistent);
    EXPECT_EQ(p1.cleanPmoViolations, 0u);
    ASSERT_FALSE(p1.points.points.empty());
    EXPECT_GT(p1.horizon, 0u);

    // Strictly sorted, all within [1, horizon].
    for (std::size_t i = 0; i < p1.points.points.size(); ++i) {
        const CrashPoint &p = p1.points.points[i];
        EXPECT_GE(p.cycle, 1u);
        EXPECT_LE(p.cycle, p1.horizon);
        if (i > 0)
            EXPECT_GT(p.cycle, p1.points.points[i - 1].cycle);
    }

    // A second probe — and a probe from a fresh runner — agree exactly.
    CrashProbe p2 = r1.probe();
    ScenarioRunner r2(s);
    CrashProbe p3 = r2.probe();
    EXPECT_EQ(p1.horizon, p2.horizon);
    EXPECT_TRUE(p1.points.points == p2.points.points);
    EXPECT_TRUE(p1.points.points == p3.points.points);
}

TEST(CrashPoints, KindNamesRoundTrip)
{
    for (auto k : {CrashEventKind::PersistAccept, CrashEventKind::PbAdmit,
                   CrashEventKind::PbPop, CrashEventKind::L1PmEvict,
                   CrashEventKind::OFenceRetire,
                   CrashEventKind::DFenceRetire,
                   CrashEventKind::FenceRetire, CrashEventKind::RelRetire,
                   CrashEventKind::AcqRetire}) {
        CrashEventKind back;
        ASSERT_TRUE(crashEventKindFromString(toString(k), &back));
        EXPECT_EQ(back, k);
    }
    CrashEventKind sink;
    EXPECT_FALSE(crashEventKindFromString("bogus", &sink));
}

// --- The work queue -------------------------------------------------

TEST(WorkQueue, CoversEveryIndexExactlyOnce)
{
    for (unsigned workers : {1u, 3u, 8u}) {
        WorkQueue q(37, workers);
        std::multiset<std::size_t> seen;
        // Drive workers round-robin so stealing paths execute.
        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned w = 0; w < workers; ++w) {
                if (auto idx = q.next(w)) {
                    seen.insert(*idx);
                    progress = true;
                }
            }
        }
        ASSERT_EQ(seen.size(), 37u) << workers << " workers";
        for (std::size_t i = 0; i < 37; ++i)
            EXPECT_EQ(seen.count(i), 1u);
        EXPECT_EQ(q.remaining(), 0u);
    }
}

TEST(WorkQueue, StealingServicesIdleWorkers)
{
    WorkQueue q(10, 2);
    // Worker 1 never pulls its own range; worker 0 must steal it.
    std::set<std::size_t> seen;
    while (auto idx = q.next(0))
        seen.insert(*idx);
    EXPECT_EQ(seen.size(), 10u);
}

TEST(WorkQueue, StopCutsOffGracefully)
{
    WorkQueue q(10, 2);
    EXPECT_TRUE(q.next(0).has_value());
    q.stop();
    EXPECT_TRUE(q.stopped());
    EXPECT_FALSE(q.next(0).has_value());
    EXPECT_FALSE(q.next(1).has_value());
    EXPECT_EQ(q.remaining(), 9u);
}

TEST(WorkQueue, ZeroItemsDrainImmediately)
{
    WorkQueue q(0, 4);
    EXPECT_FALSE(q.next(2).has_value());
    EXPECT_EQ(q.remaining(), 0u);
}

// --- Minimization ---------------------------------------------------

TEST(Minimize, FindsPlantedEarliestFailingCycle)
{
    std::vector<Cycle> cycles;
    for (Cycle c = 10; c <= 100; c += 10)
        cycles.push_back(c);
    // Planted boundary: everything >= 57 fails -> earliest is 60.
    std::uint64_t calls = 0;
    auto fails = [&](Cycle c) {
        ++calls;
        return c >= 57;
    };
    MinimizeResult r = minimizeFailure(cycles, 8, fails);  // 90 fails.
    EXPECT_EQ(r.cycle, 60u);
    EXPECT_EQ(r.index, 5u);
    EXPECT_EQ(r.probes, calls);
    EXPECT_LE(r.probes, 4u);   // log2(9) rounded up.
}

TEST(Minimize, KnownFailureAtZeroNeedsNoProbes)
{
    std::vector<Cycle> cycles{5, 6, 7};
    MinimizeResult r =
        minimizeFailure(cycles, 0, [](Cycle) { return true; });
    EXPECT_EQ(r.index, 0u);
    EXPECT_EQ(r.cycle, 5u);
    EXPECT_EQ(r.probes, 0u);
}

// --- Campaigns ------------------------------------------------------

TEST(Campaign, VerdictsIdenticalAtOneAndFourJobs)
{
    CampaignConfig cc;
    cc.scenario = scenarioFor("Red", ModelKind::Sbrp);
    cc.budgetRuns = 48;
    cc.minimize = false;

    cc.jobs = 1;
    CampaignResult one = CampaignEngine(cc).run();
    cc.jobs = 4;
    CampaignResult four = CampaignEngine(cc).run();

    ASSERT_EQ(one.verdicts.size(), four.verdicts.size());
    EXPECT_EQ(one.runsExecuted, four.runsExecuted);
    EXPECT_EQ(one.failures, four.failures);
    for (std::size_t i = 0; i < one.verdicts.size(); ++i) {
        const CrashVerdict &a = one.verdicts[i];
        const CrashVerdict &b = four.verdicts[i];
        EXPECT_EQ(a.crashAt, b.crashAt);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.executed, b.executed);
        EXPECT_EQ(a.crashed, b.crashed);
        EXPECT_EQ(a.pmoViolations, b.pmoViolations);
        EXPECT_EQ(a.recoveredOk, b.recoveredOk);
    }
    EXPECT_TRUE(one.budgetTruncated);
    EXPECT_EQ(one.runsExecuted, 48u);
}

TEST(Campaign, SmokeAcrossAppsAndModels)
{
    // Coarse-budget sweep: every registered app under SBRP and the
    // epoch model must survive its first few crash points.
    for (const std::string &app : appRegistryNames()) {
        for (ModelKind model : {ModelKind::Sbrp, ModelKind::Epoch}) {
            CampaignConfig cc;
            cc.scenario = scenarioFor(app, model);
            cc.budgetRuns = 8;
            cc.jobs = 2;
            cc.minimize = false;
            CampaignEngine engine(cc);
            CampaignResult r = engine.run();
            EXPECT_TRUE(r.pass())
                << app << "/" << toString(model) << ": "
                << r.failures << " failures";
            EXPECT_GT(r.runsExecuted, 0u)
                << app << "/" << toString(model);
            EXPECT_EQ(engine.group().value("verdict_fail"), 0u);
            EXPECT_EQ(engine.group().value("runs_executed"),
                      r.runsExecuted);
        }
    }
}

TEST(Campaign, BrokenModelYieldsMinimizedReplayThatReproduces)
{
    // MQ under the fault-injection knob commits persists out of PMO
    // order; the campaign must catch it, bisect to the earliest
    // failing point, and emit an artifact that reproduces standalone.
    CampaignConfig cc;
    cc.scenario = scenarioFor("MQ", ModelKind::Sbrp,
                              /*unsafe_order=*/true);
    cc.jobs = 2;
    CampaignEngine engine(cc);
    CampaignResult r = engine.run();

    EXPECT_FALSE(r.pass());
    EXPECT_GT(r.failures, 0u);
    ASSERT_TRUE(r.hasMinimized);
    EXPECT_GT(engine.group().value("verdict_fail"), 0u);

    // The minimized point is the earliest failing one among verdicts.
    Cycle earliest = 0;
    for (const CrashVerdict &v : r.verdicts) {
        if (v.executed && !v.pass()) {
            earliest = v.crashAt;
            break;
        }
    }
    EXPECT_LE(r.minimized.cycle, earliest);
    EXPECT_TRUE(r.artifact.expectViolation);

    // JSON round trip preserves the artifact exactly.
    std::string err;
    JsonValue back = JsonValue::parse(r.artifact.toJson().dump(2), &err);
    ReplayArtifact parsed;
    ASSERT_TRUE(ReplayArtifact::fromJson(back, &parsed, &err)) << err;
    EXPECT_EQ(parsed.app, r.artifact.app);
    EXPECT_EQ(parsed.crashCycle, r.artifact.crashCycle);
    EXPECT_EQ(parsed.eventKind, r.artifact.eventKind);
    EXPECT_EQ(parsed.unsafeRelaxedPersistOrder, true);
    EXPECT_EQ(parsed.expectViolation, true);

    // Replaying the parsed artifact reproduces the failure.
    ScenarioRunner replayRunner(parsed.toScenario());
    CrashVerdict verdict =
        replayRunner.runCrashAt(parsed.crashCycle, parsed.eventKind);
    EXPECT_FALSE(verdict.pass());
}

TEST(Campaign, ReportJsonParsesAndMatchesResult)
{
    CampaignConfig cc;
    cc.scenario = scenarioFor("Red", ModelKind::Sbrp);
    cc.budgetRuns = 8;
    cc.jobs = 2;
    cc.minimize = false;
    CampaignResult r = CampaignEngine(cc).run();

    std::string err;
    JsonValue report =
        JsonValue::parse(campaignReportJson(cc, r).dump(2), &err);
    ASSERT_TRUE(report.isObject()) << err;
    ASSERT_NE(report.find("schema_version"), nullptr);
    EXPECT_EQ(report.find("schema_version")->asU64(), 4u);
    EXPECT_EQ(report.find("app")->asString(), "Red");
    EXPECT_EQ(report.find("fault_spec")->asString(), "none");
    EXPECT_EQ(report.find("clean_persist_faults")->asU64(), 0u);
    EXPECT_EQ(report.find("runs_executed")->asU64(), r.runsExecuted);
    EXPECT_EQ(report.find("pass")->asBool(), r.pass());
    EXPECT_TRUE(report.find("failing_points")->isArray());
    EXPECT_EQ(report.find("points_enumerated")->asU64(),
              r.probe.points.points.size());

    // The oracle run's slowest persist ops are cycle-deterministic and
    // stay top-level (Red persists, so provenance captured some).
    ASSERT_NE(report.find("slowest_ops"), nullptr);
    EXPECT_TRUE(report.find("slowest_ops")->isArray());
    EXPECT_FALSE(report.find("slowest_ops")->items().empty());

    // v4: everything environment-dependent lives in `execution` —
    // wall time, slowest points by wall clock, mode, jobs.
    const JsonValue *ex = report.find("execution");
    ASSERT_NE(ex, nullptr);
    ASSERT_TRUE(ex->isObject());
    EXPECT_EQ(ex->find("mode")->asString(), "single-process");
    EXPECT_EQ(ex->find("jobs")->asU64(), 2u);
    ASSERT_NE(ex->find("wall_us_total"), nullptr);
    EXPECT_GT(ex->find("wall_us_total")->asNumber(), 0.0);
    ASSERT_NE(ex->find("slowest_points"), nullptr);
    EXPECT_TRUE(ex->find("slowest_points")->isArray());
    EXPECT_EQ(ex->find("shards"), nullptr);   // Unsharded run.

    // The deterministic projection drops execution and wall_us only.
    JsonValue stripped = campaignReportStripWall(report);
    EXPECT_EQ(stripped.find("execution"), nullptr);
    EXPECT_NE(stripped.find("slowest_ops"), nullptr);
    EXPECT_NE(stripped.find("pass"), nullptr);
}

TEST(Campaign, ReportSummaryRoundTripsV4AndParsesLegacy)
{
    CampaignConfig cc;
    cc.scenario = scenarioFor("Red", ModelKind::Sbrp);
    cc.budgetRuns = 4;
    cc.minimize = false;
    CampaignResult r = CampaignEngine(cc).run();

    // v4 round trip: emit -> parse -> summary matches the result (wall
    // time read out of the `execution` section).
    std::string err;
    JsonValue v4 =
        JsonValue::parse(campaignReportJson(cc, r).dump(2), &err);
    CampaignReportSummary s;
    ASSERT_TRUE(campaignReportFromJson(v4, &s, &err)) << err;
    EXPECT_EQ(s.schemaVersion, 4u);
    EXPECT_EQ(s.app, "Red");
    EXPECT_EQ(s.model, "SBRP");
    EXPECT_EQ(s.runsExecuted, r.runsExecuted);
    EXPECT_EQ(s.failures, r.failures);
    EXPECT_EQ(s.pointsEnumerated, r.probe.points.points.size());
    EXPECT_EQ(s.pass, r.pass());
    EXPECT_EQ(s.slowestOps, r.slowestOps.size());
    EXPECT_EQ(s.wallUsTotal, r.wallUsTotal);

    // A legacy v3 document carries its wall time top-level.
    {
        JsonValue v3 = JsonValue::object();
        for (const auto &kv : v4.fields()) {
            if (kv.first != "execution")
                v3.set(kv.first, kv.second);
        }
        v3.set("schema_version", JsonValue(std::uint64_t{3}));
        v3.set("wall_us_total", JsonValue(r.wallUsTotal));
        v3.set("slowest_points", JsonValue::array());
        CampaignReportSummary s3;
        ASSERT_TRUE(campaignReportFromJson(v3, &s3, &err)) << err;
        EXPECT_EQ(s3.schemaVersion, 3u);
        EXPECT_EQ(s3.runsExecuted, r.runsExecuted);
        EXPECT_EQ(s3.wallUsTotal, r.wallUsTotal);
    }

    // A schema 2 document (no wall/slowest keys) still parses; the
    // newer fields read as zero.
    {
        JsonValue v2 = JsonValue::object();
        for (const auto &kv : v4.fields()) {
            if (kv.first == "execution" || kv.first == "slowest_ops")
                continue;
            v2.set(kv.first, kv.second);
        }
        v2.set("schema_version", JsonValue(std::uint64_t{2}));
        CampaignReportSummary s2;
        ASSERT_TRUE(campaignReportFromJson(v2, &s2, &err)) << err;
        EXPECT_EQ(s2.schemaVersion, 2u);
        EXPECT_EQ(s2.runsExecuted, r.runsExecuted);
        EXPECT_EQ(s2.wallUsTotal, 0.0);
        EXPECT_EQ(s2.slowestOps, 0u);
    }

    // Unsupported versions and malformed documents are rejected.
    JsonValue bad = v4;
    bad.set("schema_version", JsonValue(std::uint64_t{99}));
    CampaignReportSummary s3;
    EXPECT_FALSE(campaignReportFromJson(bad, &s3, &err));
    EXPECT_NE(err.find("schema_version"), std::string::npos);
    EXPECT_FALSE(campaignReportFromJson(JsonValue::array(), &s3, &err));

    // A v4 document missing its execution section is malformed.
    JsonValue incomplete = JsonValue::object();
    for (const auto &kv : v4.fields()) {
        if (kv.first != "execution")
            incomplete.set(kv.first, kv.second);
    }
    EXPECT_FALSE(campaignReportFromJson(incomplete, &s3, &err));
}

TEST(ReplayArtifact, RejectsMalformedInputs)
{
    std::string err;
    ReplayArtifact out;

    // Wrong top-level type.
    EXPECT_FALSE(ReplayArtifact::fromJson(
        JsonValue::parse("[1]", &err), &out, &err));

    // Wrong version.
    EXPECT_FALSE(ReplayArtifact::fromJson(
        JsonValue::parse("{\"version\": 99}", &err), &out, &err));
    EXPECT_NE(err.find("version"), std::string::npos);

    // Missing fields.
    EXPECT_FALSE(ReplayArtifact::fromJson(
        JsonValue::parse("{\"version\": 1}", &err), &out, &err));

    // Unknown enum spelling round trip guard.
    CrashScenario s = scenarioFor("Red", ModelKind::Sbrp);
    CrashVerdict v;
    ReplayArtifact a = ReplayArtifact::fromScenario(s, false, v);
    JsonValue j = a.toJson();
    j.set("model", JsonValue(std::string("not-a-model")));
    EXPECT_FALSE(ReplayArtifact::fromJson(j, &out, &err));
    EXPECT_NE(err.find("enum"), std::string::npos);

    j = a.toJson();
    j.set("app", JsonValue(std::string("not-an-app")));
    EXPECT_FALSE(ReplayArtifact::fromJson(j, &out, &err));
}

} // namespace
} // namespace sbrp
