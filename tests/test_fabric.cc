/**
 * @file
 * Memory-fabric timing unit tests: channel bandwidth serialization,
 * latency composition per design, persistence-domain commit points
 * (ADR vs eADR), L2 write-through, and traffic routing.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"
#include "formal/trace.hh"
#include "gpu/mem_ctrl.hh"
#include "sim/event_queue.hh"

namespace sbrp
{
namespace
{

struct FabricRig
{
    SystemConfig cfg;
    NvmDevice nvm;
    FunctionalMemory mem;
    EventQueue events;
    std::unique_ptr<MemoryFabric> fabric;
    Addr pm;

    explicit FabricRig(SystemDesign d = SystemDesign::PmNear,
                       PersistPoint pp = PersistPoint::Adr)
        : cfg(SystemConfig::testDefault(
              pp == PersistPoint::Eadr ? ModelKind::Sbrp : ModelKind::Sbrp,
              d))
    {
        cfg.persistPoint = pp;
        mem.setBacking(&nvm.durable());
        fabric = std::make_unique<MemoryFabric>(cfg, events, nvm, mem,
                                                nullptr);
        pm = nvm.allocate("pm", 1 << 20);
    }

    /** Runs until the fabric is idle; returns the cycle that happened. */
    Cycle
    drainAll(Cycle start = 0)
    {
        Cycle c = start;
        while (!fabric->idle()) {
            ++c;
            events.runUntil(c);
            if (c > 10'000'000)
                throw std::runtime_error("fabric never drained");
        }
        return c;
    }
};

TEST(Channel, SerializesAtBandwidth)
{
    Channel ch(2.0);   // 2 bytes per cycle.
    EXPECT_EQ(ch.acquire(0, 128), 64u);
    EXPECT_EQ(ch.acquire(0, 128), 128u);    // Queued behind the first.
    EXPECT_EQ(ch.acquire(200, 128), 264u);  // Idle gap is not reclaimed.
}

TEST(Channel, MinimumOneCycle)
{
    Channel ch(1000.0);
    EXPECT_EQ(ch.acquire(0, 4), 1u);
}

TEST(Channel, ExactCeilingOnFractionalTransfers)
{
    // Regression: the old float path computed bytes/rate + 0.999 and
    // truncated, which under-reserved whenever the fractional part of
    // the true quotient exceeded 0.999 (e.g. 2.999... rounding down to
    // 3 instead of up) and was at the mercy of FP noise on exact
    // divisions. The fixed-point path must give exact integer ceilings.
    Channel half(2.0);
    EXPECT_EQ(half.cyclesFor(3), 2u);      // ceil(1.5)
    EXPECT_EQ(half.cyclesFor(4), 2u);      // exact
    EXPECT_EQ(half.cyclesFor(5), 3u);      // ceil(2.5)

    Channel odd(3.0);
    EXPECT_EQ(odd.cyclesFor(1000), 334u);  // ceil(333.33)
    EXPECT_EQ(odd.cyclesFor(999), 333u);   // exact
    EXPECT_EQ(odd.cyclesFor(998), 333u);   // ceil(332.67)

    Channel slow(0.3);
    EXPECT_EQ(slow.cyclesFor(3), 10u);     // exact-ish: 3/0.3
    EXPECT_EQ(slow.cyclesFor(1), 4u);      // ceil(3.33)
}

TEST(Channel, BacklogTracksOutstandingWork)
{
    Channel ch(2.0);
    EXPECT_EQ(ch.backlog(0), 0u);
    ch.acquire(0, 128);                 // Busy until cycle 64.
    EXPECT_EQ(ch.backlog(0), 64u);
    EXPECT_EQ(ch.backlog(60), 4u);
    EXPECT_EQ(ch.backlog(64), 0u);
    EXPECT_EQ(ch.backlog(100), 0u);     // Idle time is not negative.
}

TEST(Fabric, GddrReadLatency)
{
    FabricRig rig;
    Addr vol = 0x10000;
    Cycle done = 0;
    rig.fabric->readLine(vol, 0, [&]() { done = 1; });
    Cycle t = rig.drainAll();
    EXPECT_EQ(done, 1u);
    // l2Latency + transfer + gddrLatency, give or take queueing.
    EXPECT_GE(t, rig.cfg.l2Latency + rig.cfg.gddrLatency);
    EXPECT_LE(t, rig.cfg.l2Latency + rig.cfg.gddrLatency + 40);
}

TEST(Fabric, NvmReadSlowerThanGddr)
{
    FabricRig rig;
    Cycle gddr_done = 0, nvm_done = 0;
    {
        FabricRig a;
        a.fabric->readLine(0x10000, 0, nullptr);
        gddr_done = a.drainAll();
    }
    {
        FabricRig b;
        b.fabric->readLine(b.pm, 0, nullptr);
        nvm_done = b.drainAll();
    }
    EXPECT_GT(nvm_done, gddr_done);
    (void)rig;
}

TEST(Fabric, PmFarReadsCrossPcieTwice)
{
    FabricRig near_rig(SystemDesign::PmNear);
    FabricRig far_rig(SystemDesign::PmFar);
    near_rig.fabric->readLine(near_rig.pm, 0, nullptr);
    far_rig.fabric->readLine(far_rig.pm, 0, nullptr);
    Cycle near_t = near_rig.drainAll();
    Cycle far_t = far_rig.drainAll();
    // Far adds two PCIe traversals (request + data).
    EXPECT_GE(far_t, near_t + 2 * far_rig.cfg.pcieLatency - 50);
}

TEST(Fabric, SecondReadOfLineHitsL2)
{
    FabricRig rig;
    rig.fabric->readLine(rig.pm, 0, nullptr);
    Cycle first = rig.drainAll();
    Cycle start = first + 1;
    rig.fabric->readLine(rig.pm, start, nullptr);
    Cycle second = rig.drainAll(start) - start;
    EXPECT_LE(second, rig.cfg.l2Latency + 2);
    EXPECT_EQ(rig.fabric->stats().value("l2_read_hits"), 1u);
}

TEST(Fabric, PersistCommitsAtAccept)
{
    FabricRig rig;
    rig.mem.write32(rig.pm, 1234);
    bool acked = false;
    rig.fabric->persistWrite(rig.pm, 0, [&](const PersistResult &r) {
        acked = r.ok;
    });
    EXPECT_EQ(rig.nvm.durable().read32(rig.pm), 0u);   // Not yet.
    rig.drainAll();
    EXPECT_TRUE(acked);
    EXPECT_EQ(rig.nvm.durable().read32(rig.pm), 1234u);
    EXPECT_EQ(rig.nvm.commitCount(), 1u);
}

TEST(Fabric, PersistSnapshotTakenAtFlushTime)
{
    FabricRig rig;
    rig.mem.write32(rig.pm, 1);
    rig.fabric->persistWrite(rig.pm, 0, nullptr);
    rig.mem.write32(rig.pm, 2);   // After the snapshot: must not leak.
    rig.drainAll();
    EXPECT_EQ(rig.nvm.durable().read32(rig.pm), 1u);
}

TEST(Fabric, PersistWritesThroughL2)
{
    FabricRig rig;
    rig.mem.write32(rig.pm, 7);
    rig.fabric->persistWrite(rig.pm, 0, nullptr);
    Cycle t = rig.drainAll();
    rig.fabric->readLine(rig.pm, t + 1, nullptr);
    rig.drainAll(t + 1);
    EXPECT_EQ(rig.fabric->stats().value("l2_read_hits"), 1u);
}

TEST(Fabric, EadrAcksFasterThanAdrOnFar)
{
    // Saturate the NVM write channel so the WPQ queue shows up in the
    // ADR ack time; eADR acks at the host LLC, skipping that queue.
    auto ack_time = [](PersistPoint pp) {
        FabricRig rig(SystemDesign::PmFar, pp);
        Cycle last_ack = 0;
        for (int i = 0; i < 32; ++i) {
            rig.mem.write32(rig.pm + 128 * i, i);
            rig.fabric->persistWrite(rig.pm + 128 * i, 0,
                                     [&, i](const PersistResult &)
                                     { last_ack = i; });
        }
        rig.drainAll();
        return last_ack;
    };
    // Both complete; the detailed timing difference is covered by the
    // figure9 bench. Here we just pin the commit counts.
    FabricRig adr(SystemDesign::PmFar, PersistPoint::Adr);
    FabricRig eadr(SystemDesign::PmFar, PersistPoint::Eadr);
    for (int i = 0; i < 8; ++i) {
        adr.mem.write32(adr.pm + 128 * i, i + 1);
        eadr.mem.write32(eadr.pm + 128 * i, i + 1);
        adr.fabric->persistWrite(adr.pm + 128 * i, 0, nullptr);
        eadr.fabric->persistWrite(eadr.pm + 128 * i, 0, nullptr);
    }
    Cycle t_adr = adr.drainAll();
    Cycle t_eadr = eadr.drainAll();
    EXPECT_EQ(adr.nvm.commitCount(), 8u);
    EXPECT_EQ(eadr.nvm.commitCount(), 8u);
    EXPECT_LE(t_eadr, t_adr);
    (void)ack_time;
}

TEST(Fabric, PersistWriteWordCommitsOnlyFourBytes)
{
    FabricRig rig;
    rig.nvm.durable();   // Pre-existing neighbours:
    std::uint8_t seed[128];
    for (int i = 0; i < 128; ++i)
        seed[i] = 0xaa;
    rig.nvm.commitLine(rig.pm, seed, 128);

    rig.fabric->persistWriteWord(rig.pm + 8, 0x11223344, {}, 0, nullptr);
    rig.drainAll();
    EXPECT_EQ(rig.nvm.durable().read32(rig.pm + 8), 0x11223344u);
    EXPECT_EQ(rig.nvm.durable().read8(rig.pm + 7), 0xaa);   // Untouched.
    EXPECT_EQ(rig.nvm.durable().read8(rig.pm + 12), 0xaa);
}

TEST(Fabric, CommitRecordsTraceIds)
{
    SystemConfig cfg = SystemConfig::testDefault();
    NvmDevice nvm;
    FunctionalMemory mem;
    EventQueue events;
    ExecutionTrace trace;
    MemoryFabric fabric(cfg, events, nvm, mem, &trace);
    Addr pm = nvm.allocate("pm", 4096);

    std::uint64_t id = trace.recordPersist(0, 0, pm);
    trace.notePendingStore(pm, id);
    mem.write32(pm, 1);
    fabric.persistWrite(pm, 0, nullptr);
    Cycle c = 0;
    while (!fabric.idle())
        events.runUntil(++c);
    ASSERT_EQ(trace.commits().size(), 1u);
    EXPECT_EQ(trace.commits()[0][0], id);
}

TEST(Fabric, VolatileWritebackLandsDirtyInL2)
{
    FabricRig rig;
    rig.fabric->volatileWriteback(0x20000, 0);
    rig.drainAll();
    // A subsequent read hits L2.
    rig.fabric->readLine(0x20000, 100, nullptr);
    rig.drainAll(100);
    EXPECT_EQ(rig.fabric->stats().value("l2_read_hits"), 1u);
    EXPECT_EQ(rig.nvm.commitCount(), 0u);
}

TEST(Fabric, BandwidthSweepScalesNvmWrites)
{
    auto saturate = [](double scale) {
        FabricRig rig;
        rig.cfg.nvmBwScale = scale;
        // Rebuild with the scaled config.
        rig.fabric = std::make_unique<MemoryFabric>(
            rig.cfg, rig.events, rig.nvm, rig.mem, nullptr);
        for (int i = 0; i < 64; ++i) {
            rig.mem.write32(rig.pm + 128 * i, i + 1);
            rig.fabric->persistWrite(rig.pm + 128 * i, 0, nullptr);
        }
        return rig.drainAll();
    };
    Cycle slow = saturate(0.5);
    Cycle base = saturate(1.0);
    Cycle fast = saturate(2.0);
    EXPECT_GT(slow, base);
    EXPECT_GT(base, fast);
}

} // namespace
} // namespace sbrp
