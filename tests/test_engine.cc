/**
 * @file
 * Execution-engine tests: each ISA op end-to-end through the SM, plus
 * scheduling behaviours (barriers with early exits, MSHR merging,
 * multi-launch, crash refusals, watchdog).
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"

namespace sbrp
{
namespace
{

struct Rig
{
    NvmDevice nvm;
    SystemConfig cfg;
    std::unique_ptr<GpuSystem> gpu;

    explicit Rig(ModelKind m = ModelKind::Sbrp,
                 SystemDesign d = SystemDesign::PmNear)
        : cfg(SystemConfig::testDefault(m, d))
    {
        gpu = std::make_unique<GpuSystem>(cfg, nvm);
    }
};

TEST(Engine, MovAddRegisters)
{
    Rig rig;
    Addr out = rig.gpu->gddrAlloc(32 * 4);
    KernelProgram k("alu", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .movLane(0, [](std::uint32_t l) { return l; })
        .addImm(0, 100)
        .mov(1, 3)
        .addReg(0, 1)
        .store([&](std::uint32_t l) { return out + 4 * l; }, 0);
    rig.gpu->launch(k);
    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(rig.gpu->mem().read32(out + 4 * l), l + 103);
}

TEST(Engine, LaneSumAndLaneMax)
{
    Rig rig;
    Addr out = rig.gpu->gddrAlloc(8);
    KernelProgram k("lanes", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .movLane(0, [](std::uint32_t l) { return l + 1; })
        .laneSum(0)
        .movLane(1, [](std::uint32_t l) { return (l * 7) % 31; })
        .laneMax(1)
        .store([&](std::uint32_t) { return out; }, 0, mask::lane(0))
        .store([&](std::uint32_t) { return out + 4; }, 1, mask::lane(0));
    rig.gpu->launch(k);
    EXPECT_EQ(rig.gpu->mem().read32(out), 32u * 33 / 2);
    EXPECT_EQ(rig.gpu->mem().read32(out + 4), 30u);
}

TEST(Engine, LaneReductionHonoursActiveMask)
{
    Rig rig;
    Addr out = rig.gpu->gddrAlloc(4);
    KernelProgram k("lanes", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .movLane(0, [](std::uint32_t) { return 1; })
        .laneSum(0, mask::firstN(5))
        .store([&](std::uint32_t) { return out; }, 0, mask::lane(0));
    rig.gpu->launch(k);
    EXPECT_EQ(rig.gpu->mem().read32(out), 5u);
}

TEST(Engine, IndexedLoadStore)
{
    Rig rig;
    Addr table = rig.gpu->gddrAlloc(64 * 4);
    Addr idx = rig.gpu->gddrAlloc(32 * 4);
    for (std::uint32_t l = 0; l < 32; ++l)
        rig.gpu->mem().write32(idx + 4 * l, 63 - 2 * (l % 16));

    KernelProgram k("indexed", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .load(0, [&](std::uint32_t l) { return idx + 4 * l; })
        .movLane(1, [](std::uint32_t l) { return 1000 + l; })
        .storeIdx([&](std::uint32_t) { return table; }, 1, 0, 4);
    rig.gpu->launch(k);
    // Lane l wrote table[63 - 2*(l%16)] = 1000 + l; lanes 16..31 win
    // (they overwrite lanes 0..15's slots in lane order).
    EXPECT_EQ(rig.gpu->mem().read32(table + 4 * 63), 1000u + 16);
    EXPECT_EQ(rig.gpu->mem().read32(table + 4 * 33), 1000u + 31);
}

TEST(Engine, ExitIfStopsLanePermanently)
{
    Rig rig;
    Addr flag = rig.gpu->gddrAlloc(32 * 4);
    Addr out = rig.gpu->gddrAlloc(32 * 4);
    // Odd lanes see a nonzero flag and must exit.
    for (std::uint32_t l = 0; l < 32; ++l)
        rig.gpu->mem().write32(flag + 4 * l, l % 2);

    KernelProgram k("exit", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .exitIfNe([&](std::uint32_t l) { return flag + 4 * l; }, 0)
        .storeImm([&](std::uint32_t l) { return out + 4 * l; },
                  [](std::uint32_t) { return 7; });
    rig.gpu->launch(k);
    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(rig.gpu->mem().read32(out + 4 * l), l % 2 ? 0u : 7u);
}

TEST(Engine, BarrierReleasesWholeBlockEvenWithExits)
{
    Rig rig;
    Addr flag = rig.gpu->gddrAlloc(64 * 4);
    Addr out = rig.gpu->gddrAlloc(4);
    // Warp 1 exits entirely before the barrier; warp 0 must still pass.
    for (std::uint32_t l = 0; l < 32; ++l)
        rig.gpu->mem().write32(flag + 4 * (32 + l), 1);

    KernelProgram k("barrier", 1, 64);
    WarpBuilder(k.warp(0, 0), 32)
        .barrier()
        .storeImm([&](std::uint32_t) { return out; },
                  [](std::uint32_t) { return 1; }, mask::lane(0));
    WarpBuilder(k.warp(0, 1), 32)
        .exitIfNe([&](std::uint32_t l) { return flag + 4 * (32 + l); }, 0)
        .barrier();
    auto res = rig.gpu->launch(k);
    EXPECT_FALSE(res.crashed);
    EXPECT_EQ(rig.gpu->mem().read32(out), 1u);
}

TEST(Engine, AtomicAddSerializesLanes)
{
    Rig rig;
    Addr ctr = rig.gpu->gddrAlloc(4);
    Addr out = rig.gpu->gddrAlloc(32 * 4);
    KernelProgram k("atomic", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .atomicAdd(0, ctr, 1)
        .store([&](std::uint32_t l) { return out + 4 * l; }, 0);
    rig.gpu->launch(k);
    EXPECT_EQ(rig.gpu->mem().read32(ctr), 32u);
    // Old values are a permutation of 0..31 in lane order.
    for (std::uint32_t l = 0; l < 32; ++l)
        EXPECT_EQ(rig.gpu->mem().read32(out + 4 * l), l);
}

TEST(Engine, ComputeOccupiesWarp)
{
    Rig rig;
    KernelProgram fast("fast", 1, 32);
    WarpBuilder(fast.warp(0, 0), 32).mov(0, 1);
    KernelProgram slow("slow", 1, 32);
    WarpBuilder(slow.warp(0, 0), 32).compute(500);

    Cycle f = rig.gpu->launch(fast).execCycles;
    Cycle s = rig.gpu->launch(slow).execCycles;
    EXPECT_GE(s, f + 400);
}

TEST(Engine, SpinLoadWaitsForProducer)
{
    Rig rig;
    Addr flag = rig.gpu->gddrAlloc(4);
    Addr out = rig.gpu->gddrAlloc(4);
    KernelProgram k("spin", 1, 64);
    // Warp 1 spins; warp 0 computes a while, then raises the flag.
    WarpBuilder(k.warp(0, 0), 32)
        .compute(800)
        .storeImm([&](std::uint32_t) { return flag; },
                  [](std::uint32_t) { return 9; }, mask::lane(0));
    WarpBuilder(k.warp(0, 1), 32)
        .spinLoad([&](std::uint32_t) { return flag; }, 9, mask::lane(0))
        .storeImm([&](std::uint32_t) { return out; },
                  [](std::uint32_t) { return 1; }, mask::lane(0));
    auto res = rig.gpu->launch(k);
    EXPECT_GE(res.execCycles, 800u);
    EXPECT_EQ(rig.gpu->mem().read32(out), 1u);
}

TEST(Engine, MshrMergesSameLineLoads)
{
    Rig rig;
    Addr data = rig.nvm.allocate("data", 128);
    KernelProgram k("mshr", 1, 128);   // Four warps hit the same line.
    for (std::uint32_t w = 0; w < 4; ++w) {
        WarpBuilder(k.warp(0, w), 32)
            .load(0, [&](std::uint32_t) { return data; });
    }
    rig.gpu->launch(k);
    // One fabric read: the first warp misses and allocates; the rest
    // hit under the pending fill (hit-under-miss).
    EXPECT_EQ(rig.gpu->fabric().stats().value("nvm_reads"), 1u);
    EXPECT_EQ(rig.gpu->sumSmStat("read_miss_nvm"), 1u);
    EXPECT_EQ(rig.gpu->sumSmStat("read_hit_nvm"), 3u);
}

TEST(Engine, SequentialLaunchesShareState)
{
    Rig rig;
    Addr data = rig.nvm.allocate("data", 4);
    KernelProgram k1("first", 1, 32);
    WarpBuilder(k1.warp(0, 0), 32)
        .storeImm([&](std::uint32_t) { return data; },
                  [](std::uint32_t) { return 5; }, mask::lane(0))
        .dfence(mask::lane(0));
    KernelProgram k2("second", 1, 32);
    WarpBuilder(k2.warp(0, 0), 32)
        .load(0, [&](std::uint32_t) { return data; })
        .addImm(0, 1)
        .store([&](std::uint32_t) { return data; }, 0, mask::lane(0))
        .dfence(mask::lane(0));
    rig.gpu->launch(k1);
    rig.gpu->launch(k2);
    EXPECT_EQ(rig.nvm.durable().read32(data), 6u);
}

TEST(Engine, CrashedSystemRefusesLaunch)
{
    Rig rig;
    rig.nvm.allocate("data", 128);
    KernelProgram k("x", 1, 32);
    WarpBuilder(k.warp(0, 0), 32).compute(1000);
    auto res = rig.gpu->launch(k, 10);
    EXPECT_TRUE(res.crashed);
    EXPECT_THROW(rig.gpu->launch(k), FatalError);
}

TEST(Engine, OversizedBlockIsFatal)
{
    Rig rig;
    KernelProgram k("big", 1, 1024 + 0);   // 32 warps > test SM? equal.
    // Test config has 32 warp slots: 1024 threads fit exactly; build a
    // kernel needing more via a custom config instead.
    SystemConfig tiny = SystemConfig::testDefault();
    tiny.maxWarpsPerSm = 2;
    GpuSystem gpu(tiny, rig.nvm);
    KernelProgram k2("big2", 1, 96);   // 3 warps > 2 slots.
    WarpBuilder(k2.warp(0, 0), 32).mov(0, 1);
    EXPECT_THROW(gpu.launch(k2), FatalError);
}

TEST(Engine, WatchdogCatchesDeadlockedSpin)
{
    NvmDevice nvm;
    SystemConfig cfg = SystemConfig::testDefault();
    cfg.watchdogCycles = 5000;
    GpuSystem gpu(cfg, nvm);
    Addr flag = gpu.gddrAlloc(4);
    KernelProgram k("deadlock", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .spinLoad([&](std::uint32_t) { return flag; }, 1, mask::lane(0));
    EXPECT_THROW(gpu.launch(k), PanicError);
}

TEST(Engine, ManyBlocksDispatchInWaves)
{
    Rig rig;   // 4 SMs x 32 warp slots.
    Addr out = rig.nvm.allocate("out", 64 * 128 * 4);
    KernelProgram k("waves", 64, 128);   // 64 blocks of 4 warps.
    for (BlockId b = 0; b < 64; ++b) {
        for (std::uint32_t w = 0; w < 4; ++w) {
            WarpBuilder(k.warp(b, w), 32)
                .storeImm([&, b, w](std::uint32_t l) {
                    return out + 4 * (b * 128 + w * 32 + l);
                }, [b](std::uint32_t) { return b + 1; });
        }
    }
    auto res = rig.gpu->launch(k);
    EXPECT_FALSE(res.crashed);
    for (std::uint32_t b = 0; b < 64; ++b)
        EXPECT_EQ(rig.nvm.durable().read32(out + 4 * (b * 128)), b + 1);
}

TEST(Engine, GddrAllocatorAdvances)
{
    Rig rig;
    Addr a = rig.gpu->gddrAlloc(100);
    Addr b = rig.gpu->gddrAlloc(100);
    EXPECT_GE(b, a + 256);
    EXPECT_THROW(rig.gpu->gddrAlloc(0), FatalError);
}

TEST(Engine, ExecCyclesNeverExceedTotal)
{
    Rig rig;
    Addr data = rig.nvm.allocate("data", 4096);
    KernelProgram k("drain", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return data + 128 * l; },
                  [](std::uint32_t l) { return l + 1; });
    auto res = rig.gpu->launch(k);
    EXPECT_LE(res.execCycles, res.cycles);
    // Buffered persists drain after retire under SBRP.
    EXPECT_LT(res.execCycles, res.cycles);
}

} // namespace
} // namespace sbrp
