/**
 * @file
 * Persistency-model micro-behaviour tests: ordering semantics of
 * oFence/dFence/pAcq/pRel under SBRP, epoch-barrier behaviour (PM-only
 * vs GPM's volatile flushing), eviction protocol, flush policies, and
 * the FSM-precision ablation.
 */

#include <gtest/gtest.h>

#include "api/sbrp.hh"

namespace sbrp
{
namespace
{

/**
 * Runs `build` crash-free to get its cycle count, then re-runs it at
 * several crash points, asserting the durable-state predicate and the
 * PMO checker at each.
 */
template <typename Setup, typename Build, typename Judge>
void
crashSweep(const SystemConfig &cfg, Setup setup, Build build, Judge judge)
{
    LitmusScenario scenario("sweep", setup, build, judge);
    LitmusReport rep = scenario.run(cfg,
                                    {0.05, 0.2, 0.4, 0.6, 0.8, 0.95});
    for (const LitmusRun &r : rep.runs) {
        EXPECT_TRUE(r.violations.empty())
            << "PMO violated with crash at " << r.crashAt.value_or(0);
        EXPECT_TRUE(r.durableStateOk)
            << "durable state broken with crash at " << r.crashAt.value_or(0);
    }
}

// --- SBRP ordering fences ----------------------------------------------

TEST(SbrpModel, OFenceOrdersAcrossCrashes)
{
    // W(a) ; oFence ; W(b): at no crash point may b be durable while a
    // is not.
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("a", 128);
            nvm.allocate("b", 128);
        },
        [](NvmDevice &nvm) {
            KernelProgram k("of", 1, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return nvm.open("a").base; },
                          [](std::uint32_t) { return 1; }, mask::lane(0))
                .ofence(mask::lane(0))
                .storeImm([&](std::uint32_t) { return nvm.open("b").base; },
                          [](std::uint32_t) { return 2; }, mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t a = nvm.durable().read32(nvm.open("a").base);
            std::uint32_t b = nvm.durable().read32(nvm.open("b").base);
            return b == 0 || a == 1;
        });
}

TEST(SbrpModel, WithoutOFenceEitherOrderIsLegal)
{
    // Sanity: the judge above would be too strong without the fence —
    // only check the checker stays quiet (no false positives).
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("a", 128);
            nvm.allocate("b", 128);
        },
        [](NvmDevice &nvm) {
            KernelProgram k("nof", 1, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return nvm.open("a").base; },
                          [](std::uint32_t) { return 1; }, mask::lane(0))
                .storeImm([&](std::uint32_t) { return nvm.open("b").base; },
                          [](std::uint32_t) { return 2; }, mask::lane(0));
            return k;
        },
        [](const NvmDevice &, bool) { return true; });
}

TEST(SbrpModel, DFenceGuaranteesDurabilityAtCompletion)
{
    // A volatile flag raised *after* a dFence implies the fenced data
    // is durable, at every crash point.
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("data", 128);
            nvm.allocate("witness", 128);
        },
        [](NvmDevice &nvm) {
            Addr data = nvm.open("data").base;
            Addr wit = nvm.open("witness").base;
            KernelProgram k("df", 1, 32);
            // After dFence completes, persist a witness; if the witness
            // ever becomes durable while data is not, dFence lied.
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return data; },
                          [](std::uint32_t) { return 11; }, mask::lane(0))
                .dfence(mask::lane(0))
                .storeImm([&](std::uint32_t) { return wit; },
                          [](std::uint32_t) { return 1; }, mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t d = nvm.durable().read32(nvm.open("data").base);
            std::uint32_t w =
                nvm.durable().read32(nvm.open("witness").base);
            return w == 0 || d == 11;
        });
}

TEST(SbrpModel, BlockRelAcqOrdersAcrossWarps)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("y", 128);
            nvm.allocate("flag", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr y = nvm.open("y").base;
            Addr f = nvm.open("flag").base;
            KernelProgram k("mp", 1, 64);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 41; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0));
            WarpBuilder(k.warp(0, 1), 32)
                .pacq([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return y; },
                          [](std::uint32_t) { return 42; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            std::uint32_t y = nvm.durable().read32(nvm.open("y").base);
            return y == 0 || x == 41;
        });
}

TEST(SbrpModel, DeviceRelAcqOrdersAcrossBlocks)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmFar);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("y", 128);
            nvm.allocate("flag", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr y = nvm.open("y").base;
            Addr f = nvm.open("flag").base;
            KernelProgram k("mpdev", 2, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 41; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Device,
                      mask::lane(0));
            WarpBuilder(k.warp(1, 0), 32)
                .pacq([&](std::uint32_t) { return f; }, 1, Scope::Device,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return y; },
                          [](std::uint32_t) { return 42; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            std::uint32_t y = nvm.durable().read32(nvm.open("y").base);
            return y == 0 || x == 41;
        });
}

TEST(SbrpModel, ReleaseToPmVariableIsItselfOrdered)
{
    // Figure 3 line 24: pRel(&out, v) both publishes and persists v;
    // the released value must never be durable before earlier persists.
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("out", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr out = nvm.open("out").base;
            KernelProgram k("reldata", 1, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 7; }, mask::lane(0))
                .prel([&](std::uint32_t) { return out; }, 99,
                      Scope::Block, mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            std::uint32_t o = nvm.durable().read32(nvm.open("out").base);
            return o == 0 || x == 7;
        });
}

// --- Flush policies ----------------------------------------------------

TEST(SbrpModel, LazyPolicyKeepsDataBuffered)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 4096);
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    cfg.flushPolicy = FlushPolicy::Lazy;
    GpuSystem gpu(cfg, nvm);
    KernelProgram k("lazy", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return data + 128 * l; },
                  [](std::uint32_t l) { return l + 1; })
        .compute(10000);   // Keep the kernel alive past the crash.
    auto res = gpu.launch(k, 2000);   // Crash well after stores issued.
    EXPECT_TRUE(res.crashed);
    EXPECT_EQ(nvm.commitCount(), 0u);   // Nothing drained: all lost.
}

TEST(SbrpModel, EagerPolicyDrainsPromptly)
{
    NvmDevice nvm;
    Addr data = nvm.allocate("data", 4096);
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    cfg.flushPolicy = FlushPolicy::Eager;
    GpuSystem gpu(cfg, nvm);
    KernelProgram k("eager", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t l) { return data + 128 * l; },
                  [](std::uint32_t l) { return l + 1; })
        .compute(10000);
    auto res = gpu.launch(k, 2000);
    EXPECT_TRUE(res.crashed);
    EXPECT_EQ(nvm.commitCount(), 32u);   // Everything already durable.
}

TEST(SbrpModel, WindowPolicySitsBetween)
{
    auto commits = [](FlushPolicy p, Cycle crash_at) {
        NvmDevice nvm;
        Addr data = nvm.allocate("data", 32 * 128);
        SystemConfig cfg = SystemConfig::testDefault(
            ModelKind::Sbrp, SystemDesign::PmNear);
        cfg.flushPolicy = p;
        GpuSystem gpu(cfg, nvm);
        KernelProgram k("w", 1, 32);
        WarpBuilder(k.warp(0, 0), 32)
            .storeImm([&](std::uint32_t l) { return data + 128 * l; },
                      [](std::uint32_t l) { return l + 1; })
            .compute(10000);
        gpu.launch(k, crash_at);
        return nvm.commitCount();
    };
    std::uint64_t w = commits(FlushPolicy::Window, 400);
    std::uint64_t l = commits(FlushPolicy::Lazy, 400);
    std::uint64_t e = commits(FlushPolicy::Eager, 400);
    EXPECT_EQ(l, 0u);
    EXPECT_GE(w, l);
    EXPECT_LE(w, e);
    EXPECT_GT(w, 0u);
}

// --- FSM precision ablation --------------------------------------------

TEST(SbrpModel, SingleActrVariantIsCorrectToo)
{
    for (const char *name : {"gpKVS", "Red"}) {
        (void)name;
    }
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    cfg.preciseFsm = false;
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("a", 128);
            nvm.allocate("b", 128);
        },
        [](NvmDevice &nvm) {
            KernelProgram k("of", 1, 64);
            for (std::uint32_t w = 0; w < 2; ++w) {
                WarpBuilder(k.warp(0, w), 32)
                    .storeImm([&, w](std::uint32_t l) {
                        return nvm.open("a").base + 4 * (w * 32 + l) % 128;
                    }, [](std::uint32_t) { return 1; })
                    .ofence()
                    .storeImm([&, w](std::uint32_t l) {
                        return nvm.open("b").base + 4 * (w * 32 + l) % 128;
                    }, [](std::uint32_t) { return 2; });
            }
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t a = nvm.durable().read32(nvm.open("a").base);
            std::uint32_t b = nvm.durable().read32(nvm.open("b").base);
            return b == 0 || a == 1;
        });
}

// --- Eviction protocol -------------------------------------------------

TEST(SbrpModel, CapacityEvictionRespectsOrdering)
{
    // A tiny L1 forces capacity evictions of dirty PM lines while an
    // oFence-ordered store stream is in flight; the fence rule must
    // survive arbitrary crash points regardless.
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    cfg.l1Bytes = 2 * 1024;   // 16 lines, 2 sets: heavy conflict.
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("stream", 64 * 128);
            nvm.allocate("marker", 128);
        },
        [](NvmDevice &nvm) {
            Addr s = nvm.open("stream").base;
            Addr m = nvm.open("marker").base;
            KernelProgram k("evict", 1, 32);
            WarpBuilder wb(k.warp(0, 0), 32);
            // Two ordered generations of the stream, then a marker.
            wb.storeImm([&](std::uint32_t l) { return s + 128 * l; },
                        [](std::uint32_t) { return 1; });
            wb.ofence();
            wb.storeImm([&](std::uint32_t l) {
                return s + 128 * (32 + l % 32);
            }, [](std::uint32_t) { return 2; });
            wb.ofence();
            wb.storeImm([&](std::uint32_t) { return m; },
                        [](std::uint32_t) { return 3; }, mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            Addr s = nvm.open("stream").base;
            Addr m = nvm.open("marker").base;
            bool gen1 = true, gen2 = true;
            for (std::uint32_t i = 0; i < 32; ++i) {
                gen1 &= nvm.durable().read32(s + 128 * i) == 1;
                gen2 &= nvm.durable().read32(s + 128 * (32 + i)) == 2;
            }
            std::uint32_t mk = nvm.durable().read32(m);
            if (mk == 3 && !(gen1 && gen2))
                return false;   // Marker before its stream.
            bool any2 = false;
            for (std::uint32_t i = 0; i < 32 && !any2; ++i)
                any2 = nvm.durable().read32(s + 128 * (32 + i)) == 2;
            return !any2 || gen1;   // Gen2 implies all of gen1.
        });
}

// --- Epoch / GPM -------------------------------------------------------

TEST(EpochModel, BarrierOrdersEpochs)
{
    for (SystemDesign d : {SystemDesign::PmFar, SystemDesign::PmNear}) {
        SystemConfig cfg = SystemConfig::testDefault(ModelKind::Epoch, d);
        crashSweep(cfg,
            [](NvmDevice &nvm) {
                nvm.allocate("a", 128);
                nvm.allocate("b", 128);
            },
            [](NvmDevice &nvm) {
                KernelProgram k("epoch", 1, 32);
                WarpBuilder(k.warp(0, 0), 32)
                    .storeImm([&](std::uint32_t) {
                        return nvm.open("a").base;
                    }, [](std::uint32_t) { return 1; }, mask::lane(0))
                    .fence(Scope::System, mask::lane(0))
                    .storeImm([&](std::uint32_t) {
                        return nvm.open("b").base;
                    }, [](std::uint32_t) { return 2; }, mask::lane(0));
                return k;
            },
            [](const NvmDevice &nvm, bool) {
                std::uint32_t a =
                    nvm.durable().read32(nvm.open("a").base);
                std::uint32_t b =
                    nvm.durable().read32(nvm.open("b").base);
                return b == 0 || a == 1;
            });
    }
}

TEST(EpochModel, SbrpOpsPanicUnderEpoch)
{
    NvmDevice nvm;
    nvm.allocate("x", 128);
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Epoch,
                                                 SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);
    KernelProgram k("bad", 1, 32);
    WarpBuilder(k.warp(0, 0), 32).ofence(mask::lane(0));
    EXPECT_THROW(gpu.launch(k), PanicError);
}

TEST(GpmModel, FenceFlushesVolatileLinesToo)
{
    auto gddr_writes = [](ModelKind m) {
        NvmDevice nvm;
        Addr data = nvm.allocate("d", 128);
        SystemConfig cfg = SystemConfig::testDefault(m,
                                                     SystemDesign::PmFar);
        GpuSystem gpu(cfg, nvm);
        Addr vol = gpu.gddrAlloc(32 * 4);
        KernelProgram k("gpm", 1, 32);
        WarpBuilder(k.warp(0, 0), 32)
            .storeImm([&](std::uint32_t l) { return vol + 4 * l; },
                      [](std::uint32_t l) { return l; })
            .storeImm([&](std::uint32_t) { return data; },
                      [](std::uint32_t) { return 1; }, mask::lane(0))
            .fence(Scope::System);
        gpu.launch(k);
        return gpu.fabric().stats().value("volatile_flushes");
    };
    EXPECT_GT(gddr_writes(ModelKind::Gpm), 0u);
    EXPECT_EQ(gddr_writes(ModelKind::Epoch), 0u);
}

TEST(EpochModel, BarrierInvalidatesPmLines)
{
    // After the barrier, re-reading the persisted line must miss in L1.
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 128);
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Epoch,
                                                 SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);
    KernelProgram k("inval", 1, 32);
    WarpBuilder(k.warp(0, 0), 32)
        .storeImm([&](std::uint32_t) { return data; },
                  [](std::uint32_t) { return 1; }, mask::lane(0))
        .fence(Scope::System, mask::lane(0))
        .load(0, [&](std::uint32_t) { return data; }, mask::lane(0));
    gpu.launch(k);
    EXPECT_GE(gpu.sumSmStat("read_miss_nvm"), 1u);
    EXPECT_EQ(gpu.sumSmStat("read_hit_nvm"), 0u);
}

TEST(SbrpModel, OFenceKeepsPmLinesCached)
{
    // The SBRP counterpart of the test above: oFence does not
    // invalidate, so re-reading data still queued behind the drain
    // window hits in the L1 (Figure 8's mechanism). The last-written
    // line of a 24-line backlog cannot have drained yet (window 6).
    NvmDevice nvm;
    Addr data = nvm.allocate("d", 24 * 128);
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    GpuSystem gpu(cfg, nvm);
    KernelProgram k("keep", 1, 32);
    WarpBuilder wb(k.warp(0, 0), 32);
    for (std::uint32_t i = 0; i < 24; ++i) {
        wb.storeImm([&, i](std::uint32_t) { return data + 128 * i; },
                    [](std::uint32_t) { return 1; }, mask::lane(0));
    }
    wb.ofence(mask::lane(0));
    wb.load(0, [&](std::uint32_t) { return data + 128 * 23; },
            mask::lane(0));
    gpu.launch(k);
    EXPECT_EQ(gpu.sumSmStat("read_miss_nvm"), 0u);
    EXPECT_GE(gpu.sumSmStat("read_hit_nvm"), 1u);
}

// --- Scoped persist barriers (related work) ---------------------------

TEST(BarrierModel, OFenceActsAsFullBarrier)
{
    // Under the scoped-barrier model the same W(a); oFence; W(b)
    // program is still crash-ordered — by stalling, not buffering.
    SystemConfig cfg = SystemConfig::testDefault(
        ModelKind::ScopedBarrier, SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("a", 128);
            nvm.allocate("b", 128);
        },
        [](NvmDevice &nvm) {
            KernelProgram k("bof", 1, 32);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return nvm.open("a").base; },
                          [](std::uint32_t) { return 1; }, mask::lane(0))
                .ofence(mask::lane(0))
                .storeImm([&](std::uint32_t) { return nvm.open("b").base; },
                          [](std::uint32_t) { return 2; }, mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t a = nvm.durable().read32(nvm.open("a").base);
            std::uint32_t b = nvm.durable().read32(nvm.open("b").base);
            return b == 0 || a == 1;
        });
}

TEST(BarrierModel, RelAcqStillOrders)
{
    SystemConfig cfg = SystemConfig::testDefault(
        ModelKind::ScopedBarrier, SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("y", 128);
            nvm.allocate("flag", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr y = nvm.open("y").base;
            Addr f = nvm.open("flag").base;
            KernelProgram k("bmp", 1, 64);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 41; }, mask::lane(0))
                .prel([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0));
            WarpBuilder(k.warp(0, 1), 32)
                .pacq([&](std::uint32_t) { return f; }, 1, Scope::Block,
                      mask::lane(0))
                .storeImm([&](std::uint32_t) { return y; },
                          [](std::uint32_t) { return 42; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            std::uint32_t x = nvm.durable().read32(nvm.open("x").base);
            std::uint32_t y = nvm.durable().read32(nvm.open("y").base);
            return y == 0 || x == 41;
        });
}

TEST(BarrierModel, SlowerThanSbrpOnOrderingDenseKernels)
{
    // The paper's qualitative claim (Section 8): stalling barriers lose
    // to SBRP's buffering when ordering points are frequent.
    auto run = [](ModelKind m) {
        NvmDevice nvm;
        Addr data = nvm.allocate("data", 64 * 128);
        SystemConfig cfg = SystemConfig::testDefault(
            m, SystemDesign::PmFar);
        GpuSystem gpu(cfg, nvm);
        KernelProgram k("dense", 1, 32);
        WarpBuilder wb(k.warp(0, 0), 32);
        for (std::uint32_t i = 0; i < 16; ++i) {
            wb.storeImm([&, i](std::uint32_t l) {
                return data + 128 * ((i * 4 + l % 4) % 64);
            }, [i](std::uint32_t) { return i + 1; }, mask::firstN(4));
            wb.ofence();
        }
        return gpu.launch(k).execCycles;
    };
    Cycle barrier_t = run(ModelKind::ScopedBarrier);
    Cycle sbrp_t = run(ModelKind::Sbrp);
    EXPECT_LT(sbrp_t, barrier_t / 2)
        << "SBRP should buffer through ordering points the barrier "
        << "model stalls on";
}

TEST(BarrierModel, ReleaseToPmVariableDurableBeforeVisible)
{
    SystemConfig cfg = SystemConfig::testDefault(
        ModelKind::ScopedBarrier, SystemDesign::PmNear);
    crashSweep(cfg,
        [](NvmDevice &nvm) {
            nvm.allocate("x", 128);
            nvm.allocate("out", 128);
        },
        [](NvmDevice &nvm) {
            Addr x = nvm.open("x").base;
            Addr out = nvm.open("out").base;
            KernelProgram k("brel", 1, 64);
            WarpBuilder(k.warp(0, 0), 32)
                .storeImm([&](std::uint32_t) { return x; },
                          [](std::uint32_t) { return 7; }, mask::lane(0))
                .prel([&](std::uint32_t) { return out; }, 99,
                      Scope::Block, mask::lane(0));
            // A consumer writes after observing the released value.
            WarpBuilder(k.warp(0, 1), 32)
                .pacq([&](std::uint32_t) { return out; }, 99,
                      Scope::Block, mask::lane(0))
                .storeImm([&](std::uint32_t) { return x + 4; },
                          [](std::uint32_t) { return 1; },
                          mask::lane(0));
            return k;
        },
        [](const NvmDevice &nvm, bool) {
            Addr x = nvm.open("x").base;
            Addr out = nvm.open("out").base;
            std::uint32_t o = nvm.durable().read32(out);
            std::uint32_t c = nvm.durable().read32(x + 4);
            // Consumer's write implies the released value AND x.
            if (c == 1 && (o != 99 || nvm.durable().read32(x) != 7))
                return false;
            return o == 0 || nvm.durable().read32(x) == 7;
        });
}

} // namespace
} // namespace sbrp
