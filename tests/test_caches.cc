/**
 * @file
 * Unit tests for the L1 and L2 tag arrays: lookup/LRU, allocation and
 * victim selection, persist metadata, invalidation sweeps.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/l1_cache.hh"
#include "gpu/l2_cache.hh"

namespace sbrp
{
namespace
{

SystemConfig
tinyCfg()
{
    SystemConfig cfg = SystemConfig::testDefault();
    cfg.l1Bytes = 2 * 1024;   // 16 lines, 8-way: 2 sets.
    cfg.l2Bytes = 8 * 1024;   // 64 lines, 16-way: 4 sets.
    return cfg;
}

TEST(L1Cache, MissThenHit)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l1");
    L1Cache l1(cfg, sg);
    EXPECT_EQ(l1.lookup(0x1000, 1), nullptr);
    L1Cache::Eviction ev;
    L1Cache::Line *l = l1.allocate(0x1000, 1, &ev);
    ASSERT_NE(l, nullptr);
    EXPECT_FALSE(ev.happened);
    EXPECT_NE(l1.lookup(0x1000, 2), nullptr);
}

TEST(L1Cache, AllocateInitializesMetadata)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l1");
    L1Cache l1(cfg, sg);
    L1Cache::Line *l = l1.allocate(0x1000, 1, nullptr);
    EXPECT_FALSE(l->dirty);
    EXPECT_FALSE(l->isPm);
    EXPECT_EQ(l->pbEntry, kNoPbEntry);
    l->dirty = true;
    l->isPm = true;
    l->pbEntry = 7;
    // Re-allocating the same address refreshes LRU but keeps the line.
    L1Cache::Line *again = l1.allocate(0x1000, 5, nullptr);
    EXPECT_EQ(again, l);
    EXPECT_TRUE(again->dirty);
}

TEST(L1Cache, LruVictimSelection)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l1");
    L1Cache l1(cfg, sg);
    // Fill one set: addresses with identical set index (2 sets: stride
    // = 2 * 128 bytes).
    for (std::uint32_t i = 0; i < cfg.l1Assoc; ++i)
        l1.allocate(0x10000 + i * 256, i + 1, nullptr);
    EXPECT_EQ(l1.victimFor(0x20000), l1.probe(0x10000));   // Oldest.
    l1.lookup(0x10000, 100);   // Refresh it.
    EXPECT_EQ(l1.victimFor(0x20000), l1.probe(0x10000 + 256));
}

TEST(L1Cache, VictimForReturnsNullWithFreeWay)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l1");
    L1Cache l1(cfg, sg);
    l1.allocate(0x1000, 1, nullptr);
    EXPECT_EQ(l1.victimFor(0x2000), nullptr);
}

TEST(L1Cache, EvictionReportsVictimMetadata)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l1");
    L1Cache l1(cfg, sg);
    for (std::uint32_t i = 0; i < cfg.l1Assoc; ++i) {
        L1Cache::Line *l = l1.allocate(0x10000 + i * 256, i + 1, nullptr);
        l->dirty = true;
        l->isPm = (i == 0);
        l->pbEntry = i;
    }
    L1Cache::Eviction ev;
    l1.allocate(0x20000, 99, &ev);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.lineAddr, 0x10000u);
    EXPECT_TRUE(ev.dirty);
    EXPECT_TRUE(ev.isPm);
    EXPECT_EQ(ev.pbEntry, 0u);
    EXPECT_EQ(sg.value("evictions"), 1u);
}

TEST(L1Cache, InvalidateAndSweep)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l1");
    L1Cache l1(cfg, sg);
    l1.allocate(0x1000, 1, nullptr)->isPm = true;
    l1.allocate(0x2000, 1, nullptr);
    l1.invalidate(0x1000);
    EXPECT_EQ(l1.probe(0x1000), nullptr);
    EXPECT_NE(l1.probe(0x2000), nullptr);

    int count = 0;
    l1.forEachLine([&](L1Cache::Line &) { ++count; });
    EXPECT_EQ(count, 1);
}

TEST(L2Cache, LookupAllocate)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l2");
    L2Cache l2(cfg, sg);
    EXPECT_FALSE(l2.lookup(0x5000, 1));
    l2.allocate(0x5000, false, 1, nullptr);
    EXPECT_TRUE(l2.lookup(0x5000, 2));
}

TEST(L2Cache, DirtyUpgradeSticks)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l2");
    L2Cache l2(cfg, sg);
    l2.allocate(0x5000, false, 1, nullptr);
    l2.allocate(0x5000, true, 2, nullptr);   // Same line, now dirty.
    // Fill the set to force it out and observe the dirty eviction.
    L2Cache::Eviction ev;
    bool saw_dirty = false;
    for (std::uint32_t i = 1; i <= cfg.l2Assoc; ++i) {
        l2.allocate(0x5000 + i * 4 * 128, false, 10 + i, &ev);
        if (ev.happened && ev.lineAddr == 0x5000)
            saw_dirty = ev.dirty;
    }
    EXPECT_TRUE(saw_dirty);
}

TEST(L2Cache, InvalidateDropsLine)
{
    SystemConfig cfg = tinyCfg();
    StatGroup sg("l2");
    L2Cache l2(cfg, sg);
    l2.allocate(0x5000, false, 1, nullptr);
    l2.invalidate(0x5000);
    EXPECT_FALSE(l2.lookup(0x5000, 2));
}

} // namespace
} // namespace sbrp
