/**
 * @file
 * Integration tests: the six PM-aware applications run crash-free and
 * under crash injection on every (model, design) combination, with the
 * formal PMO checker attached and functional verification of durable
 * state.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>

#include "api/sbrp.hh"
#include "apps/app.hh"
#include "apps/checkpoint.hh"
#include "apps/hashmap.hh"
#include "apps/kvs.hh"
#include "apps/multiqueue.hh"
#include "apps/reduction.hh"
#include "apps/scan.hh"
#include "apps/srad.hh"

namespace sbrp
{
namespace
{

std::unique_ptr<PmApp>
makeApp(const std::string &name, ModelKind model)
{
    if (name == "gpKVS")
        return std::make_unique<KvsApp>(model, KvsParams::test());
    if (name == "HM")
        return std::make_unique<HashmapApp>(model, HashmapParams::test());
    if (name == "SRAD")
        return std::make_unique<SradApp>(model, SradParams::test());
    if (name == "Red")
        return std::make_unique<ReductionApp>(model,
                                              ReductionParams::test());
    if (name == "MQ")
        return std::make_unique<MultiqueueApp>(model,
                                               MultiqueueParams::test());
    if (name == "Scan")
        return std::make_unique<ScanApp>(model, ScanParams::test());
    if (name == "Ckpt")
        return std::make_unique<CheckpointApp>(model,
                                               CheckpointParams::test());
    return nullptr;
}

struct Combo
{
    const char *app;
    ModelKind model;
    SystemDesign design;
};

std::string
comboName(const testing::TestParamInfo<Combo> &info)
{
    std::string n = info.param.app;
    n += "_";
    n += toString(info.param.model);
    n += "_";
    n += toString(info.param.design);
    // gtest parameter names must be alphanumeric.
    std::string out;
    for (char c : n) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
    }
    return out;
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const char *app :
         {"gpKVS", "HM", "SRAD", "Red", "MQ", "Scan", "Ckpt"}) {
        out.push_back({app, ModelKind::Gpm, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Epoch, SystemDesign::PmNear});
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmFar});
        out.push_back({app, ModelKind::Sbrp, SystemDesign::PmNear});
        out.push_back({app, ModelKind::ScopedBarrier,
                       SystemDesign::PmNear});
    }
    return out;
}

class AppCrashFree : public testing::TestWithParam<Combo>
{
};

TEST_P(AppCrashFree, CompletesAndVerifies)
{
    const Combo &c = GetParam();
    auto app = makeApp(c.app, c.model);
    ASSERT_TRUE(app);
    SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);

    AppRunResult r = AppHarness::runCrashFree(*app, cfg, true);
    EXPECT_GT(r.forwardCycles, 0u);
    EXPECT_TRUE(r.consistent) << "durable end state is wrong";
    EXPECT_EQ(r.pmoViolations, 0u) << "hardware violated the PMO model";
    EXPECT_GT(r.nvmCommits, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, AppCrashFree,
                         testing::ValuesIn(allCombos()), comboName);

class AppCrashRecover : public testing::TestWithParam<Combo>
{
};

TEST_P(AppCrashRecover, RecoversConsistently)
{
    const Combo &c = GetParam();
    SystemConfig cfg = SystemConfig::testDefault(c.model, c.design);

    // Measure the crash-free runtime once, then crash at several points.
    Cycle total;
    {
        auto app = makeApp(c.app, c.model);
        total = AppHarness::runCrashFree(*app, cfg).forwardCycles;
    }

    for (double frac : {0.1, 0.35, 0.6, 0.85}) {
        auto app = makeApp(c.app, c.model);
        auto at = std::max<Cycle>(1, static_cast<Cycle>(total * frac));
        AppRunResult r = AppHarness::runCrashRecover(*app, cfg, at, true);
        EXPECT_TRUE(r.crashed) << "crash at " << at << " did not fire";
        EXPECT_TRUE(r.consistent)
            << c.app << " inconsistent after crash at " << at << "/"
            << total;
        EXPECT_EQ(r.pmoViolations, 0u)
            << c.app << " PMO violation with crash at " << at;
        EXPECT_GT(r.recoveryCycles, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, AppCrashRecover,
                         testing::ValuesIn(allCombos()), comboName);

/** Checkpoint atomicity: at every crash point, a committed epoch
    counter names a complete snapshot (checked pre-recovery). */
TEST(AppRecovery, CheckpointsAreNeverTorn)
{
    for (ModelKind m : {ModelKind::Sbrp, ModelKind::Epoch,
                        ModelKind::ScopedBarrier}) {
        SystemConfig cfg = SystemConfig::testDefault(m,
                                                     SystemDesign::PmNear);
        CheckpointApp probe(m, CheckpointParams::test());
        Cycle total;
        {
            NvmDevice nvm;
            probe.setupNvm(nvm);
            GpuSystem gpu(cfg, nvm);
            probe.setupGpu(gpu);
            total = gpu.launch(probe.forward()).cycles;
        }
        for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            CheckpointApp app(m, CheckpointParams::test());
            NvmDevice nvm;
            app.setupNvm(nvm);
            {
                GpuSystem gpu(cfg, nvm);
                app.setupGpu(gpu);
                gpu.launch(app.forward(),
                           std::max<Cycle>(1, Cycle(total * frac)));
            }
            EXPECT_TRUE(app.checkpointInvariant(nvm))
                << toString(m) << " tore a checkpoint at " << frac;
        }
    }
}

/** Native-recovery apps must reach full completion after re-running. */
TEST(AppRecovery, NativeAppsCompleteAfterRerun)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    for (const char *name : {"SRAD", "Red", "Scan"}) {
        auto probe = makeApp(name, ModelKind::Sbrp);
        Cycle total = AppHarness::runCrashFree(*probe, cfg).forwardCycles;

        auto app = makeApp(name, ModelKind::Sbrp);
        AppRunResult r =
            AppHarness::runCrashRecover(*app, cfg, total / 2);
        EXPECT_TRUE(r.consistent) << name;
        // verifyRecovered == verify for native apps: fully complete.
    }
}

/** Logging apps leave no VALID log entries behind after recovery. */
TEST(AppRecovery, RecoveryIsFasterThanForward)
{
    SystemConfig cfg = SystemConfig::testDefault(ModelKind::Sbrp,
                                                 SystemDesign::PmNear);
    auto probe = makeApp("gpKVS", ModelKind::Sbrp);
    Cycle total = AppHarness::runCrashFree(*probe, cfg).forwardCycles;

    auto app = makeApp("gpKVS", ModelKind::Sbrp);
    AppRunResult r = AppHarness::runCrashRecover(*app, cfg, total / 2);
    EXPECT_TRUE(r.consistent);
    EXPECT_LT(r.recoveryCycles, total)
        << "undo-log recovery should be cheaper than the forward run";
}

} // namespace
} // namespace sbrp
