/**
 * @file
 * The physical NVM device: durable image, ADR commit point, and the
 * persistent namespace table of the paper's PM-near software model.
 *
 * An NvmDevice deliberately outlives GpuSystem instances: a crash is
 * modeled by destroying the GpuSystem (losing caches, persist buffers and
 * in-flight writes) while the NvmDevice — and only it — survives. Recovery
 * kernels run on a fresh GpuSystem attached to the same device.
 */

#ifndef SBRP_MEM_NVM_DEVICE_HH
#define SBRP_MEM_NVM_DEVICE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/functional_mem.hh"

namespace sbrp
{

class TraceBuffer;

/**
 * Byte-addressable persistent memory with a name-based allocation table.
 *
 * The namespace table mirrors Section 3: allocations are named, the table
 * maps names to (address, size), and after a "power cycle" previously
 * allocated structures are re-opened by name. On PM-far the paper uses
 * files on PM for the same purpose; both reduce to this table here.
 */
class NvmDevice
{
  public:
    /** A named persistent allocation. */
    struct Region
    {
        Addr base = 0;
        std::uint64_t size = 0;
    };

    /**
     * Allocates a fresh named region; throws FatalError if the name is
     * taken. Addresses are line-aligned and never reused.
     *
     * @param name   Persistent name used to re-open after a crash.
     * @param bytes  Size of the region.
     * @return Base address inside the NVM window.
     */
    Addr allocate(const std::string &name, std::uint64_t bytes);

    /** Opens an existing region; throws FatalError if missing. */
    Region open(const std::string &name) const;

    bool exists(const std::string &name) const;

    /** Removes the name mapping (contents become unreachable). */
    void remove(const std::string &name);

    /** All named regions (for tooling / examples). */
    const std::map<std::string, Region> &table() const { return names_; }

    /**
     * Commits a flushed cache line into the durable image. Called by the
     * persistence domain when a write is accepted (ADR WPQ / eADR LLC).
     */
    void commitLine(Addr line_addr, const std::uint8_t *data,
                    std::uint32_t len);

    /** Durable contents, readable at any time (e.g. post-crash). */
    const FunctionalMemory &durable() const { return durable_; }
    FunctionalMemory &durable() { return durable_; }

    /** Total line commits accepted since construction. */
    std::uint64_t commitCount() const { return commit_count_; }

    /** Bytes handed out by the allocator so far. */
    std::uint64_t allocatedBytes() const
    { return bump_ - addr_map::kNvmBase; }

    /**
     * Restores this device to an exact copy of `golden`'s persistent
     * state: durable image, namespace table, allocator position and
     * media poison set (the commit counter restarts at zero). Crash
     * campaigns snapshot the pre-crash image once per worker and restore
     * before every injected crash instead of re-running application
     * setup.
     */
    void restoreImageFrom(const NvmDevice &golden);

    /**
     * Marks a line's media as sticky-uncorrectable: every later persist
     * to it fails with PersistFaultKind::MediaSticky (injected by the
     * fault layer; real hardware would report an ECC poison). Survives
     * power cycles — media damage does not heal on reboot.
     */
    void poisonLine(Addr line_addr) { poisoned_.insert(line_addr); }

    bool isPoisoned(Addr line_addr) const
    { return poisoned_.count(line_addr) != 0; }

    /** All sticky-poisoned line addresses (apps/oracles query this). */
    const std::set<Addr> &poisonedLines() const { return poisoned_; }

    /**
     * Attaches/detaches a trace buffer for the WPQ occupancy track. The
     * GpuSystem that owns the sink MUST detach (pass null) before it is
     * destroyed — the device outlives it across simulated crashes.
     */
    void setTrace(TraceBuffer *tb);

    /** WPQ drain rate in lines/cycle (occupancy model; observers only). */
    void setWpqDrainRate(double lines_per_cycle)
    { wpqDrainPerCycle_ = lines_per_cycle; }

    /**
     * Attaches/detaches the simulation clock so the WPQ occupancy model
     * runs without a trace sink (metrics gauges). Same lifetime rule as
     * setTrace: the owning GpuSystem MUST detach (pass null) before it
     * is destroyed — the device outlives it across simulated crashes.
     */
    void setClock(const Cycle *clock);

    /**
     * Instantaneous WPQ depth (lines) at `now`, non-mutating: drains
     * the leaky bucket forward from the last commit without touching
     * its state. 0 when no occupancy observer is attached.
     */
    std::uint64_t wpqDepth(Cycle now) const;

  private:
    FunctionalMemory durable_;
    std::map<std::string, Region> names_;
    std::set<Addr> poisoned_;
    Addr bump_ = addr_map::kNvmBase;
    std::uint64_t commit_count_ = 0;

    // Leaky-bucket model of the ADR write-pending queue, sampled on each
    // commit: commits add a line, the media drains wpqDrainPerCycle_.
    // Maintained whenever any observer (trace buffer or metrics clock)
    // is attached; the counter track is emitted only when tracing.
    TraceBuffer *tb_ = nullptr;
    const Cycle *clock_ = nullptr;
    double wpqDrainPerCycle_ = 0.25;
    double wpqLines_ = 0.0;
    Cycle wpqLast_ = 0;
};

} // namespace sbrp

#endif // SBRP_MEM_NVM_DEVICE_HH
