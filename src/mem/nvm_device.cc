#include "mem/nvm_device.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"

namespace sbrp
{

namespace
{
constexpr Addr kAlign = 256;
} // namespace

Addr
NvmDevice::allocate(const std::string &name, std::uint64_t bytes)
{
    if (bytes == 0)
        sbrp_fatal("zero-byte NVM allocation '%s'", name);
    if (names_.count(name))
        sbrp_fatal("NVM region '%s' already exists; open() it instead",
                   name);

    Addr base = bump_;
    bump_ += (bytes + kAlign - 1) / kAlign * kAlign;
    if (bump_ - addr_map::kNvmBase > addr_map::kWindowSize)
        sbrp_fatal("NVM window exhausted allocating '%s'", name);

    names_[name] = Region{base, bytes};
    return base;
}

NvmDevice::Region
NvmDevice::open(const std::string &name) const
{
    auto it = names_.find(name);
    if (it == names_.end())
        sbrp_fatal("NVM region '%s' does not exist", name);
    return it->second;
}

bool
NvmDevice::exists(const std::string &name) const
{
    return names_.count(name) != 0;
}

void
NvmDevice::remove(const std::string &name)
{
    if (!names_.erase(name))
        sbrp_fatal("cannot remove unknown NVM region '%s'", name);
}

void
NvmDevice::restoreImageFrom(const NvmDevice &golden)
{
    sbrp_assert(this != &golden, "restore from self");
    durable_ = golden.durable_;   // Deep page copy.
    names_ = golden.names_;
    poisoned_ = golden.poisoned_;
    bump_ = golden.bump_;
    commit_count_ = 0;
}

void
NvmDevice::setTrace(TraceBuffer *tb)
{
    tb_ = tb;
    wpqLines_ = 0.0;
    wpqLast_ = 0;
}

void
NvmDevice::setClock(const Cycle *clock)
{
    clock_ = clock;
    wpqLines_ = 0.0;
    wpqLast_ = 0;
}

std::uint64_t
NvmDevice::wpqDepth(Cycle now) const
{
    double lines = wpqLines_;
    if (now > wpqLast_)
        lines = std::max(
            0.0, lines - double(now - wpqLast_) * wpqDrainPerCycle_);
    return static_cast<std::uint64_t>(lines + 0.5);
}

void
NvmDevice::commitLine(Addr line_addr, const std::uint8_t *data,
                      std::uint32_t len)
{
    sbrp_assert(addr_map::isNvm(line_addr),
                "commit of non-NVM line %s", line_addr);
    durable_.writeBlock(line_addr, data, len);
    ++commit_count_;

    if (tb_ || clock_) {
        Cycle now = tb_ ? tb_->now() : *clock_;
        if (now > wpqLast_) {
            wpqLines_ = std::max(
                0.0, wpqLines_ - double(now - wpqLast_) *
                                     wpqDrainPerCycle_);
        }
        wpqLast_ = now;
        wpqLines_ += 1.0;
        if (tb_)
            tb_->counter("wpq_lines",
                         static_cast<std::uint64_t>(wpqLines_ + 0.5));
    }
}

} // namespace sbrp
