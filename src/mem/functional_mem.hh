/**
 * @file
 * Sparse byte-addressable functional memory.
 *
 * The simulator follows the standard functional-first / timing-directed
 * split: values live here, while caches and buffers only model timing and
 * ordering. Both the GPU's volatile view and the NVM's durable image are
 * instances of this class.
 */

#ifndef SBRP_MEM_FUNCTIONAL_MEM_HH
#define SBRP_MEM_FUNCTIONAL_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

/**
 * Flat sparse memory backed by demand-allocated 4 KiB pages.
 *
 * An optional read-only backing memory supplies contents for pages never
 * written here (copy-on-write). The GPU's volatile view of NVM is backed
 * by the NvmDevice's durable image: at power-up the GPU reads the durable
 * contents, while its writes stay volatile until explicitly committed.
 */
class FunctionalMemory
{
  public:
    static constexpr std::uint32_t kPageBytes = 4096;

    FunctionalMemory() = default;

    /**
     * Deep copies (snapshot semantics): the copy owns its own pages and
     * shares only the (read-only) backing pointer. Used to clone the
     * durable NVM image for parallel crash campaigns.
     */
    FunctionalMemory(const FunctionalMemory &other) { copyFrom(other); }

    FunctionalMemory &
    operator=(const FunctionalMemory &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    FunctionalMemory(FunctionalMemory &&) = default;
    FunctionalMemory &operator=(FunctionalMemory &&) = default;

    /** Attaches a read-through/copy-on-write backing memory. */
    void setBacking(const FunctionalMemory *backing) { backing_ = backing; }

    std::uint32_t read32(Addr a) const;
    void write32(Addr a, std::uint32_t v);

    std::uint64_t read64(Addr a) const;
    void write64(Addr a, std::uint64_t v);

    std::uint8_t read8(Addr a) const;
    void write8(Addr a, std::uint8_t v);

    /** Bulk copy out of memory (zero-filled for untouched pages). */
    void readBlock(Addr a, std::uint8_t *out, std::uint32_t len) const;

    /** Bulk copy into memory. */
    void writeBlock(Addr a, const std::uint8_t *src, std::uint32_t len);

    /** Number of demand-allocated pages (for tests / footprint checks). */
    std::size_t pageCount() const { return pages_.size(); }

    /** Drops all contents (the backing, if any, is untouched). */
    void clear() { pages_.clear(); }

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    void copyFrom(const FunctionalMemory &other);

    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    const FunctionalMemory *backing_ = nullptr;
};

} // namespace sbrp

#endif // SBRP_MEM_FUNCTIONAL_MEM_HH
