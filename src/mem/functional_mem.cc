#include "mem/functional_mem.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace sbrp
{

void
FunctionalMemory::copyFrom(const FunctionalMemory &other)
{
    pages_.clear();
    pages_.reserve(other.pages_.size());
    for (const auto &[idx, page] : other.pages_)
        pages_[idx] = std::make_unique<Page>(*page);
    backing_ = other.backing_;
}

const FunctionalMemory::Page *
FunctionalMemory::findPage(Addr a) const
{
    auto it = pages_.find(a / kPageBytes);
    if (it != pages_.end())
        return it->second.get();
    return backing_ ? backing_->findPage(a) : nullptr;
}

FunctionalMemory::Page &
FunctionalMemory::touchPage(Addr a)
{
    auto &slot = pages_[a / kPageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        if (const Page *backed = backing_ ? backing_->findPage(a)
                                          : nullptr) {
            *slot = *backed;   // Copy-on-write from the backing image.
        } else {
            slot->fill(0);
        }
    }
    return *slot;
}

std::uint8_t
FunctionalMemory::read8(Addr a) const
{
    const Page *p = findPage(a);
    return p ? (*p)[a % kPageBytes] : 0;
}

void
FunctionalMemory::write8(Addr a, std::uint8_t v)
{
    touchPage(a)[a % kPageBytes] = v;
}

std::uint32_t
FunctionalMemory::read32(Addr a) const
{
    sbrp_assert(a % 4 == 0, "unaligned 32-bit read at %s", a);
    std::uint32_t v = 0;
    readBlock(a, reinterpret_cast<std::uint8_t *>(&v), 4);
    return v;
}

void
FunctionalMemory::write32(Addr a, std::uint32_t v)
{
    sbrp_assert(a % 4 == 0, "unaligned 32-bit write at %s", a);
    writeBlock(a, reinterpret_cast<const std::uint8_t *>(&v), 4);
}

std::uint64_t
FunctionalMemory::read64(Addr a) const
{
    sbrp_assert(a % 8 == 0, "unaligned 64-bit read at %s", a);
    std::uint64_t v = 0;
    readBlock(a, reinterpret_cast<std::uint8_t *>(&v), 8);
    return v;
}

void
FunctionalMemory::write64(Addr a, std::uint64_t v)
{
    sbrp_assert(a % 8 == 0, "unaligned 64-bit write at %s", a);
    writeBlock(a, reinterpret_cast<const std::uint8_t *>(&v), 8);
}

void
FunctionalMemory::readBlock(Addr a, std::uint8_t *out,
                            std::uint32_t len) const
{
    while (len > 0) {
        Addr off = a % kPageBytes;
        std::uint32_t chunk = std::min<std::uint32_t>(len, kPageBytes - off);
        const Page *p = findPage(a);
        if (p)
            std::memcpy(out, p->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        a += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
FunctionalMemory::writeBlock(Addr a, const std::uint8_t *src,
                             std::uint32_t len)
{
    while (len > 0) {
        Addr off = a % kPageBytes;
        std::uint32_t chunk = std::min<std::uint32_t>(len, kPageBytes - off);
        std::memcpy(touchPage(a).data() + off, src, chunk);
        a += chunk;
        src += chunk;
        len -= chunk;
    }
}

} // namespace sbrp
