/**
 * @file
 * The unified virtual address space layout shared by GDDR and NVM.
 *
 * Mirrors the paper's software model (Section 3): both memories are
 * load/store accessible at byte granularity from the GPU; applications
 * choose placement. We carve the flat 64-bit space into a GDDR window and
 * an NVM window so Space can be recovered from an address.
 */

#ifndef SBRP_MEM_ADDRESS_MAP_HH
#define SBRP_MEM_ADDRESS_MAP_HH

#include "common/log.hh"
#include "common/types.hh"

namespace sbrp
{

namespace addr_map
{

/** GDDR allocations start here (page 1; address 0 stays invalid). */
constexpr Addr kGddrBase = 0x0000'0000'0000'1000ull;

/** NVM window base: everything at or above this address is persistent. */
constexpr Addr kNvmBase = 0x0000'0001'0000'0000ull;

/** Size limit of each window (plenty for scaled workloads). */
constexpr Addr kWindowSize = 0x0000'0001'0000'0000ull - 0x1000ull;

inline Space
spaceOf(Addr a)
{
    return a >= kNvmBase ? Space::Nvm : Space::Gddr;
}

inline bool
isNvm(Addr a)
{
    return spaceOf(a) == Space::Nvm;
}

/** Offset of an NVM address within the NVM window. */
inline Addr
nvmOffset(Addr a)
{
    sbrp_assert(isNvm(a), "address %s is not in the NVM window", a);
    return a - kNvmBase;
}

/** Aligns an address down to its cache-line base. */
inline Addr
lineBase(Addr a, std::uint32_t line_bytes)
{
    return a & ~static_cast<Addr>(line_bytes - 1);
}

} // namespace addr_map

} // namespace sbrp

#endif // SBRP_MEM_ADDRESS_MAP_HH
