/**
 * @file
 * Shared L2 cache (tag-only timing state).
 *
 * Persists write through the L2 (paper Section 6: no persist buffer at the
 * L2); volatile writebacks from L1s land dirty and are written to GDDR on
 * eviction.
 */

#ifndef SBRP_GPU_L2_CACHE_HH
#define SBRP_GPU_L2_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sbrp
{

class L2Cache
{
  public:
    struct Line
    {
        Addr lineAddr = 0;
        bool valid = false;
        bool dirty = false;
        Cycle lastUse = 0;
    };

    struct Eviction
    {
        bool happened = false;
        Addr lineAddr = 0;
        bool dirty = false;
    };

    L2Cache(const SystemConfig &cfg, StatGroup &stats);

    /** True if the line is present (updates LRU). */
    bool lookup(Addr line_addr, Cycle now);

    /**
     * Allocates a line (clean or dirty); reports the victim so the
     * fabric can write dirty volatile data back to GDDR.
     */
    void allocate(Addr line_addr, bool dirty, Cycle now, Eviction *ev);

    void invalidate(Addr line_addr);

    StatGroup &stats() { return stats_; }

  private:
    std::uint32_t setOf(Addr line_addr) const;

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::vector<Line> lines_;
    StatGroup &stats_;
};

} // namespace sbrp

#endif // SBRP_GPU_L2_CACHE_HH
