/**
 * @file
 * The memory fabric: interconnect + L2 + memory-controller channels +
 * (for PM-far) the PCIe link, and the persistence-domain commit point.
 *
 * Latency/bandwidth model: each channel serializes transfers at its
 * bytes-per-cycle rate (queueing emerges from the channel's next-free
 * cycle); fixed access latencies are added on top. Persist writes are
 * snapshotted from the functional volatile view at flush time; they are
 * committed to the NvmDevice exactly when the persistence domain accepts
 * them — at the ADR memory controller (WPQ) or, under eADR, at the host
 * LLC after crossing PCIe.
 */

#ifndef SBRP_GPU_MEM_CTRL_HH
#define SBRP_GPU_MEM_CTRL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/injector.hh"
#include "gpu/l2_cache.hh"
#include "mem/functional_mem.hh"
#include "mem/nvm_device.hh"
#include "sim/event_queue.hh"

namespace sbrp
{

class ExecutionTrace;
class TraceBuffer;
class PersistProvenance;

/** A bandwidth-limited resource (MC channel, PCIe direction). */
class Channel
{
  public:
    Channel() = default;
    explicit Channel(double bytes_per_cycle)
        : unitsPerCycle_(std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(
                     std::llround(bytes_per_cycle * kFixOne))))
    {}

    /** Exact transfer time: ceil(bytes / bytesPerCycle), at least 1. */
    Cycle
    cyclesFor(std::uint32_t bytes) const
    {
        std::uint64_t units = std::uint64_t{bytes} << kFixShift;
        Cycle cycles = (units + unitsPerCycle_ - 1) / unitsPerCycle_;
        return cycles == 0 ? 1 : cycles;
    }

    /**
     * Reserves the channel for a transfer starting no earlier than `now`;
     * returns the cycle the transfer completes.
     */
    Cycle
    acquire(Cycle now, std::uint32_t bytes)
    {
        Cycle start = std::max(now, nextFree_);
        nextFree_ = start + cyclesFor(bytes);
        return nextFree_;
    }

    /** Cycles until the channel could start a new transfer. */
    Cycle
    backlog(Cycle now) const
    {
        return nextFree_ > now ? nextFree_ - now : 0;
    }

    Cycle nextFree() const { return nextFree_; }
    void reset() { nextFree_ = 0; }

  private:
    // Bandwidth in 2^-20 bytes/cycle fixed point: integer ceilings are
    // exact, where the old `bytes / rate + 0.999` float path could
    // book one cycle short whenever the quotient's fraction fell in
    // (0.999, 1) or FP rounding nudged an exact quotient down.
    static constexpr std::uint32_t kFixShift = 20;
    static constexpr double kFixOne = 1ull << kFixShift;
    std::uint64_t unitsPerCycle_ = 1ull << kFixShift;
    Cycle nextFree_ = 0;
};

/**
 * Routes line-granularity requests from the SMs to L2, GDDR, NVM and
 * across PCIe, and owns the persistence-domain commit logic.
 */
class MemoryFabric
{
  public:
    MemoryFabric(const SystemConfig &cfg, EventQueue &events,
                 NvmDevice &nvm, FunctionalMemory &volatile_mem,
                 ExecutionTrace *trace);

    /**
     * Reads a line (space derived from the address); `on_complete` fires
     * when the data would arrive back at the requesting L1.
     */
    void readLine(Addr line_addr, Cycle now,
                  std::function<void()> on_complete);

    /**
     * Persist write-through of a dirty PM line: snapshots the payload
     * now, updates the L2, routes to the NVM controller, and commits to
     * the durable image at the persistence-domain accept point. `on_ack`
     * fires exactly once — at the accept point with an ok result (the
     * SM decrements its ACTR on it), possibly after fault-injected
     * link replays / WPQ nacks / media retries; or, when the retry
     * budget is exhausted or the line is sticky-poisoned, with a
     * structured PersistFault and no durable commit.
     *
     * `op_id` is the issuing model's provenance op id (0 = untracked):
     * the fabric stamps arrival / persistence-domain accept / ack
     * cycles and the durable-commit audit record onto it, and counts
     * every fault-injected delivery attempt.
     */
    void persistWrite(Addr line_addr, Cycle now, PersistCallback on_ack,
                      std::uint64_t op_id = 0);

    /**
     * Persist write with an explicit payload and store-id set; used for
     * deferred release publications whose value must become durable
     * before it becomes visible (device-scoped pRel to a PM variable).
     */
    void persistWritePayload(Addr line_addr,
                             std::vector<std::uint8_t> payload,
                             std::vector<std::uint64_t> store_ids,
                             Cycle now, PersistCallback on_ack,
                             std::uint64_t op_id = 0);

    /**
     * Word-granularity persist used for PM release-variable publishes:
     * commits exactly 4 bytes (a sector write on the wire), so
     * concurrent publishes from different SMs to flags sharing a line
     * cannot clobber one another with stale line snapshots.
     */
    void persistWriteWord(Addr addr, std::uint32_t value,
                          std::vector<std::uint64_t> store_ids,
                          Cycle now, PersistCallback on_ack,
                          std::uint64_t op_id = 0);

    /** Volatile L1 writeback: lands dirty in L2 (GDDR on L2 eviction). */
    void volatileWriteback(Addr line_addr, Cycle now);

    /**
     * GPM's system-scope fence flushes volatile lines all the way to
     * memory; `on_ack` fires when GDDR accepts the write.
     */
    void volatileFlush(Addr line_addr, Cycle now,
                       std::function<void()> on_ack);

    /** Latency charged to an L2-adjacent atomic operation. */
    Cycle atomicLatency() const { return cfg_.l2Latency; }

    /** True when no request is in flight anywhere in the fabric. */
    bool idle() const { return inflight_ == 0; }

    /**
     * True when the persistence-domain accept point sits across the
     * PCIe link (PM-far): in-flight persist acks the drain window is
     * waiting on are then pinned behind the link rather than the ADR
     * WPQ. Drives the cycle ledger's pcie_backlog / wpq_full split.
     */
    bool persistPathCrossesPcie() const { return cfg_.nvmBehindPcie(); }

    /**
     * Monotone count of completed fabric events (read returns, persist
     * hops and acks, writebacks). The launch loop's watchdog reads it
     * as a liveness heartbeat: a change since the last check means the
     * memory system is still making forward progress.
     */
    std::uint64_t completedEvents() const { return completions_; }

    /** Attach a trace buffer (MC / PCIe queue-depth counter tracks). */
    void setTrace(TraceBuffer *tb) { tb_ = tb; }

    /** Attach the persist-op provenance recorder (null = off). */
    void setProvenance(PersistProvenance *prov) { prov_ = prov; }

    StatGroup &stats() { return stats_; }
    L2Cache &l2() { return *l2_; }

    /**
     * Terminal persist faults recorded this power-on (retry budget
     * exhausted or sticky-poisoned lines). Transient faults that were
     * retried to success do not appear here — see the fault_* stats.
     */
    const std::vector<PersistFault> &persistFaults() const
    { return faults_; }

    /** The seeded fault source; null when cfg.faults is disabled. */
    FaultInjector *injector() { return injector_.get(); }

    /**
     * Summed backlog (cycles until free) across the NVM write channels
     * at `now` — the instantaneous persist-path queueing the metrics
     * time-series samples at window boundaries. Non-mutating.
     */
    Cycle
    nvmWriteBacklog(Cycle now) const
    {
        Cycle total = 0;
        for (const Channel &c : nvmWrite_)
            total += c.backlog(now);
        return total;
    }

    /** Summed backlog across both PCIe directions at `now`. */
    Cycle
    pcieBacklog(Cycle now) const
    {
        return pcieToHost_.backlog(now) + pcieFromHost_.backlog(now);
    }

  private:
    /** One persist in flight through the resilient retry path. */
    struct PersistTxn
    {
        Addr addr = 0;     ///< Commit address (word addr for words).
        Addr line = 0;     ///< Line base: channel routing + poison key.
        bool isWord = false;
        std::uint32_t wordValue = 0;
        std::vector<std::uint8_t> payload;
        std::vector<std::uint64_t> ids;
        std::uint32_t wireBytes = 0;
        std::uint32_t attempts = 0;
        Cycle firstAttempt = 0;
        std::uint64_t opId = 0;   ///< Provenance op id (0 = untracked).
        PersistCallback ack;
    };

    Channel &gddrChannel(Addr line_addr);
    Channel &nvmReadChannel(Addr line_addr);
    Channel &nvmWriteChannel(Addr line_addr);

    /** Samples channel backlogs (cycles until free) as counter tracks. */
    void traceQueues(Cycle now);

    void finish(std::function<void()> cb, Cycle when);

    // --- The resilient persist path (active when injector_ is set) ---
    void startAttempt(std::shared_ptr<PersistTxn> txn, Cycle now);
    /** Backs off and retries, or fails once the budget is spent. */
    void retryOrFail(std::shared_ptr<PersistTxn> txn, Cycle at,
                     PersistFaultKind kind);
    /** Declares the terminal fault and fires the callback (at `at`). */
    void failPersist(std::shared_ptr<PersistTxn> txn, Cycle at,
                     PersistFaultKind kind);
    /** Commits the txn's data into the durable image. */
    void commitTxn(PersistTxn &txn);
    /**
     * Provenance epilogue of a successful persist, called from the
     * commit/ack event itself: appends the audit record (so the audit
     * stream is in exact durable-image write order), closes the op at
     * the ack cycle, and links the fabric's span into the op's flow
     * chain. No-op for untracked ops.
     */
    void commitProvenance(std::uint64_t op_id, Cycle ack_at);
    void l2AllocateClean(Addr line_addr, Cycle now);
    void l2AllocateDirty(Addr line_addr, Cycle now);
    void handleL2Eviction(const L2Cache::Eviction &ev, Cycle now);

    const SystemConfig &cfg_;
    EventQueue &events_;
    NvmDevice &nvm_;
    FunctionalMemory &volatileMem_;
    ExecutionTrace *trace_;
    TraceBuffer *tb_ = nullptr;
    PersistProvenance *prov_ = nullptr;

    StatGroup stats_;
    std::unique_ptr<L2Cache> l2_;

    std::vector<Channel> gddr_;
    std::vector<Channel> nvmRead_;
    std::vector<Channel> nvmWrite_;
    Channel pcieToHost_;
    Channel pcieFromHost_;

    std::unique_ptr<FaultInjector> injector_;
    std::vector<PersistFault> faults_;
    Distribution *dPersistAttempts_ = nullptr;

    std::uint64_t inflight_ = 0;
    std::uint64_t completions_ = 0;
};

} // namespace sbrp

#endif // SBRP_GPU_MEM_CTRL_HH
