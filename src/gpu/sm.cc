#include "gpu/sm.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "gpu/mem_ctrl.hh"
#include "mem/address_map.hh"
#include "mem/functional_mem.hh"

namespace sbrp
{

Sm::Sm(SmId id, const SystemConfig &cfg, MemoryFabric &fabric,
       FunctionalMemory &mem, Scheduler &sched, ExecutionTrace *trace,
       TraceBuffer *tb, SmObserver *observer, PersistProvenance *prov)
    : id_(id),
      cfg_(cfg),
      fabric_(fabric),
      mem_(mem),
      sched_(sched),
      events_(sched.events()),
      schedId_(sched.registerComponent()),
      observer_(observer),
      trace_(trace),
      tb_(tb),
      prov_(prov),
      stats_("sm" + std::to_string(id)),
      l1Stats_("sm" + std::to_string(id) + ".l1"),
      l1_(std::make_unique<L1Cache>(cfg, l1Stats_)),
      slots_(cfg.maxWarpsPerSm),
      ledger_(cfg.maxWarpsPerSm)
{
    model_ = makePersistencyModel(cfg, *this, stats_);
    if (tb_) {
        model_->setTraceBuffer(tb_);
        l1_->setTrace(tb_);
        warpSpan_.assign(cfg.maxWarpsPerSm, nullptr);
        warpSpanSince_.assign(cfg.maxWarpsPerSm, 0);
        std::string comp = "sm" + std::to_string(id);
        for (std::uint32_t s = 0; s < cfg.maxWarpsPerSm; ++s) {
            tb_->sink().setTrackName(comp, s,
                                     "warp" + std::to_string(s));
        }
        tb_->sink().setTrackName(comp, 32, "pb");
        tb_->sink().setTrackName(comp, 33, "l1");
    }
    stInstructions_ = &stats_.stat("instructions");
    stReadHits_ = &l1Stats_.stat("read_hits");
    stReadMisses_ = &l1Stats_.stat("read_misses");
    stReadHitNvm_ = &l1Stats_.stat("read_hit_nvm");
    stReadMissNvm_ = &l1Stats_.stat("read_miss_nvm");
    stPersistStores_ = &l1Stats_.stat("persist_stores");
    stVolatileStores_ = &l1Stats_.stat("volatile_stores");
    stSpinPolls_ = &stats_.stat("spin_polls");
    stModelRetries_ = &stats_.stat("model_retries");
}

Sm::~Sm() = default;

void
Sm::resumeWarp(WarpSlot slot)
{
    Warp *w = slots_[slot].get();
    sbrp_assert(w, "resume of empty slot %s", slot);
    // Settle before the state change; from an event callback the
    // settle horizon is now - 1, mid-tick it is a no-op.
    settleTo(sched_.now() - 1);
    if (w->state() == WarpState::WaitModel)
        w->setState(WarpState::Ready);
    sched_.wakeNow(schedId_);
}

void
Sm::noteAsyncActivity()
{
    settleTo(sched_.now() - 1);
    sched_.wakeNow(schedId_);
}

std::uint32_t
Sm::freeSlots() const
{
    return cfg_.maxWarpsPerSm - residentWarps_;
}

bool
Sm::canAccept(std::uint32_t warps_needed) const
{
    return freeSlots() >= warps_needed;
}

void
Sm::launchBlock(const KernelProgram &kernel, BlockId block)
{
    std::uint32_t warps = kernel.warpsPerBlock();
    sbrp_assert(canAccept(warps), "SM %s cannot accept block %s",
                id_, block);

    // The new warps exist from this cycle on; cycles before it settle
    // against the pre-launch population.
    settleTo(sched_.now() - 1);
    const bool was_idle = residentWarps_ == 0;

    BlockCtx ctx;
    ctx.warps = warps;
    std::uint32_t placed = 0;
    for (WarpSlot s = 0; s < cfg_.maxWarpsPerSm && placed < warps; ++s) {
        if (slots_[s])
            continue;
        ThreadId first = kernel.threadOf(block, placed, 0);
        slots_[s] = std::make_unique<Warp>(&kernel.warp(block, placed),
                                           block, placed, s, id_, first);
        slots_[s]->attachStateMasks(stateMask_.data());
        ledger_.beginWarp(s, sched_.componentNow());
        slots_[s]->attachStateObserver(this);
        ctx.slots.push_back(s);
        ++placed;
        ++residentWarps_;
    }
    blocks_[block] = std::move(ctx);
    stats_.stat("blocks_launched").inc();
    if (was_idle && observer_)
        observer_->smIdleChanged(id_, false);
    sched_.wakeNow(schedId_);
}

bool
Sm::idle() const
{
    return residentWarps_ == 0;
}

void
Sm::beginDrain()
{
    // Account tick-equivalent drain attempts through the current cycle
    // first — the cycle-stepped engine ticked (and charged a blocked
    // drain attempt) this cycle before the launch loop called us.
    settleTo(sched_.now());
    drainAccounting_ = true;
    // No further issues happen on this SM, so the model checker's
    // flush deferral must stop or the drain would hang.
    if (ScheduleController *ctl = sched_.controller())
        ctl->noteKernelDrain(id_);
    model_->drainAll();
    updateWake();
}

bool
Sm::drained() const
{
    return model_->drained();
}

void
Sm::tick(Cycle now)
{
    // Account the skipped span first; this tick handles cycle `now`
    // itself (its census sample below, its drain attempt in
    // model_->tick) exactly as the cycle-stepped engine did.
    settleTo(now - 1);
    now_ = now;
    // Cycle `now` belongs to the drain state the tick found (matching
    // the bulk settle semantics); settledThrough_ = now below stops
    // settleTo from counting it again.
    if (drainAccounting_)
        ledger_.accrueDrain(drainCategory(), 1);
    model_->tick(now);

    // Scheduling census (sampled): how warps spend their cycles.
    if ((now & 0xf) == 0 && residentWarps_ > 0)
        censusSample(1);

    // Poll spinning warps whose recheck interval elapsed.
    for (std::uint32_t m = stateMask(WarpState::WaitSpin); m != 0;
            m &= m - 1) {
        Warp *w = slots_[std::countr_zero(m)].get();
        if (w && w->state() == WarpState::WaitSpin &&
                now >= w->nextPoll()) {
            pollSpin(*w);
        }
    }

    if (ScheduleController *ctl = sched_.controller()) {
        // Model-checking mode: the controller picks which single warp
        // issues this cycle, serializing interleavings into a total
        // decision order.
        controlledIssue(*ctl, now);
    } else {
        // Issue up to issueWidth instructions, loose round-robin over
        // slots.
        std::uint32_t n = cfg_.maxWarpsPerSm;
        std::uint32_t issued = 0;
        for (std::uint32_t i = 1; i <= n && issued < cfg_.issueWidth;
                ++i) {
            std::uint32_t s = (lastIssued_ + i) % n;
            // Only these three states can satisfy issuable();
            // recomputed each visit because an earlier issue this
            // cycle may have changed peers (barrier release, block
            // teardown).
            std::uint32_t cand = stateMask(WarpState::Ready) |
                                 stateMask(WarpState::Busy) |
                                 stateMask(WarpState::ModelRetry);
            if (!(cand & (1u << s)))
                continue;
            Warp *w = slots_[s].get();
            if (!w || !w->issuable(now))
                continue;
            lastIssued_ = s;
            ++issued;
            executeWarp(*w);
        }
    }

    if (tb_)
        observeWarpStates();

    settledThrough_ = now;
    updateWake();
}

void
Sm::controlledIssue(ScheduleController &ctl, Cycle now)
{
    // Gather every issuable warp, in the same rotation order the
    // round-robin scan would have visited them, so candidate 0 is the
    // uncontrolled scheduler's preference. Footprints (op, scope,
    // line) feed the explorer's conflict analysis.
    std::uint32_t n = cfg_.maxWarpsPerSm;
    std::uint32_t cand = stateMask(WarpState::Ready) |
                         stateMask(WarpState::Busy) |
                         stateMask(WarpState::ModelRetry);
    std::vector<IssueCandidate> cands;
    std::vector<Warp *> warps;
    for (std::uint32_t i = 1; i <= n; ++i) {
        std::uint32_t s = (lastIssued_ + i) % n;
        if (!(cand & (1u << s)))
            continue;
        Warp *w = slots_[s].get();
        if (!w || !w->issuable(now))
            continue;
        const WarpInstr &in = w->instr();
        IssueCandidate c;
        c.slot = s;
        c.pc = w->pc();
        c.op = static_cast<std::uint8_t>(in.op);
        c.scope = static_cast<std::uint8_t>(in.scope);
        // Visible ops are the ones whose relative order can change
        // persistency outcomes; invisible ops (ALU, loads, spins)
        // issue under a fixed deterministic policy.
        c.visible = in.op == Op::Store || in.op == Op::AtomicAdd ||
                    in.op == Op::Fence || in.op == Op::OFence ||
                    in.op == Op::DFence || in.op == Op::PRel;
        c.write = in.op == Op::Store || in.op == Op::AtomicAdd ||
                  in.op == Op::PRel;
        std::uint32_t eff = w->effActive(in);
        if (eff != 0 && !in.laneAddrs.empty()) {
            std::uint32_t l =
                static_cast<std::uint32_t>(std::countr_zero(eff));
            c.line = w->effAddr(in, l) &
                     ~static_cast<Addr>(cfg_.lineBytes - 1);
        }
        cands.push_back(c);
        warps.push_back(w);
    }
    if (cands.empty())
        return;

    std::size_t pick = ctl.pickIssue(id_, cands);
    if (pick >= cands.size())
        pick = 0;
    lastIssued_ = cands[pick].slot;
    executeWarp(*warps[pick]);
}

void
Sm::settleTo(Cycle through)
{
    if (through <= settledThrough_)
        return;
    // Multiples of 16 in (settledThrough_, through]: every cycle the
    // old engine would have sampled the (unchanged-while-asleep) census.
    std::uint64_t samples = (through >> 4) - (settledThrough_ >> 4);
    if (samples > 0 && residentWarps_ > 0)
        censusSample(samples);
    // One tick-equivalent blocked-drain attempt per skipped cycle.
    model_->accrueIdleCycles(through - settledThrough_);
    // Drain-window attribution over the skipped span: the category is
    // constant while the SM sleeps (any ack settles before mutating),
    // so the whole span belongs to the current drain state.
    if (drainAccounting_)
        ledger_.accrueDrain(drainCategory(), through - settledThrough_);
    settledThrough_ = through;
}

void
Sm::warpStateChanged(WarpSlot slot, WarpState from, WarpState to)
{
    (void)from;
    const Cycle now = sched_.componentNow();
    if (to == WarpState::Finished)
        ledger_.endWarp(slot, now);
    else
        ledger_.warpTransition(slot, categoryFor(to, slot), now);
}

CycleCat
Sm::categoryFor(WarpState state, WarpSlot slot) const
{
    switch (state) {
      case WarpState::Ready: return CycleCat::Ready;
      case WarpState::Busy: return CycleCat::Compute;
      case WarpState::WaitMem: return CycleCat::MemLatency;
      case WarpState::WaitBarrier: return CycleCat::Barrier;
      case WarpState::WaitSpin: return CycleCat::SpinAcquire;
      case WarpState::WaitModel:
      case WarpState::ModelRetry: {
        // The model recorded why before parking the warp (the same
        // static strings that name the trace's stall spans).
        const char *r = model_->stallReason(slot);
        if (std::strncmp(r, "stall:odm", 9) == 0)
            return CycleCat::OdmStall;
        if (std::strncmp(r, "stall:edm", 9) == 0)
            return CycleCat::EdmStall;
        return CycleCat::FenceDrain;
      }
      case WarpState::Finished:
        break;
    }
    sbrp_panic("no ledger category for warp state %s", toString(state));
}

CycleCat
Sm::drainCategory()
{
    if (model_->drained())
        return CycleCat::SchedulerIdle;
    switch (model_->drainState()) {
      case DrainState::Workable: return CycleCat::PbDrain;
      case DrainState::BlockedFsm: return CycleCat::FsmFlushWait;
      case DrainState::BlockedActr: return CycleCat::ActrWait;
      case DrainState::Idle: break;
    }
    // Nothing left to flush, but acks are still in flight: the wait is
    // pinned on the persistence domain's accept structure.
    return fabric_.persistPathCrossesPcie() ? CycleCat::PcieBacklog
                                            : CycleCat::WpqFull;
}

void
Sm::finalizeLaunch(Cycle now)
{
    settleTo(now);
    ledger_.settleWarps(now);
    drainAccounting_ = false;
    ledger_.publish(stats_);
}

void
Sm::censusSample(std::uint64_t samples)
{
    static constexpr struct
    {
        WarpState state;
        const char *name;
    } kCensus[] = {
        {WarpState::Ready, "cy_ready"},
        {WarpState::Busy, "cy_busy"},
        {WarpState::WaitMem, "cy_mem"},
        {WarpState::WaitBarrier, "cy_barrier"},
        {WarpState::WaitSpin, "cy_spin"},
        {WarpState::WaitModel, "cy_model"},
        {WarpState::ModelRetry, "cy_retry"},
        // Finished intentionally absent: never censused.
    };
    for (const auto &c : kCensus) {
        std::uint32_t warps = std::popcount(stateMask(c.state));
        if (warps == 0)
            continue;
        auto idx = static_cast<std::size_t>(c.state);
        if (!censusStat_[idx])
            censusStat_[idx] = &stats_.stat(c.name);
        censusStat_[idx]->inc(16ull * warps * samples);
    }
}

void
Sm::updateWake()
{
    const Cycle base = sched_.now();
    Cycle next = kNoEvent;
    if (stateMask(WarpState::Ready) != 0 ||
            model_->drainState() == DrainState::Workable) {
        next = base + 1;
    } else {
        std::uint32_t timed = stateMask(WarpState::Busy) |
                              stateMask(WarpState::ModelRetry);
        for (std::uint32_t m = timed; m != 0; m &= m - 1) {
            Warp *w = slots_[std::countr_zero(m)].get();
            next = std::min(next, std::max(w->busyUntil(), base + 1));
        }
        for (std::uint32_t m = stateMask(WarpState::WaitSpin); m != 0;
                m &= m - 1) {
            Warp *w = slots_[std::countr_zero(m)].get();
            next = std::min(next, std::max(w->nextPoll(), base + 1));
        }
    }
    sched_.wakeAt(schedId_, next);
}

const char *
Sm::warpSpanName(WarpState state, WarpSlot slot) const
{
    switch (state) {
      case WarpState::Busy: return "compute";
      case WarpState::WaitMem: return "stall:mem";
      case WarpState::WaitBarrier: return "stall:barrier";
      case WarpState::WaitSpin: return "stall:spin_acquire";
      case WarpState::WaitModel:
      case WarpState::ModelRetry:
        return model_->stallReason(slot);
      case WarpState::Ready:
      case WarpState::Finished:
        return nullptr;
    }
    return nullptr;
}

void
Sm::observeWarpStates()
{
    // Emit a duration span when a warp leaves the state it was in; spans
    // on one slot track never overlap, which keeps the Chrome viewer
    // rendering them as a clean per-warp timeline.
    for (std::uint32_t s = 0; s < warpSpan_.size(); ++s) {
        Warp *w = slots_[s].get();
        const char *name =
            w ? warpSpanName(w->state(), static_cast<WarpSlot>(s))
              : nullptr;
        if (name == warpSpan_[s])
            continue;
        if (warpSpan_[s] && now_ > warpSpanSince_[s])
            tb_->spanAt(warpSpan_[s], warpSpanSince_[s], now_, s);
        warpSpan_[s] = name;
        warpSpanSince_[s] = now_;
    }
}

void
Sm::finishWarp(Warp &warp)
{
    ++progressEvents_;
    warp.setState(WarpState::Finished);
    // Resetting the block's slots below destroys `warp` itself — read
    // its block id before it is freed.
    const BlockId block = warp.block();
    BlockCtx &ctx = blocks_.at(block);
    ++ctx.finished;

    if (ctx.finished == ctx.warps) {
        for (WarpSlot s : ctx.slots) {
            slots_[s].reset();
            --residentWarps_;
        }
        blocks_.erase(block);
        stats_.stat("blocks_finished").inc();
        if (observer_) {
            observer_->smSlotsFreed(id_);
            if (residentWarps_ == 0)
                observer_->smIdleChanged(id_, true);
        }
        return;
    }

    // A finished warp no longer participates in block barriers; release
    // peers if this was the last arrival they were waiting on.
    if (ctx.atBarrier > 0 && ctx.atBarrier == ctx.warps - ctx.finished) {
        ctx.atBarrier = 0;
        for (WarpSlot s : ctx.slots) {
            Warp *w = slots_[s].get();
            if (w && w->state() == WarpState::WaitBarrier)
                w->setState(WarpState::Ready);
        }
    }
}

const std::vector<Addr> &
Sm::gatherLines(const Warp &warp, const WarpInstr &in)
{
    std::uint32_t eff = warp.effActive(in);
    lineScratch_.clear();
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (!(eff & (1u << l)))
            continue;
        Addr line = addr_map::lineBase(warp.effAddr(in, l),
                                       cfg_.lineBytes);
        if (std::find(lineScratch_.begin(), lineScratch_.end(), line) ==
                lineScratch_.end()) {
            lineScratch_.push_back(line);
        }
    }
    return lineScratch_;
}

bool
Sm::validateVictims(Warp &warp, const std::vector<Addr> &lines)
{
    for (Addr line : lines) {
        if (l1_->probe(line))
            continue;
        L1Cache::Line *victim = l1_->victimFor(line);
        if (victim && victim->dirty && victim->isPm &&
                !model_->mayEvictPm(warp, *victim)) {
            stats_.stat("evict_stalls").inc();
            return false;
        }
    }
    return true;
}

L1Cache::Line *
Sm::performAllocate(Warp &warp, Addr line_addr)
{
    if (L1Cache::Line *hit = l1_->lookup(line_addr, now_))
        return hit;

    L1Cache::Line *victim = l1_->victimFor(line_addr);
    if (victim && victim->dirty) {
        if (victim->isPm) {
            // Pre-validated (or an intra-instruction set conflict the
            // validate pass could not see; flush unconditionally).
            if (!model_->mayEvictPm(warp, *victim))
                sbrp_warn("forced PM eviction past a PMO ordering point");
            model_->evictPmNow(*victim);
        } else {
            fabric_.volatileWriteback(victim->lineAddr, now_);
        }
    }

    L1Cache::Eviction ev;
    return l1_->allocate(line_addr, now_, &ev);
}

void
Sm::executeWarp(Warp &warp)
{
    if (warp.atEnd() || warp.live() == 0) {
        finishWarp(warp);
        return;
    }

    const WarpInstr &in = warp.instr();
    stInstructions_->inc();

    // Instructions whose selected lanes have all returned are skipped —
    // except barriers, which are warp-granular arrival points.
    if (warp.effActive(in) == 0 && in.op != Op::Barrier &&
            in.op != Op::Halt && in.op != Op::Nop) {
        warp.advance();
        ++progressEvents_;
        warp.setState(WarpState::Ready);
        if (warp.atEnd())
            finishWarp(warp);
        return;
    }

    bool advance = true;
    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Mov:
      case Op::Add:
      case Op::LaneSum:
      case Op::LaneMax:
      case Op::Compute:
        advance = execAlu(warp, in);
        break;
      case Op::Load:
        advance = execLoad(warp, in, nullptr);
        break;
      case Op::ExitIf:
        advance = execExitIf(warp, in);
        break;
      case Op::Store:
        advance = execStore(warp, in);
        break;
      case Op::AtomicAdd:
        advance = execAtomic(warp, in);
        break;
      case Op::Barrier:
        advance = execBarrier(warp);
        break;
      case Op::Fence:
      case Op::OFence:
      case Op::DFence:
        advance = execFenceLike(warp, in);
        break;
      case Op::PRel:
        advance = execRelease(warp, in);
        break;
      case Op::PAcq:
      case Op::SpinLoad:
        beginSpin(warp);
        return;   // PC advances at spin success.
      case Op::Halt:
        finishWarp(warp);
        return;
    }

    if (advance) {
        warp.advance();
        ++progressEvents_;
        if (warp.state() == WarpState::ModelRetry)
            warp.setState(WarpState::Ready);
        if (warp.state() == WarpState::Ready &&
                (warp.atEnd() || warp.live() == 0)) {
            finishWarp(warp);
        }
    } else {
        // Re-issue after a short backoff: model stalls resolve on the
        // order of a persist acknowledgement, so polling every cycle
        // only burns simulation time.
        warp.setState(WarpState::ModelRetry);
        warp.setBusyUntil(now_ + 8);
        stModelRetries_->inc();
    }
}

bool
Sm::execAlu(Warp &warp, const WarpInstr &in)
{
    std::uint32_t eff = warp.effActive(in);
    if (in.op == Op::LaneSum || in.op == Op::LaneMax) {
        std::uint32_t acc = 0;
        for (std::uint32_t l = 0; l < 32; ++l) {
            if (!(eff & (1u << l)))
                continue;
            std::uint32_t v = warp.reg(l, in.dst);
            acc = in.op == Op::LaneSum ? acc + v : std::max(acc, v);
        }
        for (std::uint32_t l = 0; l < 32; ++l) {
            if (eff & (1u << l))
                warp.setReg(l, in.dst, acc);
        }
    }
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (!(eff & (1u << l)))
            continue;
        if (in.op == Op::Mov) {
            std::uint32_t v = in.laneImms.empty() ? in.imm
                                                  : in.laneImms[l];
            warp.setReg(l, in.dst, v);
        } else if (in.op == Op::Add) {
            warp.setReg(l, in.dst,
                        warp.reg(l, in.dst) + warp.operand(in, l));
        }
    }
    if (in.op == Op::Compute && in.computeCycles > 1) {
        warp.setBusyUntil(now_ + in.computeCycles);
        warp.setState(WarpState::Busy);
    } else {
        warp.setState(WarpState::Ready);
    }
    return true;
}

bool
Sm::execLoad(Warp &warp, const WarpInstr &in, const std::uint32_t *no_reg)
{
    // Copy: performAllocate below may recurse into gatherLines users.
    std::vector<Addr> lines = gatherLines(warp, in);
    if (!validateVictims(warp, lines))
        return false;

    // Functional: registers get their values at issue.
    if (!no_reg) {
        std::uint32_t eff = warp.effActive(in);
        for (std::uint32_t l = 0; l < 32; ++l) {
            if (eff & (1u << l))
                warp.setReg(l, in.dst, mem_.read32(warp.effAddr(in, l)));
        }
    }

    bool anyHit = false;
    for (Addr line : lines) {
        bool nvm = addr_map::isNvm(line);
        if (l1_->lookup(line, now_)) {
            stReadHits_->inc();
            if (nvm)
                stReadHitNvm_->inc();
            anyHit = true;
            continue;
        }
        stReadMisses_->inc();
        if (nvm)
            stReadMissNvm_->inc();

        warp.addOutstanding();
        auto it = mshr_.find(line);
        if (it != mshr_.end()) {
            it->second.push_back(&warp);
            continue;
        }
        performAllocate(warp, line);
        mshr_[line].push_back(&warp);
        fabric_.readLine(line, now_, [this, line]() {
            noteAsyncActivity();
            auto node = mshr_.extract(line);
            sbrp_assert(!node.empty(), "spurious read response for %s",
                        line);
            for (Warp *w : node.mapped()) {
                if (w->completeOne() &&
                        w->state() == WarpState::WaitMem) {
                    w->setState(WarpState::Ready);
                }
            }
        });
    }

    if (anyHit) {
        warp.addOutstanding();
        Warp *wp = &warp;
        events_.schedule(now_ + cfg_.l1HitLatency, [this, wp]() {
            noteAsyncActivity();
            if (wp->completeOne() && wp->state() == WarpState::WaitMem)
                wp->setState(WarpState::Ready);
        });
    }

    if (warp.outstanding() > 0)
        warp.setState(WarpState::WaitMem);
    else
        warp.setState(WarpState::Ready);
    return true;
}

bool
Sm::execExitIf(Warp &warp, const WarpInstr &in)
{
    // Evaluate the condition functionally, then bill load timing for the
    // check (it reads memory exactly like the `if (pArr[tid] != EMPTY)
    // return;` prologue in Figure 3).
    std::uint32_t eff = warp.effActive(in);
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (!(eff & (1u << l)))
            continue;
        bool match = mem_.read32(warp.effAddr(in, l)) == in.imm;
        if (match != in.negate)
            warp.deactivate(l);
    }
    static const std::uint32_t kNoReg = 0;
    return execLoad(warp, in, &kNoReg);
}

bool
Sm::execStore(Warp &warp, const WarpInstr &in)
{
    const std::vector<Addr> &lines = gatherLines(warp, in);
    std::uint32_t eff = warp.effActive(in);
    std::uint32_t first = std::countr_zero(eff);
    bool nvm = addr_map::isNvm(warp.effAddr(in, first));

    if (nvm) {
        // The model owns the whole persist-store: L1/PB state plus the
        // functional writes and trace records, per line.
        HookResult r = model_->persistStore(warp, in, lines);
        if (r == HookResult::StallRetry)
            return false;
        stPersistStores_->inc();
        warp.setState(WarpState::Ready);
        return true;
    }

    if (!validateVictims(warp, lines))
        return false;
    for (Addr line : lines) {
        L1Cache::Line *l = performAllocate(warp, line);
        l->dirty = true;
        l->isPm = false;
    }
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (eff & (1u << l))
            mem_.write32(warp.effAddr(in, l), warp.operand(in, l));
    }
    stVolatileStores_->inc();
    warp.setState(WarpState::Ready);
    return true;
}

bool
Sm::execAtomic(Warp &warp, const WarpInstr &in)
{
    // Atomics execute at the L2; lanes serialize functionally in lane
    // order (each sees the previous lane's update).
    std::uint32_t eff = warp.effActive(in);
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (!(eff & (1u << l)))
            continue;
        Addr a = warp.effAddr(in, l);
        std::uint32_t old = mem_.read32(a);
        warp.setReg(l, in.dst, old);
        mem_.write32(a, old + warp.operand(in, l));
    }
    stats_.stat("atomics").inc();
    warp.addOutstanding();
    Warp *wp = &warp;
    events_.schedule(now_ + fabric_.atomicLatency(), [this, wp]() {
        noteAsyncActivity();
        if (wp->completeOne() && wp->state() == WarpState::WaitMem)
            wp->setState(WarpState::Ready);
    });
    warp.setState(WarpState::WaitMem);
    return true;
}

bool
Sm::execBarrier(Warp &warp)
{
    BlockCtx &ctx = blocks_.at(warp.block());
    ++ctx.atBarrier;
    if (ctx.atBarrier == ctx.warps - ctx.finished) {
        ctx.atBarrier = 0;
        for (WarpSlot s : ctx.slots) {
            Warp *w = slots_[s].get();
            if (w && w->state() == WarpState::WaitBarrier)
                w->setState(WarpState::Ready);
        }
        warp.setState(WarpState::Ready);
    } else {
        warp.setState(WarpState::WaitBarrier);
    }
    return true;
}

bool
Sm::execFenceLike(Warp &warp, const WarpInstr &in)
{
    std::uint32_t eff = warp.effActive(in);
    if (trace_) {
        TraceOp::Kind kind = in.op == Op::OFence ? TraceOp::Kind::OFence
                           : in.op == Op::DFence ? TraceOp::Kind::DFence
                                                 : TraceOp::Kind::Fence;
        for (std::uint32_t l = 0; l < 32; ++l) {
            if (eff & (1u << l)) {
                trace_->recordFence(kind, warp.thread(l), warp.block(),
                                    in.scope);
            }
        }
    }

    HookResult r;
    if (in.op == Op::OFence)
        r = model_->oFence(warp);
    else if (in.op == Op::DFence)
        r = model_->dFence(warp);
    else
        r = model_->fence(warp, in.scope);

    if (tb_) {
        // Ordering-point boundary markers for the event trace; the
        // crash-point oracle enumerates crash cycles adjacent to these.
        tb_->instant(in.op == Op::OFence ? "op:ofence"
                     : in.op == Op::DFence ? "op:dfence"
                                           : "op:fence",
                     warp.slot());
    }

    sbrp_assert(r != HookResult::StallRetry,
                "fence-like ops never retry");
    warp.setState(r == HookResult::StallComplete ? WarpState::WaitModel
                                                 : WarpState::Ready);
    stats_.stat("fence_ops").inc();
    return true;
}

bool
Sm::execRelease(Warp &warp, const WarpInstr &in)
{
    std::uint32_t eff = warp.effActive(in);
    bool block_scope = (in.scope == Scope::Block) &&
                       cfg_.model == ModelKind::Sbrp;

    std::vector<ReleaseFlag> flags;
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (!(eff & (1u << l)))
            continue;
        ReleaseFlag f;
        f.addr = warp.effAddr(in, l);
        f.value = warp.operand(in, l);
        f.tid = warp.thread(l);
        f.block = warp.block();
        if (trace_ && !block_scope) {
            // Device scope defers publication into the model, so the
            // trace ids travel with the flags. A release to a PM
            // variable is also a persist of that variable (Figure 3's
            // pRel(&pArr[tid], sum)); record it in program order before
            // the release itself.
            if (addr_map::isNvm(f.addr)) {
                f.persistId = trace_->recordPersist(warp.thread(l),
                                                    warp.block(), f.addr);
            }
            f.relId = trace_->recordRel(warp.thread(l), warp.block(),
                                        f.addr, in.scope);
        }
        flags.push_back(f);
    }

    HookResult r = model_->pRel(warp, std::move(flags), in.scope);
    if (r == HookResult::StallRetry) {
        sbrp_assert(block_scope, "only block-scoped pRel may retry");
        return false;
    }

    // Block-scoped releases publish and trace inside the model (the
    // writes must land per line, interleaved with the allocations).
    warp.setState(r == HookResult::StallComplete ? WarpState::WaitModel
                                                 : WarpState::Ready);
    if (tb_)
        tb_->instant("op:prel", warp.slot());
    stats_.stat("release_ops").inc();
    return true;
}

void
Sm::beginSpin(Warp &warp)
{
    warp.setState(WarpState::WaitSpin);
    warp.setNextPoll(now_);
    pollSpin(warp);
}

void
Sm::pollSpin(Warp &warp)
{
    const WarpInstr &in = warp.instr();
    std::uint32_t eff = warp.effActive(in);
    bool satisfied = true;
    for (std::uint32_t l = 0; l < 32 && satisfied; ++l) {
        if (!(eff & (1u << l)))
            continue;
        bool match = mem_.read32(warp.effAddr(in, l)) == in.imm;
        if ((match != in.negate) == false)
            satisfied = false;
    }

    if (!satisfied) {
        Cycle interval = (in.op == Op::PAcq && in.scope == Scope::Block)
                             ? cfg_.l1HitLatency
                             : cfg_.l2Latency;
        warp.setNextPoll(now_ + interval);
        stSpinPolls_->inc();
        return;
    }

    if (in.op == Op::PAcq) {
        if (trace_) {
            for (std::uint32_t l = 0; l < 32; ++l) {
                if (eff & (1u << l)) {
                    trace_->recordAcq(warp.thread(l), warp.block(),
                                      warp.effAddr(in, l), in.scope);
                }
            }
        }
        model_->pAcqSuccess(warp, in);
        if (tb_)
            tb_->instant("op:pacq", warp.slot());
        stats_.stat("acquire_ops").inc();
    }

    warp.advance();
    ++progressEvents_;
    warp.setState(WarpState::Ready);
    if (warp.atEnd())
        finishWarp(warp);
}

} // namespace sbrp
