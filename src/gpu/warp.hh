/**
 * @file
 * Runtime state of a resident warp: program counter, per-lane registers,
 * scheduling state and stall bookkeeping.
 */

#ifndef SBRP_GPU_WARP_HH
#define SBRP_GPU_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/isa.hh"
#include "gpu/kernel.hh"

namespace sbrp
{

/** Why a warp is not ready to issue. */
enum class WarpState : std::uint8_t
{
    Ready,        ///< Can issue its next instruction.
    Busy,         ///< Executing a multi-cycle Compute op.
    WaitMem,      ///< Outstanding load/atomic responses pending.
    WaitBarrier,  ///< Parked at a block-wide barrier.
    WaitSpin,     ///< Spinning on a PAcq/SpinLoad flag.
    WaitModel,    ///< Parked by the persistency model until resumeWarp().
    ModelRetry,   ///< Stalled by the model; re-issues the instruction.
    Finished,     ///< Ran past the end of its program.
};

/** Static name of a warp state (logging, traces). */
const char *toString(WarpState s);

/** Number of WarpState values (size of an SM's per-state slot masks). */
inline constexpr std::size_t kNumWarpStates = 8;

/**
 * Observer of warp scheduling-state transitions. The owning SM attaches
 * itself so the cycle ledger can close the outgoing state's span at the
 * exact transition cycle (see gpu/cycle_ledger.hh). Pure accounting:
 * implementations must not change warp or SM state.
 */
class WarpStateObserver
{
  public:
    virtual ~WarpStateObserver() = default;
    virtual void warpStateChanged(WarpSlot slot, WarpState from,
                                  WarpState to) = 0;
};

/** A resident warp. Owned by its SM for the lifetime of its block. */
class Warp
{
  public:
    Warp(const WarpProgram *program, BlockId block,
         std::uint32_t warp_in_block, WarpSlot slot, SmId sm,
         ThreadId first_thread);

    ~Warp()
    {
        if (stateMasks_)
            stateMasks_[static_cast<std::size_t>(state_)] &= ~slotBit_;
    }

    // --- Identity ---
    BlockId block() const { return block_; }
    std::uint32_t warpInBlock() const { return warpInBlock_; }
    WarpSlot slot() const { return slot_; }
    SmId sm() const { return sm_; }
    /** Global thread id of a lane. */
    ThreadId thread(std::uint32_t lane) const { return firstThread_ + lane; }

    // --- Program access ---
    bool atEnd() const { return pc_ >= program_->code.size(); }
    const WarpInstr &instr() const { return program_->code[pc_]; }
    std::uint32_t pc() const { return pc_; }
    void advance() { ++pc_; }

    // --- Scheduling state ---
    WarpState state() const { return state_; }

    void
    setState(WarpState s)
    {
        if (stateMasks_) {
            stateMasks_[static_cast<std::size_t>(state_)] &= ~slotBit_;
            stateMasks_[static_cast<std::size_t>(s)] |= slotBit_;
        }
        const WarpState from = state_;
        state_ = s;
        if (observer_)
            observer_->warpStateChanged(slot_, from, s);
    }

    /**
     * Attaches the owning SM's per-state slot masks (indexed by
     * WarpState; kNumWarpStates entries). From here until destruction
     * the warp keeps exactly one bit set — in the mask of its current
     * state — which is what lets the SM settle the scheduling census,
     * skip non-issuable slots, and compute its next wake cycle without
     * scanning every slot. Standalone warps (tests) leave this unset.
     */
    void
    attachStateMasks(std::uint32_t *masks)
    {
        stateMasks_ = masks;
        slotBit_ = 1u << slot_;
        stateMasks_[static_cast<std::size_t>(state_)] |= slotBit_;
    }

    /** Attaches the owning SM's transition observer (cycle ledger).
        Standalone warps (tests) leave this unset. */
    void attachStateObserver(WarpStateObserver *obs) { observer_ = obs; }

    bool finished() const { return state_ == WarpState::Finished; }

    /** Ready to issue at `now` (accounts for Busy wake-up and retries). */
    bool
    issuable(Cycle now) const
    {
        if (state_ == WarpState::Ready)
            return true;
        if (state_ == WarpState::ModelRetry || state_ == WarpState::Busy)
            return busyUntil_ <= now;
        return false;
    }

    Cycle busyUntil() const { return busyUntil_; }
    void setBusyUntil(Cycle c) { busyUntil_ = c; }

    std::uint32_t outstanding() const { return outstanding_; }
    void addOutstanding(std::uint32_t n = 1) { outstanding_ += n; }

    /** One memory response arrived; returns true if none remain. */
    bool
    completeOne()
    {
        if (outstanding_ > 0)
            --outstanding_;
        return outstanding_ == 0;
    }

    Cycle nextPoll() const { return nextPoll_; }
    void setNextPoll(Cycle c) { nextPoll_ = c; }

    // --- Lane liveness (ExitIf early returns) ---
    std::uint32_t live() const { return live_; }
    void deactivate(std::uint32_t lane) { live_ &= ~(1u << lane); }

    /** Lanes that are both selected by the instruction and still live. */
    std::uint32_t effActive(const WarpInstr &in) const
    { return in.active & live_; }

    /** Effective per-lane address (base + optional register index). */
    Addr
    effAddr(const WarpInstr &in, std::uint32_t lane) const
    {
        Addr a = in.laneAddrs[lane];
        if (in.idxReg != kImmOperand)
            a += static_cast<Addr>(regs_[lane][in.idxReg]) * in.idxScale;
        return a;
    }

    // --- Registers ---
    std::uint32_t reg(std::uint32_t lane, std::uint32_t r) const
    { return regs_[lane][r]; }
    void setReg(std::uint32_t lane, std::uint32_t r, std::uint32_t v)
    { regs_[lane][r] = v; }

    /** Value operand of `in` for a lane (register or immediate). */
    std::uint32_t
    operand(const WarpInstr &in, std::uint32_t lane) const
    {
        if (in.src != kImmOperand)
            return regs_[lane][in.src];
        if (!in.laneImms.empty())
            return in.laneImms[lane];
        return in.imm;
    }

  private:
    const WarpProgram *program_;
    BlockId block_;
    std::uint32_t warpInBlock_;
    WarpSlot slot_;
    SmId sm_;
    ThreadId firstThread_;

    std::uint32_t pc_ = 0;
    WarpState state_ = WarpState::Ready;
    Cycle busyUntil_ = 0;
    Cycle nextPoll_ = 0;
    std::uint32_t outstanding_ = 0;
    std::uint32_t live_ = 0xffffffffu;
    std::uint32_t *stateMasks_ = nullptr;
    std::uint32_t slotBit_ = 0;
    WarpStateObserver *observer_ = nullptr;
    std::array<std::array<std::uint32_t, kNumRegs>, 32> regs_{};
};

} // namespace sbrp

#endif // SBRP_GPU_WARP_HH
