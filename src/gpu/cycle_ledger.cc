#include "gpu/cycle_ledger.hh"

#include "common/log.hh"
#include "common/stats.hh"

namespace sbrp
{

const char *
toString(CycleCat c)
{
    switch (c) {
      case CycleCat::Compute: return "compute";
      case CycleCat::Ready: return "ready";
      case CycleCat::MemLatency: return "mem_latency";
      case CycleCat::Barrier: return "barrier";
      case CycleCat::SpinAcquire: return "spin_acquire";
      case CycleCat::OdmStall: return "odm_stall";
      case CycleCat::EdmStall: return "edm_stall";
      case CycleCat::FenceDrain: return "fence_drain";
      case CycleCat::PbDrain: return "pb_drain";
      case CycleCat::FsmFlushWait: return "fsm_flush_wait";
      case CycleCat::ActrWait: return "actr_wait";
      case CycleCat::PcieBacklog: return "pcie_backlog";
      case CycleCat::WpqFull: return "wpq_full";
      case CycleCat::SchedulerIdle: return "scheduler_idle";
    }
    return "?";
}

const char *
shortName(CycleCat c)
{
    switch (c) {
      case CycleCat::Compute: return "comp";
      case CycleCat::Ready: return "ready";
      case CycleCat::MemLatency: return "mem";
      case CycleCat::Barrier: return "barr";
      case CycleCat::SpinAcquire: return "spin";
      case CycleCat::OdmStall: return "odm";
      case CycleCat::EdmStall: return "edm";
      case CycleCat::FenceDrain: return "fence";
      case CycleCat::PbDrain: return "pbdr";
      case CycleCat::FsmFlushWait: return "fsm";
      case CycleCat::ActrWait: return "actr";
      case CycleCat::PcieBacklog: return "pcie";
      case CycleCat::WpqFull: return "wpq";
      case CycleCat::SchedulerIdle: return "idle";
    }
    return "?";
}

CycleLedger::CycleLedger(std::uint32_t warp_slots) : slots_(warp_slots)
{
}

void
CycleLedger::beginWarp(WarpSlot slot, Cycle now)
{
    Slot &s = slots_[slot];
    sbrp_assert(!s.active, "ledger: slot %s already active", slot);
    s.since = now;
    s.start = now;
    s.cat = CycleCat::Ready;
    s.active = true;
}

void
CycleLedger::warpTransition(WarpSlot slot, CycleCat to, Cycle now)
{
    Slot &s = slots_[slot];
    sbrp_assert(s.active, "ledger: transition on inactive slot %s", slot);
    sbrp_assert(now >= s.since, "ledger: clock went backwards");
    cat_[static_cast<std::size_t>(s.cat)] += now - s.since;
    s.since = now;
    s.cat = to;
}

void
CycleLedger::endWarp(WarpSlot slot, Cycle now)
{
    Slot &s = slots_[slot];
    sbrp_assert(s.active, "ledger: end on inactive slot %s", slot);
    sbrp_assert(now >= s.since, "ledger: clock went backwards");
    cat_[static_cast<std::size_t>(s.cat)] += now - s.since;
    warpActiveCycles_ += now - s.start;
    s.active = false;
}

void
CycleLedger::settleWarps(Cycle now)
{
    for (Slot &s : slots_) {
        if (!s.active)
            continue;
        sbrp_assert(now >= s.since, "ledger: clock went backwards");
        cat_[static_cast<std::size_t>(s.cat)] += now - s.since;
        warpActiveCycles_ += now - s.start;
        s.since = now;
        s.start = now;
    }
}

void
CycleLedger::accrueDrain(CycleCat cat, std::uint64_t cycles)
{
    sbrp_assert(!isWarpCategory(cat),
                "ledger: drain accrual into warp category %s",
                toString(cat));
    cat_[static_cast<std::size_t>(cat)] += cycles;
}

std::uint64_t
CycleLedger::warpCycles() const
{
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kFirstDrainCat; ++c)
        sum += cat_[c];
    return sum;
}

std::uint64_t
CycleLedger::drainCycles() const
{
    std::uint64_t sum = 0;
    for (std::size_t c = kFirstDrainCat; c < kNumCycleCats; ++c)
        sum += cat_[c];
    return sum;
}

void
CycleLedger::publish(StatGroup &sg) const
{
    for (std::size_t c = 0; c < kNumCycleCats; ++c) {
        if (cat_[c] == 0)
            continue;
        sg.stat(std::string("ledger_") +
                toString(static_cast<CycleCat>(c))).set(cat_[c]);
    }
    if (warpActiveCycles_ != 0)
        sg.stat("ledger_warp_active_cycles").set(warpActiveCycles_);
}

} // namespace sbrp
