/**
 * @file
 * The top-level simulated system: SMs + memory fabric + volatile view of
 * memory, attached to an NvmDevice that outlives it.
 *
 * Crash/recovery workflow:
 * @code
 *   NvmDevice nvm;                          // The physical NVM.
 *   {
 *       GpuSystem gpu(cfg, nvm);
 *       gpu.launch(kernel, 12345);          // Power fails at cycle 12345.
 *   }                                       // Caches, PBs, WPQs: gone.
 *   GpuSystem gpu2(cfg, nvm);               // Power-up; durable data only.
 *   gpu2.launch(recovery_kernel);
 * @endcode
 */

#ifndef SBRP_GPU_GPU_SYSTEM_HH
#define SBRP_GPU_GPU_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/kernel.hh"
#include "gpu/mem_ctrl.hh"
#include "gpu/sm.hh"
#include "mem/functional_mem.hh"
#include "mem/nvm_device.hh"
#include "sim/scheduler.hh"

namespace sbrp
{

class ExecutionTrace;
class TraceSink;
class MetricsTimeseries;

class GpuSystem : private SmObserver
{
  public:
    struct LaunchResult
    {
        Cycle cycles = 0;    ///< Cycles this launch took (or ran until).
        Cycle execCycles = 0;  ///< Cycles until the last warp retired
                               ///< (the rest is the persist drain tail).
        bool crashed = false;
    };

    /**
     * @param cfg    Hardware + model configuration (validated).
     * @param nvm    The persistent device; must outlive this object.
     * @param trace  Optional formal-model trace sink (tests).
     * @param sink   Optional event tracer; null means tracing is off and
     *               every instrumentation site costs one null-check.
     * @param prov   Optional persist-op provenance recorder; same
     *               null-check discipline as the tracer. Recording is
     *               pure observation, so runs are cycle-identical with
     *               provenance on or off.
     * @param metrics Optional windowed time-series sampler; same
     *               null-check discipline. The launch loop closes its
     *               windows at exact cycle boundaries and finalizes it
     *               on both normal and crash exits; gauge callbacks
     *               (PB occupancy, WPQ depth, channel backlogs) are
     *               registered here. Pure observation: runs are
     *               cycle-identical with metrics on or off.
     */
    GpuSystem(const SystemConfig &cfg, NvmDevice &nvm,
              ExecutionTrace *trace = nullptr,
              TraceSink *sink = nullptr,
              PersistProvenance *prov = nullptr,
              MetricsTimeseries *metrics = nullptr);

    ~GpuSystem() override;

    GpuSystem(const GpuSystem &) = delete;
    GpuSystem &operator=(const GpuSystem &) = delete;

    /** Allocates volatile GDDR memory (bump allocator). */
    Addr gddrAlloc(std::uint64_t bytes);

    /** The GPU's (volatile) functional view of all memory. */
    FunctionalMemory &mem() { return mem_; }
    const FunctionalMemory &mem() const { return mem_; }

    NvmDevice &nvm() { return nvm_; }
    const SystemConfig &config() const { return cfg_; }

    /**
     * Runs a kernel to completion — including the end-of-kernel drain of
     * buffered persists — or until `crash_at` cycles into the launch
     * (std::nullopt means run to completion; there is deliberately no
     * magic cycle value, so every representable cycle is a valid crash
     * point). A crashed system refuses further launches (destroy it and
     * attach a fresh GpuSystem to the NvmDevice instead).
     */
    LaunchResult launch(const KernelProgram &kernel,
                        std::optional<Cycle> crash_at = std::nullopt);

    StatRegistry &stats() { return stats_; }
    MemoryFabric &fabric() { return *fabric_; }
    Sm &sm(SmId id) { return *sms_[id]; }
    Cycle nowCycle() const { return sched_.now(); }

    /**
     * Attaches the model-checking schedule driver (src/mc/). Must be
     * called before launch(); every SM then routes its issue and
     * persist-flush choice points through the controller. Null (the
     * default) leaves the built-in scheduling untouched.
     */
    void setScheduleController(ScheduleController *c)
    {
        sched_.setController(c);
    }

    /** Sum of a counter across all SM stat groups (e.g. Figure 8). */
    std::uint64_t sumSmStat(const std::string &counter) const;

    /** Whole-system cycle attribution: the SM ledgers summed. */
    struct CycleBreakdown
    {
        std::array<std::uint64_t, kNumCycleCats> cycles{};
        std::uint64_t warpActiveCycles = 0;

        std::uint64_t total() const;       ///< Σ all categories.
        std::uint64_t warpCycles() const;  ///< Σ warp categories.
        std::uint64_t drainCycles() const; ///< Σ drain categories.
    };
    CycleBreakdown cycleBreakdown() const;

    /**
     * The breakdown as a `"cycle_breakdown": {...}` JSON member (no
     * surrounding braces) at the stats dump's 2-space indent, for
     * splicing into `--stats-json` output: system totals, every
     * category (enum order) with cycles and percent-of-total, and a
     * per-SM object of the non-zero categories. Deterministic.
     */
    std::string cycleBreakdownJson() const;

    /** Human-readable per-SM breakdown table (`--stats` text output). */
    std::string cycleBreakdownTable() const;

  private:
    bool allDrained() const;

    // --- SmObserver (event-driven launch bookkeeping) ---
    void smIdleChanged(SmId id, bool idle) override;
    void smSlotsFreed(SmId id) override;

    /** Launch finalization on both exits: settles every SM's lazy
        accounting through the current cycle, closes the cycle ledgers'
        open spans (crashes) and publishes the ledger counters. */
    void finalizeAllSms();

    SystemConfig cfg_;
    NvmDevice &nvm_;
    ExecutionTrace *trace_;
    TraceSink *sink_;
    MetricsTimeseries *metrics_;
    TraceBuffer *tbSystem_ = nullptr;

    FunctionalMemory mem_;
    Scheduler sched_;
    std::unique_ptr<MemoryFabric> fabric_;
    std::vector<std::unique_ptr<Sm>> sms_;
    StatRegistry stats_;

    Addr gddrBump_;
    bool crashed_ = false;

    /** SMs with at least one resident warp (replaces allIdle scans). */
    std::uint32_t busySms_ = 0;

    /** A dispatch attempt may succeed: set at launch entry and whenever
        a finished block frees slots; cleared when a scan finds no room. */
    bool dispatchRetry_ = false;
};

} // namespace sbrp

#endif // SBRP_GPU_GPU_SYSTEM_HH
