/**
 * @file
 * Per-SM L1 data cache (timing + persist metadata; values are functional).
 *
 * As in the paper (Section 6), every line carries a PM bit and a persist
 * buffer index so the SBRP machinery can find the PB entry tracking a
 * dirty PM line. GPUs keep L1s incoherent; nothing here snoops.
 */

#ifndef SBRP_GPU_L1_CACHE_HH
#define SBRP_GPU_L1_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sbrp
{

class TraceBuffer;

/** Sentinel for "no persist-buffer entry". */
constexpr std::uint64_t kNoPbEntry = ~0ull;

/** Set-associative, LRU, write-back tag array. */
class L1Cache
{
  public:
    struct Line
    {
        Addr lineAddr = 0;
        bool valid = false;
        bool dirty = false;
        bool isPm = false;
        std::uint64_t pbEntry = kNoPbEntry;
        Cycle lastUse = 0;
    };

    /** What fell out of a set on allocation. */
    struct Eviction
    {
        bool happened = false;
        Addr lineAddr = 0;
        bool dirty = false;
        bool isPm = false;
        std::uint64_t pbEntry = kNoPbEntry;
    };

    L1Cache(const SystemConfig &cfg, StatGroup &stats);

    /** Finds a valid line; updates LRU on hit. Null on miss. */
    Line *lookup(Addr line_addr, Cycle now);

    /** Finds a valid line without touching LRU state. */
    Line *probe(Addr line_addr);

    /**
     * The line that allocate() would evict for this address, or null if
     * a free/invalid way exists. Lets the persistency model veto PM
     * evictions before any state changes.
     */
    Line *victimFor(Addr line_addr);

    /**
     * Allocates (or refreshes) a line. The previous occupant, if any, is
     * reported through `ev` — the caller must handle writebacks/flushes.
     */
    Line *allocate(Addr line_addr, Cycle now, Eviction *ev);

    /** Drops a line if present. */
    void invalidate(Addr line_addr);

    /** Runs fn on every valid line (flush scans, invalidation sweeps). */
    void forEachLine(const std::function<void(Line &)> &fn);

    /** Attach a trace buffer (eviction/invalidate instants). */
    void setTrace(TraceBuffer *tb) { tb_ = tb; }

    std::uint32_t sets() const { return sets_; }
    std::uint32_t assoc() const { return assoc_; }

  private:
    std::uint32_t setOf(Addr line_addr) const;

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::vector<Line> lines_;   // sets_ * assoc_, set-major.
    StatGroup &stats_;
    TraceBuffer *tb_ = nullptr;
};

} // namespace sbrp

#endif // SBRP_GPU_L1_CACHE_HH
