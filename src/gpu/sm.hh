/**
 * @file
 * A streaming multiprocessor: resident warps, scheduler, L1 cache and
 * the per-SM persistency model instance.
 */

#ifndef SBRP_GPU_SM_HH
#define SBRP_GPU_SM_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/cycle_ledger.hh"
#include "gpu/kernel.hh"
#include "gpu/l1_cache.hh"
#include "gpu/warp.hh"
#include "persist/model.hh"
#include "sim/scheduler.hh"

namespace sbrp
{

class MemoryFabric;
class FunctionalMemory;
class ExecutionTrace;
class TraceBuffer;

/** GpuSystem-side notifications for event-driven launch bookkeeping
    (replaces the old per-cycle allIdle() / dispatch scans). */
class SmObserver
{
  public:
    virtual ~SmObserver() = default;

    /** The SM's resident-warp count crossed zero (in either direction). */
    virtual void smIdleChanged(SmId id, bool idle) = 0;

    /** A finished block freed warp slots; block dispatch may now
        succeed where the last attempt found no room. */
    virtual void smSlotsFreed(SmId id) = 0;
};

/**
 * One SM. Owned by the GpuSystem; ticked by the quiescence-aware
 * scheduler only on cycles it asked to be woken at (a ready warp, a
 * compute/backoff/spin timer, a workable drain) or was woken for by a
 * completion callback. Sleeping is unobservable: the scheduling census
 * and the model's blocked-drain counters are settled lazily over the
 * skipped span (settleTo), before any state mutation.
 */
class Sm : public SmServices, private WarpStateObserver
{
  public:
    Sm(SmId id, const SystemConfig &cfg, MemoryFabric &fabric,
       FunctionalMemory &mem, Scheduler &sched, ExecutionTrace *trace,
       TraceBuffer *tb = nullptr, SmObserver *observer = nullptr,
       PersistProvenance *prov = nullptr);
    ~Sm() override;

    Sm(const Sm &) = delete;
    Sm &operator=(const Sm &) = delete;

    // --- SmServices (used by the persistency model) ---
    L1Cache &l1() override { return *l1_; }
    MemoryFabric &fabric() override { return fabric_; }
    FunctionalMemory &mem() override { return mem_; }
    ExecutionTrace *trace() override { return trace_; }
    Cycle now() const override { return sched_.componentNow(); }
    void resumeWarp(WarpSlot slot) override;
    void noteAsyncActivity() override;
    std::uint32_t smId() const override { return id_; }
    PersistProvenance *provenance() override { return prov_; }
    ScheduleController *scheduleController() override
    {
        return sched_.controller();
    }

    // --- Block management ---
    std::uint32_t freeSlots() const;
    bool canAccept(std::uint32_t warps_needed) const;
    void launchBlock(const KernelProgram &kernel, BlockId block);
    bool idle() const;   ///< No resident warps.

    // --- Simulation ---
    void tick(Cycle now);

    /**
     * Brings the sampled warp-state census and the model's blocked
     * drain counters up to date through cycle `through`, using the
     * live (unchanged-since-last-settle) state. Called on every wake
     * and by the launch loop before it reads final statistics.
     */
    void settleTo(Cycle through);

    /** Wake-slot id in the scheduler (GpuSystem's due-tick filter). */
    std::uint32_t schedId() const { return schedId_; }

    /** Monotone count of forward-progress events (instructions
        retired, warps finished); the launch watchdog's heartbeat. */
    std::uint64_t progressEvents() const { return progressEvents_; }

    /** Kernel end: ask the model to flush everything buffered. */
    void beginDrain();
    bool drained() const;

    /**
     * Launch finalization: settles all lazy accounting through `now`,
     * closes the ledger's open warp spans (crashed runs), ends the
     * drain-window attribution and publishes the ledger's categories
     * as `ledger_*` counters. Called by GpuSystem on both launch exits.
     */
    void finalizeLaunch(Cycle now);

    /** Exact cycle-attribution ledger (read-only; tests, reporting). */
    const CycleLedger &ledger() const { return ledger_; }

    PersistencyModel &model() { return *model_; }
    StatGroup &stats() { return stats_; }
    StatGroup &l1Stats() { return l1Stats_; }
    SmId id() const { return id_; }

  private:
    struct BlockCtx
    {
        std::uint32_t warps = 0;
        std::uint32_t finished = 0;
        std::uint32_t atBarrier = 0;
        std::vector<WarpSlot> slots;
    };

    void executeWarp(Warp &warp);
    void finishWarp(Warp &warp);
    void pollSpin(Warp &warp);

    /** Model-checking issue path: one controller-picked warp per
        cycle instead of the round-robin issueWidth scan. */
    void controlledIssue(ScheduleController &ctl, Cycle now);

    // --- WarpStateObserver (cycle ledger) ---
    void warpStateChanged(WarpSlot slot, WarpState from,
                          WarpState to) override;

    /** Ledger category of a warp entering `state` (model stalls are
        resolved through the model's per-slot stall reason). */
    CycleCat categoryFor(WarpState state, WarpSlot slot) const;

    /** Drain-window category right now. Constant while the SM sleeps
        (acks settle before mutating), so bulk settle attribution over
        a skipped span is exact. */
    CycleCat drainCategory();

    /** Slot mask of warps currently in `state`. */
    std::uint32_t
    stateMask(WarpState state) const
    {
        return stateMask_[static_cast<std::size_t>(state)];
    }

    /** Adds `samples` census samples (16 cycles each) per resident
        warp, bucketed by its current state. */
    void censusSample(std::uint64_t samples);

    /** Recomputes and publishes this SM's next wake cycle. Runs at the
        end of every tick and after beginDrain. Conservative: an early
        wake only costs a no-op tick, a late one would break exactness,
        so any doubt rounds down to now + 1. */
    void updateWake();

    /** Unique cache-line addresses referenced by an instruction.
        Returns a reference to a per-SM scratch buffer (valid until the
        next call). */
    const std::vector<Addr> &gatherLines(const Warp &warp,
                                         const WarpInstr &in);

    /** Validate-then-perform allocation used by loads/volatile stores. */
    bool validateVictims(Warp &warp, const std::vector<Addr> &lines);
    L1Cache::Line *performAllocate(Warp &warp, Addr line_addr);

    // Op handlers; return true when the instruction completed issue
    // (PC should advance), false for a retry stall.
    bool execAlu(Warp &warp, const WarpInstr &in);
    /** no_reg non-null suppresses register writeback (ExitIf timing). */
    bool execLoad(Warp &warp, const WarpInstr &in,
                  const std::uint32_t *no_reg);
    bool execExitIf(Warp &warp, const WarpInstr &in);
    bool execStore(Warp &warp, const WarpInstr &in);
    bool execAtomic(Warp &warp, const WarpInstr &in);
    bool execBarrier(Warp &warp);
    bool execFenceLike(Warp &warp, const WarpInstr &in);
    bool execRelease(Warp &warp, const WarpInstr &in);
    void beginSpin(Warp &warp);

    /** Trace span name for a warp entering `state` (null: no span). */
    const char *warpSpanName(WarpState state, WarpSlot slot) const;

    /** Emits warp-state duration spans on state transitions (traced). */
    void observeWarpStates();

    SmId id_;
    const SystemConfig &cfg_;
    MemoryFabric &fabric_;
    FunctionalMemory &mem_;
    Scheduler &sched_;
    EventQueue &events_;
    std::uint32_t schedId_;
    SmObserver *observer_;
    ExecutionTrace *trace_;
    TraceBuffer *tb_;
    PersistProvenance *prov_;

    StatGroup stats_;
    StatGroup l1Stats_;
    std::unique_ptr<L1Cache> l1_;
    std::unique_ptr<PersistencyModel> model_;

    std::vector<std::unique_ptr<Warp>> slots_;
    std::map<BlockId, BlockCtx> blocks_;
    std::unordered_map<Addr, std::vector<Warp *>> mshr_;

    Cycle now_ = 0;
    std::uint32_t lastIssued_ = 0;
    std::uint32_t residentWarps_ = 0;
    std::vector<Addr> lineScratch_;

    /** Per-state slot masks maintained by Warp::setState; the basis of
        the census settlement, issue-scan skip and wake computation. */
    std::array<std::uint32_t, kNumWarpStates> stateMask_{};

    /** All cycles <= this are reflected in the census and the model's
        blocked-drain counters (see settleTo). */
    Cycle settledThrough_ = 0;

    /** Exact cycle attribution (warp spans + drain window). */
    CycleLedger ledger_;

    /** True from beginDrain() until finalizeLaunch(): settleTo and
        tick attribute drain-window cycles while set. */
    bool drainAccounting_ = false;

    std::uint64_t progressEvents_ = 0;

    // Warp-state span tracking (traced runs only): the span name a slot
    // is currently inside (null = none) and when it began.
    std::vector<const char *> warpSpan_;
    std::vector<Cycle> warpSpanSince_;

    // Cached hot counters (StatGroup lookups are string-keyed).
    Stat *stInstructions_ = nullptr;
    Stat *stReadHits_ = nullptr;
    Stat *stReadMisses_ = nullptr;
    Stat *stReadHitNvm_ = nullptr;
    Stat *stReadMissNvm_ = nullptr;
    Stat *stPersistStores_ = nullptr;
    Stat *stVolatileStores_ = nullptr;
    Stat *stSpinPolls_ = nullptr;
    Stat *stModelRetries_ = nullptr;

    /** Census counters, resolved lazily (index: WarpState) so a state
        that never occurs creates no counter, exactly as the per-cycle
        census did. Finished has no counter (never censused). */
    std::array<Stat *, kNumWarpStates> censusStat_{};
};

} // namespace sbrp

#endif // SBRP_GPU_SM_HH
