/**
 * @file
 * A streaming multiprocessor: resident warps, scheduler, L1 cache and
 * the per-SM persistency model instance.
 */

#ifndef SBRP_GPU_SM_HH
#define SBRP_GPU_SM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/kernel.hh"
#include "gpu/l1_cache.hh"
#include "gpu/warp.hh"
#include "persist/model.hh"
#include "sim/event_queue.hh"

namespace sbrp
{

class MemoryFabric;
class FunctionalMemory;
class ExecutionTrace;
class TraceBuffer;

/** One SM. Owned by the GpuSystem; ticked once per cycle. */
class Sm : public SmServices
{
  public:
    Sm(SmId id, const SystemConfig &cfg, MemoryFabric &fabric,
       FunctionalMemory &mem, EventQueue &events, ExecutionTrace *trace,
       TraceBuffer *tb = nullptr);
    ~Sm() override;

    Sm(const Sm &) = delete;
    Sm &operator=(const Sm &) = delete;

    // --- SmServices (used by the persistency model) ---
    L1Cache &l1() override { return *l1_; }
    MemoryFabric &fabric() override { return fabric_; }
    FunctionalMemory &mem() override { return mem_; }
    ExecutionTrace *trace() override { return trace_; }
    Cycle now() const override { return now_; }
    void resumeWarp(WarpSlot slot) override;

    // --- Block management ---
    std::uint32_t freeSlots() const;
    bool canAccept(std::uint32_t warps_needed) const;
    void launchBlock(const KernelProgram &kernel, BlockId block);
    bool idle() const;   ///< No resident warps.

    // --- Simulation ---
    void tick(Cycle now);

    /** Kernel end: ask the model to flush everything buffered. */
    void beginDrain();
    bool drained() const;

    PersistencyModel &model() { return *model_; }
    StatGroup &stats() { return stats_; }
    StatGroup &l1Stats() { return l1Stats_; }
    SmId id() const { return id_; }

  private:
    struct BlockCtx
    {
        std::uint32_t warps = 0;
        std::uint32_t finished = 0;
        std::uint32_t atBarrier = 0;
        std::vector<WarpSlot> slots;
    };

    void executeWarp(Warp &warp);
    void finishWarp(Warp &warp);
    void pollSpin(Warp &warp);

    /** Unique cache-line addresses referenced by an instruction.
        Returns a reference to a per-SM scratch buffer (valid until the
        next call). */
    const std::vector<Addr> &gatherLines(const Warp &warp,
                                         const WarpInstr &in);

    /** Validate-then-perform allocation used by loads/volatile stores. */
    bool validateVictims(Warp &warp, const std::vector<Addr> &lines);
    L1Cache::Line *performAllocate(Warp &warp, Addr line_addr);

    // Op handlers; return true when the instruction completed issue
    // (PC should advance), false for a retry stall.
    bool execAlu(Warp &warp, const WarpInstr &in);
    /** no_reg non-null suppresses register writeback (ExitIf timing). */
    bool execLoad(Warp &warp, const WarpInstr &in,
                  const std::uint32_t *no_reg);
    bool execExitIf(Warp &warp, const WarpInstr &in);
    bool execStore(Warp &warp, const WarpInstr &in);
    bool execAtomic(Warp &warp, const WarpInstr &in);
    bool execBarrier(Warp &warp);
    bool execFenceLike(Warp &warp, const WarpInstr &in);
    bool execRelease(Warp &warp, const WarpInstr &in);
    void beginSpin(Warp &warp);

    /** Trace span name for a warp entering `state` (null: no span). */
    const char *warpSpanName(WarpState state, WarpSlot slot) const;

    /** Emits warp-state duration spans on state transitions (traced). */
    void observeWarpStates();

    SmId id_;
    const SystemConfig &cfg_;
    MemoryFabric &fabric_;
    FunctionalMemory &mem_;
    EventQueue &events_;
    ExecutionTrace *trace_;
    TraceBuffer *tb_;

    StatGroup stats_;
    StatGroup l1Stats_;
    std::unique_ptr<L1Cache> l1_;
    std::unique_ptr<PersistencyModel> model_;

    std::vector<std::unique_ptr<Warp>> slots_;
    std::map<BlockId, BlockCtx> blocks_;
    std::unordered_map<Addr, std::vector<Warp *>> mshr_;

    Cycle now_ = 0;
    std::uint32_t lastIssued_ = 0;
    std::uint32_t residentWarps_ = 0;
    std::vector<Addr> lineScratch_;

    // Warp-state span tracking (traced runs only): the span name a slot
    // is currently inside (null = none) and when it began.
    std::vector<const char *> warpSpan_;
    std::vector<Cycle> warpSpanSince_;

    // Cached hot counters (StatGroup lookups are string-keyed).
    Stat *stInstructions_ = nullptr;
    Stat *stReadHits_ = nullptr;
    Stat *stReadMisses_ = nullptr;
    Stat *stReadHitNvm_ = nullptr;
    Stat *stReadMissNvm_ = nullptr;
    Stat *stPersistStores_ = nullptr;
    Stat *stVolatileStores_ = nullptr;
    Stat *stSpinPolls_ = nullptr;
    Stat *stModelRetries_ = nullptr;
};

} // namespace sbrp

#endif // SBRP_GPU_SM_HH
