/**
 * @file
 * The device instruction set executed by simulated warps.
 *
 * Kernels are expressed as per-warp instruction streams (SIMT: one
 * instruction, up to 32 active lanes with per-lane addresses/operands).
 * This mirrors how the paper's CUDA kernels behave on GPGPU-Sim after
 * coalescing while keeping the execution engine small. Control flow is
 * resolved at trace-generation time — all six evaluated applications have
 * statically computable per-thread address streams; only *values* are
 * data-dependent, and those flow through per-lane registers at simulation
 * time (so spin-based pAcq/pRel interactions are emergent, not scripted).
 */

#ifndef SBRP_GPU_ISA_HH
#define SBRP_GPU_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

/** Number of per-lane general-purpose registers. */
constexpr std::uint32_t kNumRegs = 8;

/** Marker: operand comes from the immediate, not a register. */
constexpr std::uint8_t kImmOperand = 0xff;

/** Device opcodes. */
enum class Op : std::uint8_t
{
    Nop,        ///< No effect; 1 cycle.
    Mov,        ///< reg[dst] = imm (per-lane imm if provided).
    Add,        ///< reg[dst] += operand.
    LaneSum,    ///< reg[dst] = sum of reg[dst] over active lanes (a
                ///< warp-shuffle reduction, __reduce_add_sync).
    LaneMax,    ///< reg[dst] = max of reg[dst] over active lanes.
    Compute,    ///< Busy the warp for `computeCycles` cycles.
    Load,       ///< reg[dst] = mem32[addr[lane]]; timed through L1/L2/MC.
    Store,      ///< mem32[addr[lane]] = operand. NVM stores are persists.
    AtomicAdd,  ///< reg[dst] = old; mem32[addr] += operand (L2-adjacent).
    Barrier,    ///< Block-wide __syncthreads().
    Fence,      ///< Scoped memory fence; GPM/epoch use it as the epoch
                ///< barrier (Fence{System} == __threadfence_system).
    OFence,     ///< SBRP ordering fence (intra-thread PMO).
    DFence,     ///< SBRP durability fence.
    PAcq,       ///< Scoped persist acquire: spin until mem32[addr] == imm.
    PRel,       ///< Scoped persist release: publish imm to addr once
                ///< ordering allows (buffered under SBRP).
    SpinLoad,   ///< Volatile acquire spin (epoch-model flag wait);
                ///< bypasses L1 like a CUDA volatile/atomic read.
    ExitIf,     ///< Lane exits the kernel when mem32[addr] matches the
                ///< spin condition — the paper's `if (pArr[tid] !=
                ///< EMPTY) return;` native-recovery idiom (Figure 3).
    Halt,       ///< Warp (lane set) finished.
};

/** True for opcodes that carry per-lane memory addresses. */
bool isMemOp(Op op);

/** True for persistency-model operations (routed to the model). */
bool isPersistOp(Op op);

const char *toString(Op op);

/**
 * One SIMT instruction for a warp.
 *
 * `active` selects participating lanes. Memory ops read per-lane addresses
 * from `laneAddrs` (size == warpSize, ignored entries for inactive lanes).
 * The value operand is reg[src] unless src == kImmOperand, in which case it
 * is the per-lane immediate from `laneImms` (or the scalar `imm` when
 * `laneImms` is empty).
 */
struct WarpInstr
{
    Op op = Op::Nop;
    Scope scope = Scope::Block;
    std::uint32_t active = 0xffffffffu;
    std::uint8_t dst = 0;
    std::uint8_t src = kImmOperand;
    /** Optional index register: effective address = laneAddr + reg*scale
        (register-indirect addressing, e.g. restoring a logged slot). */
    std::uint8_t idxReg = kImmOperand;
    std::uint8_t idxScale = 1;
    /** Spin/exit condition: false = trigger on ==imm, true = on !=imm. */
    bool negate = false;
    std::uint32_t imm = 0;
    std::uint16_t computeCycles = 1;
    std::vector<Addr> laneAddrs;
    std::vector<std::uint32_t> laneImms;

    /** Debug pretty-printer. */
    std::string describe() const;
};

/** Whether GPM-style fences should also flush volatile (GDDR) lines. */
enum class FenceSemantics : std::uint8_t
{
    PmOnly,        ///< Enhanced epoch barrier ('Epoch' in figures).
    PmAndVolatile, ///< GPM's __threadfence_system behaviour.
};

} // namespace sbrp

#endif // SBRP_GPU_ISA_HH
