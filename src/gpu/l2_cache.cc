#include "gpu/l2_cache.hh"

#include "common/log.hh"

namespace sbrp
{

L2Cache::L2Cache(const SystemConfig &cfg, StatGroup &stats)
    : sets_(cfg.l2Sets()),
      assoc_(cfg.l2Assoc),
      lineBytes_(cfg.lineBytes),
      lines_(std::size_t(cfg.l2Sets()) * cfg.l2Assoc),
      stats_(stats)
{
}

std::uint32_t
L2Cache::setOf(Addr line_addr) const
{
    return (line_addr / lineBytes_) % sets_;
}

bool
L2Cache::lookup(Addr line_addr, Cycle now)
{
    std::uint32_t set = setOf(line_addr);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (l.valid && l.lineAddr == line_addr) {
            l.lastUse = now;
            return true;
        }
    }
    return false;
}

void
L2Cache::allocate(Addr line_addr, bool dirty, Cycle now, Eviction *ev)
{
    if (ev)
        *ev = Eviction{};

    std::uint32_t set = setOf(line_addr);
    Line *slot = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (l.valid && l.lineAddr == line_addr) {
            l.dirty = l.dirty || dirty;
            l.lastUse = now;
            return;
        }
        if (!l.valid) {
            if (!slot || slot->valid)
                slot = &l;
        } else if (!slot || (slot->valid && l.lastUse < slot->lastUse)) {
            slot = &l;
        }
    }
    sbrp_assert(slot, "no way in L2 set %s", set);

    if (slot->valid && ev) {
        ev->happened = true;
        ev->lineAddr = slot->lineAddr;
        ev->dirty = slot->dirty;
        stats_.stat("evictions").inc();
    }

    slot->lineAddr = line_addr;
    slot->valid = true;
    slot->dirty = dirty;
    slot->lastUse = now;
}

void
L2Cache::invalidate(Addr line_addr)
{
    std::uint32_t set = setOf(line_addr);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (l.valid && l.lineAddr == line_addr)
            l.valid = false;
    }
}

} // namespace sbrp
