#include "gpu/kernel.hh"

#include "common/log.hh"

namespace sbrp
{

KernelProgram::KernelProgram(std::string name, std::uint32_t num_blocks,
                             std::uint32_t threads_per_block)
    : name_(std::move(name)),
      numBlocks_(num_blocks),
      threadsPerBlock_(threads_per_block),
      warpsPerBlock_((threads_per_block + 31) / 32)
{
    if (num_blocks == 0 || threads_per_block == 0)
        sbrp_fatal("kernel '%s' has an empty grid", name_);
    if (threads_per_block > 1024)
        sbrp_fatal("kernel '%s': threadsPerBlock %s exceeds 1024",
                   name_, threads_per_block);
    programs_.resize(std::size_t(numBlocks_) * warpsPerBlock_);
}

WarpProgram &
KernelProgram::warp(BlockId block, std::uint32_t warp_in_block)
{
    sbrp_assert(block < numBlocks_ && warp_in_block < warpsPerBlock_,
                "warp (%s, %s) out of range", block, warp_in_block);
    return programs_[std::size_t(block) * warpsPerBlock_ + warp_in_block];
}

const WarpProgram &
KernelProgram::warp(BlockId block, std::uint32_t warp_in_block) const
{
    sbrp_assert(block < numBlocks_ && warp_in_block < warpsPerBlock_,
                "warp (%s, %s) out of range", block, warp_in_block);
    return programs_[std::size_t(block) * warpsPerBlock_ + warp_in_block];
}

std::uint64_t
KernelProgram::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &p : programs_)
        n += p.code.size();
    return n;
}

WarpBuilder::WarpBuilder(WarpProgram &prog, std::uint32_t lanes)
    : prog_(prog), lanes_(lanes), defaultMask_(mask::firstN(lanes))
{
    sbrp_assert(lanes >= 1 && lanes <= 32, "bad lane count %s", lanes);
}

WarpInstr &
WarpBuilder::emit(Op op, std::uint32_t active)
{
    WarpInstr in;
    in.op = op;
    in.active = active ? (active & defaultMask_) : defaultMask_;
    prog_.code.push_back(std::move(in));
    return prog_.code.back();
}

void
WarpBuilder::fillAddrs(WarpInstr &in, const AddrFn &addrs)
{
    in.laneAddrs.resize(32, 0);
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (in.active & (1u << l))
            in.laneAddrs[l] = addrs(l);
    }
}

void
WarpBuilder::fillVals(WarpInstr &in, const ValFn &vals)
{
    in.laneImms.resize(32, 0);
    for (std::uint32_t l = 0; l < 32; ++l) {
        if (in.active & (1u << l))
            in.laneImms[l] = vals(l);
    }
}

WarpBuilder &
WarpBuilder::mov(std::uint8_t dst, std::uint32_t imm, std::uint32_t active)
{
    WarpInstr &in = emit(Op::Mov, active);
    in.dst = dst;
    in.imm = imm;
    return *this;
}

WarpBuilder &
WarpBuilder::movLane(std::uint8_t dst, const ValFn &vals,
                     std::uint32_t active)
{
    WarpInstr &in = emit(Op::Mov, active);
    in.dst = dst;
    fillVals(in, vals);
    return *this;
}

WarpBuilder &
WarpBuilder::addImm(std::uint8_t dst, std::uint32_t imm,
                    std::uint32_t active)
{
    WarpInstr &in = emit(Op::Add, active);
    in.dst = dst;
    in.imm = imm;
    return *this;
}

WarpBuilder &
WarpBuilder::addReg(std::uint8_t dst, std::uint8_t src, std::uint32_t active)
{
    WarpInstr &in = emit(Op::Add, active);
    in.dst = dst;
    in.src = src;
    return *this;
}

WarpBuilder &
WarpBuilder::laneSum(std::uint8_t dst, std::uint32_t active)
{
    WarpInstr &in = emit(Op::LaneSum, active);
    in.dst = dst;
    return *this;
}

WarpBuilder &
WarpBuilder::laneMax(std::uint8_t dst, std::uint32_t active)
{
    WarpInstr &in = emit(Op::LaneMax, active);
    in.dst = dst;
    return *this;
}

WarpBuilder &
WarpBuilder::compute(std::uint16_t cycles, std::uint32_t active)
{
    WarpInstr &in = emit(Op::Compute, active);
    in.computeCycles = cycles;
    return *this;
}

WarpBuilder &
WarpBuilder::load(std::uint8_t dst, const AddrFn &addrs,
                  std::uint32_t active)
{
    WarpInstr &in = emit(Op::Load, active);
    in.dst = dst;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::loadIdx(std::uint8_t dst, const AddrFn &base,
                     std::uint8_t idx_reg, std::uint8_t scale,
                     std::uint32_t active)
{
    WarpInstr &in = emit(Op::Load, active);
    in.dst = dst;
    in.idxReg = idx_reg;
    in.idxScale = scale;
    fillAddrs(in, base);
    return *this;
}

WarpBuilder &
WarpBuilder::store(const AddrFn &addrs, std::uint8_t src,
                   std::uint32_t active)
{
    WarpInstr &in = emit(Op::Store, active);
    in.src = src;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::storeIdx(const AddrFn &base, std::uint8_t src,
                      std::uint8_t idx_reg, std::uint8_t scale,
                      std::uint32_t active)
{
    WarpInstr &in = emit(Op::Store, active);
    in.src = src;
    in.idxReg = idx_reg;
    in.idxScale = scale;
    fillAddrs(in, base);
    return *this;
}

WarpBuilder &
WarpBuilder::storeImm(const AddrFn &addrs, const ValFn &vals,
                      std::uint32_t active)
{
    WarpInstr &in = emit(Op::Store, active);
    in.src = kImmOperand;
    fillAddrs(in, addrs);
    fillVals(in, vals);
    return *this;
}

WarpBuilder &
WarpBuilder::atomicAdd(std::uint8_t dst, Addr addr, std::uint32_t imm,
                       std::uint32_t active)
{
    WarpInstr &in = emit(Op::AtomicAdd, active);
    in.dst = dst;
    in.imm = imm;
    fillAddrs(in, [addr](std::uint32_t) { return addr; });
    return *this;
}

WarpBuilder &
WarpBuilder::barrier()
{
    emit(Op::Barrier, 0);
    return *this;
}

WarpBuilder &
WarpBuilder::fence(Scope scope, std::uint32_t active)
{
    WarpInstr &in = emit(Op::Fence, active);
    in.scope = scope;
    return *this;
}

WarpBuilder &
WarpBuilder::ofence(std::uint32_t active)
{
    emit(Op::OFence, active);
    return *this;
}

WarpBuilder &
WarpBuilder::dfence(std::uint32_t active)
{
    emit(Op::DFence, active);
    return *this;
}

WarpBuilder &
WarpBuilder::pacq(const AddrFn &addrs, std::uint32_t expect, Scope scope,
                  std::uint32_t active)
{
    WarpInstr &in = emit(Op::PAcq, active);
    in.scope = scope;
    in.imm = expect;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::pacqNe(const AddrFn &addrs, std::uint32_t sentinel,
                    Scope scope, std::uint32_t active)
{
    WarpInstr &in = emit(Op::PAcq, active);
    in.scope = scope;
    in.imm = sentinel;
    in.negate = true;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::prel(const AddrFn &addrs, std::uint32_t value, Scope scope,
                  std::uint32_t active)
{
    WarpInstr &in = emit(Op::PRel, active);
    in.scope = scope;
    in.imm = value;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::prelReg(const AddrFn &addrs, std::uint8_t src, Scope scope,
                     std::uint32_t active)
{
    WarpInstr &in = emit(Op::PRel, active);
    in.scope = scope;
    in.src = src;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::spinLoad(const AddrFn &addrs, std::uint32_t expect,
                      std::uint32_t active)
{
    WarpInstr &in = emit(Op::SpinLoad, active);
    in.imm = expect;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::spinLoadNe(const AddrFn &addrs, std::uint32_t sentinel,
                        std::uint32_t active)
{
    WarpInstr &in = emit(Op::SpinLoad, active);
    in.imm = sentinel;
    in.negate = true;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::exitIfEq(const AddrFn &addrs, std::uint32_t value,
                      std::uint32_t active)
{
    WarpInstr &in = emit(Op::ExitIf, active);
    in.imm = value;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::exitIfNe(const AddrFn &addrs, std::uint32_t sentinel,
                      std::uint32_t active)
{
    WarpInstr &in = emit(Op::ExitIf, active);
    in.imm = sentinel;
    in.negate = true;
    fillAddrs(in, addrs);
    return *this;
}

WarpBuilder &
WarpBuilder::halt(std::uint32_t active)
{
    emit(Op::Halt, active);
    return *this;
}

} // namespace sbrp
