#include "gpu/isa.hh"

#include <sstream>

namespace sbrp
{

bool
isMemOp(Op op)
{
    switch (op) {
      case Op::Load:
      case Op::Store:
      case Op::AtomicAdd:
      case Op::PAcq:
      case Op::PRel:
      case Op::SpinLoad:
      case Op::ExitIf:
        return true;
      default:
        return false;
    }
}

bool
isPersistOp(Op op)
{
    switch (op) {
      case Op::OFence:
      case Op::DFence:
      case Op::PAcq:
      case Op::PRel:
        return true;
      default:
        return false;
    }
}

const char *
toString(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::LaneSum: return "lane_sum";
      case Op::LaneMax: return "lane_max";
      case Op::Compute: return "compute";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::AtomicAdd: return "atomic_add";
      case Op::Barrier: return "barrier";
      case Op::Fence: return "fence";
      case Op::OFence: return "ofence";
      case Op::DFence: return "dfence";
      case Op::PAcq: return "pacq";
      case Op::PRel: return "prel";
      case Op::SpinLoad: return "spin_load";
      case Op::ExitIf: return "exit_if";
      case Op::Halt: return "halt";
    }
    return "?";
}

std::string
WarpInstr::describe() const
{
    std::ostringstream oss;
    oss << toString(op) << " scope=" << toString(scope)
        << " active=0x" << std::hex << active << std::dec;
    if (!laneAddrs.empty())
        oss << " addr[0]=0x" << std::hex << laneAddrs[0] << std::dec;
    if (src == kImmOperand)
        oss << " imm=" << imm;
    else
        oss << " src=r" << int(src);
    return oss.str();
}

} // namespace sbrp
