#include "gpu/gpu_system.hh"

#include <cstdio>
#include <deque>
#include <iomanip>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "mem/address_map.hh"
#include "obs/timeseries.hh"

namespace sbrp
{

GpuSystem::GpuSystem(const SystemConfig &cfg, NvmDevice &nvm,
                     ExecutionTrace *trace, TraceSink *sink,
                     PersistProvenance *prov, MetricsTimeseries *metrics)
    : cfg_(cfg),
      nvm_(nvm),
      trace_(trace),
      sink_(sink),
      metrics_(metrics),
      gddrBump_(addr_map::kGddrBase)
{
    cfg_.validate();

    // Power-up: the volatile view of NVM reads through to the durable
    // image; writes stay volatile until the persistence domain commits.
    mem_.setBacking(&nvm_.durable());

    // Register trace components in a fixed order so pids are stable:
    // system, fabric, nvm, then sm0..smN.
    TraceBuffer *tb_fabric = nullptr;
    TraceBuffer *tb_nvm = nullptr;
    if (sink_) {
        sink_->setClock(sched_.clockPtr());
        tbSystem_ = sink_->buffer("system");
        tb_fabric = sink_->buffer("fabric");
        tb_nvm = sink_->buffer("nvm");
    }

    fabric_ = std::make_unique<MemoryFabric>(cfg_, sched_.events(), nvm_,
                                             mem_, trace_);
    fabric_->setTrace(tb_fabric);
    fabric_->setProvenance(prov);
    stats_.add(&fabric_->stats());
    SmObserver *observer = this;   // Private base: convert in-class.
    for (SmId i = 0; i < cfg_.numSms; ++i) {
        TraceBuffer *tb_sm =
            sink_ ? sink_->buffer("sm" + std::to_string(i)) : nullptr;
        sms_.push_back(std::make_unique<Sm>(i, cfg_, *fabric_, mem_,
                                            sched_, trace_, tb_sm,
                                            observer, prov));
        stats_.add(&sms_.back()->stats());
        stats_.add(&sms_.back()->l1Stats());
    }

    if (sink_ || metrics_) {
        // WPQ occupancy approximation: the device drains at the media
        // write bandwidth, in lines per cycle.
        nvm_.setWpqDrainRate(cfg_.nvmWriteBytesPerCycle * cfg_.nvmBwScale /
                             cfg_.lineBytes);
    }
    if (sink_)
        nvm_.setTrace(tb_nvm);
    if (metrics_) {
        metrics_->bindRegistry(stats_);
        nvm_.setClock(sched_.clockPtr());

        // Boundary gauges: instantaneous machine pressure, sampled in
        // this (deterministic) registration order at every window close.
        metrics_->addGauge("pb_occupancy", [this] {
            std::uint64_t total = 0;
            for (const auto &sm : sms_)
                total += sm->model().pbOccupancy();
            return total;
        });
        metrics_->addGauge("wpq_depth",
                           [this] { return nvm_.wpqDepth(sched_.now()); });
        metrics_->addGauge("nvm_write_backlog", [this] {
            return static_cast<std::uint64_t>(
                fabric_->nvmWriteBacklog(sched_.now()));
        });
        metrics_->addGauge("pcie_backlog", [this] {
            return static_cast<std::uint64_t>(
                fabric_->pcieBacklog(sched_.now()));
        });

        // Cycle-ledger categories as cumulative series, so each window
        // carries its own cycle-breakdown shares.
        for (std::size_t c = 0; c < kNumCycleCats; ++c) {
            const auto cat = static_cast<CycleCat>(c);
            metrics_->addCumulative(
                std::string("cycle_breakdown.") + toString(cat),
                [this, cat] {
                    std::uint64_t total = 0;
                    for (const auto &sm : sms_)
                        total += sm->ledger().cycles(cat);
                    return total;
                });
        }
        metrics_->addCumulative("cycle_breakdown.warp_active_cycles",
                                [this] {
                                    std::uint64_t total = 0;
                                    for (const auto &sm : sms_)
                                        total +=
                                            sm->ledger().warpActiveCycles();
                                    return total;
                                });
    }
}

GpuSystem::~GpuSystem()
{
    if (sink_) {
        // The NvmDevice and the sink outlive this system (crash model):
        // detach the device's buffer reference and the clock pointer,
        // preserving everything emitted so far.
        nvm_.setTrace(nullptr);
        sink_->flushAll();
        sink_->setClock(nullptr);
    }
    if (metrics_) {
        // Same lifetime rule for the metrics clock: the device outlives
        // this system across simulated crashes. The gauge/cumulative
        // callbacks capture this system, so drop them too — the sampler
        // itself may outlive us (export, re-attach after a power cycle).
        nvm_.setClock(nullptr);
        metrics_->clearCallbacks();
    }
}

Addr
GpuSystem::gddrAlloc(std::uint64_t bytes)
{
    if (bytes == 0)
        sbrp_fatal("zero-byte GDDR allocation");
    Addr base = gddrBump_;
    gddrBump_ += (bytes + 255) / 256 * 256;
    if (gddrBump_ >= addr_map::kNvmBase)
        sbrp_fatal("GDDR window exhausted");
    return base;
}

void
GpuSystem::smIdleChanged(SmId id, bool idle)
{
    (void)id;
    if (idle) {
        sbrp_assert(busySms_ > 0, "idle-SM underflow");
        --busySms_;
    } else {
        ++busySms_;
    }
}

void
GpuSystem::smSlotsFreed(SmId id)
{
    (void)id;
    dispatchRetry_ = true;
}

void
GpuSystem::finalizeAllSms()
{
    for (auto &sm : sms_)
        sm->finalizeLaunch(sched_.now());
}

std::uint64_t
GpuSystem::CycleBreakdown::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : cycles)
        sum += c;
    return sum;
}

std::uint64_t
GpuSystem::CycleBreakdown::warpCycles() const
{
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kFirstDrainCat; ++c)
        sum += cycles[c];
    return sum;
}

std::uint64_t
GpuSystem::CycleBreakdown::drainCycles() const
{
    std::uint64_t sum = 0;
    for (std::size_t c = kFirstDrainCat; c < kNumCycleCats; ++c)
        sum += cycles[c];
    return sum;
}

GpuSystem::CycleBreakdown
GpuSystem::cycleBreakdown() const
{
    CycleBreakdown bd;
    for (const auto &sm : sms_) {
        const CycleLedger &l = sm->ledger();
        for (std::size_t c = 0; c < kNumCycleCats; ++c)
            bd.cycles[c] += l.cycles(static_cast<CycleCat>(c));
        bd.warpActiveCycles += l.warpActiveCycles();
    }
    return bd;
}

std::string
GpuSystem::cycleBreakdownJson() const
{
    const CycleBreakdown bd = cycleBreakdown();
    const std::uint64_t total = bd.total();
    std::ostringstream oss;
    oss << "\"cycle_breakdown\": {";
    oss << "\n    \"total_cycles\": " << total;
    oss << ",\n    \"warp_cycles\": " << bd.warpCycles();
    oss << ",\n    \"drain_cycles\": " << bd.drainCycles();
    oss << ",\n    \"warp_active_cycles\": " << bd.warpActiveCycles;
    oss << ",\n    \"categories\": {";
    for (std::size_t c = 0; c < kNumCycleCats; ++c) {
        double pct = total ? 100.0 * static_cast<double>(bd.cycles[c]) /
                                 static_cast<double>(total)
                           : 0.0;
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2f", pct);
        oss << (c ? "," : "") << "\n      \""
            << toString(static_cast<CycleCat>(c))
            << "\": {\"cycles\": " << bd.cycles[c] << ", \"pct\": " << buf
            << "}";
    }
    oss << "\n    },\n    \"per_sm\": {";
    for (SmId i = 0; i < static_cast<SmId>(sms_.size()); ++i) {
        const CycleLedger &l = sms_[i]->ledger();
        oss << (i ? "," : "") << "\n      \"sm" << i << "\": {";
        bool first = true;
        for (std::size_t c = 0; c < kNumCycleCats; ++c) {
            std::uint64_t v = l.cycles(static_cast<CycleCat>(c));
            if (v == 0)
                continue;
            oss << (first ? "" : ", ") << "\""
                << toString(static_cast<CycleCat>(c)) << "\": " << v;
            first = false;
        }
        oss << "}";
    }
    oss << "\n    }\n  }";
    return oss.str();
}

std::string
GpuSystem::cycleBreakdownTable() const
{
    std::ostringstream oss;
    oss << "--- cycle breakdown (cycles, per SM) ---\n";
    oss << std::left << std::setw(6) << "sm" << std::right;
    for (std::size_t c = 0; c < kNumCycleCats; ++c)
        oss << std::setw(11) << shortName(static_cast<CycleCat>(c));
    oss << "\n";
    for (SmId i = 0; i < static_cast<SmId>(sms_.size()); ++i) {
        const CycleLedger &l = sms_[i]->ledger();
        oss << std::left << std::setw(6) << ("sm" + std::to_string(i))
            << std::right;
        for (std::size_t c = 0; c < kNumCycleCats; ++c)
            oss << std::setw(11) << l.cycles(static_cast<CycleCat>(c));
        oss << "\n";
    }
    const CycleBreakdown bd = cycleBreakdown();
    oss << std::left << std::setw(6) << "TOTAL" << std::right;
    for (std::size_t c = 0; c < kNumCycleCats; ++c)
        oss << std::setw(11) << bd.cycles[c];
    oss << "\n";
    return oss.str();
}

bool
GpuSystem::allDrained() const
{
    for (const auto &sm : sms_) {
        if (!sm->drained())
            return false;
    }
    return true;
}

GpuSystem::LaunchResult
GpuSystem::launch(const KernelProgram &kernel,
                  std::optional<Cycle> crash_at)
{
    if (crashed_)
        sbrp_fatal("launch on a crashed GpuSystem; power-cycle instead");
    if (kernel.warpsPerBlock() > cfg_.maxWarpsPerSm) {
        sbrp_fatal("kernel '%s': block needs %s warps but an SM holds %s",
                   kernel.name(), kernel.warpsPerBlock(),
                   cfg_.maxWarpsPerSm);
    }

    Cycle start = sched_.now();
    const char *span_name = nullptr;
    if (tbSystem_) {
        span_name = sink_->intern("kernel:" + kernel.name());
        sink_->setTrackName("system", 0, "kernel");
        sink_->setTrackName("system", 1, "drain");
    }
    std::deque<BlockId> pending;
    for (BlockId b = 0; b < kernel.numBlocks(); ++b)
        pending.push_back(b);

    bool draining = false;
    Cycle exec_end = 0;
    dispatchRetry_ = true;

    // Watchdog heartbeat: instructions retired, warps finished, fabric
    // completions. Spin polls and failed issue attempts are deliberately
    // not progress — a kernel stuck polling an unsatisfiable acquire
    // must still trip the watchdog.
    auto progress_now = [this]() {
        std::uint64_t p = fabric_->completedEvents();
        for (auto &sm : sms_)
            p += sm->progressEvents();
        return p;
    };
    std::uint64_t last_progress = progress_now();
    Cycle last_progress_cycle = start;

    while (true) {
        // Jump the clock straight to the earliest cycle anything can
        // happen on: a pending event, a component wake, a dispatch
        // retry, the watchdog deadline or the requested crash point
        // (which must fire at its exact cycle even mid-skip).
        Cycle next = sched_.nextActivity();
        if (!pending.empty() && dispatchRetry_)
            next = std::min(next, sched_.now() + 1);
        next = std::min(next,
                        last_progress_cycle + cfg_.watchdogCycles + 1);
        if (crash_at)
            next = std::min(next, start + *crash_at);
        next = std::max(next, sched_.now() + 1);
        // Close metrics windows before advancing: no activity exists
        // strictly between now and next, so a snapshot here is exact at
        // every window boundary in (now, next] — activity at `next`
        // itself belongs to the window that contains it.
        if (metrics_)
            metrics_->closeThrough(next);
        sched_.advanceTo(next);

        // Dispatch blocks round-robin onto SMs with room. Free-slot
        // counts only change on launch (here) and on block teardown
        // (which sets dispatchRetry_), so skipped scans could not have
        // found a target.
        if (dispatchRetry_) {
            while (!pending.empty()) {
                Sm *target = nullptr;
                for (auto &sm : sms_) {
                    if (sm->canAccept(kernel.warpsPerBlock()) &&
                            (!target ||
                             sm->freeSlots() > target->freeSlots())) {
                        target = sm.get();
                    }
                }
                if (!target) {
                    dispatchRetry_ = false;
                    break;
                }
                target->launchBlock(kernel, pending.front());
                pending.pop_front();
            }
        }

        for (auto &sm : sms_) {
            if (sched_.due(sm->schedId(), next))
                sm->tick(next);
        }

        if (crash_at && next - start >= *crash_at) {
            crashed_ = true;
            finalizeAllSms();
            if (metrics_)
                metrics_->finalize(sched_.now());
            if (tbSystem_) {
                tbSystem_->spanAt(span_name, start, next, 0);
                tbSystem_->instant("crash", 0);
                sink_->flushAll();
            }
            return LaunchResult{next - start, next - start, true};
        }

        if (pending.empty() && busySms_ == 0) {
            if (!draining) {
                draining = true;
                exec_end = next - start;
                for (auto &sm : sms_)
                    sm->beginDrain();
            }
            if (allDrained() && fabric_->idle() &&
                    sched_.events().empty()) {
                break;
            }
        }

        std::uint64_t progress = progress_now();
        if (progress != last_progress) {
            last_progress = progress;
            last_progress_cycle = next;
        } else if (next - last_progress_cycle > cfg_.watchdogCycles) {
            sbrp_panic("watchdog: kernel '%s' made no progress in %s "
                       "cycles (deadlock or unsatisfiable spin?)",
                       kernel.name(), cfg_.watchdogCycles);
        }
    }

    finalizeAllSms();
    if (metrics_)
        metrics_->finalize(sched_.now());
    if (tbSystem_) {
        tbSystem_->spanAt(span_name, start, start + exec_end, 0);
        tbSystem_->spanAt("drain", start + exec_end, sched_.now(), 1);
        sink_->flushAll();
    }
    return LaunchResult{sched_.now() - start, exec_end, false};
}

std::uint64_t
GpuSystem::sumSmStat(const std::string &counter) const
{
    return stats_.sum("sm", counter);
}

} // namespace sbrp
