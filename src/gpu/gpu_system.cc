#include "gpu/gpu_system.hh"

#include <deque>
#include <string>

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "mem/address_map.hh"

namespace sbrp
{

GpuSystem::GpuSystem(const SystemConfig &cfg, NvmDevice &nvm,
                     ExecutionTrace *trace, TraceSink *sink)
    : cfg_(cfg),
      nvm_(nvm),
      trace_(trace),
      sink_(sink),
      gddrBump_(addr_map::kGddrBase)
{
    cfg_.validate();

    // Power-up: the volatile view of NVM reads through to the durable
    // image; writes stay volatile until the persistence domain commits.
    mem_.setBacking(&nvm_.durable());

    // Register trace components in a fixed order so pids are stable:
    // system, fabric, nvm, then sm0..smN.
    TraceBuffer *tb_fabric = nullptr;
    TraceBuffer *tb_nvm = nullptr;
    if (sink_) {
        sink_->setClock(&cycle_);
        tbSystem_ = sink_->buffer("system");
        tb_fabric = sink_->buffer("fabric");
        tb_nvm = sink_->buffer("nvm");
    }

    fabric_ = std::make_unique<MemoryFabric>(cfg_, events_, nvm_, mem_,
                                             trace_);
    fabric_->setTrace(tb_fabric);
    stats_.add(&fabric_->stats());
    for (SmId i = 0; i < cfg_.numSms; ++i) {
        TraceBuffer *tb_sm =
            sink_ ? sink_->buffer("sm" + std::to_string(i)) : nullptr;
        sms_.push_back(std::make_unique<Sm>(i, cfg_, *fabric_, mem_,
                                            events_, trace_, tb_sm));
        stats_.add(&sms_.back()->stats());
        stats_.add(&sms_.back()->l1Stats());
    }

    if (sink_) {
        // WPQ occupancy approximation: the device drains at the media
        // write bandwidth, in lines per cycle.
        nvm_.setWpqDrainRate(cfg_.nvmWriteBytesPerCycle * cfg_.nvmBwScale /
                             cfg_.lineBytes);
        nvm_.setTrace(tb_nvm);
    }
}

GpuSystem::~GpuSystem()
{
    if (sink_) {
        // The NvmDevice and the sink outlive this system (crash model):
        // detach the device's buffer reference and the clock pointer,
        // preserving everything emitted so far.
        nvm_.setTrace(nullptr);
        sink_->flushAll();
        sink_->setClock(nullptr);
    }
}

Addr
GpuSystem::gddrAlloc(std::uint64_t bytes)
{
    if (bytes == 0)
        sbrp_fatal("zero-byte GDDR allocation");
    Addr base = gddrBump_;
    gddrBump_ += (bytes + 255) / 256 * 256;
    if (gddrBump_ >= addr_map::kNvmBase)
        sbrp_fatal("GDDR window exhausted");
    return base;
}

bool
GpuSystem::allIdle() const
{
    for (const auto &sm : sms_) {
        if (!sm->idle())
            return false;
    }
    return true;
}

bool
GpuSystem::allDrained() const
{
    for (const auto &sm : sms_) {
        if (!sm->drained())
            return false;
    }
    return true;
}

GpuSystem::LaunchResult
GpuSystem::launch(const KernelProgram &kernel,
                  std::optional<Cycle> crash_at)
{
    if (crashed_)
        sbrp_fatal("launch on a crashed GpuSystem; power-cycle instead");
    if (kernel.warpsPerBlock() > cfg_.maxWarpsPerSm) {
        sbrp_fatal("kernel '%s': block needs %s warps but an SM holds %s",
                   kernel.name(), kernel.warpsPerBlock(),
                   cfg_.maxWarpsPerSm);
    }

    Cycle start = cycle_;
    const char *span_name = nullptr;
    if (tbSystem_) {
        span_name = sink_->intern("kernel:" + kernel.name());
        sink_->setTrackName("system", 0, "kernel");
        sink_->setTrackName("system", 1, "drain");
    }
    std::deque<BlockId> pending;
    for (BlockId b = 0; b < kernel.numBlocks(); ++b)
        pending.push_back(b);

    bool draining = false;
    Cycle exec_end = 0;
    while (true) {
        ++cycle_;
        events_.runUntil(cycle_);

        // Dispatch blocks round-robin onto SMs with room.
        while (!pending.empty()) {
            Sm *target = nullptr;
            for (auto &sm : sms_) {
                if (sm->canAccept(kernel.warpsPerBlock()) &&
                        (!target ||
                         sm->freeSlots() > target->freeSlots())) {
                    target = sm.get();
                }
            }
            if (!target)
                break;
            target->launchBlock(kernel, pending.front());
            pending.pop_front();
        }

        for (auto &sm : sms_)
            sm->tick(cycle_);

        if (crash_at && cycle_ - start >= *crash_at) {
            crashed_ = true;
            if (tbSystem_) {
                tbSystem_->spanAt(span_name, start, cycle_, 0);
                tbSystem_->instant("crash", 0);
                sink_->flushAll();
            }
            return LaunchResult{cycle_ - start, cycle_ - start, true};
        }

        if (pending.empty() && allIdle()) {
            if (!draining) {
                draining = true;
                exec_end = cycle_ - start;
                for (auto &sm : sms_)
                    sm->beginDrain();
            }
            if (allDrained() && fabric_->idle() && events_.empty())
                break;
        }

        if (cycle_ - start > cfg_.watchdogCycles) {
            sbrp_panic("watchdog: kernel '%s' made no progress in %s "
                       "cycles (deadlock or unsatisfiable spin?)",
                       kernel.name(), cfg_.watchdogCycles);
        }
    }

    if (tbSystem_) {
        tbSystem_->spanAt(span_name, start, start + exec_end, 0);
        tbSystem_->spanAt("drain", start + exec_end, cycle_, 1);
        sink_->flushAll();
    }
    return LaunchResult{cycle_ - start, exec_end, false};
}

std::uint64_t
GpuSystem::sumSmStat(const std::string &counter) const
{
    return stats_.sum("sm", counter);
}

} // namespace sbrp
