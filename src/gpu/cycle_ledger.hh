/**
 * @file
 * Exact per-warp, per-SM cycle attribution (the "where do cycles go"
 * ledger behind the paper's Section 7 discussion).
 *
 * Every active warp cycle lands in exactly one warp category, and every
 * end-of-kernel drain cycle lands in exactly one drain category:
 *
 *  - Warp categories partition each warp's resident lifetime
 *    [launch, finish) by its scheduling state: a transition at cycle T
 *    closes the span [since, T) against the *outgoing* state's category.
 *    Sums therefore telescope — Σ categories == Σ (finish - launch) ==
 *    `warps x active cycles`, exactly, with no per-cycle work and no
 *    dependence on how many cycles the sleep/wake scheduler skipped.
 *  - Drain categories partition each SM's share of the end-of-kernel
 *    drain window [drain start, launch end) by what the drain engine
 *    was doing: draining PB entries, blocked on the FSM or the flush
 *    allowance, waiting for in-flight acks behind the PCIe link / the
 *    ADR WPQ, or fully drained while peers finish (scheduler idle).
 *    Spans skipped by the scheduler are attributed in bulk on settle —
 *    legal because a sleeping SM's drain state cannot change (every
 *    completion callback settles before mutating; docs/SIM_CORE.md).
 *
 * The ledger is pure accounting: it never changes timing, so goldens
 * and traces are byte-identical with or without readers.
 */

#ifndef SBRP_GPU_CYCLE_LEDGER_HH
#define SBRP_GPU_CYCLE_LEDGER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

class StatGroup;

/** Exclusive cycle-attribution categories (warp, then drain). */
enum class CycleCat : std::uint8_t
{
    // --- Warp categories: partition resident-warp cycles ---
    Compute,       ///< Executing a multi-cycle compute op (Busy).
    Ready,         ///< Runnable: issuing 1-cycle ops or awaiting a slot.
    MemLatency,    ///< Outstanding loads/atomics (WaitMem).
    Barrier,       ///< Parked at a block barrier.
    SpinAcquire,   ///< Spinning on a pAcq/SpinLoad flag.
    OdmStall,      ///< SBRP order delay mask (dFence, device pRel).
    EdmStall,      ///< SBRP eviction delay mask (coalesce/evict/PB-full).
    FenceDrain,    ///< Epoch/barrier-model fence waiting for its drain.
    // --- Drain categories: partition end-of-kernel drain cycles ---
    PbDrain,       ///< Drain engine flushing PB occupancy.
    FsmFlushWait,  ///< Head persist blocked on an FSM hazard.
    ActrWait,      ///< Head persist blocked on the flush allowance.
    PcieBacklog,   ///< PB empty; acks in flight behind the PCIe link.
    WpqFull,       ///< PB empty; acks in flight at the ADR WPQ.
    SchedulerIdle, ///< This SM drained; the system is still finishing.
};

inline constexpr std::size_t kNumCycleCats = 14;
inline constexpr std::size_t kFirstDrainCat =
    static_cast<std::size_t>(CycleCat::PbDrain);

/** Stable snake_case name (stats keys, JSON, bench metrics). */
const char *toString(CycleCat c);

/** Abbreviated column header for the --stats text table. */
const char *shortName(CycleCat c);

inline bool
isWarpCategory(CycleCat c)
{
    return static_cast<std::size_t>(c) < kFirstDrainCat;
}

/**
 * One SM's ledger. The SM stamps transitions with the scheduler's
 * component-visible clock; all arithmetic is exact 64-bit cycle counts.
 */
class CycleLedger
{
  public:
    explicit CycleLedger(std::uint32_t warp_slots);

    /** A warp became resident in `slot` at `now` (initial state Ready). */
    void beginWarp(WarpSlot slot, Cycle now);

    /** The slot's warp entered the state mapped to `to` at `now`:
        closes [since, now) against the outgoing category. */
    void warpTransition(WarpSlot slot, CycleCat to, Cycle now);

    /** The slot's warp finished at `now`: closes its last span and adds
        (now - launch) to the independent active-cycle tally. */
    void endWarp(WarpSlot slot, Cycle now);

    /**
     * Closes the open spans of still-resident warps through `now`
     * without ending them (crash finalization). Idempotent: a second
     * call at the same cycle adds nothing.
     */
    void settleWarps(Cycle now);

    /** Attributes `cycles` drain-window cycles to a drain category. */
    void accrueDrain(CycleCat cat, std::uint64_t cycles);

    std::uint64_t cycles(CycleCat c) const
    { return cat_[static_cast<std::size_t>(c)]; }

    /** Sum over the warp categories. Invariant: == warpActiveCycles(). */
    std::uint64_t warpCycles() const;

    /** Sum over the drain categories. Invariant (crash-free launch):
        == launch cycles - exec cycles, per SM. */
    std::uint64_t drainCycles() const;

    /** Independently tracked Σ per-warp (finish - launch); the warp
        half of the sum invariant is checked against this. */
    std::uint64_t warpActiveCycles() const { return warpActiveCycles_; }

    /** Publishes the categories as `ledger_<name>` counters. */
    void publish(StatGroup &sg) const;

  private:
    struct Slot
    {
        Cycle since = 0;   ///< Current span's start cycle.
        Cycle start = 0;   ///< Resident since (active-cycle tally).
        CycleCat cat = CycleCat::Ready;
        bool active = false;
    };

    std::array<std::uint64_t, kNumCycleCats> cat_{};
    std::vector<Slot> slots_;
    std::uint64_t warpActiveCycles_ = 0;
};

} // namespace sbrp

#endif // SBRP_GPU_CYCLE_LEDGER_HH
