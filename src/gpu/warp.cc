#include "gpu/warp.hh"

namespace sbrp
{

Warp::Warp(const WarpProgram *program, BlockId block,
           std::uint32_t warp_in_block, WarpSlot slot, SmId sm,
           ThreadId first_thread)
    : program_(program),
      block_(block),
      warpInBlock_(warp_in_block),
      slot_(slot),
      sm_(sm),
      firstThread_(first_thread)
{
}

} // namespace sbrp
