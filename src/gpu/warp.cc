#include "gpu/warp.hh"

namespace sbrp
{

const char *
toString(WarpState s)
{
    switch (s) {
      case WarpState::Ready: return "Ready";
      case WarpState::Busy: return "Busy";
      case WarpState::WaitMem: return "WaitMem";
      case WarpState::WaitBarrier: return "WaitBarrier";
      case WarpState::WaitSpin: return "WaitSpin";
      case WarpState::WaitModel: return "WaitModel";
      case WarpState::ModelRetry: return "ModelRetry";
      case WarpState::Finished: return "Finished";
    }
    return "?";
}

Warp::Warp(const WarpProgram *program, BlockId block,
           std::uint32_t warp_in_block, WarpSlot slot, SmId sm,
           ThreadId first_thread)
    : program_(program),
      block_(block),
      warpInBlock_(warp_in_block),
      slot_(slot),
      sm_(sm),
      firstThread_(first_thread)
{
}

} // namespace sbrp
