#include "gpu/mem_ctrl.hh"

#include <cstring>
#include <utility>

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "mem/address_map.hh"

namespace sbrp
{

MemoryFabric::MemoryFabric(const SystemConfig &cfg, EventQueue &events,
                           NvmDevice &nvm, FunctionalMemory &volatile_mem,
                           ExecutionTrace *trace)
    : cfg_(cfg),
      events_(events),
      nvm_(nvm),
      volatileMem_(volatile_mem),
      trace_(trace),
      stats_("fabric"),
      l2_(std::make_unique<L2Cache>(cfg, stats_)),
      pcieToHost_(cfg.pcieBytesPerCycle),
      pcieFromHost_(cfg.pcieBytesPerCycle)
{
    double per = 1.0 / cfg.memChannels;
    for (std::uint32_t c = 0; c < cfg.memChannels; ++c) {
        gddr_.emplace_back(cfg.gddrBytesPerCycle * per);
        nvmRead_.emplace_back(cfg.nvmReadBytesPerCycle * cfg.nvmBwScale *
                              per);
        nvmWrite_.emplace_back(cfg.nvmWriteBytesPerCycle * cfg.nvmBwScale *
                               per);
    }
}

Channel &
MemoryFabric::gddrChannel(Addr line_addr)
{
    return gddr_[(line_addr / cfg_.lineBytes) % gddr_.size()];
}

Channel &
MemoryFabric::nvmReadChannel(Addr line_addr)
{
    return nvmRead_[(line_addr / cfg_.lineBytes) % nvmRead_.size()];
}

Channel &
MemoryFabric::nvmWriteChannel(Addr line_addr)
{
    return nvmWrite_[(line_addr / cfg_.lineBytes) % nvmWrite_.size()];
}

void
MemoryFabric::traceQueues(Cycle now)
{
    // Queueing in this fabric is implicit in each channel's next-free
    // cycle, so "queue depth" is the backlog in cycles until the channel
    // could accept a new transfer.
    auto backlog = [now](const Channel &ch) -> std::uint64_t {
        Cycle nf = ch.nextFree();
        return nf > now ? nf - now : 0;
    };
    std::uint64_t wq = 0;
    for (const Channel &ch : nvmWrite_)
        wq += backlog(ch);
    std::uint64_t rq = 0;
    for (const Channel &ch : nvmRead_)
        rq += backlog(ch);
    tb_->counter("mc_write_backlog", wq);
    tb_->counter("mc_read_backlog", rq);
    if (cfg_.nvmBehindPcie()) {
        tb_->counter("pcie_backlog",
                     backlog(pcieToHost_) + backlog(pcieFromHost_));
    }
}

void
MemoryFabric::finish(std::function<void()> cb, Cycle when)
{
    ++inflight_;
    events_.schedule(when, [this, cb = std::move(cb)]() {
        --inflight_;
        if (cb)
            cb();
    });
}

void
MemoryFabric::handleL2Eviction(const L2Cache::Eviction &ev, Cycle now)
{
    if (!ev.happened || !ev.dirty)
        return;
    // Dirty L2 lines are always volatile (persists write through clean).
    sbrp_assert(!addr_map::isNvm(ev.lineAddr),
                "dirty NVM line %s in L2", ev.lineAddr);
    Cycle done = gddrChannel(ev.lineAddr).acquire(now, cfg_.lineBytes);
    stats_.stat("gddr_writes").inc();
    finish(nullptr, done);
}

void
MemoryFabric::l2AllocateClean(Addr line_addr, Cycle now)
{
    L2Cache::Eviction ev;
    l2_->allocate(line_addr, false, now, &ev);
    handleL2Eviction(ev, now);
}

void
MemoryFabric::l2AllocateDirty(Addr line_addr, Cycle now)
{
    L2Cache::Eviction ev;
    l2_->allocate(line_addr, true, now, &ev);
    handleL2Eviction(ev, now);
}

void
MemoryFabric::readLine(Addr line_addr, Cycle now,
                       std::function<void()> on_complete)
{
    Cycle t = now + cfg_.l2Latency;
    if (l2_->lookup(line_addr, now)) {
        stats_.stat("l2_read_hits").inc();
        finish(std::move(on_complete), t);
        return;
    }
    stats_.stat("l2_read_misses").inc();

    Cycle done;
    if (!addr_map::isNvm(line_addr)) {
        done = gddrChannel(line_addr).acquire(t, cfg_.lineBytes) +
               cfg_.gddrLatency;
        stats_.stat("gddr_reads").inc();
    } else if (!cfg_.nvmBehindPcie()) {
        done = nvmReadChannel(line_addr).acquire(t, cfg_.lineBytes) +
               cfg_.nvmLatency;
        stats_.stat("nvm_reads").inc();
    } else {
        // Request crosses PCIe, is served by the host-side NVM, and the
        // data returns over PCIe.
        Cycle at_host = t + cfg_.pcieLatency;
        Cycle read_done =
            nvmReadChannel(line_addr).acquire(at_host, cfg_.lineBytes) +
            cfg_.nvmLatency;
        done = pcieFromHost_.acquire(read_done, cfg_.lineBytes) +
               cfg_.pcieLatency;
        stats_.stat("nvm_reads").inc();
        stats_.stat("pcie_read_bytes").inc(cfg_.lineBytes);
    }
    if (tb_)
        traceQueues(now);

    finish([this, line_addr, done, cb = std::move(on_complete)]() {
        l2AllocateClean(line_addr, done);
        if (cb)
            cb();
    }, done);
}

void
MemoryFabric::persistWrite(Addr line_addr, Cycle now,
                           std::function<void()> on_ack)
{
    // Snapshot the line at flush time: this is the data leaving the L1.
    std::vector<std::uint8_t> payload(cfg_.lineBytes);
    volatileMem_.readBlock(line_addr, payload.data(), cfg_.lineBytes);
    std::vector<std::uint64_t> ids;
    if (trace_)
        ids = trace_->takePending(line_addr);
    persistWritePayload(line_addr, std::move(payload), std::move(ids),
                        now, std::move(on_ack));
}

void
MemoryFabric::persistWritePayload(Addr line_addr,
                                  std::vector<std::uint8_t> payload,
                                  std::vector<std::uint64_t> ids,
                                  Cycle now, std::function<void()> on_ack)
{
    sbrp_assert(addr_map::isNvm(line_addr),
                "persist write to non-NVM line %s", line_addr);
    stats_.stat("persist_writes").inc();

    // Write through the L2 so later reads from any SM see the data.
    Cycle t = now + cfg_.l2Latency;
    l2AllocateClean(line_addr, now);

    auto commit = [this, line_addr, payload = std::move(payload),
                   ids = std::move(ids)]() mutable {
        nvm_.commitLine(line_addr, payload.data(),
                        static_cast<std::uint32_t>(payload.size()));
        if (trace_ && !ids.empty())
            trace_->recordCommit(std::move(ids));
    };

    if (!cfg_.nvmBehindPcie()) {
        // PM-near: durable when the ADR memory controller's WPQ accepts
        // the write (transfer complete); the 300 ns media latency hides
        // behind the WPQ and shows up only as write bandwidth.
        Cycle accept = nvmWriteChannel(line_addr).acquire(t,
                                                          cfg_.lineBytes);
        if (tb_)
            traceQueues(now);
        finish([commit = std::move(commit),
                ack = std::move(on_ack)]() mutable {
            commit();
            if (ack)
                ack();
        }, accept);
        return;
    }

    // PM-far: cross PCIe to the host; the acknowledgement travels back
    // over PCIe before the SM's ACTR can drop.
    Cycle at_host = pcieToHost_.acquire(t, cfg_.lineBytes) +
                    cfg_.pcieLatency;
    stats_.stat("pcie_write_bytes").inc(cfg_.lineBytes);
    Cycle mc_accept = nvmWriteChannel(line_addr).acquire(at_host,
                                                         cfg_.lineBytes);
    if (tb_)
        traceQueues(now);

    if (cfg_.persistPoint == PersistPoint::Eadr) {
        // eADR: durable on reaching the battery-backed host LLC; the NVM
        // write still drains behind it, consuming write bandwidth.
        finish([commit = std::move(commit),
                ack = std::move(on_ack)]() mutable {
            commit();
            if (ack)
                ack();
        }, at_host + cfg_.pcieLatency);
        finish(nullptr, mc_accept);
    } else {
        finish([commit = std::move(commit),
                ack = std::move(on_ack)]() mutable {
            commit();
            if (ack)
                ack();
        }, mc_accept + cfg_.pcieLatency);
    }
}

void
MemoryFabric::persistWriteWord(Addr addr, std::uint32_t value,
                               std::vector<std::uint64_t> ids,
                               Cycle now, std::function<void()> on_ack)
{
    sbrp_assert(addr_map::isNvm(addr),
                "persist word write to non-NVM address %s", addr);
    stats_.stat("persist_writes").inc();

    Addr line = addr_map::lineBase(addr, cfg_.lineBytes);
    constexpr std::uint32_t kSectorBytes = 32;

    Cycle t = now + cfg_.l2Latency;
    l2AllocateClean(line, now);

    auto commit = [this, addr, value, ids = std::move(ids)]() mutable {
        std::uint8_t bytes[4];
        std::memcpy(bytes, &value, 4);
        nvm_.commitLine(addr, bytes, 4);
        if (trace_ && !ids.empty())
            trace_->recordCommit(std::move(ids));
    };

    Cycle accept;
    if (!cfg_.nvmBehindPcie()) {
        accept = nvmWriteChannel(line).acquire(t, kSectorBytes);
    } else {
        Cycle at_host = pcieToHost_.acquire(t, kSectorBytes) +
                        cfg_.pcieLatency;
        stats_.stat("pcie_write_bytes").inc(kSectorBytes);
        Cycle mc_accept = nvmWriteChannel(line).acquire(at_host,
                                                        kSectorBytes);
        // The acknowledgement crosses PCIe back to the GPU.
        accept = (cfg_.persistPoint == PersistPoint::Eadr ? at_host
                                                          : mc_accept) +
                 cfg_.pcieLatency;
        if (cfg_.persistPoint == PersistPoint::Eadr)
            finish(nullptr, mc_accept);
    }
    if (tb_)
        traceQueues(now);

    finish([commit = std::move(commit), ack = std::move(on_ack)]() mutable {
        commit();
        if (ack)
            ack();
    }, accept);
}

void
MemoryFabric::volatileWriteback(Addr line_addr, Cycle now)
{
    sbrp_assert(!addr_map::isNvm(line_addr),
                "volatile writeback of NVM line %s", line_addr);
    stats_.stat("l1_writebacks").inc();
    l2AllocateDirty(line_addr, now + cfg_.l2Latency);
}

void
MemoryFabric::volatileFlush(Addr line_addr, Cycle now,
                            std::function<void()> on_ack)
{
    sbrp_assert(!addr_map::isNvm(line_addr),
                "volatile flush of NVM line %s", line_addr);
    stats_.stat("volatile_flushes").inc();
    Cycle t = now + cfg_.l2Latency;
    l2AllocateClean(line_addr, now);
    Cycle accept = gddrChannel(line_addr).acquire(t, cfg_.lineBytes);
    stats_.stat("gddr_writes").inc();
    finish(std::move(on_ack), accept);
}

} // namespace sbrp
