#include "gpu/mem_ctrl.hh"

#include <cstring>
#include <utility>

#include "common/log.hh"
#include "common/trace.hh"
#include "formal/trace.hh"
#include "mem/address_map.hh"
#include "obs/provenance.hh"

namespace sbrp
{

MemoryFabric::MemoryFabric(const SystemConfig &cfg, EventQueue &events,
                           NvmDevice &nvm, FunctionalMemory &volatile_mem,
                           ExecutionTrace *trace)
    : cfg_(cfg),
      events_(events),
      nvm_(nvm),
      volatileMem_(volatile_mem),
      trace_(trace),
      stats_("fabric"),
      l2_(std::make_unique<L2Cache>(cfg, stats_)),
      pcieToHost_(cfg.pcieBytesPerCycle),
      pcieFromHost_(cfg.pcieBytesPerCycle)
{
    double per = 1.0 / cfg.memChannels;
    for (std::uint32_t c = 0; c < cfg.memChannels; ++c) {
        gddr_.emplace_back(cfg.gddrBytesPerCycle * per);
        nvmRead_.emplace_back(cfg.nvmReadBytesPerCycle * cfg.nvmBwScale *
                              per);
        nvmWrite_.emplace_back(cfg.nvmWriteBytesPerCycle * cfg.nvmBwScale *
                               per);
    }
    if (cfg.faults.enabled()) {
        injector_ = std::make_unique<FaultInjector>(cfg.faults, cfg.seed);
        dPersistAttempts_ = &stats_.dist("persist_attempts");
    }
}

Channel &
MemoryFabric::gddrChannel(Addr line_addr)
{
    return gddr_[(line_addr / cfg_.lineBytes) % gddr_.size()];
}

Channel &
MemoryFabric::nvmReadChannel(Addr line_addr)
{
    return nvmRead_[(line_addr / cfg_.lineBytes) % nvmRead_.size()];
}

Channel &
MemoryFabric::nvmWriteChannel(Addr line_addr)
{
    return nvmWrite_[(line_addr / cfg_.lineBytes) % nvmWrite_.size()];
}

void
MemoryFabric::traceQueues(Cycle now)
{
    // Queueing in this fabric is implicit in each channel's next-free
    // cycle, so "queue depth" is the backlog in cycles until the channel
    // could accept a new transfer.
    auto backlog = [now](const Channel &ch) -> std::uint64_t {
        Cycle nf = ch.nextFree();
        return nf > now ? nf - now : 0;
    };
    std::uint64_t wq = 0;
    for (const Channel &ch : nvmWrite_)
        wq += backlog(ch);
    std::uint64_t rq = 0;
    for (const Channel &ch : nvmRead_)
        rq += backlog(ch);
    tb_->counter("mc_write_backlog", wq);
    tb_->counter("mc_read_backlog", rq);
    if (cfg_.nvmBehindPcie()) {
        tb_->counter("pcie_backlog",
                     backlog(pcieToHost_) + backlog(pcieFromHost_));
    }
}

void
MemoryFabric::finish(std::function<void()> cb, Cycle when)
{
    ++inflight_;
    events_.schedule(when, [this, cb = std::move(cb)]() {
        --inflight_;
        ++completions_;
        if (cb)
            cb();
    });
}

void
MemoryFabric::handleL2Eviction(const L2Cache::Eviction &ev, Cycle now)
{
    if (!ev.happened || !ev.dirty)
        return;
    // Dirty L2 lines are always volatile (persists write through clean).
    sbrp_assert(!addr_map::isNvm(ev.lineAddr),
                "dirty NVM line %s in L2", ev.lineAddr);
    Cycle done = gddrChannel(ev.lineAddr).acquire(now, cfg_.lineBytes);
    stats_.stat("gddr_writes").inc();
    finish(nullptr, done);
}

void
MemoryFabric::l2AllocateClean(Addr line_addr, Cycle now)
{
    L2Cache::Eviction ev;
    l2_->allocate(line_addr, false, now, &ev);
    handleL2Eviction(ev, now);
}

void
MemoryFabric::l2AllocateDirty(Addr line_addr, Cycle now)
{
    L2Cache::Eviction ev;
    l2_->allocate(line_addr, true, now, &ev);
    handleL2Eviction(ev, now);
}

void
MemoryFabric::readLine(Addr line_addr, Cycle now,
                       std::function<void()> on_complete)
{
    Cycle t = now + cfg_.l2Latency;
    if (l2_->lookup(line_addr, now)) {
        stats_.stat("l2_read_hits").inc();
        finish(std::move(on_complete), t);
        return;
    }
    stats_.stat("l2_read_misses").inc();

    Cycle done;
    if (!addr_map::isNvm(line_addr)) {
        done = gddrChannel(line_addr).acquire(t, cfg_.lineBytes) +
               cfg_.gddrLatency;
        stats_.stat("gddr_reads").inc();
    } else if (!cfg_.nvmBehindPcie()) {
        done = nvmReadChannel(line_addr).acquire(t, cfg_.lineBytes) +
               cfg_.nvmLatency;
        stats_.stat("nvm_reads").inc();
    } else {
        // Request crosses PCIe, is served by the host-side NVM, and the
        // data returns over PCIe.
        Cycle at_host = t + cfg_.pcieLatency;
        Cycle read_done =
            nvmReadChannel(line_addr).acquire(at_host, cfg_.lineBytes) +
            cfg_.nvmLatency;
        done = pcieFromHost_.acquire(read_done, cfg_.lineBytes) +
               cfg_.pcieLatency;
        stats_.stat("nvm_reads").inc();
        stats_.stat("pcie_read_bytes").inc(cfg_.lineBytes);
    }
    if (tb_)
        traceQueues(now);

    finish([this, line_addr, done, cb = std::move(on_complete)]() {
        l2AllocateClean(line_addr, done);
        if (cb)
            cb();
    }, done);
}

void
MemoryFabric::persistWrite(Addr line_addr, Cycle now,
                           PersistCallback on_ack, std::uint64_t op_id)
{
    // Snapshot the line at flush time: this is the data leaving the L1.
    std::vector<std::uint8_t> payload(cfg_.lineBytes);
    volatileMem_.readBlock(line_addr, payload.data(), cfg_.lineBytes);
    std::vector<std::uint64_t> ids;
    if (trace_)
        ids = trace_->takePending(line_addr);
    persistWritePayload(line_addr, std::move(payload), std::move(ids),
                        now, std::move(on_ack), op_id);
}

void
MemoryFabric::commitTxn(PersistTxn &txn)
{
    if (txn.isWord) {
        std::uint8_t bytes[4];
        std::memcpy(bytes, &txn.wordValue, 4);
        nvm_.commitLine(txn.addr, bytes, 4);
    } else {
        nvm_.commitLine(txn.addr, txn.payload.data(),
                        static_cast<std::uint32_t>(txn.payload.size()));
    }
    if (trace_ && !txn.ids.empty())
        trace_->recordCommit(std::move(txn.ids));
}

void
MemoryFabric::commitProvenance(std::uint64_t op_id, Cycle ack_at)
{
    if (op_id == 0)
        return;
    if (prov_) {
        prov_->recordCommit(op_id, ack_at);
        prov_->complete(op_id, ack_at, false);
    }
    if (tb_)
        tb_->flowStep("persist", op_id);
}

void
MemoryFabric::failPersist(std::shared_ptr<PersistTxn> txn, Cycle at,
                          PersistFaultKind kind)
{
    finish([this, txn, at, kind]() {
        PersistFault f;
        f.lineAddr = txn->line;
        f.kind = kind;
        f.attempts = txn->attempts;
        f.firstAttempt = txn->firstAttempt;
        f.failedAt = at;
        faults_.push_back(f);
        stats_.stat(kind == PersistFaultKind::MediaSticky
                        ? "fault_media_sticky"
                        : "fault_retry_exhausted").inc();
        if (tb_) {
            tb_->instant(kind == PersistFaultKind::MediaSticky
                             ? "fault:sticky" : "fault:exhausted");
        }
        if (dPersistAttempts_)
            dPersistAttempts_->record(txn->attempts);
        if (prov_)
            prov_->complete(txn->opId, at, true);
        if (txn->ack)
            txn->ack(PersistResult{false, f});
    }, at);
}

void
MemoryFabric::retryOrFail(std::shared_ptr<PersistTxn> txn, Cycle at,
                          PersistFaultKind kind)
{
    if (txn->attempts >= cfg_.persistRetryBudget) {
        failPersist(std::move(txn), at, kind);
        return;
    }
    // Exponential backoff, capped so the shift cannot overflow; the
    // retry budget bounds total attempts regardless.
    std::uint32_t shift = std::min<std::uint32_t>(txn->attempts - 1, 16);
    Cycle backoff = cfg_.retryBackoffBase << shift;
    stats_.stat("fault_backoff_cycles").inc(backoff);
    stats_.stat("fault_retries").inc();
    if (tb_)
        tb_->counter("fault_backoff_cycles",
                     stats_.value("fault_backoff_cycles"));
    Cycle when = at + backoff;
    finish([this, txn = std::move(txn), when]() mutable {
        startAttempt(std::move(txn), when);
    }, when);
}

void
MemoryFabric::startAttempt(std::shared_ptr<PersistTxn> txn, Cycle now)
{
    ++txn->attempts;
    if (prov_)
        prov_->noteAttempt(txn->opId);

    // A line already sticky-poisoned rejects every write outright: no
    // amount of retrying recovers an uncorrectable line.
    if (nvm_.isPoisoned(txn->line)) {
        failPersist(std::move(txn), now + 1, PersistFaultKind::MediaSticky);
        return;
    }

    Cycle at_host = now;
    if (cfg_.nvmBehindPcie()) {
        // The corrupted packet still burned wire time; link-level
        // replay resends it after the backoff.
        at_host = pcieToHost_.acquire(now, txn->wireBytes) +
                  cfg_.pcieLatency;
        stats_.stat("pcie_write_bytes").inc(txn->wireBytes);
        if (injector_->pcieCorrupt()) {
            stats_.stat("fault_pcie_replays").inc();
            if (tb_)
                tb_->instant("fault:pcie_replay");
            retryOrFail(std::move(txn),at_host,
                        PersistFaultKind::LinkReplayExhausted);
            return;
        }
    }

    // The attempt reached the persistence controller. Retries re-mark,
    // so the final (successful) attempt's arrival wins and every replay
    // and backoff cycle folds into the fabric stage.
    if (prov_)
        prov_->markArrive(txn->opId, at_host);

    Channel &ch = nvmWriteChannel(txn->line);
    const FaultSpec &fs = injector_->spec();
    if (fs.wpqCapacity > 0) {
        // Bounded WPQ: the backlog in line-transfer units approximates
        // queued entries; a full queue nacks instead of queueing.
        std::uint64_t depth =
            ch.backlog(at_host) / ch.cyclesFor(cfg_.lineBytes);
        if (depth >= fs.wpqCapacity) {
            stats_.stat("fault_wpq_nacks").inc();
            if (tb_)
                tb_->instant("fault:wpq_nack");
            retryOrFail(std::move(txn), at_host,
                        PersistFaultKind::WpqTimeout);
            return;
        }
    }

    Cycle accept = ch.acquire(at_host, txn->wireBytes);
    if (tb_)
        traceQueues(now);

    // Media outcome drawn now (deterministic draw order), applied at
    // the accept point.
    const bool sticky = injector_->mediaSticky();
    const bool transient = !sticky && injector_->mediaTransient();

    if (sticky) {
        finish([this, txn = std::move(txn), accept]() mutable {
            nvm_.poisonLine(txn->line);
            failPersist(std::move(txn), accept,
                        PersistFaultKind::MediaSticky);
        }, accept);
        return;
    }
    if (transient) {
        finish([this, txn = std::move(txn), accept]() mutable {
            stats_.stat("fault_media_transient").inc();
            if (tb_)
                tb_->instant("fault:media_retry");
            retryOrFail(std::move(txn), accept,
                        PersistFaultKind::MediaRetryExhausted);
        }, accept);
        return;
    }

    // Success. ADR: durable at WPQ accept. eADR (PM-far): durable once
    // the write reached the host LLC — which this attempt already did
    // before the media write; the ack then crosses PCIe back.
    Cycle ack_at = accept;
    Cycle domain_accept = accept;
    if (cfg_.nvmBehindPcie()) {
        // Under eADR the persistence domain is the host LLC: the op is
        // durable at at_host, and the media channel's accept (which can
        // land after the ack) is just background drain.
        if (cfg_.persistPoint == PersistPoint::Eadr)
            domain_accept = at_host;
        ack_at = domain_accept + cfg_.pcieLatency;
        if (cfg_.persistPoint == PersistPoint::Eadr)
            finish(nullptr, accept);
    }
    if (prov_)
        prov_->markAccept(txn->opId, domain_accept);
    finish([this, txn = std::move(txn), ack_at]() mutable {
        commitTxn(*txn);
        if (dPersistAttempts_)
            dPersistAttempts_->record(txn->attempts);
        commitProvenance(txn->opId, ack_at);
        if (txn->ack)
            txn->ack(PersistResult{});
    }, ack_at);
}

void
MemoryFabric::persistWritePayload(Addr line_addr,
                                  std::vector<std::uint8_t> payload,
                                  std::vector<std::uint64_t> ids,
                                  Cycle now, PersistCallback on_ack,
                                  std::uint64_t op_id)
{
    sbrp_assert(addr_map::isNvm(line_addr),
                "persist write to non-NVM line %s", line_addr);
    stats_.stat("persist_writes").inc();

    // Write through the L2 so later reads from any SM see the data.
    Cycle t = now + cfg_.l2Latency;
    l2AllocateClean(line_addr, now);

    if (injector_) {
        auto txn = std::make_shared<PersistTxn>();
        txn->addr = line_addr;
        txn->line = line_addr;
        txn->payload = std::move(payload);
        txn->ids = std::move(ids);
        txn->wireBytes = cfg_.lineBytes;
        txn->firstAttempt = now;
        txn->opId = op_id;
        txn->ack = std::move(on_ack);
        startAttempt(std::move(txn), t);
        return;
    }
    if (prov_)
        prov_->noteAttempt(op_id);

    auto commit = [this, line_addr, payload = std::move(payload),
                   ids = std::move(ids)]() mutable {
        nvm_.commitLine(line_addr, payload.data(),
                        static_cast<std::uint32_t>(payload.size()));
        if (trace_ && !ids.empty())
            trace_->recordCommit(std::move(ids));
    };

    if (!cfg_.nvmBehindPcie()) {
        // PM-near: durable when the ADR memory controller's WPQ accepts
        // the write (transfer complete); the 300 ns media latency hides
        // behind the WPQ and shows up only as write bandwidth.
        Cycle accept = nvmWriteChannel(line_addr).acquire(t,
                                                          cfg_.lineBytes);
        if (tb_)
            traceQueues(now);
        if (prov_) {
            prov_->markArrive(op_id, t);
            prov_->markAccept(op_id, accept);
        }
        finish([this, commit = std::move(commit), ack = std::move(on_ack),
                op_id, accept]() mutable {
            commit();
            commitProvenance(op_id, accept);
            if (ack)
                ack(PersistResult{});
        }, accept);
        return;
    }

    // PM-far: cross PCIe to the host; the acknowledgement travels back
    // over PCIe before the SM's ACTR can drop.
    Cycle at_host = pcieToHost_.acquire(t, cfg_.lineBytes) +
                    cfg_.pcieLatency;
    stats_.stat("pcie_write_bytes").inc(cfg_.lineBytes);
    Cycle mc_accept = nvmWriteChannel(line_addr).acquire(at_host,
                                                         cfg_.lineBytes);
    if (tb_)
        traceQueues(now);
    if (prov_)
        prov_->markArrive(op_id, at_host);

    if (cfg_.persistPoint == PersistPoint::Eadr) {
        // eADR: durable on reaching the battery-backed host LLC; the NVM
        // write still drains behind it, consuming write bandwidth.
        Cycle ack_at = at_host + cfg_.pcieLatency;
        if (prov_)
            prov_->markAccept(op_id, at_host);
        finish([this, commit = std::move(commit), ack = std::move(on_ack),
                op_id, ack_at]() mutable {
            commit();
            commitProvenance(op_id, ack_at);
            if (ack)
                ack(PersistResult{});
        }, ack_at);
        finish(nullptr, mc_accept);
    } else {
        Cycle ack_at = mc_accept + cfg_.pcieLatency;
        if (prov_)
            prov_->markAccept(op_id, mc_accept);
        finish([this, commit = std::move(commit), ack = std::move(on_ack),
                op_id, ack_at]() mutable {
            commit();
            commitProvenance(op_id, ack_at);
            if (ack)
                ack(PersistResult{});
        }, ack_at);
    }
}

void
MemoryFabric::persistWriteWord(Addr addr, std::uint32_t value,
                               std::vector<std::uint64_t> ids,
                               Cycle now, PersistCallback on_ack,
                               std::uint64_t op_id)
{
    sbrp_assert(addr_map::isNvm(addr),
                "persist word write to non-NVM address %s", addr);
    stats_.stat("persist_writes").inc();

    Addr line = addr_map::lineBase(addr, cfg_.lineBytes);
    constexpr std::uint32_t kSectorBytes = 32;

    Cycle t = now + cfg_.l2Latency;
    l2AllocateClean(line, now);

    if (injector_) {
        auto txn = std::make_shared<PersistTxn>();
        txn->addr = addr;
        txn->line = line;
        txn->isWord = true;
        txn->wordValue = value;
        txn->ids = std::move(ids);
        txn->wireBytes = kSectorBytes;
        txn->firstAttempt = now;
        txn->opId = op_id;
        txn->ack = std::move(on_ack);
        startAttempt(std::move(txn), t);
        return;
    }
    if (prov_)
        prov_->noteAttempt(op_id);

    auto commit = [this, addr, value, ids = std::move(ids)]() mutable {
        std::uint8_t bytes[4];
        std::memcpy(bytes, &value, 4);
        nvm_.commitLine(addr, bytes, 4);
        if (trace_ && !ids.empty())
            trace_->recordCommit(std::move(ids));
    };

    Cycle accept;
    if (!cfg_.nvmBehindPcie()) {
        accept = nvmWriteChannel(line).acquire(t, kSectorBytes);
        if (prov_) {
            prov_->markArrive(op_id, t);
            prov_->markAccept(op_id, accept);
        }
    } else {
        Cycle at_host = pcieToHost_.acquire(t, kSectorBytes) +
                        cfg_.pcieLatency;
        stats_.stat("pcie_write_bytes").inc(kSectorBytes);
        Cycle mc_accept = nvmWriteChannel(line).acquire(at_host,
                                                        kSectorBytes);
        // The acknowledgement crosses PCIe back to the GPU. Under eADR
        // the op is durable at the host LLC (at_host) — the media
        // accept is background drain and may even land after the ack.
        Cycle domain_accept =
            cfg_.persistPoint == PersistPoint::Eadr ? at_host : mc_accept;
        accept = domain_accept + cfg_.pcieLatency;
        if (prov_) {
            prov_->markArrive(op_id, at_host);
            prov_->markAccept(op_id, domain_accept);
        }
        if (cfg_.persistPoint == PersistPoint::Eadr)
            finish(nullptr, mc_accept);
    }
    if (tb_)
        traceQueues(now);

    finish([this, commit = std::move(commit), ack = std::move(on_ack),
            op_id, accept]() mutable {
        commit();
        commitProvenance(op_id, accept);
        if (ack)
            ack(PersistResult{});
    }, accept);
}

void
MemoryFabric::volatileWriteback(Addr line_addr, Cycle now)
{
    sbrp_assert(!addr_map::isNvm(line_addr),
                "volatile writeback of NVM line %s", line_addr);
    stats_.stat("l1_writebacks").inc();
    l2AllocateDirty(line_addr, now + cfg_.l2Latency);
}

void
MemoryFabric::volatileFlush(Addr line_addr, Cycle now,
                            std::function<void()> on_ack)
{
    sbrp_assert(!addr_map::isNvm(line_addr),
                "volatile flush of NVM line %s", line_addr);
    stats_.stat("volatile_flushes").inc();
    Cycle t = now + cfg_.l2Latency;
    l2AllocateClean(line_addr, now);
    Cycle accept = gddrChannel(line_addr).acquire(t, cfg_.lineBytes);
    stats_.stat("gddr_writes").inc();
    finish(std::move(on_ack), accept);
}

} // namespace sbrp
