#include "gpu/l1_cache.hh"

#include "common/log.hh"
#include "common/trace.hh"

namespace sbrp
{

namespace
{
/** Trace track (tid) for L1 events within an SM's trace process. */
constexpr std::uint32_t kL1Track = 33;
}

L1Cache::L1Cache(const SystemConfig &cfg, StatGroup &stats)
    : sets_(cfg.l1Sets()),
      assoc_(cfg.l1Assoc),
      lineBytes_(cfg.lineBytes),
      lines_(std::size_t(cfg.l1Sets()) * cfg.l1Assoc),
      stats_(stats)
{
}

std::uint32_t
L1Cache::setOf(Addr line_addr) const
{
    return (line_addr / lineBytes_) % sets_;
}

L1Cache::Line *
L1Cache::lookup(Addr line_addr, Cycle now)
{
    Line *line = probe(line_addr);
    if (line)
        line->lastUse = now;
    return line;
}

L1Cache::Line *
L1Cache::probe(Addr line_addr)
{
    std::uint32_t set = setOf(line_addr);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (l.valid && l.lineAddr == line_addr)
            return &l;
    }
    return nullptr;
}

L1Cache::Line *
L1Cache::victimFor(Addr line_addr)
{
    std::uint32_t set = setOf(line_addr);
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (!l.valid)
            return nullptr;   // Free way available; no eviction needed.
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    return victim;
}

L1Cache::Line *
L1Cache::allocate(Addr line_addr, Cycle now, Eviction *ev)
{
    if (ev)
        *ev = Eviction{};

    if (Line *hit = probe(line_addr)) {
        hit->lastUse = now;
        return hit;
    }

    std::uint32_t set = setOf(line_addr);
    Line *slot = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Line &l = lines_[std::size_t(set) * assoc_ + w];
        if (!l.valid) {
            slot = &l;
            break;
        }
        if (!slot || l.lastUse < slot->lastUse)
            slot = &l;
    }
    sbrp_assert(slot, "no way in set %s", set);

    if (slot->valid && ev) {
        ev->happened = true;
        ev->lineAddr = slot->lineAddr;
        ev->dirty = slot->dirty;
        ev->isPm = slot->isPm;
        ev->pbEntry = slot->pbEntry;
        stats_.stat("evictions").inc();
        if (tb_) {
            tb_->instant(slot->isPm ? "l1:evict_pm" : "l1:evict",
                         kL1Track);
        }
    }

    slot->lineAddr = line_addr;
    slot->valid = true;
    slot->dirty = false;
    slot->isPm = false;
    slot->pbEntry = kNoPbEntry;
    slot->lastUse = now;
    return slot;
}

void
L1Cache::invalidate(Addr line_addr)
{
    if (Line *l = probe(line_addr)) {
        l->valid = false;
        if (tb_)
            tb_->instant("l1:invalidate", kL1Track);
    }
}

void
L1Cache::forEachLine(const std::function<void(Line &)> &fn)
{
    for (Line &l : lines_) {
        if (l.valid)
            fn(l);
    }
}

} // namespace sbrp
