/**
 * @file
 * Kernel programs (per-warp instruction streams) and the builder API
 * applications use to generate them.
 */

#ifndef SBRP_GPU_KERNEL_HH
#define SBRP_GPU_KERNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/isa.hh"

namespace sbrp
{

/** The instruction stream of one warp. Execution ends past the last op. */
struct WarpProgram
{
    std::vector<WarpInstr> code;
};

/**
 * A launchable grid: numBlocks threadblocks of threadsPerBlock threads,
 * each block split into warps of 32 threads with their own programs.
 */
class KernelProgram
{
  public:
    KernelProgram(std::string name, std::uint32_t num_blocks,
                  std::uint32_t threads_per_block);

    const std::string &name() const { return name_; }
    std::uint32_t numBlocks() const { return numBlocks_; }
    std::uint32_t threadsPerBlock() const { return threadsPerBlock_; }
    std::uint32_t warpsPerBlock() const { return warpsPerBlock_; }

    WarpProgram &warp(BlockId block, std::uint32_t warp_in_block);
    const WarpProgram &warp(BlockId block,
                            std::uint32_t warp_in_block) const;

    /** Global thread id of (block, warpInBlock, lane). */
    ThreadId
    threadOf(BlockId block, std::uint32_t warp_in_block,
             std::uint32_t lane) const
    {
        return block * threadsPerBlock_ + warp_in_block * 32 + lane;
    }

    /** Total instructions across all warps (sanity/report helper). */
    std::uint64_t totalInstructions() const;

  private:
    std::string name_;
    std::uint32_t numBlocks_;
    std::uint32_t threadsPerBlock_;
    std::uint32_t warpsPerBlock_;
    std::vector<WarpProgram> programs_;
};

/**
 * Fluent builder appending instructions to one warp's program.
 *
 * Per-lane addresses are supplied by a lane->Addr function evaluated at
 * build time; `active` masks select participating lanes (default: all
 * lanes up to the builder's lane count).
 */
class WarpBuilder
{
  public:
    using AddrFn = std::function<Addr(std::uint32_t lane)>;
    using ValFn = std::function<std::uint32_t(std::uint32_t lane)>;

    /**
     * @param prog   Warp program to append to.
     * @param lanes  Number of live lanes (threads) in this warp, <= 32;
     *               the default active mask covers exactly these.
     */
    WarpBuilder(WarpProgram &prog, std::uint32_t lanes = 32);

    std::uint32_t defaultMask() const { return defaultMask_; }

    WarpBuilder &mov(std::uint8_t dst, std::uint32_t imm,
                     std::uint32_t active = 0);
    WarpBuilder &movLane(std::uint8_t dst, const ValFn &vals,
                         std::uint32_t active = 0);
    WarpBuilder &addImm(std::uint8_t dst, std::uint32_t imm,
                        std::uint32_t active = 0);
    WarpBuilder &addReg(std::uint8_t dst, std::uint8_t src,
                        std::uint32_t active = 0);
    /** Warp-wide sum of reg[dst] into reg[dst] of every active lane. */
    WarpBuilder &laneSum(std::uint8_t dst, std::uint32_t active = 0);
    /** Warp-wide max of reg[dst] into reg[dst] of every active lane. */
    WarpBuilder &laneMax(std::uint8_t dst, std::uint32_t active = 0);
    WarpBuilder &compute(std::uint16_t cycles, std::uint32_t active = 0);

    WarpBuilder &load(std::uint8_t dst, const AddrFn &addrs,
                      std::uint32_t active = 0);
    /** Register-indexed load: reg[dst] = mem32[addr + reg[idx]*scale]. */
    WarpBuilder &loadIdx(std::uint8_t dst, const AddrFn &base,
                         std::uint8_t idx_reg, std::uint8_t scale,
                         std::uint32_t active = 0);
    /** Store a register. */
    WarpBuilder &store(const AddrFn &addrs, std::uint8_t src,
                       std::uint32_t active = 0);
    /** Register-indexed store: mem32[addr + reg[idx]*scale] = reg[src]. */
    WarpBuilder &storeIdx(const AddrFn &base, std::uint8_t src,
                          std::uint8_t idx_reg, std::uint8_t scale,
                          std::uint32_t active = 0);
    /** Store per-lane immediates. */
    WarpBuilder &storeImm(const AddrFn &addrs, const ValFn &vals,
                          std::uint32_t active = 0);
    WarpBuilder &atomicAdd(std::uint8_t dst, Addr addr, std::uint32_t imm,
                           std::uint32_t active = 0);

    WarpBuilder &barrier();
    WarpBuilder &fence(Scope scope, std::uint32_t active = 0);
    WarpBuilder &ofence(std::uint32_t active = 0);
    WarpBuilder &dfence(std::uint32_t active = 0);
    /** Spin until mem32[addr(lane)] == expect, then acquire. */
    WarpBuilder &pacq(const AddrFn &addrs, std::uint32_t expect,
                      Scope scope, std::uint32_t active = 0);
    /** Spin until mem32[addr(lane)] != sentinel, then acquire. */
    WarpBuilder &pacqNe(const AddrFn &addrs, std::uint32_t sentinel,
                        Scope scope, std::uint32_t active = 0);
    WarpBuilder &prel(const AddrFn &addrs, std::uint32_t value, Scope scope,
                      std::uint32_t active = 0);
    /** Release publishing a register value (pRel(&x, sum) in Fig. 3). */
    WarpBuilder &prelReg(const AddrFn &addrs, std::uint8_t src, Scope scope,
                         std::uint32_t active = 0);
    WarpBuilder &spinLoad(const AddrFn &addrs, std::uint32_t expect,
                          std::uint32_t active = 0);
    WarpBuilder &spinLoadNe(const AddrFn &addrs, std::uint32_t sentinel,
                            std::uint32_t active = 0);
    /** Lane returns early when mem32[addr] == value. */
    WarpBuilder &exitIfEq(const AddrFn &addrs, std::uint32_t value,
                          std::uint32_t active = 0);
    /** Lane returns early when mem32[addr] != sentinel (Figure 3). */
    WarpBuilder &exitIfNe(const AddrFn &addrs, std::uint32_t sentinel,
                          std::uint32_t active = 0);
    WarpBuilder &halt(std::uint32_t active = 0);

  private:
    WarpInstr &emit(Op op, std::uint32_t active);
    void fillAddrs(WarpInstr &in, const AddrFn &addrs);
    void fillVals(WarpInstr &in, const ValFn &vals);

    WarpProgram &prog_;
    std::uint32_t lanes_;
    std::uint32_t defaultMask_;
};

/** Mask helpers for divergent code. */
namespace mask
{

/** Lanes [0, n). */
inline std::uint32_t
firstN(std::uint32_t n)
{
    return n >= 32 ? 0xffffffffu : ((1u << n) - 1u);
}

/** Exactly one lane. */
inline std::uint32_t
lane(std::uint32_t l)
{
    return 1u << l;
}

/** Lanes [lo, hi). */
inline std::uint32_t
range(std::uint32_t lo, std::uint32_t hi)
{
    return firstN(hi) & ~firstN(lo);
}

} // namespace mask

} // namespace sbrp

#endif // SBRP_GPU_KERNEL_HH
