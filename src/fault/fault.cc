#include "fault/fault.hh"

#include <cstdlib>
#include <sstream>

namespace sbrp
{

const char *
toString(PersistFaultKind k)
{
    switch (k) {
      case PersistFaultKind::LinkReplayExhausted:
        return "link-replay-exhausted";
      case PersistFaultKind::WpqTimeout:
        return "wpq-timeout";
      case PersistFaultKind::MediaRetryExhausted:
        return "media-retry-exhausted";
      case PersistFaultKind::MediaSticky:
        return "media-sticky";
    }
    return "?";
}

std::string
FaultSpec::describe() const
{
    if (!enabled())
        return "none";
    std::ostringstream oss;
    bool first = true;
    auto emit = [&](const char *key, const std::string &val) {
        if (!first)
            oss << ",";
        first = false;
        oss << key << "=" << val;
    };
    auto rate = [](double r) {
        std::ostringstream v;
        v << r;   // Default formatting round-trips through strtod.
        return v.str();
    };
    if (pcieCorruptRate > 0.0)
        emit("pcie", rate(pcieCorruptRate));
    if (wpqCapacity > 0)
        emit("wpq", std::to_string(wpqCapacity));
    if (nvmTransientRate > 0.0)
        emit("media", rate(nvmTransientRate));
    if (nvmStickyRate > 0.0)
        emit("sticky", rate(nvmStickyRate));
    return oss.str();
}

bool
FaultSpec::parse(const std::string &spec, FaultSpec *out, std::string *err)
{
    FaultSpec s;
    if (spec.empty() || spec == "none" || spec == "off") {
        *out = s;
        return true;
    }

    auto fail = [&](const std::string &msg) {
        if (err)
            *err = "fault spec: " + msg;
        return false;
    };

    std::istringstream iss(spec);
    std::string field;
    while (std::getline(iss, field, ',')) {
        auto eq = field.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == field.size())
            return fail("expected key=value, got '" + field + "'");
        std::string key = field.substr(0, eq);
        std::string val = field.substr(eq + 1);

        const char *cval = val.c_str();
        char *end = nullptr;
        double num = std::strtod(cval, &end);
        if (end == cval || *end != '\0')
            return fail("malformed number '" + val + "' for " + key);

        if (key == "pcie" || key == "media" || key == "sticky") {
            if (num < 0.0 || num > 1.0)
                return fail(key + " rate must be in [0,1], got " + val);
            (key == "pcie" ? s.pcieCorruptRate
             : key == "media" ? s.nvmTransientRate
                              : s.nvmStickyRate) = num;
        } else if (key == "wpq") {
            if (num < 0.0 || num != static_cast<std::uint32_t>(num))
                return fail("wpq capacity must be a non-negative "
                            "integer, got " + val);
            s.wpqCapacity = static_cast<std::uint32_t>(num);
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    *out = s;
    return true;
}

} // namespace sbrp
