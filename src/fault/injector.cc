#include "fault/injector.hh"

#include "common/log.hh"

namespace sbrp
{

FaultInjector::FaultInjector(const FaultSpec &spec, std::uint64_t seed)
    : spec_(spec), seed_(seed), plan_(seed)
{
    if (seed == 0) {
        sbrp_fatal("FaultInjector requires a nonzero seed "
                   "(SystemConfig::seed) so faulty runs reproduce");
    }
}

bool
FaultInjector::pcieCorrupt()
{
    if (spec_.pcieCorruptRate <= 0.0)
        return false;
    if (!plan_.drawPcie(spec_.pcieCorruptRate))
        return false;
    ++pcieFaults_;
    return true;
}

bool
FaultInjector::mediaTransient()
{
    if (spec_.nvmTransientRate <= 0.0)
        return false;
    if (!plan_.drawTransient(spec_.nvmTransientRate))
        return false;
    ++transientFaults_;
    return true;
}

bool
FaultInjector::mediaSticky()
{
    if (spec_.nvmStickyRate <= 0.0)
        return false;
    if (!plan_.drawSticky(spec_.nvmStickyRate))
        return false;
    ++stickyFaults_;
    return true;
}

} // namespace sbrp
