/**
 * @file
 * Fault-model vocabulary: the fault specification swept by campaigns,
 * and the structured persist-fault verdicts the resilient persist path
 * reports instead of hanging or silently dropping data.
 *
 * Three fault classes cover the paper's durable path end to end:
 *  - PCIe link faults (PM-far only): a persist packet is corrupted or
 *    dropped in flight and must be replayed link-level.
 *  - WPQ backpressure: the ADR memory controller's write-pending queue
 *    has bounded capacity and nacks writes arriving while it is full.
 *  - NVM media faults: a media write fails transiently (succeeds on
 *    retry) or hits a sticky uncorrectable line, which is poisoned and
 *    rejects every subsequent write.
 *
 * All rates are per-event probabilities drawn from seed-partitioned
 * deterministic streams (see fault/injector.hh), so one seed reproduces
 * an entire faulty run bit-for-bit.
 */

#ifndef SBRP_FAULT_FAULT_HH
#define SBRP_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace sbrp
{

/**
 * The fault configuration, parsed from the CLI spec grammar
 * `key=value[,key=value...]` with keys:
 *
 *   pcie=<rate>    per-crossing PCIe corruption/drop probability
 *   wpq=<lines>    WPQ capacity in lines per channel (0 = unbounded)
 *   media=<rate>   per-write transient NVM media-fault probability
 *   sticky=<rate>  per-write sticky uncorrectable-line probability
 *
 * `none` (or the empty string) disables everything. Omitted keys keep
 * their defaults. describe() emits the canonical spelling, which
 * parse() round-trips.
 */
struct FaultSpec
{
    double pcieCorruptRate = 0.0;
    std::uint32_t wpqCapacity = 0;   ///< Lines per channel; 0 = infinite.
    double nvmTransientRate = 0.0;
    double nvmStickyRate = 0.0;

    /** True when any fault class can fire. */
    bool
    enabled() const
    {
        return pcieCorruptRate > 0.0 || wpqCapacity > 0 ||
               nvmTransientRate > 0.0 || nvmStickyRate > 0.0;
    }

    /** Canonical spec string ("none" when disabled). */
    std::string describe() const;

    /**
     * Parses a spec string; returns false and sets *err on unknown
     * keys, malformed numbers, or out-of-range rates.
     */
    static bool parse(const std::string &spec, FaultSpec *out,
                      std::string *err);
};

/** Why a persist ultimately failed. */
enum class PersistFaultKind : std::uint8_t
{
    LinkReplayExhausted,   ///< PCIe replays ate the retry budget.
    WpqTimeout,            ///< WPQ nacks ate the retry budget.
    MediaRetryExhausted,   ///< Transient media faults ate the budget.
    MediaSticky,           ///< Uncorrectable line; no retry can help.
};

const char *toString(PersistFaultKind k);

/**
 * A structured persist failure: the line, why it failed, and the
 * attempt history. Surfaced through MemoryFabric::persistFaults() and
 * through each persist's completion callback — never as a hang and
 * never as silent data loss.
 */
struct PersistFault
{
    Addr lineAddr = 0;
    PersistFaultKind kind = PersistFaultKind::MediaRetryExhausted;
    std::uint32_t attempts = 0;    ///< Attempts consumed (>= 1).
    Cycle firstAttempt = 0;        ///< Cycle the persist was issued.
    Cycle failedAt = 0;            ///< Cycle the failure was declared.
};

/** Completion verdict of one persist write. */
struct PersistResult
{
    bool ok = true;
    PersistFault fault;   ///< Valid only when !ok.
};

/** Fires exactly once per persist, at the accept point or on failure. */
using PersistCallback = std::function<void(const PersistResult &)>;

} // namespace sbrp

#endif // SBRP_FAULT_FAULT_HH
