/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * A FaultPlan owns one independent SplitMix64 stream per fault class,
 * each derived from the single SystemConfig::seed by xoring a distinct
 * golden constant. Partitioned streams mean enabling (or re-rating) one
 * fault class never perturbs another class's schedule — essential for
 * sweeping fault rates while keeping runs comparable.
 *
 * The FaultInjector binds a plan to a FaultSpec and counts what it
 * injected. Constructing one with seed 0 is a fatal error: an unseeded
 * faulty run could never be reproduced, so we refuse to start it.
 */

#ifndef SBRP_FAULT_INJECTOR_HH
#define SBRP_FAULT_INJECTOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "fault/fault.hh"

namespace sbrp
{

/** Per-class deterministic draw streams. */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed)
        : pcie_(seed ^ 0x9e3779b97f4a7c15ull),
          transient_(seed ^ 0xbf58476d1ce4e5b9ull),
          sticky_(seed ^ 0x94d049bb133111ebull)
    {}

    bool drawPcie(double rate) { return pcie_.unit() < rate; }
    bool drawTransient(double rate) { return transient_.unit() < rate; }
    bool drawSticky(double rate) { return sticky_.unit() < rate; }

  private:
    Rng pcie_;
    Rng transient_;
    Rng sticky_;
};

/**
 * The seeded fault source consulted by the memory fabric on every
 * persist attempt. One injector per MemoryFabric (per GpuSystem), so a
 * fresh power-up replays the identical fault schedule.
 */
class FaultInjector
{
  public:
    /** Throws FatalError when seed == 0 (unreproducible run). */
    FaultInjector(const FaultSpec &spec, std::uint64_t seed);

    const FaultSpec &spec() const { return spec_; }
    std::uint64_t seed() const { return seed_; }

    /** Should this PCIe crossing corrupt/drop the packet? */
    bool pcieCorrupt();

    /** Should this media write fail transiently? */
    bool mediaTransient();

    /** Should this media write turn the line sticky-uncorrectable? */
    bool mediaSticky();

    std::uint64_t pcieFaults() const { return pcieFaults_; }
    std::uint64_t transientFaults() const { return transientFaults_; }
    std::uint64_t stickyFaults() const { return stickyFaults_; }

  private:
    FaultSpec spec_;
    std::uint64_t seed_;
    FaultPlan plan_;
    std::uint64_t pcieFaults_ = 0;
    std::uint64_t transientFaults_ = 0;
    std::uint64_t stickyFaults_ = 0;
};

} // namespace sbrp

#endif // SBRP_FAULT_INJECTOR_HH
