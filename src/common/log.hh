/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal simulator invariant was violated (a bug).
 * fatal()  — the user supplied an impossible configuration.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — normal operational status.
 *
 * Unlike gem5, panic/fatal throw typed exceptions (PanicError/FatalError)
 * rather than aborting, so library users and tests can observe them.
 */

#ifndef SBRP_COMMON_LOG_HH
#define SBRP_COMMON_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace sbrp
{

/** Thrown on violated internal invariants (simulator bugs). */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown on impossible user configurations. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace log_detail
{

/** Formats a printf-free "%s"-style message into a std::string.
    "%%" is a literal percent sign. */
std::string format(const char *fmt);

template <typename T, typename... Args>
std::string
format(const char *fmt, T &&first, Args &&...rest)
{
    std::string out;
    for (const char *p = fmt; *p; ++p) {
        if (p[0] == '%' && p[1] == '%') {
            out.push_back('%');
            ++p;
            continue;
        }
        if (p[0] == '%' && p[1] == 's') {
            std::ostringstream oss;
            oss << first;
            out += oss.str();
            out += format(p + 2, std::forward<Args>(rest)...);
            return out;
        }
        out.push_back(*p);
    }
    return out;
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Global verbosity: 0 silences inform(), 1 (default) prints it. The
 * initial level comes from the SBRP_LOG_LEVEL environment variable when
 * set; setVerbosity() overrides it for the rest of the process.
 */
void setVerbosity(int level);
int verbosity();

} // namespace log_detail

#define sbrp_panic(...)                                                     \
    ::sbrp::log_detail::panicImpl(__FILE__, __LINE__,                       \
        ::sbrp::log_detail::format(__VA_ARGS__))

#define sbrp_fatal(...)                                                     \
    ::sbrp::log_detail::fatalImpl(__FILE__, __LINE__,                       \
        ::sbrp::log_detail::format(__VA_ARGS__))

#define sbrp_warn(...)                                                      \
    ::sbrp::log_detail::warnImpl(::sbrp::log_detail::format(__VA_ARGS__))

#define sbrp_inform(...)                                                    \
    ::sbrp::log_detail::informImpl(::sbrp::log_detail::format(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define sbrp_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sbrp::log_detail::panicImpl(__FILE__, __LINE__,               \
                std::string("assertion failed: " #cond " -- ") +            \
                ::sbrp::log_detail::format(__VA_ARGS__));                   \
        }                                                                   \
    } while (0)

} // namespace sbrp

#endif // SBRP_COMMON_LOG_HH
