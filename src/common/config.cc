#include "common/config.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace sbrp
{

std::uint32_t
SystemConfig::pbEntries() const
{
    auto n = static_cast<std::uint32_t>(l1Lines() * pbCoverage);
    return std::max(n, 1u);
}

SystemConfig
SystemConfig::paperDefault(ModelKind model, SystemDesign design)
{
    SystemConfig cfg;
    cfg.model = model;
    cfg.design = design;
    return cfg;
}

SystemConfig
SystemConfig::testDefault(ModelKind model, SystemDesign design)
{
    SystemConfig cfg;
    cfg.model = model;
    cfg.design = design;
    cfg.numSms = 4;
    cfg.l1Bytes = 16 * 1024;
    cfg.l2Bytes = 256 * 1024;
    cfg.memChannels = 4;
    cfg.watchdogCycles = 2'000'000;
    return cfg;
}

void
SystemConfig::validate() const
{
    if (warpSize != 32)
        sbrp_fatal("warpSize must be 32 (WarpMask width), got %s", warpSize);
    if (maxWarpsPerSm == 0 || maxWarpsPerSm > 32)
        sbrp_fatal("maxWarpsPerSm must be in [1,32], got %s", maxWarpsPerSm);
    if (numSms == 0)
        sbrp_fatal("numSms must be positive");
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        sbrp_fatal("lineBytes must be a power of two, got %s", lineBytes);
    if (l1Bytes % (lineBytes * l1Assoc) != 0)
        sbrp_fatal("L1 geometry does not divide into sets");
    if (l2Bytes % (lineBytes * l2Assoc) != 0)
        sbrp_fatal("L2 geometry does not divide into sets");
    if (window == 0)
        sbrp_fatal("window must be positive");
    if (pbCoverage <= 0.0 || pbCoverage > 1.0)
        sbrp_fatal("pbCoverage must be in (0,1], got %s", pbCoverage);
    if (nvmBwScale <= 0.0)
        sbrp_fatal("nvmBwScale must be positive");
    if (persistPoint == PersistPoint::Eadr &&
            design != SystemDesign::PmFar) {
        sbrp_fatal("eADR only applies to PM-far systems (paper Sec. 7.2)");
    }
    if (model == ModelKind::Gpm && design != SystemDesign::PmFar)
        sbrp_fatal("GPM avoids hardware changes and only works on PM-far");
    auto check_rate = [](const char *name, double r) {
        if (r < 0.0 || r > 1.0)
            sbrp_fatal("%s must be in [0,1], got %s", name, r);
    };
    check_rate("faults.pcie", faults.pcieCorruptRate);
    check_rate("faults.media", faults.nvmTransientRate);
    check_rate("faults.sticky", faults.nvmStickyRate);
    if (persistRetryBudget == 0)
        sbrp_fatal("persistRetryBudget must be at least 1");
    if (retryBackoffBase == 0)
        sbrp_fatal("retryBackoffBase must be positive");
    if (faults.enabled() && seed == 0) {
        sbrp_fatal("fault injection (%s) requires a nonzero seed for "
                   "reproducibility", faults.describe());
    }
}

std::string
SystemConfig::describe() const
{
    std::ostringstream oss;
    oss << "model=" << toString(model)
        << " design=PM-" << toString(design)
        << " persist=" << toString(persistPoint)
        << " policy=" << toString(flushPolicy)
        << " window=" << window
        << " SMs=" << numSms
        << " L1=" << l1Bytes / 1024 << "KB"
        << " L2=" << l2Bytes / 1024 << "KB"
        << " PB=" << pbEntries() << " entries"
        << " nvmBW=" << nvmBwScale * 100 << "%";
    if (faults.enabled()) {
        oss << " faults=" << faults.describe() << " seed=" << seed
            << " retry=" << persistRetryBudget
            << " backoff=" << retryBackoffBase;
    }
    if (unsafeRelaxedPersistOrder)
        oss << " UNSAFE-RELAXED-ORDER";
    return oss.str();
}

} // namespace sbrp
