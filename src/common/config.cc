#include "common/config.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace sbrp
{

std::uint32_t
SystemConfig::pbEntries() const
{
    auto n = static_cast<std::uint32_t>(l1Lines() * pbCoverage);
    return std::max(n, 1u);
}

SystemConfig
SystemConfig::paperDefault(ModelKind model, SystemDesign design)
{
    SystemConfig cfg;
    cfg.model = model;
    cfg.design = design;
    return cfg;
}

SystemConfig
SystemConfig::testDefault(ModelKind model, SystemDesign design)
{
    SystemConfig cfg;
    cfg.model = model;
    cfg.design = design;
    cfg.numSms = 4;
    cfg.l1Bytes = 16 * 1024;
    cfg.l2Bytes = 256 * 1024;
    cfg.memChannels = 4;
    cfg.watchdogCycles = 2'000'000;
    return cfg;
}

void
SystemConfig::validate() const
{
    if (warpSize != 32)
        sbrp_fatal("warpSize must be 32 (WarpMask width), got %s", warpSize);
    if (maxWarpsPerSm == 0 || maxWarpsPerSm > 32)
        sbrp_fatal("maxWarpsPerSm must be in [1,32], got %s", maxWarpsPerSm);
    if (numSms == 0)
        sbrp_fatal("numSms must be positive");
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        sbrp_fatal("lineBytes must be a power of two, got %s", lineBytes);
    if (l1Bytes % (lineBytes * l1Assoc) != 0)
        sbrp_fatal("L1 geometry does not divide into sets");
    if (l2Bytes % (lineBytes * l2Assoc) != 0)
        sbrp_fatal("L2 geometry does not divide into sets");
    if (window == 0)
        sbrp_fatal("window must be positive");
    if (pbCoverage <= 0.0 || pbCoverage > 1.0)
        sbrp_fatal("pbCoverage must be in (0,1], got %s", pbCoverage);
    if (nvmBwScale <= 0.0)
        sbrp_fatal("nvmBwScale must be positive");
    if (persistPoint == PersistPoint::Eadr &&
            design != SystemDesign::PmFar) {
        sbrp_fatal("eADR only applies to PM-far systems (paper Sec. 7.2)");
    }
    if (model == ModelKind::Gpm && design != SystemDesign::PmFar)
        sbrp_fatal("GPM avoids hardware changes and only works on PM-far");
}

std::string
SystemConfig::describe() const
{
    std::ostringstream oss;
    oss << "model=" << toString(model)
        << " design=PM-" << toString(design)
        << " persist=" << toString(persistPoint)
        << " policy=" << toString(flushPolicy)
        << " window=" << window
        << " SMs=" << numSms
        << " L1=" << l1Bytes / 1024 << "KB"
        << " L2=" << l2Bytes / 1024 << "KB"
        << " PB=" << pbEntries() << " entries"
        << " nvmBW=" << nvmBwScale * 100 << "%";
    if (unsafeRelaxedPersistOrder)
        oss << " UNSAFE-RELAXED-ORDER";
    return oss.str();
}

} // namespace sbrp
