#include "common/trace.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/atomic_io.hh"
#include "common/log.hh"

namespace sbrp
{

TraceBuffer::TraceBuffer(TraceSink &sink, std::uint32_t pid,
                         std::size_t capacity)
    : sink_(sink), pid_(pid)
{
    ring_.reserve(capacity == 0 ? 1 : capacity);
}

void
TraceBuffer::push(const TraceEvent &e)
{
    ring_.push_back(e);
    if (ring_.size() == ring_.capacity())
        flush();
}

void
TraceBuffer::flush()
{
    if (ring_.empty())
        return;
    sink_.drain(pid_, ring_);
    ring_.clear();
}

TraceSink::TraceSink() = default;
TraceSink::~TraceSink() = default;

TraceBuffer *
TraceSink::buffer(const std::string &component)
{
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == component)
            return buffers_[i].get();
    }
    auto pid = static_cast<std::uint32_t>(names_.size());
    names_.push_back(component);
    buffers_.push_back(std::make_unique<TraceBuffer>(*this, pid));
    return buffers_.back().get();
}

void
TraceSink::setTrackName(const std::string &component, std::uint32_t track,
                        const std::string &name)
{
    std::uint32_t pid = buffer(component)->pid();
    for (TrackName &tn : trackNames_) {
        if (tn.pid == pid && tn.track == track) {
            tn.name = name;
            return;
        }
    }
    trackNames_.push_back(TrackName{pid, track, name});
}

const char *
TraceSink::intern(const std::string &s)
{
    for (const std::string &have : interned_) {
        if (have == s)
            return have.c_str();
    }
    interned_.push_back(s);
    return interned_.back().c_str();
}

void
TraceSink::drain(std::uint32_t pid, const std::vector<TraceEvent> &ring)
{
    for (const TraceEvent &e : ring)
        events_.push_back(StoredEvent{pid, e});
}

void
TraceSink::flushAll()
{
    for (auto &b : buffers_)
        b->flush();
}

namespace
{

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

void
TraceSink::writeJson(std::ostream &os)
{
    flushAll();

    // Sort by start cycle (stable: drain order breaks ties) so the
    // emitted traceEvents array is cycle-ordered.
    std::vector<const StoredEvent *> sorted;
    sorted.reserve(events_.size());
    for (const StoredEvent &se : events_)
        sorted.push_back(&se);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const StoredEvent *a, const StoredEvent *b) {
                         return a->event.start < b->event.start;
                     });

    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: process names per component, thread names per track.
    for (std::size_t pid = 0; pid < names_.size(); ++pid) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(names_[pid])
           << "\"}}";
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":"
           << pid << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
    }
    for (const TrackName &tn : trackNames_) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << tn.pid
           << ",\"tid\":" << tn.track << ",\"args\":{\"name\":\""
           << jsonEscape(tn.name) << "\"}}";
    }

    for (const StoredEvent *se : sorted) {
        const TraceEvent &e = se->event;
        sep();
        switch (e.kind) {
          case TraceEventKind::Span:
            os << "{\"ph\":\"X\",\"name\":\"" << jsonEscape(e.name)
               << "\",\"ts\":" << e.start << ",\"dur\":"
               << (e.end - e.start) << ",\"pid\":" << se->pid
               << ",\"tid\":" << e.track << "}";
            break;
          case TraceEventKind::Instant:
            os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
               << jsonEscape(e.name) << "\",\"ts\":" << e.start
               << ",\"pid\":" << se->pid << ",\"tid\":" << e.track
               << "}";
            break;
          case TraceEventKind::Counter:
            os << "{\"ph\":\"C\",\"name\":\"" << jsonEscape(e.name)
               << "\",\"ts\":" << e.start << ",\"pid\":" << se->pid
               << ",\"tid\":0,\"args\":{\"value\":" << e.value << "}}";
            break;
          case TraceEventKind::FlowStart:
          case TraceEventKind::FlowStep:
          case TraceEventKind::FlowEnd: {
            const char ph = e.kind == TraceEventKind::FlowStart ? 's'
                          : e.kind == TraceEventKind::FlowStep  ? 't'
                                                                : 'f';
            os << "{\"ph\":\"" << ph << "\",\"cat\":\"flow\",\"name\":\""
               << jsonEscape(e.name) << "\",\"id\":" << e.value
               << ",\"ts\":" << e.start << ",\"pid\":" << se->pid
               << ",\"tid\":" << e.track;
            // bp:e binds the arrow to the enclosing slice, so chains
            // attach to the component spans already in the trace.
            if (e.kind == TraceEventKind::FlowEnd)
                os << ",\"bp\":\"e\"";
            os << "}";
            break;
          }
        }
    }

    // ts values are GPU core cycles, not microseconds; displayTimeUnit
    // only affects how viewers label the axis.
    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":"
          "{\"timeUnit\":\"cycles\",\"tool\":\"sbrpsim\"}}\n";
}

void
TraceSink::writeJsonFile(const std::string &path)
{
    std::ostringstream os;
    writeJson(os);
    std::string text = os.str();
    if (!text.empty() && text.back() == '\n')
        text.pop_back();   // writeFileAtomic appends the newline.
    std::string err;
    if (!writeFileAtomic(path, text, &err))
        sbrp_fatal("trace output file: %s", err);
}

} // namespace sbrp
