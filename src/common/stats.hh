/**
 * @file
 * Lightweight statistics registry for simulator components.
 *
 * Components register named scalar counters and log2-bucketed
 * Distribution histograms in a StatGroup; the GpuSystem aggregates all
 * groups for end-of-run reporting and the bench harness queries
 * individual counters (e.g. L1 NVM read misses for Figure 8).
 * StatRegistry::dumpJson() emits everything machine-readably for
 * `sbrpsim --stats-json` and the bench tooling.
 */

#ifndef SBRP_COMMON_STATS_HH
#define SBRP_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sbrp
{

/** A named 64-bit counter. */
class Stat
{
  public:
    Stat() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A log2-bucketed histogram of 64-bit samples (latencies, batch sizes,
 * occupancies). Bucket i >= 1 holds values with bit_width i, i.e.
 * [2^(i-1), 2^i - 1]; bucket 0 holds the value 0. Recording is O(1) and
 * allocation-free; percentiles are approximate (rank-interpolated within
 * the log2 bucket), which is plenty for "where do the cycles go"
 * reporting.
 */
class Distribution
{
  public:
    static constexpr std::uint32_t kBuckets = 65;

    void record(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }

    /**
     * Approximate p-quantile (p in [0,1]): finds the first bucket where
     * the cumulative count reaches round(p * count()) and interpolates
     * linearly within the bucket's value range by the sample's rank, so
     * nearby quantiles inside one log2 bucket stay ordered instead of
     * collapsing onto the midpoint. Clamped into [min, max]; p >= 1 is
     * exactly max(). p50()/p95()/p99() are the common shorthands.
     */
    std::uint64_t percentile(double p) const;
    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    std::uint64_t bucketCount(std::uint32_t b) const
    { return buckets_[b]; }

    /** Pools another histogram's samples into this one (exact: buckets,
        count, sum and extrema all add/combine losslessly). */
    void merge(const Distribution &other);

    void reset();

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of counters and distributions belonging to one
 * component instance (e.g. "sm3.l1"). Groups own their stats; lookup is
 * by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Registers (or returns the existing) counter with this name. */
    Stat &stat(const std::string &name);

    /** Registers (or returns the existing) distribution. */
    Distribution &dist(const std::string &name);

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t value(const std::string &name) const;

    /** Read-only distribution lookup; null when absent. */
    const Distribution *findDist(const std::string &name) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, Stat> &all() const { return stats_; }
    const std::map<std::string, Distribution> &allDists() const
    { return dists_; }

    void resetAll();

  private:
    std::string name_;
    std::map<std::string, Stat> stats_;
    std::map<std::string, Distribution> dists_;
};

/**
 * Aggregates the stat groups of a whole simulated system.
 * Non-owning: groups live inside their components.
 */
class StatRegistry
{
  public:
    void add(StatGroup *group) { groups_.push_back(group); }

    /** The registered groups, in registration order (non-owning). */
    const std::vector<StatGroup *> &groups() const { return groups_; }

    /** Sums "<counter>" across all groups whose name starts with prefix. */
    std::uint64_t sum(const std::string &prefix,
                      const std::string &counter) const;

    /**
     * Dumps all non-zero counters as "group.counter value" lines and
     * non-empty distributions as summary lines, groups sorted by name.
     */
    std::string dump() const;

    /**
     * The whole registry as a JSON object: one key per group (sorted),
     * non-zero counters as numbers and non-empty distributions as
     * {count,min,max,mean,p50,p95,p99} objects.
     */
    std::string dumpJson() const;

    void resetAll();

  private:
    std::vector<StatGroup *> groups_;
};

} // namespace sbrp

#endif // SBRP_COMMON_STATS_HH
