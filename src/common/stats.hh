/**
 * @file
 * Lightweight statistics registry for simulator components.
 *
 * Components register named scalar counters in a StatGroup; the GpuSystem
 * aggregates all groups for end-of-run reporting and the bench harness
 * queries individual counters (e.g. L1 NVM read misses for Figure 8).
 */

#ifndef SBRP_COMMON_STATS_HH
#define SBRP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sbrp
{

/** A named 64-bit counter. */
class Stat
{
  public:
    Stat() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters belonging to one component instance
 * (e.g. "sm3.l1"). Groups own their stats; lookup is by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Registers (or returns the existing) counter with this name. */
    Stat &stat(const std::string &name);

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t value(const std::string &name) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, Stat> &all() const { return stats_; }

    void resetAll();

  private:
    std::string name_;
    std::map<std::string, Stat> stats_;
};

/**
 * Aggregates the stat groups of a whole simulated system.
 * Non-owning: groups live inside their components.
 */
class StatRegistry
{
  public:
    void add(StatGroup *group) { groups_.push_back(group); }

    /** Sums "<counter>" across all groups whose name starts with prefix. */
    std::uint64_t sum(const std::string &prefix,
                      const std::string &counter) const;

    /** Dumps all non-zero counters as "group.counter value" lines. */
    std::string dump() const;

    void resetAll();

  private:
    std::vector<StatGroup *> groups_;
};

} // namespace sbrp

#endif // SBRP_COMMON_STATS_HH
