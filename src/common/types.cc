#include "common/types.hh"

namespace sbrp
{

const char *
toString(Space s)
{
    switch (s) {
      case Space::Gddr: return "gddr";
      case Space::Nvm: return "nvm";
    }
    return "?";
}

const char *
toString(Scope s)
{
    switch (s) {
      case Scope::Block: return "block";
      case Scope::Device: return "device";
      case Scope::System: return "system";
    }
    return "?";
}

const char *
toString(SystemDesign d)
{
    switch (d) {
      case SystemDesign::PmFar: return "far";
      case SystemDesign::PmNear: return "near";
    }
    return "?";
}

const char *
toString(ModelKind m)
{
    switch (m) {
      case ModelKind::Gpm: return "GPM";
      case ModelKind::Epoch: return "epoch";
      case ModelKind::Sbrp: return "SBRP";
      case ModelKind::ScopedBarrier: return "scoped-barrier";
    }
    return "?";
}

const char *
toString(PersistPoint p)
{
    switch (p) {
      case PersistPoint::Adr: return "ADR";
      case PersistPoint::Eadr: return "eADR";
    }
    return "?";
}

const char *
toString(FlushPolicy p)
{
    switch (p) {
      case FlushPolicy::Eager: return "eager";
      case FlushPolicy::Lazy: return "lazy";
      case FlushPolicy::Window: return "window";
    }
    return "?";
}

} // namespace sbrp
