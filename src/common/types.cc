#include "common/types.hh"

#include <algorithm>
#include <cctype>

namespace sbrp
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

} // namespace

const char *
toString(Space s)
{
    switch (s) {
      case Space::Gddr: return "gddr";
      case Space::Nvm: return "nvm";
    }
    return "?";
}

const char *
toString(Scope s)
{
    switch (s) {
      case Scope::Block: return "block";
      case Scope::Device: return "device";
      case Scope::System: return "system";
    }
    return "?";
}

const char *
toString(SystemDesign d)
{
    switch (d) {
      case SystemDesign::PmFar: return "far";
      case SystemDesign::PmNear: return "near";
    }
    return "?";
}

const char *
toString(ModelKind m)
{
    switch (m) {
      case ModelKind::Gpm: return "GPM";
      case ModelKind::Epoch: return "epoch";
      case ModelKind::Sbrp: return "SBRP";
      case ModelKind::ScopedBarrier: return "scoped-barrier";
    }
    return "?";
}

const char *
toString(PersistPoint p)
{
    switch (p) {
      case PersistPoint::Adr: return "ADR";
      case PersistPoint::Eadr: return "eADR";
    }
    return "?";
}

const char *
toString(FlushPolicy p)
{
    switch (p) {
      case FlushPolicy::Eager: return "eager";
      case FlushPolicy::Lazy: return "lazy";
      case FlushPolicy::Window: return "window";
    }
    return "?";
}

bool
scopeFromString(const std::string &s, Scope *out)
{
    std::string k = lowered(s);
    if (k == "block") *out = Scope::Block;
    else if (k == "device") *out = Scope::Device;
    else if (k == "system") *out = Scope::System;
    else return false;
    return true;
}

bool
modelKindFromString(const std::string &s, ModelKind *out)
{
    std::string k = lowered(s);
    if (k == "sbrp") *out = ModelKind::Sbrp;
    else if (k == "epoch") *out = ModelKind::Epoch;
    else if (k == "gpm") *out = ModelKind::Gpm;
    else if (k == "barrier" || k == "scoped-barrier")
        *out = ModelKind::ScopedBarrier;
    else return false;
    return true;
}

bool
systemDesignFromString(const std::string &s, SystemDesign *out)
{
    std::string k = lowered(s);
    if (k == "near" || k == "pm-near") *out = SystemDesign::PmNear;
    else if (k == "far" || k == "pm-far") *out = SystemDesign::PmFar;
    else return false;
    return true;
}

bool
persistPointFromString(const std::string &s, PersistPoint *out)
{
    std::string k = lowered(s);
    if (k == "adr") *out = PersistPoint::Adr;
    else if (k == "eadr") *out = PersistPoint::Eadr;
    else return false;
    return true;
}

bool
flushPolicyFromString(const std::string &s, FlushPolicy *out)
{
    std::string k = lowered(s);
    if (k == "eager") *out = FlushPolicy::Eager;
    else if (k == "lazy") *out = FlushPolicy::Lazy;
    else if (k == "window") *out = FlushPolicy::Window;
    else return false;
    return true;
}

} // namespace sbrp
