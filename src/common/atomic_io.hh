/**
 * @file
 * Crash-tolerant file I/O for machine-readable artifacts.
 *
 * Every report, manifest and artifact the tools emit goes through
 * writeFileAtomic: the bytes land in `<path>.tmp`, are fsync'd, and the
 * temporary is renamed over the destination. A reader therefore sees
 * either the previous complete file or the new complete file — never a
 * truncated JSON document — no matter when the writer is killed. This
 * is the same discipline the shard verdict journals (src/svc/) apply
 * per record; here it is applied per document.
 */

#ifndef SBRP_COMMON_ATOMIC_IO_HH
#define SBRP_COMMON_ATOMIC_IO_HH

#include <string>

namespace sbrp
{

/**
 * Writes `text` (plus a trailing newline) to `path` via the
 * write-to-temporary / fsync / rename protocol. Returns false and sets
 * *err (when non-null) on any I/O failure; the destination is left
 * untouched on failure.
 */
bool writeFileAtomic(const std::string &path, const std::string &text,
                     std::string *err = nullptr);

/** Reads a whole file. Returns false and sets *err when unreadable. */
bool readFileToString(const std::string &path, std::string *out,
                      std::string *err = nullptr);

} // namespace sbrp

#endif // SBRP_COMMON_ATOMIC_IO_HH
