/**
 * @file
 * Low-overhead, compile-out-able cycle-level event tracer.
 *
 * Components emit typed events — duration spans, instants and counter
 * samples — into a per-component TraceBuffer (a ring of POD records).
 * Full rings drain into the owning TraceSink, which serializes the whole
 * run as Chrome `trace_event` JSON (loadable in chrome://tracing or
 * https://ui.perfetto.dev).
 *
 * Overhead discipline:
 *  - Tracing off means the component holds a null TraceBuffer* and every
 *    instrumentation site is a single pointer null-check; no formatting,
 *    no allocation, nothing else on the hot path (bench/trace_overhead.cc
 *    verifies this costs <1%).
 *  - Event names must be string literals (or TraceSink::intern()ed):
 *    emission stores the pointer, never copies or formats the string.
 *  - Timestamps come from a shared cycle clock registered by the
 *    GpuSystem (TraceSink::setClock), so emitters need no `now` plumbing.
 *
 * Identity in the JSON: one trace "process" (pid) per component —
 * "system", "fabric", "nvm", "sm0".."smN" in registration order — and
 * one "thread" (tid) per track inside it (warp slot, PB, drain engine).
 * Registration order is deterministic, so pids/tids are stable across
 * runs of the same configuration.
 */

#ifndef SBRP_COMMON_TRACE_HH
#define SBRP_COMMON_TRACE_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

/** Chrome trace_event phases this tracer emits. */
enum class TraceEventKind : std::uint8_t
{
    Span,      ///< Complete duration event ("ph":"X").
    Instant,   ///< Instant event ("ph":"i").
    Counter,   ///< Counter sample ("ph":"C").
    FlowStart, ///< Flow start ("ph":"s") — begins an arrow chain.
    FlowStep,  ///< Flow step ("ph":"t") — continues the chain.
    FlowEnd,   ///< Flow end ("ph":"f") — terminates the chain.
};

/** One POD event record. `name` must outlive the sink (literal/interned). */
struct TraceEvent
{
    const char *name = nullptr;
    Cycle start = 0;
    Cycle end = 0;            ///< Spans only; == start otherwise.
    std::uint64_t value = 0;  ///< Counter value, or flow id (flows).
    std::uint32_t track = 0;  ///< tid within the component.
    TraceEventKind kind = TraceEventKind::Instant;
};

class TraceSink;

/**
 * Per-component ring buffer. Emission appends one POD record; a full
 * ring drains into the sink. Obtain via TraceSink::buffer().
 */
class TraceBuffer
{
  public:
    TraceBuffer(TraceSink &sink, std::uint32_t pid,
                std::size_t capacity = 4096);

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Current cycle of the sink's registered clock (0 if none). */
    Cycle now() const;

    std::uint32_t pid() const { return pid_; }
    TraceSink &sink() { return sink_; }

    /** A span that started at `start` and ends now. */
    void
    span(const char *name, Cycle start, std::uint32_t track = 0)
    {
        spanAt(name, start, now(), track);
    }

    /** A span with explicit endpoints (end clamps to >= start). */
    void
    spanAt(const char *name, Cycle start, Cycle end,
           std::uint32_t track = 0)
    {
        TraceEvent e;
        e.name = name;
        e.start = start;
        e.end = end < start ? start : end;
        e.track = track;
        e.kind = TraceEventKind::Span;
        push(e);
    }

    /** A point event at the current cycle. */
    void
    instant(const char *name, std::uint32_t track = 0)
    {
        TraceEvent e;
        e.name = name;
        e.start = e.end = now();
        e.track = track;
        e.kind = TraceEventKind::Instant;
        push(e);
    }

    /** A counter sample at the current cycle. */
    void
    counter(const char *name, std::uint64_t value)
    {
        TraceEvent e;
        e.name = name;
        e.start = e.end = now();
        e.value = value;
        e.kind = TraceEventKind::Counter;
        push(e);
    }

    /**
     * Flow events: same-`id` events (cat "flow") render as one arrow
     * chain across components in Perfetto — one persist op's journey
     * from PB admit to ack is one clickable chain. `at` defaults to the
     * current cycle; commit/ack emitters stamp the exact event cycle.
     */
    void
    flowStart(const char *name, std::uint64_t id, std::uint32_t track = 0)
    {
        flowAt(TraceEventKind::FlowStart, name, id, now(), track);
    }

    void
    flowStep(const char *name, std::uint64_t id, std::uint32_t track = 0)
    {
        flowAt(TraceEventKind::FlowStep, name, id, now(), track);
    }

    void
    flowEnd(const char *name, std::uint64_t id, std::uint32_t track = 0)
    {
        flowAt(TraceEventKind::FlowEnd, name, id, now(), track);
    }

    void
    flowAt(TraceEventKind kind, const char *name, std::uint64_t id,
           Cycle at, std::uint32_t track = 0)
    {
        TraceEvent e;
        e.name = name;
        e.start = e.end = at;
        e.value = id;
        e.track = track;
        e.kind = kind;
        push(e);
    }

    /** Drains buffered events into the sink (called by the sink too). */
    void flush();

  private:
    void push(const TraceEvent &e);

    TraceSink &sink_;
    std::uint32_t pid_;
    std::vector<TraceEvent> ring_;
};

/**
 * Owns the component buffers and the drained event store; writes the
 * whole run as Chrome trace_event JSON.
 */
class TraceSink
{
  public:
    TraceSink();
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * Registers the simulation clock events are stamped from. The
     * pointer must stay valid while components emit (the GpuSystem
     * clears it on destruction).
     */
    void setClock(const Cycle *clock) { clock_ = clock; }
    const Cycle *clock() const { return clock_; }

    /**
     * Returns the buffer for a component, creating it on first use.
     * pids are assigned in registration order (stable for a fixed
     * configuration). The buffer lives as long as the sink.
     */
    TraceBuffer *buffer(const std::string &component);

    /** Names a track (Chrome thread_name metadata). */
    void setTrackName(const std::string &component, std::uint32_t track,
                      const std::string &name);

    /**
     * Copies a dynamically built name into sink-owned stable storage so
     * it can be used as a TraceEvent name. Setup-time only.
     */
    const char *intern(const std::string &s);

    /** Drains every registered buffer into the event store. */
    void flushAll();

    /** Drained events in (pid, event) form, in drain order (tests). */
    struct StoredEvent
    {
        std::uint32_t pid;
        TraceEvent event;
    };
    const std::deque<StoredEvent> &events() const { return events_; }

    std::size_t eventCount() const { return events_.size(); }

    /** Registered component names, in pid order. */
    const std::vector<std::string> &components() const { return names_; }

    /**
     * Serializes everything as a Chrome trace_event JSON object
     * (flushes buffers first; events are sorted by start cycle).
     */
    void writeJson(std::ostream &os);

    /** writeJson() to a file; throws FatalError on I/O failure. */
    void writeJsonFile(const std::string &path);

  private:
    friend class TraceBuffer;
    void drain(std::uint32_t pid, const std::vector<TraceEvent> &ring);

    const Cycle *clock_ = nullptr;
    std::vector<std::string> names_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    struct TrackName
    {
        std::uint32_t pid;
        std::uint32_t track;
        std::string name;
    };
    std::vector<TrackName> trackNames_;
    std::deque<std::string> interned_;
    std::deque<StoredEvent> events_;
};

inline Cycle
TraceBuffer::now() const
{
    const Cycle *c = sink_.clock();
    return c ? *c : 0;
}

} // namespace sbrp

#endif // SBRP_COMMON_TRACE_HH
