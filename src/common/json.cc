#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace sbrp
{

namespace
{

/** Recursive-descent parser state over the input string. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p)
                return fail(std::string("bad literal '") + word + "'");
        }
        return true;
    }

    bool parseValue(JsonValue &out, int depth);

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    break;
                char e = text[pos++];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        v <<= 4;
                        if (h >= '0' && h <= '9') v |= h - '0';
                        else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
                        else return fail("bad \\u escape");
                    }
                    // Artifacts are ASCII; encode BMP points as UTF-8.
                    if (v < 0x80) {
                        out.push_back(static_cast<char>(v));
                    } else if (v < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (v >> 6)));
                        out.push_back(static_cast<char>(0x80 | (v & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (v >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((v >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (v & 0x3f)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out.push_back(c);
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '-' || text[pos] == '+')) {
            ++pos;
        }
        double v = 0.0;
        auto res = std::from_chars(text.data() + start, text.data() + pos,
                                   v);
        if (res.ec != std::errc() || res.ptr != text.data() + pos) {
            pos = start;
            return fail("bad number");
        }
        out = JsonValue(v);
        return true;
    }
};

constexpr int kMaxDepth = 64;

bool
Parser::parseValue(JsonValue &out, int depth)
{
    if (depth > kMaxDepth)
        return fail("nesting too deep");
    skipWs();
    if (pos >= text.size())
        return fail("unexpected end of input");

    char c = text[pos];
    if (c == '{') {
        ++pos;
        out = JsonValue::object();
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.set(key, std::move(v));
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume('}');
        }
    }
    if (c == '[') {
        ++pos;
        out = JsonValue::array();
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.push(std::move(v));
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume(']');
        }
    }
    if (c == '"') {
        std::string s;
        if (!parseString(s))
            return false;
        out = JsonValue(std::move(s));
        return true;
    }
    if (c == 't') {
        out = JsonValue(true);
        return literal("true");
    }
    if (c == 'f') {
        out = JsonValue(false);
        return literal("false");
    }
    if (c == 'n') {
        out = JsonValue();
        return literal("null");
    }
    return parseNumber(out);
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

void
JsonValue::push(JsonValue v)
{
    arr_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    obj_[key] = std::move(v);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number: {
        // Integral values print without a fraction (cycle counts etc.).
        if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
            out += std::to_string(static_cast<long long>(num_));
        } else {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", num_);
            out += buf;
        }
        break;
      }
      case Kind::String:
        out += jsonQuote(str_);
        break;
      case Kind::Array: {
        out.push_back('[');
        bool first = true;
        for (const JsonValue &v : arr_) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            out += jsonQuote(k);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

JsonValue
JsonValue::parse(const std::string &text, std::string *err)
{
    Parser p{text};
    JsonValue out;
    if (!p.parseValue(out, 0)) {
        if (err)
            *err = p.err;
        return JsonValue();
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing garbage at byte " + std::to_string(p.pos);
        return JsonValue();
    }
    if (err)
        err->clear();
    return out;
}

} // namespace sbrp
