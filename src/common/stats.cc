#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/json.hh"

namespace sbrp
{

void
Distribution::record(std::uint64_t v)
{
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

namespace
{

/** Midpoint of bucket b's value range (bucket 0 holds only 0). */
std::uint64_t
bucketMid(std::uint32_t b)
{
    if (b == 0)
        return 0;
    std::uint64_t lo = 1ull << (b - 1);
    std::uint64_t hi = b >= 64 ? ~0ull : (1ull << b) - 1;
    return lo + (hi - lo) / 2;
}

} // namespace

std::uint64_t
Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(p * count_ + 0.5);
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
        seen += buckets_[b];
        if (seen >= target) {
            // Clamp the midpoint estimate into the observed range.
            return std::clamp(bucketMid(b), min(), max());
        }
    }
    return max_;
}

void
Distribution::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Stat &
StatGroup::stat(const std::string &name)
{
    return stats_[name];
}

Distribution &
StatGroup::dist(const std::string &name)
{
    return dists_[name];
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0 : it->second.value();
}

const Distribution *
StatGroup::findDist(const std::string &name) const
{
    auto it = dists_.find(name);
    return it == dists_.end() ? nullptr : &it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : stats_)
        kv.second.reset();
    for (auto &kv : dists_)
        kv.second.reset();
}

std::uint64_t
StatRegistry::sum(const std::string &prefix, const std::string &counter) const
{
    std::uint64_t total = 0;
    for (const auto *g : groups_) {
        if (g->name().rfind(prefix, 0) == 0)
            total += g->value(counter);
    }
    return total;
}

namespace
{

/** Registration order varies with construction; reports sort by name. */
std::vector<const StatGroup *>
sortedGroups(const std::vector<StatGroup *> &groups)
{
    std::vector<const StatGroup *> sorted(groups.begin(), groups.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name() < b->name();
              });
    return sorted;
}

void
formatDouble(std::ostringstream &oss, double v)
{
    oss.setf(std::ios::fixed);
    oss.precision(2);
    oss << v;
}

} // namespace

std::string
StatRegistry::dump() const
{
    std::ostringstream oss;
    for (const auto *g : sortedGroups(groups_)) {
        for (const auto &kv : g->all()) {
            if (kv.second.value() != 0) {
                oss << g->name() << "." << kv.first << " "
                    << kv.second.value() << "\n";
            }
        }
        for (const auto &kv : g->allDists()) {
            const Distribution &d = kv.second;
            if (d.count() == 0)
                continue;
            oss << g->name() << "." << kv.first << " count=" << d.count()
                << " min=" << d.min() << " max=" << d.max() << " mean=";
            formatDouble(oss, d.mean());
            oss << " p50=" << d.p50() << " p99=" << d.p99() << "\n";
        }
    }
    return oss.str();
}

std::string
StatRegistry::dumpJson() const
{
    // Group/counter names come from component code today, but nothing
    // enforces that — jsonQuote keeps the output well-formed even if a
    // name ever carries quotes or control characters.
    std::ostringstream oss;
    oss << "{\n  \"schema_version\": 1";
    for (const auto *g : sortedGroups(groups_)) {
        oss << ",";
        oss << "\n  " << jsonQuote(g->name()) << ": {";
        bool first = true;
        for (const auto &kv : g->all()) {
            if (kv.second.value() == 0)
                continue;
            if (!first)
                oss << ",";
            first = false;
            oss << "\n    " << jsonQuote(kv.first) << ": "
                << kv.second.value();
        }
        for (const auto &kv : g->allDists()) {
            const Distribution &d = kv.second;
            if (d.count() == 0)
                continue;
            if (!first)
                oss << ",";
            first = false;
            oss << "\n    " << jsonQuote(kv.first) << ": {\"count\": "
                << d.count() << ", \"min\": " << d.min()
                << ", \"max\": " << d.max() << ", \"mean\": ";
            formatDouble(oss, d.mean());
            oss << ", \"p50\": " << d.p50() << ", \"p99\": " << d.p99()
                << "}";
        }
        oss << (first ? "}" : "\n  }");
    }
    oss << "\n}\n";
    return oss.str();
}

void
StatRegistry::resetAll()
{
    for (auto *g : groups_)
        g->resetAll();
}

} // namespace sbrp
