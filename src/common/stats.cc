#include "common/stats.hh"

#include <sstream>

namespace sbrp
{

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Stat &
StatGroup::stat(const std::string &name)
{
    return stats_[name];
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &kv : stats_)
        kv.second.reset();
}

std::uint64_t
StatRegistry::sum(const std::string &prefix, const std::string &counter) const
{
    std::uint64_t total = 0;
    for (const auto *g : groups_) {
        if (g->name().rfind(prefix, 0) == 0)
            total += g->value(counter);
    }
    return total;
}

std::string
StatRegistry::dump() const
{
    std::ostringstream oss;
    for (const auto *g : groups_) {
        for (const auto &kv : g->all()) {
            if (kv.second.value() != 0) {
                oss << g->name() << "." << kv.first << " "
                    << kv.second.value() << "\n";
            }
        }
    }
    return oss.str();
}

void
StatRegistry::resetAll()
{
    for (auto *g : groups_)
        g->resetAll();
}

} // namespace sbrp
