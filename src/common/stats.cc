#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/json.hh"
#include "common/schema_versions.hh"

namespace sbrp
{

void
Distribution::record(std::uint64_t v)
{
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

std::uint64_t
Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p >= 1.0)
        return max_;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(p * count_ + 0.5);
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        if (seen + buckets_[b] < target) {
            seen += buckets_[b];
            continue;
        }
        // Interpolate by rank within the bucket's value range, treating
        // its samples as evenly spread (rank k of n sits at the
        // (k - 0.5)/n point). Bucket 0 holds only the value 0.
        if (b == 0)
            return std::clamp<std::uint64_t>(0, min(), max());
        std::uint64_t lo = 1ull << (b - 1);
        std::uint64_t hi = b >= 64 ? ~0ull : (1ull << b) - 1;
        std::uint64_t k = target - seen;                // 1-based rank.
        double frac = (static_cast<double>(k) - 0.5) /
                      static_cast<double>(buckets_[b]);
        auto v = lo + static_cast<std::uint64_t>(
                          static_cast<double>(hi - lo) * frac + 0.5);
        // Clamp the estimate into the observed range.
        return std::clamp(v, min(), max());
    }
    return max_;
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    for (std::uint32_t b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Distribution::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Stat &
StatGroup::stat(const std::string &name)
{
    return stats_[name];
}

Distribution &
StatGroup::dist(const std::string &name)
{
    return dists_[name];
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0 : it->second.value();
}

const Distribution *
StatGroup::findDist(const std::string &name) const
{
    auto it = dists_.find(name);
    return it == dists_.end() ? nullptr : &it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : stats_)
        kv.second.reset();
    for (auto &kv : dists_)
        kv.second.reset();
}

std::uint64_t
StatRegistry::sum(const std::string &prefix, const std::string &counter) const
{
    std::uint64_t total = 0;
    for (const auto *g : groups_) {
        if (g->name().rfind(prefix, 0) == 0)
            total += g->value(counter);
    }
    return total;
}

namespace
{

/** Registration order varies with construction; reports sort by name. */
std::vector<const StatGroup *>
sortedGroups(const std::vector<StatGroup *> &groups)
{
    std::vector<const StatGroup *> sorted(groups.begin(), groups.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name() < b->name();
              });
    return sorted;
}

void
formatDouble(std::ostringstream &oss, double v)
{
    oss.setf(std::ios::fixed);
    oss.precision(2);
    oss << v;
}

} // namespace

std::string
StatRegistry::dump() const
{
    std::ostringstream oss;
    for (const auto *g : sortedGroups(groups_)) {
        for (const auto &kv : g->all()) {
            if (kv.second.value() != 0) {
                oss << g->name() << "." << kv.first << " "
                    << kv.second.value() << "\n";
            }
        }
        for (const auto &kv : g->allDists()) {
            const Distribution &d = kv.second;
            if (d.count() == 0)
                continue;
            oss << g->name() << "." << kv.first << " count=" << d.count()
                << " min=" << d.min() << " max=" << d.max() << " mean=";
            formatDouble(oss, d.mean());
            oss << " p50=" << d.p50() << " p95=" << d.p95()
                << " p99=" << d.p99() << "\n";
        }
    }
    return oss.str();
}

std::string
StatRegistry::dumpJson() const
{
    // Group/counter names come from component code today, but nothing
    // enforces that — jsonQuote keeps the output well-formed even if a
    // name ever carries quotes or control characters.
    std::ostringstream oss;
    // Version 2: distributions gained p95 (interpolated percentiles)
    // and `sbrpsim --stats-json` splices in a cycle_breakdown section.
    // Version 3: the environment-dependent keys sbrpsim splices in
    // (host_wall_ms, sim_cycles_per_sec) moved under an `execution`
    // object, matching the campaign report v4 convention.
    oss << "{\n  \"schema_version\": " << schema::kStats;
    for (const auto *g : sortedGroups(groups_)) {
        oss << ",";
        oss << "\n  " << jsonQuote(g->name()) << ": {";
        bool first = true;
        for (const auto &kv : g->all()) {
            if (kv.second.value() == 0)
                continue;
            if (!first)
                oss << ",";
            first = false;
            oss << "\n    " << jsonQuote(kv.first) << ": "
                << kv.second.value();
        }
        for (const auto &kv : g->allDists()) {
            const Distribution &d = kv.second;
            if (d.count() == 0)
                continue;
            if (!first)
                oss << ",";
            first = false;
            oss << "\n    " << jsonQuote(kv.first) << ": {\"count\": "
                << d.count() << ", \"min\": " << d.min()
                << ", \"max\": " << d.max() << ", \"mean\": ";
            formatDouble(oss, d.mean());
            oss << ", \"p50\": " << d.p50() << ", \"p95\": " << d.p95()
                << ", \"p99\": " << d.p99() << "}";
        }
        oss << (first ? "}" : "\n  }");
    }
    oss << "\n}\n";
    return oss.str();
}

void
StatRegistry::resetAll()
{
    for (auto *g : groups_)
        g->resetAll();
}

} // namespace sbrp
