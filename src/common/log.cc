#include "common/log.hh"

#include <iostream>

namespace sbrp
{
namespace log_detail
{

namespace
{
int g_verbosity = 1;
} // namespace

std::string
format(const char *fmt)
{
    return std::string(fmt);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " [" << file << ":" << line << "]";
    throw PanicError(oss.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(oss.str());
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (g_verbosity > 0)
        std::cout << "info: " << msg << "\n";
}

void
setVerbosity(int level)
{
    g_verbosity = level;
}

int
verbosity()
{
    return g_verbosity;
}

} // namespace log_detail
} // namespace sbrp
