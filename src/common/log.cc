#include "common/log.hh"

#include <cstdlib>
#include <iostream>

namespace sbrp
{
namespace log_detail
{

namespace
{

int
initialVerbosity()
{
    const char *env = std::getenv("SBRP_LOG_LEVEL");
    return env && *env ? std::atoi(env) : 1;
}

int g_verbosity = initialVerbosity();

} // namespace

std::string
format(const char *fmt)
{
    std::string out;
    for (const char *p = fmt; *p; ++p) {
        if (p[0] == '%' && p[1] == '%')
            ++p;
        out.push_back(*p);
    }
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " [" << file << ":" << line << "]";
    throw PanicError(oss.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(oss.str());
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (g_verbosity > 0)
        std::cout << "info: " << msg << "\n";
}

void
setVerbosity(int level)
{
    g_verbosity = level;
}

int
verbosity()
{
    return g_verbosity;
}

} // namespace log_detail
} // namespace sbrp
