/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All workload generators seed explicitly so simulations are reproducible
 * across runs and platforms (xoshiro-style SplitMix64 core; we avoid
 * std::mt19937 to keep the sequence platform-stable and cheap).
 */

#ifndef SBRP_COMMON_RNG_HH
#define SBRP_COMMON_RNG_HH

#include <cstdint>

namespace sbrp
{

/** SplitMix64: tiny, fast, and statistically adequate for workloads. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform 32-bit value. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next()); }

    /** Uniform double in [0, 1). */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace sbrp

#endif // SBRP_COMMON_RNG_HH
