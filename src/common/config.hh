/**
 * @file
 * Simulated hardware configuration (Table 1 of the paper) plus the
 * persistency-model and system-design knobs swept by the evaluation.
 */

#ifndef SBRP_COMMON_CONFIG_HH
#define SBRP_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "fault/fault.hh"

namespace sbrp
{

/**
 * Full configuration of a simulated GPU+NVM system.
 *
 * Bandwidths are expressed in bytes per GPU core cycle and latencies in
 * cycles; paperDefault() derives them from Table 1's GB/s and ns figures
 * at the 1365 MHz core clock.
 */
struct SystemConfig
{
    // --- Execution resources (Table 1) ---
    std::uint32_t numSms = 30;
    double clockGhz = 1.365;
    std::uint32_t warpSize = 32;
    std::uint32_t maxWarpsPerSm = 32;
    std::uint32_t maxThreadsPerBlock = 1024;
    std::uint32_t issueWidth = 4;  ///< Instructions issued per SM cycle.
    Cycle watchdogCycles = 50'000'000;  ///< Deadlock detector.

    // --- Caches ---
    std::uint32_t lineBytes = 128;
    std::uint32_t l1Bytes = 64 * 1024;
    std::uint32_t l1Assoc = 8;
    std::uint32_t l2Bytes = 3 * 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    Cycle l1HitLatency = 30;
    Cycle l2Latency = 90;          ///< Interconnect + L2 access.

    // --- Memory system ---
    Cycle gddrLatency = 137;       ///< 100 ns at 1.365 GHz.
    double gddrBytesPerCycle = 246.0;   ///< 336 GB/s.
    Cycle nvmLatency = 410;        ///< 300 ns.
    double nvmReadBytesPerCycle = 61.5; ///< 84 GB/s.
    double nvmWriteBytesPerCycle = 30.8;///< 42 GB/s.
    Cycle pcieLatency = 410;       ///< 300 ns.
    double pcieBytesPerCycle = 20.5;    ///< 28 GB/s.
    std::uint32_t memChannels = 8; ///< Channels per memory kind.

    // --- Persistency configuration ---
    SystemDesign design = SystemDesign::PmNear;
    ModelKind model = ModelKind::Sbrp;
    PersistPoint persistPoint = PersistPoint::Adr;
    FlushPolicy flushPolicy = FlushPolicy::Window;
    std::uint32_t window = 6;      ///< Outstanding persists per SM.
    /**
     * Precise FSM hazard tracking: a persist blocked by the FSM waits
     * only for flushes issued before the blocking warp's ordering point
     * (tracked by flush sequence numbers) instead of a full ACTR==0
     * quiesce. The paper's 8-bit ACTR is the conservative variant
     * (false); see the figure10c ablation.
     */
    bool preciseFsm = true;
    double pbCoverage = 0.5;       ///< PB entries / L1 lines (Fig 10a).
    double nvmBwScale = 1.0;       ///< Fig 10b sweep knob.
    /**
     * FAULT INJECTION — testing only. Makes the SBRP drain engine skip
     * the FSM flush hazard and the PM eviction veto, so buffered
     * persists can reach the persistence domain out of PMO order. This
     * deliberately breaks the model's recoverability guarantee; the
     * crash campaign engine uses it to prove its oracles can detect a
     * broken model and to exercise failure minimization. Never enable
     * outside tests.
     */
    bool unsafeRelaxedPersistOrder = false;

    // --- Fault injection + resilience ---
    /**
     * Master seed for every deterministic random stream in a run: the
     * fault plan's draw streams and the campaign's crash-point shuffle
     * all derive from it. 0 means "unseeded": fault injection refuses
     * to run (a faulty run that cannot be replayed is worthless), and
     * app-input seeding falls back to each app's built-in default.
     */
    std::uint64_t seed = 0;
    /** Fault model; disabled by default (all rates 0, WPQ unbounded). */
    FaultSpec faults;
    /**
     * Max attempts per persist before the fabric gives up and reports
     * a structured PersistFault (never a hang, never silent loss).
     */
    std::uint32_t persistRetryBudget = 8;
    /** First retry backoff in cycles; doubles per attempt (capped). */
    Cycle retryBackoffBase = 16;

    // --- Derived helpers ---
    std::uint32_t l1Lines() const { return l1Bytes / lineBytes; }
    std::uint32_t l1Sets() const { return l1Lines() / l1Assoc; }
    std::uint32_t l2Lines() const { return l2Bytes / lineBytes; }
    std::uint32_t l2Sets() const { return l2Lines() / l2Assoc; }
    std::uint32_t pbEntries() const;

    /** True when NVM traffic crosses PCIe (PM-far). */
    bool nvmBehindPcie() const { return design == SystemDesign::PmFar; }

    /** Table 1 configuration with the given model/design. */
    static SystemConfig paperDefault(ModelKind model = ModelKind::Sbrp,
                                     SystemDesign design =
                                         SystemDesign::PmNear);

    /**
     * A reduced configuration (fewer SMs, smaller caches) used by unit
     * tests to keep individual simulations fast and digestible.
     */
    static SystemConfig testDefault(ModelKind model = ModelKind::Sbrp,
                                    SystemDesign design =
                                        SystemDesign::PmNear);

    /** Validates internal consistency; throws FatalError on bad configs. */
    void validate() const;

    /** Multi-line human-readable dump (bench headers print this). */
    std::string describe() const;
};

} // namespace sbrp

#endif // SBRP_COMMON_CONFIG_HH
