/**
 * @file
 * Minimal JSON reader/writer for the simulator's machine-readable
 * artifacts (crash-replay files, campaign reports).
 *
 * This is deliberately a small recursive-descent parser over a value
 * variant, not a general-purpose library: artifacts are tiny, written by
 * our own tools, and must be parseable without external dependencies.
 * Parsing never throws — malformed input yields an error string, so CLI
 * tools can exit nonzero with a useful message instead of unwinding.
 */

#ifndef SBRP_COMMON_JSON_HH
#define SBRP_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sbrp
{

/** One JSON value; objects keep key order sorted (std::map). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit JsonValue(double n) : kind_(Kind::Number), num_(n) {}
    explicit JsonValue(std::uint64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n)) {}
    explicit JsonValue(std::string s)
        : kind_(Kind::String), str_(std::move(s)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    std::uint64_t asU64() const
    { return num_ < 0 ? 0 : static_cast<std::uint64_t>(num_); }
    const std::string &asString() const { return str_; }

    const std::vector<JsonValue> &items() const { return arr_; }
    const std::map<std::string, JsonValue> &fields() const { return obj_; }

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Builders (used by the writers and tests). */
    static JsonValue array();
    static JsonValue object();
    void push(JsonValue v);
    void set(const std::string &key, JsonValue v);

    /** Serializes compactly; `indent` > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

    /**
     * Parses `text`. On failure returns a Null value and sets *err (when
     * non-null) to a one-line description with the byte offset.
     */
    static JsonValue parse(const std::string &text, std::string *err);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/** Escapes a string for embedding in JSON output (adds the quotes). */
std::string jsonQuote(const std::string &s);

} // namespace sbrp

#endif // SBRP_COMMON_JSON_HH
