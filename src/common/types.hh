/**
 * @file
 * Fundamental scalar types and enums shared across the SBRP simulator.
 */

#ifndef SBRP_COMMON_TYPES_HH
#define SBRP_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace sbrp
{

/** Simulation time in GPU core cycles. */
using Cycle = std::uint64_t;

/**
 * Sentinel cycle meaning "no event / no wake scheduled". Chosen as the
 * maximum representable cycle so scheduler min() reductions need no
 * special case (any real deadline compares smaller).
 */
inline constexpr Cycle kNoEvent = ~Cycle{0};

/** A (virtual) memory address in the GPU's unified address space. */
using Addr = std::uint64_t;

/** Identifier types for the GPU execution hierarchy. */
using SmId = std::uint32_t;
using WarpSlot = std::uint32_t;   ///< Resident warp slot within an SM.
using BlockId = std::uint32_t;    ///< Threadblock id within a grid.
using ThreadId = std::uint32_t;   ///< Global thread id within a grid.

/** Memory space a datum lives in. */
enum class Space : std::uint8_t
{
    Gddr,   ///< Volatile on-board GDDR/HBM.
    Nvm,    ///< Persistent memory (NVM).
};

/** Scope of a synchronization / persist operation. */
enum class Scope : std::uint8_t
{
    Block,   ///< Threads of the same threadblock (CTA).
    Device,  ///< All threads on the GPU.
    System,  ///< GPU + CPU (used by GPM's __threadfence_system).
};

/** Where the NVM physically sits (Section 3 of the paper). */
enum class SystemDesign : std::uint8_t
{
    PmFar,   ///< NVM attached to the host, reached over PCIe.
    PmNear,  ///< NVM onboard the GPU behind ADR memory controllers.
};

/** Which persistency model the GPU enforces. */
enum class ModelKind : std::uint8_t
{
    Gpm,    ///< GPM's implicit model: system-scope fence epoch barriers
            ///< flushing both volatile and PM writes.
    Epoch,  ///< Enhanced epoch model: barriers affect only PM writes.
    Sbrp,   ///< Scoped Buffered Release Persistency (this paper).
    ScopedBarrier,  ///< Scoped persist barriers (Gope et al., the
                    ///< related-work comparator of Section 8): every
                    ///< ordering op stalls and drains.
};

/** Point at which a persist is considered durable. */
enum class PersistPoint : std::uint8_t
{
    Adr,    ///< Durable when accepted by the (ADR) memory controller.
    Eadr,   ///< Durable when reaching the host LLC (PM-far only).
};

/** Flush scheduling policy for SBRP's persist buffer (Section 6.2). */
enum class FlushPolicy : std::uint8_t
{
    Eager,   ///< Flush as soon as ordering constraints allow.
    Lazy,    ///< Flush only at ordering operations.
    Window,  ///< Maintain a fixed number of outstanding persists.
};

/** Human-readable names, primarily for bench/report output. */
const char *toString(Space s);
const char *toString(Scope s);
const char *toString(SystemDesign d);
const char *toString(ModelKind m);
const char *toString(PersistPoint p);
const char *toString(FlushPolicy p);

/**
 * Case-insensitive enum parsers for CLI flags and replay artifacts.
 * They accept the toString() spellings plus the historical CLI aliases
 * (e.g. "sbrp", "gpm", "barrier"); they return false on unknown input
 * without touching *out.
 */
bool scopeFromString(const std::string &s, Scope *out);
bool modelKindFromString(const std::string &s, ModelKind *out);
bool systemDesignFromString(const std::string &s, SystemDesign *out);
bool persistPointFromString(const std::string &s, PersistPoint *out);
bool flushPolicyFromString(const std::string &s, FlushPolicy *out);

} // namespace sbrp

#endif // SBRP_COMMON_TYPES_HH
