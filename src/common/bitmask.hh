/**
 * @file
 * A 32-bit warp bitmask, the unit of PMO tracking in SBRP hardware.
 *
 * The paper's persist buffer tags every entry with a "Warp BM" naming the
 * warps that issued the tracked operation; the per-SM ODM/EDM/FSM masks use
 * the same width (one bit per resident warp slot, Section 6).
 */

#ifndef SBRP_COMMON_BITMASK_HH
#define SBRP_COMMON_BITMASK_HH

#include <bit>
#include <cstdint>

#include "common/log.hh"

namespace sbrp
{

/** A set of resident-warp slots, at most 32 per SM. */
class WarpMask
{
  public:
    constexpr WarpMask() = default;
    constexpr explicit WarpMask(std::uint32_t bits) : bits_(bits) {}

    /** A mask with exactly one warp slot set. */
    static WarpMask
    single(std::uint32_t slot)
    {
        sbrp_assert(slot < 32, "warp slot %s out of range", slot);
        return WarpMask(1u << slot);
    }

    constexpr std::uint32_t raw() const { return bits_; }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr bool test(std::uint32_t slot) const
    { return (bits_ >> slot) & 1u; }
    constexpr int count() const { return std::popcount(bits_); }

    void set(std::uint32_t slot) { bits_ |= (1u << slot); }
    void clear(std::uint32_t slot) { bits_ &= ~(1u << slot); }
    void clearAll() { bits_ = 0; }

    constexpr bool overlaps(WarpMask o) const
    { return (bits_ & o.bits_) != 0; }

    constexpr WarpMask operator|(WarpMask o) const
    { return WarpMask(bits_ | o.bits_); }
    constexpr WarpMask operator&(WarpMask o) const
    { return WarpMask(bits_ & o.bits_); }
    constexpr WarpMask operator~() const { return WarpMask(~bits_); }
    WarpMask &operator|=(WarpMask o) { bits_ |= o.bits_; return *this; }
    WarpMask &operator&=(WarpMask o) { bits_ &= o.bits_; return *this; }
    constexpr bool operator==(const WarpMask &) const = default;

  private:
    std::uint32_t bits_ = 0;
};

} // namespace sbrp

#endif // SBRP_COMMON_BITMASK_HH
