/**
 * @file
 * Single source of truth for every machine-readable artifact schema
 * version the simulator emits. Bump a constant here when the matching
 * schema changes; emitters reference these constants so `--version`
 * output, writers, and readers can never drift apart.
 */

#ifndef SBRP_COMMON_SCHEMA_VERSIONS_HH
#define SBRP_COMMON_SCHEMA_VERSIONS_HH

#include <cstdint>
#include <string>

namespace sbrp::schema
{

/** StatsRegistry JSON dump (`--stats-json`). */
inline constexpr std::uint32_t kStats = 3;

/** Crash-campaign report (`crashfuzz --report`). */
inline constexpr std::uint32_t kCampaignReport = 4;

/** Crash-replay artifact (`crashfuzz --artifacts` / `--replay`). */
inline constexpr std::uint32_t kCrashReplay = 2;

/** Sharded-campaign job manifest (`crashfuzz --shards --manifest`). */
inline constexpr std::uint32_t kCampaignManifest = 1;

/** Per-shard verdict journal (`crashfuzz --journal`). */
inline constexpr std::uint32_t kShardJournal = 1;

/** Persist-op provenance document (`--persist-provenance`). */
inline constexpr std::uint32_t kProvenance = 1;

/** Model-checking schedule artifact (`mcheck --artifacts` / `--replay`). */
inline constexpr std::uint32_t kMcSchedule = 1;

/** Model-checking report (`mcheck --report` / `--stats-json`). */
inline constexpr std::uint32_t kMcReport = 1;

/** Windowed time-series metrics JSONL (`sbrpsim --metrics-json`). */
inline constexpr std::uint32_t kMetrics = 1;

/** Per-shard campaign heartbeat JSONL (sidecar next to the journal). */
inline constexpr std::uint32_t kHeartbeat = 1;

/** One-line summary for every tool's `--version` output. */
inline std::string
describeAll()
{
    return "schemas: stats=" + std::to_string(kStats) +
           " campaign-report=" + std::to_string(kCampaignReport) +
           " campaign-manifest=" + std::to_string(kCampaignManifest) +
           " shard-journal=" + std::to_string(kShardJournal) +
           " crash-replay=" + std::to_string(kCrashReplay) +
           " provenance=" + std::to_string(kProvenance) +
           " mc-schedule=" + std::to_string(kMcSchedule) +
           " mc-report=" + std::to_string(kMcReport) +
           " metrics=" + std::to_string(kMetrics) +
           " heartbeat=" + std::to_string(kHeartbeat);
}

} // namespace sbrp::schema

#endif // SBRP_COMMON_SCHEMA_VERSIONS_HH
