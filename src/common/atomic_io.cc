#include "common/atomic_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace sbrp
{

namespace
{

bool
failWith(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
    return false;
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &text,
                std::string *err)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return failWith(err, "cannot open '" + tmp + "'");

    std::string payload = text;
    payload.push_back('\n');
    std::size_t off = 0;
    while (off < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + off, payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return failWith(err, "cannot write '" + tmp + "'");
        }
        off += static_cast<std::size_t>(n);
    }
    // The fsync-before-rename is what makes the rename a commit point:
    // without it the rename can land on disk before the data does.
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return failWith(err, "cannot fsync '" + tmp + "'");
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return failWith(err, "cannot close '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return failWith(err, "cannot rename '" + tmp + "' to '" + path +
                             "'");
    }
    return true;
}

bool
readFileToString(const std::string &path, std::string *out,
                 std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (err)
            *err = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace sbrp
