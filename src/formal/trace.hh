/**
 * @file
 * Execution tracing for the formal SBRP model.
 *
 * When a trace is attached to a GpuSystem, every persist store, fence,
 * acquire and release is logged per *thread* (the granularity of the
 * formal model in Box 2 of the paper), and every line commit into the
 * persistence domain is logged in commit order. The PmoChecker then
 * verifies that the microarchitecture's commit order respects every
 * persist-memory-order edge the formal model requires — at every prefix,
 * i.e. for every possible crash point.
 */

#ifndef SBRP_FORMAL_TRACE_HH
#define SBRP_FORMAL_TRACE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

/** One logical operation in the formal model. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Persist,  ///< A write to NVM (W^t_i in the paper).
        OFence,   ///< Ordering fence (OF^t).
        DFence,   ///< Durability fence (DF^t).
        PAcq,     ///< Scoped persist acquire (recorded at spin success).
        PRel,     ///< Scoped persist release (recorded at issue).
        Fence,    ///< Epoch barrier (GPM/epoch models).
    };

    Kind kind;
    ThreadId tid = 0;          ///< Global thread id.
    BlockId block = 0;         ///< Threadblock of the thread.
    std::uint64_t id = 0;      ///< Global op id; doubles as store id.
    Addr addr = 0;             ///< Persist target or flag address.
    Scope scope = Scope::Block;
    /** For PAcq: op id of the matched release (0 if none observed). */
    std::uint64_t matchedRel = 0;
};

/**
 * Collects the logical operation stream and the physical commit stream
 * of one simulation. Attachable to a GpuSystem; ignored when null.
 */
class ExecutionTrace
{
  public:
    // --- Logical operations (called from the SM at execute time) ---

    /** Logs a persist store; the returned id tags the pending line. */
    std::uint64_t recordPersist(ThreadId tid, BlockId block, Addr addr);

    std::uint64_t recordFence(TraceOp::Kind kind, ThreadId tid,
                              BlockId block, Scope scope);

    /** Logs a release at issue time. */
    std::uint64_t recordRel(ThreadId tid, BlockId block, Addr flag,
                            Scope scope);

    /**
     * Marks a release's flag value as published (visible to acquirers);
     * called by the persistency model when the flag store is performed.
     */
    void publishRel(Addr flag, std::uint64_t rel_id);

    /** Logs an acquire at spin-success time; matches the published rel. */
    std::uint64_t recordAcq(ThreadId tid, BlockId block, Addr flag,
                            Scope scope);

    // --- Physical persist tracking (called from the persist machinery) ---

    /** Associates a just-executed store id with its (pending) L1 line. */
    void notePendingStore(Addr line_addr, std::uint64_t store_id);

    /** Steals the pending store ids of a line at flush-snapshot time. */
    std::vector<std::uint64_t> takePending(Addr line_addr);

    /** Logs a commit (persistence-domain accept) of the given store ids. */
    void recordCommit(std::vector<std::uint64_t> store_ids);

    // --- Results ---

    const std::vector<TraceOp> &ops() const { return ops_; }
    const std::vector<std::vector<std::uint64_t>> &commits() const
    { return commits_; }

    /** Total logical ops recorded. */
    std::size_t size() const { return ops_.size(); }

    void clear();

  private:
    std::uint64_t nextId_ = 1;   // 0 means "no op".
    std::vector<TraceOp> ops_;
    std::vector<std::vector<std::uint64_t>> commits_;
    std::unordered_map<Addr, std::vector<std::uint64_t>> pending_;
    std::unordered_map<Addr, std::uint64_t> publishedRel_;
};

} // namespace sbrp

#endif // SBRP_FORMAL_TRACE_HH
