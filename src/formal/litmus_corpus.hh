/**
 * @file
 * The registered litmus corpus: named persistency patterns shared by
 * the unit tests and the stateless model checker (src/mc/).
 *
 * Each pattern builds a model-appropriate kernel — SBRP and the scoped
 * persist barriers use oFence/pRel/pAcq, the GPM/epoch models get the
 * equivalent fence + flag-store / spin-load formulation — so every
 * pattern runs under all four persistency models.
 *
 * Address layouts are channel-aware: NVM write channels stripe by
 * cache line (`(line / lineBytes) % memChannels`), and a PMO violation
 * is only *observable* as a commit inversion when the must-persist-
 * first line sits behind a backlog on its channel while the ordered-
 * after line lands on an idle one. Every ordered pattern therefore
 * places its PMO-edged pairs at a same-channel stride (kSameChannel,
 * which aliases for any memChannels dividing 8) with an unordered
 * preamble backlogging that channel. Under a correct model the FSM /
 * barrier machinery waits for acks, so commit order holds on every
 * schedule; under `--unsafe-relaxed-order` the burst flush inverts it.
 */

#ifndef SBRP_FORMAL_LITMUS_CORPUS_HH
#define SBRP_FORMAL_LITMUS_CORPUS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "formal/litmus.hh"

namespace sbrp
{

/** One registered litmus pattern. */
struct LitmusPattern
{
    std::string name;
    std::string summary;

    /**
     * Carries PMO ordering edges. The model checker asserts that the
     * seeded `--unsafe-relaxed-order` bug produces a violating
     * schedule exactly for ordered patterns; `independent` has no
     * edges, so no schedule can violate it under any model (its
     * absence verdict is vacuous but still exercises pruning).
     */
    bool ordered = true;

    /** Cheap enough for exhaustive exploration in CI (single block,
        few warps). */
    bool small = true;

    /** Builds the scenario with model-appropriate ordering ops. */
    std::function<LitmusScenario(ModelKind)> make;

    LitmusScenario scenario(ModelKind model) const { return make(model); }
};

/** All registered patterns, in a stable order. */
const std::vector<LitmusPattern> &litmusCorpus();

/** Looks a pattern up by name; null when unknown. */
const LitmusPattern *findLitmusPattern(const std::string &name);

} // namespace sbrp

#endif // SBRP_FORMAL_LITMUS_CORPUS_HH
