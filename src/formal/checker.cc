#include "formal/checker.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/log.hh"

namespace sbrp
{

namespace
{

/** Per-thread view of the logical trace. */
struct ThreadOps
{
    std::vector<const TraceOp *> ops;
};

bool
scopeSufficient(const TraceOp &rel, const TraceOp &acq)
{
    if (rel.scope == Scope::Block || acq.scope == Scope::Block)
        return rel.block == acq.block;
    return true;   // Device/system scope covers any two GPU threads.
}

} // namespace

PmoChecker::PmoChecker(const ExecutionTrace &trace) : trace_(trace)
{
}

void
PmoChecker::indexCommits()
{
    std::uint64_t max_id = 0;
    for (const TraceOp &op : trace_.ops())
        max_id = std::max(max_id, op.id);
    commitOf_.assign(max_id + 1, kNever);

    std::uint64_t batch = 0;
    for (const auto &ids : trace_.commits()) {
        for (std::uint64_t id : ids) {
            if (id <= max_id) {
                commitOf_[id] = batch;
                ++stats_.committedPersists;
            }
        }
        ++batch;
    }
}

std::uint64_t
PmoChecker::commitIdx(std::uint64_t store_id) const
{
    if (store_id >= commitOf_.size())
        return kNever;
    return commitOf_[store_id];
}

std::vector<PmoViolation>
PmoChecker::check()
{
    std::vector<PmoViolation> out;
    indexCommits();
    checkFenceRule(out);
    checkRelAcqRule(out);
    return out;
}

void
PmoChecker::checkFenceRule(std::vector<PmoViolation> &out)
{
    // Group ops per thread (trace order preserves per-thread po).
    std::map<ThreadId, ThreadOps> threads;
    for (const TraceOp &op : trace_.ops())
        threads[op.tid].ops.push_back(&op);

    for (auto &[tid, t] : threads) {
        (void)tid;
        // Epoch number = count of ordering fences seen so far. dFence
        // implies oFence ordering; epoch barriers (Fence) do too.
        std::uint64_t epoch = 0;
        // (epoch, store) pairs in po order.
        std::vector<std::pair<std::uint64_t, const TraceOp *>> persists;
        for (const TraceOp *op : t.ops) {
            switch (op->kind) {
              case TraceOp::Kind::Persist:
                persists.emplace_back(epoch, op);
                ++stats_.persists;
                break;
              case TraceOp::Kind::OFence:
              case TraceOp::Kind::DFence:
              case TraceOp::Kind::Fence:
                ++epoch;
                break;
              default:
                break;
            }
        }
        if (persists.empty())
            continue;

        // Walk epochs in order: the running max commit index of all
        // earlier epochs must not exceed any later epoch's commit index.
        std::uint64_t prev_epoch_max = 0;
        bool have_prev = false;
        const TraceOp *prev_max_op = nullptr;
        std::size_t i = 0;
        while (i < persists.size()) {
            std::uint64_t e = persists[i].first;
            std::uint64_t cur_max = 0;
            const TraceOp *cur_max_op = nullptr;
            std::size_t j = i;
            for (; j < persists.size() && persists[j].first == e; ++j) {
                std::uint64_t c = commitIdx(persists[j].second->id);
                // prev_epoch_max > c: an earlier-epoch persist became
                // durable after (or never, while) this one did.
                if (have_prev && prev_epoch_max > c) {
                    PmoViolation v;
                    v.w1 = prev_max_op->id;
                    v.w2 = persists[j].second->id;
                    v.rule = "ofence";
                    std::ostringstream oss;
                    oss << "thread " << persists[j].second->tid
                        << ": store " << v.w1 << " (epoch < " << e
                        << ") committed at " << prev_epoch_max
                        << " after store " << v.w2 << " (epoch " << e
                        << ") committed at " << c;
                    v.detail = oss.str();
                    out.push_back(std::move(v));
                }
                if (cur_max_op == nullptr || c > cur_max) {
                    cur_max = c;
                    cur_max_op = persists[j].second;
                }
            }
            if (!have_prev || cur_max > prev_epoch_max) {
                prev_epoch_max = cur_max;
                prev_max_op = cur_max_op;
            }
            have_prev = true;
            ++stats_.fenceEpochsChecked;
            i = j;
        }
    }
}

void
PmoChecker::checkRelAcqRule(std::vector<PmoViolation> &out)
{
    std::map<ThreadId, ThreadOps> threads;
    std::map<std::uint64_t, const TraceOp *> byId;
    for (const TraceOp &op : trace_.ops()) {
        threads[op.tid].ops.push_back(&op);
        byId[op.id] = &op;
    }

    // Per-thread prefix max / suffix min of persist commit indices, by
    // op position within the thread.
    struct Profile
    {
        // prefixMax[k]: max commit of persists among first k ops;
        // the op *and* id realizing it, for diagnostics.
        std::vector<std::uint64_t> prefixMax;
        std::vector<std::uint64_t> prefixMaxId;
        std::vector<std::uint64_t> suffixMin;
        std::vector<std::uint64_t> suffixMinId;
        std::map<std::uint64_t, std::size_t> posOf;   // op id -> position.
    };
    std::map<ThreadId, Profile> profiles;

    for (auto &[tid, t] : threads) {
        Profile &p = profiles[tid];
        std::size_t n = t.ops.size();
        p.prefixMax.assign(n + 1, 0);
        p.prefixMaxId.assign(n + 1, 0);
        p.suffixMin.assign(n + 1, kNever);
        p.suffixMinId.assign(n + 1, 0);

        std::uint64_t run_max = 0;
        std::uint64_t run_max_id = 0;
        bool any = false;
        for (std::size_t k = 0; k < n; ++k) {
            p.posOf[t.ops[k]->id] = k;
            p.prefixMax[k] = any ? run_max : 0;
            p.prefixMaxId[k] = run_max_id;
            if (t.ops[k]->kind == TraceOp::Kind::Persist) {
                std::uint64_t c = commitIdx(t.ops[k]->id);
                if (!any || c > run_max) {
                    run_max = c;
                    run_max_id = t.ops[k]->id;
                }
                any = true;
            }
        }
        p.prefixMax[n] = any ? run_max : 0;
        p.prefixMaxId[n] = run_max_id;

        std::uint64_t run_min = kNever;
        std::uint64_t run_min_id = 0;
        for (std::size_t k = n; k-- > 0;) {
            p.suffixMin[k + 1] = run_min;
            p.suffixMinId[k + 1] = run_min_id;
            if (t.ops[k]->kind == TraceOp::Kind::Persist) {
                std::uint64_t c = commitIdx(t.ops[k]->id);
                if (c < run_min) {
                    run_min = c;
                    run_min_id = t.ops[k]->id;
                }
            }
        }
        p.suffixMin[0] = run_min;
        p.suffixMinId[0] = run_min_id;
    }

    for (const TraceOp &acq : trace_.ops()) {
        if (acq.kind != TraceOp::Kind::PAcq || acq.matchedRel == 0)
            continue;
        auto rel_it = byId.find(acq.matchedRel);
        sbrp_assert(rel_it != byId.end(), "acquire matched unknown rel %s",
                    acq.matchedRel);
        const TraceOp &rel = *rel_it->second;
        if (!scopeSufficient(rel, acq))
            continue;   // The formal model imposes no edge.
        ++stats_.relAcqEdgesChecked;

        const Profile &pr = profiles.at(rel.tid);
        const Profile &pa = profiles.at(acq.tid);
        std::size_t rel_pos = pr.posOf.at(rel.id);
        std::size_t acq_pos = pa.posOf.at(acq.id);

        std::uint64_t before_max = pr.prefixMax[rel_pos];
        std::uint64_t before_id = pr.prefixMaxId[rel_pos];
        std::uint64_t after_min = pa.suffixMin[acq_pos + 1];
        std::uint64_t after_id = pa.suffixMinId[acq_pos + 1];

        if (before_id != 0 && after_id != 0 && before_max > after_min) {
            PmoViolation v;
            v.w1 = before_id;
            v.w2 = after_id;
            v.rule = "rel-acq";
            std::ostringstream oss;
            oss << "store " << v.w1 << " (thread " << rel.tid
                << ", before pRel " << rel.id << ") committed at "
                << (before_max == kNever ? -1 : (long long)before_max)
                << " but store " << v.w2 << " (thread " << acq.tid
                << ", after pAcq " << acq.id << ") committed at "
                << (long long)after_min;
            v.detail = oss.str();
            out.push_back(std::move(v));
        }
    }
}

} // namespace sbrp
