#include "formal/trace.hh"

#include <utility>

namespace sbrp
{

std::uint64_t
ExecutionTrace::recordPersist(ThreadId tid, BlockId block, Addr addr)
{
    TraceOp op;
    op.kind = TraceOp::Kind::Persist;
    op.tid = tid;
    op.block = block;
    op.id = nextId_++;
    op.addr = addr;
    ops_.push_back(op);
    return op.id;
}

std::uint64_t
ExecutionTrace::recordFence(TraceOp::Kind kind, ThreadId tid, BlockId block,
                            Scope scope)
{
    TraceOp op;
    op.kind = kind;
    op.tid = tid;
    op.block = block;
    op.id = nextId_++;
    op.scope = scope;
    ops_.push_back(op);
    return op.id;
}

std::uint64_t
ExecutionTrace::recordRel(ThreadId tid, BlockId block, Addr flag,
                          Scope scope)
{
    TraceOp op;
    op.kind = TraceOp::Kind::PRel;
    op.tid = tid;
    op.block = block;
    op.id = nextId_++;
    op.addr = flag;
    op.scope = scope;
    ops_.push_back(op);
    return op.id;
}

void
ExecutionTrace::publishRel(Addr flag, std::uint64_t rel_id)
{
    publishedRel_[flag] = rel_id;
}

std::uint64_t
ExecutionTrace::recordAcq(ThreadId tid, BlockId block, Addr flag,
                          Scope scope)
{
    TraceOp op;
    op.kind = TraceOp::Kind::PAcq;
    op.tid = tid;
    op.block = block;
    op.id = nextId_++;
    op.addr = flag;
    op.scope = scope;
    auto it = publishedRel_.find(flag);
    op.matchedRel = it == publishedRel_.end() ? 0 : it->second;
    ops_.push_back(op);
    return op.id;
}

void
ExecutionTrace::notePendingStore(Addr line_addr, std::uint64_t store_id)
{
    pending_[line_addr].push_back(store_id);
}

std::vector<std::uint64_t>
ExecutionTrace::takePending(Addr line_addr)
{
    auto it = pending_.find(line_addr);
    if (it == pending_.end())
        return {};
    std::vector<std::uint64_t> ids = std::move(it->second);
    pending_.erase(it);
    return ids;
}

void
ExecutionTrace::recordCommit(std::vector<std::uint64_t> store_ids)
{
    commits_.push_back(std::move(store_ids));
}

void
ExecutionTrace::clear()
{
    nextId_ = 1;
    ops_.clear();
    commits_.clear();
    pending_.clear();
    publishedRel_.clear();
}

} // namespace sbrp
