/**
 * @file
 * The persist-memory-order (PMO) checker: validates a simulated
 * execution's physical commit order against the formal SBRP model.
 *
 * Box 2 of the paper defines two direct ordering rules:
 *
 *   Intra-thread:  W^t_i  -po->  OF^t  -po->  W^t_j   =>  W_i -pmo-> W_j
 *   Inter-thread:  W^t1_i -po-> pRel_{X,S} -vmo-> pAcq_{X,S} -po-> W^t2_j
 *                  =>  W_i -pmo-> W_j   (S must include both threads)
 *
 * plus transitivity. Because the commit stream is totally ordered,
 * validating every *direct* rule edge against commit indices implies the
 * transitive closure holds, and implies the durable set at every crash
 * prefix is downward-closed under PMO.
 */

#ifndef SBRP_FORMAL_CHECKER_HH
#define SBRP_FORMAL_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "formal/trace.hh"

namespace sbrp
{

/** One violated PMO edge. */
struct PmoViolation
{
    std::uint64_t w1 = 0;   ///< Store id required to persist first.
    std::uint64_t w2 = 0;   ///< Store id that persisted too early.
    std::string rule;       ///< "ofence" or "rel-acq".
    std::string detail;
};

/** Summary statistics of a check (for test assertions). */
struct PmoCheckStats
{
    std::uint64_t persists = 0;
    std::uint64_t fenceEpochsChecked = 0;
    std::uint64_t relAcqEdgesChecked = 0;
    std::uint64_t committedPersists = 0;
};

class PmoChecker
{
  public:
    explicit PmoChecker(const ExecutionTrace &trace);

    /** Runs all checks; an empty vector means the execution is valid. */
    std::vector<PmoViolation> check();

    const PmoCheckStats &stats() const { return stats_; }

  private:
    static constexpr std::uint64_t kNever = ~0ull;

    void indexCommits();
    void checkFenceRule(std::vector<PmoViolation> &out);
    void checkRelAcqRule(std::vector<PmoViolation> &out);

    /** Commit batch index of a store; kNever if not durable. */
    std::uint64_t commitIdx(std::uint64_t store_id) const;

    const ExecutionTrace &trace_;
    PmoCheckStats stats_;
    std::vector<std::uint64_t> commitOf_;  // store id -> batch (dense).
};

} // namespace sbrp

#endif // SBRP_FORMAL_CHECKER_HH
