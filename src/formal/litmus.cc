#include "formal/litmus.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"
#include "obs/provenance.hh"

namespace sbrp
{

std::uint64_t
LitmusReport::totalViolations() const
{
    std::uint64_t n = 0;
    for (const LitmusRun &r : runs)
        n += r.violations.size();
    return n;
}

LitmusScenario::LitmusScenario(std::string name, Setup setup, Build build,
                               Judge judge)
    : name_(std::move(name)),
      setup_(std::move(setup)),
      build_(std::move(build)),
      judge_(std::move(judge))
{
}

namespace
{

/** FNV-1a over every named region's durable bytes, in name order
    (std::map iteration), so equal digests mean byte-identical
    recoverable state. */
std::uint64_t
durableDigest(const NvmDevice &nvm)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint8_t b) {
        h ^= b;
        h *= 0x100000001b3ull;
    };
    std::uint8_t buf[256];
    for (const auto &[name, region] : nvm.table()) {
        for (char c : name)
            mix(static_cast<std::uint8_t>(c));
        for (std::uint64_t off = 0; off < region.size;
                off += sizeof(buf)) {
            auto len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(sizeof(buf),
                                        region.size - off));
            nvm.durable().readBlock(region.base + off, buf, len);
            for (std::uint32_t i = 0; i < len; ++i)
                mix(buf[i]);
        }
    }
    return h;
}

} // namespace

LitmusRun
LitmusScenario::runOnce(const SystemConfig &cfg,
                        std::optional<Cycle> crash_at,
                        ScheduleController *ctl) const
{
    NvmDevice nvm;
    if (setup_)
        setup_(nvm);

    ExecutionTrace trace;
    PersistProvenance prov;
    LitmusRun run;
    run.crashAt = crash_at;
    {
        GpuSystem gpu(cfg, nvm, &trace, nullptr, &prov);
        gpu.setScheduleController(ctl);
        KernelProgram kernel = build_(nvm);
        auto res = gpu.launch(kernel, crash_at);
        run.cycles = res.cycles;
        run.crashed = res.crashed;
    }   // Crash: volatile state (caches, PB, in-flight writes) is gone.

    PmoChecker checker(trace);
    run.violations = checker.check();

    // Free ordering check: the audit stream was appended in durable-
    // image write order, so it must be monotone in commit cycle (on
    // crashed runs too — a crash only truncates the prefix).
    run.auditRecords = prov.audit().size();
    Cycle lastCommit = 0;
    for (const PersistAuditRecord &a : prov.audit()) {
        if (a.commitCycle < lastCommit)
            ++run.auditOrderBreaks;
        lastCommit = a.commitCycle;
    }
    run.nvmDigest = durableDigest(nvm);
    if (judge_)
        run.durableStateOk = judge_(nvm, run.crashed);
    return run;
}

LitmusRun
LitmusScenario::runControlled(const SystemConfig &cfg,
                              ScheduleController *ctl,
                              std::optional<Cycle> crash_at) const
{
    return runOnce(cfg, crash_at, ctl);
}

LitmusReport
LitmusScenario::run(const SystemConfig &cfg,
                    const std::vector<double> &crash_fractions) const
{
    LitmusReport report;
    report.name = name_;

    LitmusRun clean = runOnce(cfg, std::nullopt);
    report.crashFreeCycles = clean.cycles;
    report.runs.push_back(clean);

    for (double f : crash_fractions) {
        auto at = static_cast<Cycle>(
            static_cast<double>(report.crashFreeCycles) * f);
        at = std::max<Cycle>(at, 1);
        report.runs.push_back(runOnce(cfg, at));
    }
    return report;
}

} // namespace sbrp
