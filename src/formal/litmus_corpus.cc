#include "formal/litmus_corpus.hh"

#include "gpu/kernel.hh"
#include "mem/nvm_device.hh"

namespace sbrp
{

namespace
{

/** One cache line. */
constexpr Addr kLine = 128;

/**
 * Same-NVM-write-channel stride: 8 lines. Channels stripe by line
 * index modulo memChannels, and both configs of interest (testDefault:
 * 4, paperDefault: 8) divide 8, so two addresses this far apart always
 * share a write channel while +kLine always changes it. Region bases
 * are 256-aligned, so only relative offsets matter.
 */
constexpr Addr kSameChannel = 8 * kLine;

bool
usesScopedOps(ModelKind m)
{
    return m == ModelKind::Sbrp || m == ModelKind::ScopedBarrier;
}

WarpBuilder::AddrFn
at(Addr a)
{
    return [a](std::uint32_t) { return a; };
}

/** Lane-0 persist store of an immediate. */
void
st(WarpBuilder &wb, Addr a, std::uint32_t v)
{
    wb.storeImm(at(a), [v](std::uint32_t) { return v; }, mask::lane(0));
}

/** Intra-thread persist ordering: oFence, or the epoch barrier. */
void
emitOFence(WarpBuilder &wb, ModelKind m)
{
    if (usesScopedOps(m))
        wb.ofence(mask::lane(0));
    else
        wb.fence(Scope::Device, mask::lane(0));
}

/**
 * Scoped release of `v` to `flag`. The epoch/GPM formulation is the
 * classic fence + flag store: the barrier stalls until everything
 * prior is durable, then publishes the flag, which gives the same
 * inter-thread persist-ordering guarantee without scoped ops.
 */
void
emitRelease(WarpBuilder &wb, ModelKind m, Addr flag, std::uint32_t v,
            Scope sc)
{
    if (usesScopedOps(m)) {
        wb.prel(at(flag), v, sc, mask::lane(0));
    } else {
        wb.fence(Scope::Device, mask::lane(0));
        st(wb, flag, v);
    }
}

/** Scoped acquire: spin until `flag == v`, with acquire semantics
    under the scoped models and a volatile spin otherwise. */
void
emitAcquire(WarpBuilder &wb, ModelKind m, Addr flag, std::uint32_t v,
            Scope sc)
{
    if (usesScopedOps(m))
        wb.pacq(at(flag), v, sc, mask::lane(0));
    else
        wb.spinLoad(at(flag), v, mask::lane(0));
}

std::uint32_t
word(const NvmDevice &nvm, const char *region, Addr off)
{
    return nvm.durable().read32(nvm.open(region).base + off);
}

std::vector<LitmusPattern>
buildCorpus()
{
    std::vector<LitmusPattern> corpus;

    // chain: four unordered preamble writes backlog one channel, then
    // A (same channel, behind the backlog) -> oFence -> B (idle
    // channel). Durable set must be suffix-implies-prefix.
    corpus.push_back(LitmusPattern{
        "chain",
        "single-thread ordered chain behind a channel backlog",
        true, true,
        [](ModelKind m) {
            return LitmusScenario(
                "chain",
                [](NvmDevice &nvm) { nvm.allocate("chain", 5120); },
                [m](NvmDevice &nvm) {
                    Addr b = nvm.open("chain").base;
                    KernelProgram k("chain", 1, 32);
                    WarpBuilder wb(k.warp(0, 0), 32);
                    for (std::uint32_t i = 0; i < 4; ++i)
                        st(wb, b + kSameChannel * i, i + 1);
                    emitOFence(wb, m);
                    st(wb, b + 4 * kSameChannel, 5);   // A
                    emitOFence(wb, m);
                    st(wb, b + kLine, 6);              // B
                    return k;
                },
                [](const NvmDevice &nvm, bool) {
                    if (word(nvm, "chain", kLine) != 0 &&
                            word(nvm, "chain", 4 * kSameChannel) == 0)
                        return false;   // B durable without A.
                    if (word(nvm, "chain", 4 * kSameChannel) != 0) {
                        for (std::uint32_t i = 0; i < 4; ++i) {
                            if (word(nvm, "chain", kSameChannel * i) == 0)
                                return false;   // A without preamble.
                        }
                    }
                    return true;
                });
        }});

    // transitive: T0 -(rel/acq)-> T1 -(rel/acq)-> T2 inside a block;
    // T0's payload x sits behind preamble p on the same channel.
    corpus.push_back(LitmusPattern{
        "transitive",
        "message passing through an intermediary thread",
        true, true,
        [](ModelKind m) {
            return LitmusScenario(
                "transitive",
                [](NvmDevice &nvm) { nvm.allocate("trans", 2048); },
                [m](NvmDevice &nvm) {
                    Addr b = nvm.open("trans").base;
                    Addr p = b, x = b + kSameChannel;
                    Addr f = b + kLine, y = b + 2 * kLine;
                    Addr f2 = b + 3 * kLine, z = b + 5 * kLine;
                    KernelProgram k("transitive", 1, 96);
                    WarpBuilder w0(k.warp(0, 0), 32);
                    st(w0, p, 1);
                    st(w0, x, 1);
                    emitRelease(w0, m, f, 1, Scope::Block);
                    WarpBuilder w1(k.warp(0, 1), 32);
                    emitAcquire(w1, m, f, 1, Scope::Block);
                    st(w1, y, 2);
                    emitRelease(w1, m, f2, 1, Scope::Block);
                    WarpBuilder w2(k.warp(0, 2), 32);
                    emitAcquire(w2, m, f2, 1, Scope::Block);
                    st(w2, z, 3);
                    return k;
                },
                [](const NvmDevice &nvm, bool) {
                    std::uint32_t p = word(nvm, "trans", 0);
                    std::uint32_t x = word(nvm, "trans", kSameChannel);
                    std::uint32_t y = word(nvm, "trans", 2 * kLine);
                    std::uint32_t z = word(nvm, "trans", 5 * kLine);
                    if (z == 3 && (y != 2 || x != 1 || p != 1))
                        return false;
                    if (y == 2 && (x != 1 || p != 1))
                        return false;
                    return true;
                });
        }});

    // independent: no ordering edges at all; every durable subset is
    // legal and every interleaving is equivalent (the DPOR pruning
    // showcase).
    corpus.push_back(LitmusPattern{
        "independent",
        "independent writers, no ordering edges",
        false, true,
        [](ModelKind) {
            return LitmusScenario(
                "independent",
                [](NvmDevice &nvm) { nvm.allocate("iw", 4 * kLine); },
                [](NvmDevice &nvm) {
                    Addr b = nvm.open("iw").base;
                    KernelProgram k("independent", 1, 128);
                    for (std::uint32_t w = 0; w < 4; ++w) {
                        WarpBuilder wb(k.warp(0, w), 32);
                        st(wb, b + kLine * w, w + 1);
                    }
                    return k;
                },
                [](const NvmDevice &, bool) { return true; });
        }});

    // re-release: the same flag released twice; the consumer joins on
    // the second generation, which implies both payloads (d2 queues
    // behind d1 on the shared channel).
    corpus.push_back(LitmusPattern{
        "re-release",
        "same flag released twice with increasing values",
        true, true,
        [](ModelKind m) {
            return LitmusScenario(
                "re-release",
                [](NvmDevice &nvm) { nvm.allocate("rr", 2048); },
                [m](NvmDevice &nvm) {
                    Addr b = nvm.open("rr").base;
                    Addr d1 = b, d2 = b + kSameChannel;
                    Addr f = b + kLine, c = b + 2 * kLine;
                    KernelProgram k("re-release", 1, 64);
                    WarpBuilder w0(k.warp(0, 0), 32);
                    st(w0, d1, 1);
                    emitRelease(w0, m, f, 1, Scope::Block);
                    st(w0, d2, 2);
                    emitRelease(w0, m, f, 2, Scope::Block);
                    WarpBuilder w1(k.warp(0, 1), 32);
                    emitAcquire(w1, m, f, 2, Scope::Block);
                    st(w1, c, 9);
                    return k;
                },
                [](const NvmDevice &nvm, bool) {
                    if (word(nvm, "rr", 2 * kLine) == 9) {
                        return word(nvm, "rr", 0) == 1 &&
                               word(nvm, "rr", kSameChannel) == 2;
                    }
                    return true;
                });
        }});

    // fan-out: one releaser, two acquirers, each publishing to its own
    // idle channel while the payload x drains behind preamble p.
    corpus.push_back(LitmusPattern{
        "fan-out",
        "one release observed by two acquirers",
        true, false,
        [](ModelKind m) {
            return LitmusScenario(
                "fan-out",
                [](NvmDevice &nvm) { nvm.allocate("fo", 2048); },
                [m](NvmDevice &nvm) {
                    Addr b = nvm.open("fo").base;
                    Addr p = b, x = b + kSameChannel;
                    Addr f = b + kLine;
                    Addr y1 = b + 2 * kLine, y2 = b + 3 * kLine;
                    KernelProgram k("fan-out", 1, 96);
                    WarpBuilder w0(k.warp(0, 0), 32);
                    st(w0, p, 1);
                    st(w0, x, 7);
                    emitRelease(w0, m, f, 1, Scope::Block);
                    WarpBuilder w1(k.warp(0, 1), 32);
                    emitAcquire(w1, m, f, 1, Scope::Block);
                    st(w1, y1, 1);
                    WarpBuilder w2(k.warp(0, 2), 32);
                    emitAcquire(w2, m, f, 1, Scope::Block);
                    st(w2, y2, 2);
                    return k;
                },
                [](const NvmDevice &nvm, bool) {
                    bool consumed =
                        word(nvm, "fo", 2 * kLine) != 0 ||
                        word(nvm, "fo", 3 * kLine) != 0;
                    if (consumed) {
                        return word(nvm, "fo", kSameChannel) == 7 &&
                               word(nvm, "fo", 0) == 1;
                    }
                    return true;
                });
        }});

    // fan-in: two concurrent producers (a real interleaving choice),
    // one consumer joining on both flags; x1 queues behind x0.
    corpus.push_back(LitmusPattern{
        "fan-in",
        "two releasers joined by one acquirer",
        true, false,
        [](ModelKind m) {
            return LitmusScenario(
                "fan-in",
                [](NvmDevice &nvm) { nvm.allocate("fi", 2048); },
                [m](NvmDevice &nvm) {
                    Addr b = nvm.open("fi").base;
                    Addr x0 = b, x1 = b + kSameChannel;
                    Addr f0 = b + kLine, f1 = b + 2 * kLine;
                    Addr y = b + 3 * kLine;
                    KernelProgram k("fan-in", 1, 96);
                    WarpBuilder w0(k.warp(0, 0), 32);
                    st(w0, x0, 1);
                    emitRelease(w0, m, f0, 1, Scope::Block);
                    WarpBuilder w1(k.warp(0, 1), 32);
                    st(w1, x1, 2);
                    emitRelease(w1, m, f1, 1, Scope::Block);
                    WarpBuilder w2(k.warp(0, 2), 32);
                    emitAcquire(w2, m, f0, 1, Scope::Block);
                    emitAcquire(w2, m, f1, 1, Scope::Block);
                    st(w2, y, 9);
                    return k;
                },
                [](const NvmDevice &nvm, bool) {
                    if (word(nvm, "fi", 3 * kLine) == 9) {
                        return word(nvm, "fi", 0) == 1 &&
                               word(nvm, "fi", kSameChannel) == 2;
                    }
                    return true;
                });
        }});

    // cross-block: device scope across SMs, with an oFence-ordered
    // pair inside the producer (the intra-thread edge is the one the
    // relaxed-order bug can invert — the device-scope release itself
    // publishes only after a durability barrier).
    corpus.push_back(LitmusPattern{
        "cross-block",
        "device-scope release across blocks with an ordered producer",
        true, false,
        [](ModelKind m) {
            return LitmusScenario(
                "cross-block",
                [](NvmDevice &nvm) { nvm.allocate("xb", 2048); },
                [m](NvmDevice &nvm) {
                    Addr base = nvm.open("xb").base;
                    Addr p = base, a = base + kSameChannel;
                    Addr b = base + kLine, f = base + 2 * kLine;
                    Addr n = base + 3 * kLine, y = base + 5 * kLine;
                    KernelProgram k("cross-block", 3, 32);
                    WarpBuilder w0(k.warp(0, 0), 32);
                    st(w0, p, 1);
                    st(w0, a, 2);
                    emitOFence(w0, m);
                    st(w0, b, 3);
                    emitRelease(w0, m, f, 1, Scope::Device);
                    WarpBuilder w1(k.warp(1, 0), 32);
                    st(w1, n, 1);   // Unrelated noise block.
                    WarpBuilder w2(k.warp(2, 0), 32);
                    emitAcquire(w2, m, f, 1, Scope::Device);
                    st(w2, y, 4);
                    return k;
                },
                [](const NvmDevice &nvm, bool) {
                    std::uint32_t p = word(nvm, "xb", 0);
                    std::uint32_t a = word(nvm, "xb", kSameChannel);
                    std::uint32_t b = word(nvm, "xb", kLine);
                    std::uint32_t y = word(nvm, "xb", 5 * kLine);
                    if (b == 3 && (a != 2 || p != 1))
                        return false;
                    if (y == 4 && (p != 1 || a != 2 || b != 3))
                        return false;
                    return true;
                });
        }});

    return corpus;
}

} // namespace

const std::vector<LitmusPattern> &
litmusCorpus()
{
    static const std::vector<LitmusPattern> corpus = buildCorpus();
    return corpus;
}

const LitmusPattern *
findLitmusPattern(const std::string &name)
{
    for (const LitmusPattern &p : litmusCorpus()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

} // namespace sbrp
