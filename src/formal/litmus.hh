/**
 * @file
 * Litmus / crash-sweep harness.
 *
 * Runs a small kernel under a given configuration, crash-free and at a
 * sweep of crash points. Every run is validated against the formal model
 * with PmoChecker, and a user-supplied predicate inspects the durable NVM
 * image (the recoverable state) after each crash.
 *
 * This is both the litmus-test driver for the formal model and the
 * crash-consistency harness the application tests reuse.
 */

#ifndef SBRP_FORMAL_LITMUS_HH
#define SBRP_FORMAL_LITMUS_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "formal/checker.hh"
#include "formal/trace.hh"
#include "gpu/gpu_system.hh"
#include "mem/nvm_device.hh"

namespace sbrp
{

/** Outcome of one litmus run (crash-free or crashed). */
struct LitmusRun
{
    /**
     * Injected crash cycle; std::nullopt for the crash-free run. Cycle 0
     * is not a magic value: fraction-derived crash points are clamped to
     * >= 1, so tiny fractions crash on the first cycle instead of
     * silently degrading into a second crash-free run.
     */
    std::optional<Cycle> crashAt;
    Cycle cycles = 0;
    bool crashed = false;
    std::vector<PmoViolation> violations;
    bool durableStateOk = true;

    /** Persist-order audit stream of this run (always recorded): the
        number of durable commits observed, and how many were written
        out of cycle order — nonzero means the simulator's durable
        image write order itself violated monotonicity, independently
        of the PMO edge check above. */
    std::uint64_t auditRecords = 0;
    std::uint64_t auditOrderBreaks = 0;

    /** FNV-1a over every named region's durable bytes (regions in
        name order). Two runs with equal digests left byte-identical
        durable images; the model checker's replay test keys on it. */
    std::uint64_t nvmDigest = 0;
};

/** Aggregate outcome of a sweep. */
struct LitmusReport
{
    std::string name;
    std::vector<LitmusRun> runs;
    Cycle crashFreeCycles = 0;

    bool
    allOk() const
    {
        for (const LitmusRun &r : runs) {
            if (!r.violations.empty() || !r.durableStateOk ||
                    r.auditOrderBreaks != 0) {
                return false;
            }
        }
        return true;
    }

    std::uint64_t totalViolations() const;
};

/**
 * A litmus scenario: how to set up persistent state, how to build the
 * kernel, and how to judge a durable image.
 */
class LitmusScenario
{
  public:
    /** Prepares named NVM regions and initial durable contents. */
    using Setup = std::function<void(NvmDevice &nvm)>;

    /** Builds the kernel (may read region addresses from the device). */
    using Build = std::function<KernelProgram(NvmDevice &nvm)>;

    /**
     * Judges the durable image after a (possibly crashed) run. Returns
     * true when the state is consistent/recoverable. `crashed` tells the
     * predicate whether the run completed.
     */
    using Judge = std::function<bool(const NvmDevice &nvm, bool crashed)>;

    LitmusScenario(std::string name, Setup setup, Build build,
                   Judge judge = nullptr);

    /**
     * Runs crash-free once (recording its cycle count), then once per
     * crash fraction (of the crash-free cycle count, e.g. 0.25 = a
     * quarter of the way through).
     */
    LitmusReport run(const SystemConfig &cfg,
                     const std::vector<double> &crash_fractions = {}) const;

    /**
     * One run with a model-checking schedule driver attached (null is
     * allowed and equals an ordinary run). The controller observes —
     * and in replay mode dictates — every scheduling choice point;
     * see src/mc/ and docs/MODEL_CHECKING.md.
     */
    LitmusRun runControlled(const SystemConfig &cfg,
                            ScheduleController *ctl,
                            std::optional<Cycle> crash_at
                                = std::nullopt) const;

    const std::string &name() const { return name_; }

  private:
    LitmusRun runOnce(const SystemConfig &cfg,
                      std::optional<Cycle> crash_at,
                      ScheduleController *ctl = nullptr) const;

    std::string name_;
    Setup setup_;
    Build build_;
    Judge judge_;
};

} // namespace sbrp

#endif // SBRP_FORMAL_LITMUS_HH
