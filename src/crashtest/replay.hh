/**
 * @file
 * Self-contained crash-replay artifacts.
 *
 * When a campaign finds (and minimizes) a failing crash point, it emits
 * a small JSON artifact that reconstructs the exact run: application,
 * scale, seed, every persistency-model knob the CLI exposes, the crash
 * cycle, and the expected outcome. `crashfuzz --replay file.json`
 * rebuilds the scenario from the artifact, re-runs the single crash
 * point, and exits nonzero unless the observed verdict matches the
 * recorded expectation — so a replay that *stops* failing (e.g. after a
 * model fix) is itself a signal.
 *
 * The artifact serializes the campaign-reachable configuration space,
 * not the entire SystemConfig: a base config (`paperConfig` selects
 * paperDefault vs testDefault) plus the swept persistency knobs. This
 * matches how every campaign builds its config, keeps artifacts
 * readable, and avoids freezing ~30 microarchitectural constants into a
 * schema. `version` guards future schema evolution.
 */

#ifndef SBRP_CRASHTEST_REPLAY_HH
#define SBRP_CRASHTEST_REPLAY_HH

#include <cstdint>
#include <string>

#include "common/schema_versions.hh"

#include "crashtest/crash_points.hh"
#include "crashtest/scenario.hh"

namespace sbrp
{

class JsonValue;

struct ReplayArtifact
{
    /** v2 added the fault-injection fields; v1 artifacts still parse
        (faults default to disabled). */
    static constexpr std::uint32_t kVersion = schema::kCrashReplay;

    // --- Scenario ---
    std::string app;               ///< Canonical registry name.
    bool paperConfig = false;      ///< paperDefault vs testDefault base.
    bool benchScale = false;       ///< Paper-scale app inputs.
    std::uint64_t seed = 0;
    ModelKind model = ModelKind::Sbrp;
    SystemDesign design = SystemDesign::PmNear;
    PersistPoint persistPoint = PersistPoint::Adr;
    FlushPolicy flushPolicy = FlushPolicy::Window;
    std::uint32_t window = 6;
    bool preciseFsm = true;
    double pbCoverage = 0.5;
    double nvmBwScale = 1.0;
    bool unsafeRelaxedPersistOrder = false;

    // --- Fault injection (v2) ---
    std::string faultSpec = "none";    ///< Canonical FaultSpec string.
    std::uint64_t faultSeed = 0;       ///< SystemConfig::seed.
    std::uint32_t retryBudget = 8;
    Cycle backoffBase = 16;

    // --- The crash point ---
    Cycle crashCycle = 0;
    CrashEventKind eventKind = CrashEventKind::PersistAccept;

    // --- Recorded outcome ---
    bool expectViolation = false;  ///< True: the run must fail.
    std::uint64_t pmoViolations = 0;   ///< As observed when recorded.
    bool recoveredOk = true;           ///< As observed when recorded.

    /** Captures scenario + verdict into an artifact. */
    static ReplayArtifact fromScenario(const CrashScenario &s,
                                       bool paper_config,
                                       const CrashVerdict &v);

    /** Rebuilds the scenario this artifact describes. */
    CrashScenario toScenario() const;

    JsonValue toJson() const;

    /**
     * Parses an artifact; returns false and sets *err on malformed
     * input (bad JSON, wrong version, unknown enum spellings, missing
     * fields).
     */
    static bool fromJson(const JsonValue &v, ReplayArtifact *out,
                         std::string *err);
};

} // namespace sbrp

#endif // SBRP_CRASHTEST_REPLAY_HH
