/**
 * @file
 * The crash-consistency campaign engine: probe once, crash everywhere.
 *
 * A campaign takes one scenario and (1) runs it crash-free to enumerate
 * event-adjacent crash points, (2) re-runs it crashed at every point —
 * in parallel across worker threads, each owning a private
 * ScenarioRunner — and judges each run with the dual oracles, (3)
 * optionally bisects the first failure down to the earliest failing
 * point and captures a self-contained replay artifact.
 *
 * Determinism: a verdict is a pure function of its crash point, and the
 * run budget truncates the sorted point list deterministically, so the
 * verdict set is identical at any thread count — the work-stealing
 * queue only changes *who* computes what. The single nondeterministic
 * path is the wall-clock cutoff (`wallLimitMs`), which stops the queue
 * gracefully and reports how many points went unexecuted.
 *
 * Every campaign exports its counters through a "campaign" StatGroup in
 * its own StatRegistry, so `--stats-json` covers campaigns exactly like
 * simulation runs.
 */

#ifndef SBRP_CRASHTEST_CAMPAIGN_HH
#define SBRP_CRASHTEST_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "crashtest/minimize.hh"
#include "crashtest/replay.hh"
#include "crashtest/scenario.hh"
#include "obs/provenance.hh"

namespace sbrp
{

class JsonValue;

struct CampaignConfig
{
    CrashScenario scenario;
    bool paperConfig = false;   ///< Recorded into replay artifacts.
    unsigned jobs = 1;          ///< Worker threads.
    std::uint64_t budgetRuns = 0;   ///< Max crash runs; 0 = all points.
    std::uint64_t wallLimitMs = 0;  ///< Graceful cutoff; 0 = none.
    bool minimize = true;       ///< Bisect + emit artifact on failure.
    /** When non-null, the oracle run records persist provenance here
        (audit stream + slowest ops); the engine otherwise uses a
        private instance so reports always carry the summary. */
    PersistProvenance *provenance = nullptr;
};

struct CampaignResult
{
    CrashProbe probe;
    /** One verdict per enumerated point (same order); points beyond
        the budget or wall cutoff have executed == false. */
    std::vector<CrashVerdict> verdicts;

    std::uint64_t runsExecuted = 0;
    std::uint64_t failures = 0;       ///< Executed verdicts that fail.
    bool budgetTruncated = false;
    bool wallTruncated = false;

    bool hasMinimized = false;
    MinimizeResult minimized;
    ReplayArtifact artifact;   ///< Valid only when hasMinimized.

    /** Slowest completed persist ops of the oracle run, by ack latency
        (deterministic — cycle-based, never wall-clock). */
    std::vector<PersistOpRecord> slowestOps;
    /** Host wall time summed over executed crash runs (microseconds,
        non-deterministic). */
    double wallUsTotal = 0.0;

    /** Clean run consistent, no PMO violations, every executed crash
        point recovered. */
    bool pass() const;
};

class CampaignEngine
{
  public:
    explicit CampaignEngine(const CampaignConfig &cfg);

    /** Runs the whole campaign (blocking). */
    CampaignResult run();

    /** Campaign counters ("campaign" group), for --stats-json. */
    StatRegistry &stats() { return stats_; }
    const StatGroup &group() const { return group_; }

  private:
    CampaignConfig cfg_;
    StatGroup group_;
    StatRegistry stats_;
};

/**
 * The machine-readable campaign report (schema_version 3): scenario,
 * fault-injection parameters, probe summary, per-failure detail (with
 * per-crash-point wall time), the oracle run's slowest-op summary,
 * minimization outcome and the embedded replay artifact when one was
 * captured. Wall-clock keys (`wall_us_total`, per-point `wall_us`,
 * `slowest_points`) are the only non-deterministic content; golden
 * comparators strip them (tools/report_compare.py).
 */
JsonValue campaignReportJson(const CampaignConfig &cfg,
                             const CampaignResult &result);

/**
 * Copy of a campaign report with the wall-clock keys (`wall_us_total`,
 * `slowest_points`, per-point `wall_us`) removed — the deterministic
 * projection used by byte-identity tests and golden comparisons
 * (tools/report_compare.py is the Python twin).
 */
JsonValue campaignReportStripWall(const JsonValue &report);

/**
 * The subset of a campaign report that downstream tooling consumes,
 * parseable from schema_version 2 and 3 documents alike (the v3
 * wall-time and slowest-op fields read as zero/empty under v2).
 */
struct CampaignReportSummary
{
    std::uint64_t schemaVersion = 0;
    std::string app;
    std::string model;
    std::string design;
    std::uint64_t pointsEnumerated = 0;
    std::uint64_t runsExecuted = 0;
    std::uint64_t failures = 0;
    bool pass = false;
    double wallUsTotal = 0.0;            ///< v3 only; 0 under v2.
    std::uint64_t failingPoints = 0;
    std::uint64_t slowestOps = 0;        ///< v3 only; 0 under v2.
};

/** Parses a campaign report (schema 2 or 3). Returns false and sets
    `*err` on malformed documents or unsupported versions. */
bool campaignReportFromJson(const JsonValue &v,
                            CampaignReportSummary *out,
                            std::string *err);

} // namespace sbrp

#endif // SBRP_CRASHTEST_CAMPAIGN_HH
