/**
 * @file
 * The crash-consistency campaign engine: probe once, crash everywhere.
 *
 * A campaign takes one scenario and (1) runs it crash-free to enumerate
 * event-adjacent crash points, (2) re-runs it crashed at every point —
 * in parallel across worker threads, each owning a private
 * ScenarioRunner — and judges each run with the dual oracles, (3)
 * optionally bisects the first failure down to the earliest failing
 * point and captures a self-contained replay artifact.
 *
 * Determinism: a verdict is a pure function of its crash point, and the
 * run budget truncates the sorted point list deterministically, so the
 * verdict set is identical at any thread count — the work-stealing
 * queue only changes *who* computes what. The single nondeterministic
 * path is the wall-clock cutoff (`wallLimitMs`), which stops the queue
 * gracefully and reports how many points went unexecuted.
 *
 * Every campaign exports its counters through a "campaign" StatGroup in
 * its own StatRegistry, so `--stats-json` covers campaigns exactly like
 * simulation runs.
 */

#ifndef SBRP_CRASHTEST_CAMPAIGN_HH
#define SBRP_CRASHTEST_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "crashtest/minimize.hh"
#include "crashtest/replay.hh"
#include "crashtest/scenario.hh"

namespace sbrp
{

class JsonValue;

struct CampaignConfig
{
    CrashScenario scenario;
    bool paperConfig = false;   ///< Recorded into replay artifacts.
    unsigned jobs = 1;          ///< Worker threads.
    std::uint64_t budgetRuns = 0;   ///< Max crash runs; 0 = all points.
    std::uint64_t wallLimitMs = 0;  ///< Graceful cutoff; 0 = none.
    bool minimize = true;       ///< Bisect + emit artifact on failure.
};

struct CampaignResult
{
    CrashProbe probe;
    /** One verdict per enumerated point (same order); points beyond
        the budget or wall cutoff have executed == false. */
    std::vector<CrashVerdict> verdicts;

    std::uint64_t runsExecuted = 0;
    std::uint64_t failures = 0;       ///< Executed verdicts that fail.
    bool budgetTruncated = false;
    bool wallTruncated = false;

    bool hasMinimized = false;
    MinimizeResult minimized;
    ReplayArtifact artifact;   ///< Valid only when hasMinimized.

    /** Clean run consistent, no PMO violations, every executed crash
        point recovered. */
    bool pass() const;
};

class CampaignEngine
{
  public:
    explicit CampaignEngine(const CampaignConfig &cfg);

    /** Runs the whole campaign (blocking). */
    CampaignResult run();

    /** Campaign counters ("campaign" group), for --stats-json. */
    StatRegistry &stats() { return stats_; }
    const StatGroup &group() const { return group_; }

  private:
    CampaignConfig cfg_;
    StatGroup group_;
    StatRegistry stats_;
};

/**
 * The machine-readable campaign report (schema_version 2): scenario,
 * fault-injection parameters, probe summary, per-failure detail,
 * minimization outcome and the embedded replay artifact when one was
 * captured.
 */
JsonValue campaignReportJson(const CampaignConfig &cfg,
                             const CampaignResult &result);

} // namespace sbrp

#endif // SBRP_CRASHTEST_CAMPAIGN_HH
