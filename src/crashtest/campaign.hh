/**
 * @file
 * The crash-consistency campaign engine: probe once, crash everywhere.
 *
 * A campaign takes one scenario and (1) runs it crash-free to enumerate
 * event-adjacent crash points, (2) re-runs it crashed at every point —
 * in parallel across worker threads, each owning a private
 * ScenarioRunner — and judges each run with the dual oracles, (3)
 * optionally bisects the first failure down to the earliest failing
 * point and captures a self-contained replay artifact.
 *
 * Determinism: a verdict is a pure function of its crash point, and the
 * run budget truncates the sorted point list deterministically, so the
 * verdict set is identical at any thread count — the work-stealing
 * queue only changes *who* computes what. The single nondeterministic
 * path is the wall-clock cutoff (`wallLimitMs`), which stops the queue
 * gracefully and reports how many points went unexecuted.
 *
 * Every campaign exports its counters through a "campaign" StatGroup in
 * its own StatRegistry, so `--stats-json` covers campaigns exactly like
 * simulation runs.
 */

#ifndef SBRP_CRASHTEST_CAMPAIGN_HH
#define SBRP_CRASHTEST_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "crashtest/minimize.hh"
#include "crashtest/replay.hh"
#include "crashtest/scenario.hh"
#include "obs/provenance.hh"

namespace sbrp
{

class JsonValue;

struct CampaignConfig
{
    CrashScenario scenario;
    bool paperConfig = false;   ///< Recorded into replay artifacts.
    unsigned jobs = 1;          ///< Worker threads.
    std::uint64_t budgetRuns = 0;   ///< Max crash runs; 0 = all points.
    std::uint64_t wallLimitMs = 0;  ///< Graceful cutoff; 0 = none.
    bool minimize = true;       ///< Bisect + emit artifact on failure.
    /** When non-null, the oracle run records persist provenance here
        (audit stream + slowest ops); the engine otherwise uses a
        private instance so reports always carry the summary. */
    PersistProvenance *provenance = nullptr;
};

struct CampaignResult
{
    CrashProbe probe;
    /** One verdict per enumerated point (same order); points beyond
        the budget or wall cutoff have executed == false. */
    std::vector<CrashVerdict> verdicts;

    std::uint64_t runsExecuted = 0;
    std::uint64_t failures = 0;       ///< Executed verdicts that fail.
    bool budgetTruncated = false;
    bool wallTruncated = false;

    bool hasMinimized = false;
    MinimizeResult minimized;
    ReplayArtifact artifact;   ///< Valid only when hasMinimized.

    /** Slowest completed persist ops of the oracle run, by ack latency
        (deterministic — cycle-based, never wall-clock). */
    std::vector<PersistOpRecord> slowestOps;
    /** Host wall time summed over executed crash runs (microseconds,
        non-deterministic). */
    double wallUsTotal = 0.0;

    /** Clean run consistent, no PMO violations, every executed crash
        point recovered. */
    bool pass() const;
};

class CampaignEngine
{
  public:
    explicit CampaignEngine(const CampaignConfig &cfg);

    /** Runs the whole campaign (blocking). */
    CampaignResult run();

    /** Campaign counters ("campaign" group), for --stats-json. */
    StatRegistry &stats() { return stats_; }
    const StatGroup &group() const { return group_; }

  private:
    CampaignConfig cfg_;
    StatGroup group_;
    StatRegistry stats_;
};

class ScenarioRunner;

/**
 * Phase-3 tally over a fully populated verdict vector: counts executed
 * runs, failures and wall time into `result` and returns the index of
 * the first failing verdict (result->verdicts.size() when none fail).
 * Shared by CampaignEngine and the shard-journal merger (src/svc/) so
 * both derive identical aggregates from identical verdicts.
 */
std::size_t campaignTallyVerdicts(CampaignResult *result);

/**
 * Phase-4 minimization: bisects for the earliest failing crash cycle
 * starting from `firstFail`, re-runs the minimized point, and fills
 * result->minimized / result->artifact / result->hasMinimized. The
 * bisection probes run on `runner`, exactly as CampaignEngine does, so
 * a merger invoking this on reconstructed verdicts emits a
 * byte-identical minimization section. Returns the probe count.
 */
std::uint64_t campaignMinimizeFirstFailure(const CampaignConfig &cfg,
                                           ScenarioRunner &runner,
                                           std::size_t firstFail,
                                           CampaignResult *result);

/**
 * Exports the campaign counters into `group` ("campaign" StatGroup) —
 * the --stats-json surface, identical for in-process engines and
 * merged shard journals.
 */
void campaignExportStats(StatGroup &group, const CampaignResult &result,
                         unsigned jobs);

/**
 * Execution-environment annotations for the report's `execution`
 * section: how the verdicts were computed (thread count, shard layout,
 * resume), as opposed to what they are. Everything in this section —
 * like the wall-clock keys it carries — is excluded from byte-identity
 * comparisons, which is exactly what lets a sharded, killed, resumed
 * and merged campaign reproduce a single-process report byte for byte.
 */
struct CampaignExecutionInfo
{
    std::string mode = "single-process";   ///< or "merged".
    unsigned shards = 0;                   ///< 0 = unsharded.
    std::vector<std::uint64_t> incompleteShards;
    bool resumed = false;
    /** Heartbeat telemetry summary (svc/heartbeat.hh). All zero when
        heartbeats were off; the report's `heartbeat` object is emitted
        only when `heartbeatMs` is nonzero, so heartbeat-free campaigns
        keep their exact current report bytes. */
    std::uint64_t heartbeatMs = 0;
    std::uint64_t heartbeatRecords = 0;
    std::uint64_t workerRestarts = 0;
};

/**
 * The machine-readable campaign report (schema_version 4): scenario,
 * fault-injection parameters, probe summary, per-failure detail, the
 * oracle run's slowest-op summary, minimization outcome and the
 * embedded replay artifact when one was captured. Everything
 * environment-dependent — wall-clock timing, the thread count, the
 * shard layout — lives in the `execution` object (plus per-point
 * `wall_us`); the rest of the document is a pure function of the
 * scenario, so sharded/merged and single-process campaigns emit
 * byte-identical deterministic bodies. Golden comparators strip
 * `execution` and `wall_us` (tools/report_compare.py).
 */
JsonValue campaignReportJson(const CampaignConfig &cfg,
                             const CampaignResult &result,
                             const CampaignExecutionInfo *exec = nullptr);

/**
 * Copy of a campaign report with the non-deterministic content (the
 * `execution` object, legacy `wall_us_total`/`slowest_points` keys,
 * per-point `wall_us`) removed — the deterministic projection used by
 * byte-identity tests and golden comparisons (tools/report_compare.py
 * is the Python twin).
 */
JsonValue campaignReportStripWall(const JsonValue &report);

/**
 * The subset of a campaign report that downstream tooling consumes,
 * parseable from schema_version 2 through 4 documents alike (the
 * wall-time and slowest-op fields read as zero/empty under v2; under
 * v4 the wall time comes from the `execution` section).
 */
struct CampaignReportSummary
{
    std::uint64_t schemaVersion = 0;
    std::string app;
    std::string model;
    std::string design;
    std::uint64_t pointsEnumerated = 0;
    std::uint64_t runsExecuted = 0;
    std::uint64_t failures = 0;
    bool pass = false;
    double wallUsTotal = 0.0;            ///< v3 only; 0 under v2.
    std::uint64_t failingPoints = 0;
    std::uint64_t slowestOps = 0;        ///< v3 only; 0 under v2.
};

/** Parses a campaign report (schema 2 or 3). Returns false and sets
    `*err` on malformed documents or unsupported versions. */
bool campaignReportFromJson(const JsonValue &v,
                            CampaignReportSummary *out,
                            std::string *err);

} // namespace sbrp

#endif // SBRP_CRASHTEST_CAMPAIGN_HH
