/**
 * @file
 * Event-guided crash-point enumeration.
 *
 * Dense cycle sweeps waste almost every run: between two persistency
 * events the durable image cannot change, so crashing at cycle c and at
 * c+1 exercises the same recovery problem. The oracle instead runs a
 * scenario once crash-free with the event tracer attached, classifies
 * the "interesting" cycles — persistence-domain accepts, persist-buffer
 * admissions and pops, PM-line L1 evictions, and the retirement
 * boundaries of oFence / dFence / epoch fences / pRel / pAcq — and
 * enumerates crash points event-adjacently: at, one cycle before, and
 * one cycle after each event. That covers every ordering boundary the
 * models enforce (ODM/EDM/FSM transitions all coincide with one of
 * these events) with orders of magnitude fewer runs than a sweep.
 */

#ifndef SBRP_CRASHTEST_CRASH_POINTS_HH
#define SBRP_CRASHTEST_CRASH_POINTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

class TraceSink;

/** Taxonomy of trace events worth crashing next to. */
enum class CrashEventKind : std::uint8_t
{
    PersistAccept,  ///< Persistence domain accepted a line (pb:ack /
                    ///< NVM WPQ sample) — the durable set just grew.
    PbAdmit,        ///< Persist entered the PB (pb:admit) — now lost on
                    ///< crash until flushed.
    PbPop,          ///< PB head flushed toward the domain (pb:flush).
    L1PmEvict,      ///< Dirty PM line left the L1 (l1:evict_pm).
    OFenceRetire,   ///< Ordering fence executed (op:ofence).
    DFenceRetire,   ///< Durability fence executed/unblocked
                    ///< (op:dfence, end of stall:odm_dfence).
    FenceRetire,    ///< Epoch-model barrier executed (op:fence).
    RelRetire,      ///< pRel executed/unblocked (op:prel, end of
                    ///< stall:odm_rel_dev).
    AcqRetire,      ///< pAcq spin succeeded (op:pacq, end of
                    ///< stall:spin_acquire).
};

const char *toString(CrashEventKind k);
bool crashEventKindFromString(const std::string &s, CrashEventKind *out);

/** One candidate crash cycle and the event it is adjacent to. */
struct CrashPoint
{
    Cycle cycle = 0;
    CrashEventKind kind = CrashEventKind::PersistAccept;

    bool operator==(const CrashPoint &o) const
    { return cycle == o.cycle && kind == o.kind; }
};

/** The enumerated, deduplicated, sorted crash-point set of a scenario. */
struct CrashPointSet
{
    std::vector<CrashPoint> points;   ///< Strictly increasing cycles.
    Cycle horizon = 0;                ///< Crash-free run length (cycles).
    std::uint64_t rawEvents = 0;      ///< Trace events classified.
    std::uint64_t prunedCandidates = 0;  ///< Dropped by clamp + dedup.
};

/**
 * Enumerates crash points from a trace sink (flushes its buffers
 * first). Candidates are {c-1, c, c+1} for every classified event cycle
 * c, clamped to [1, horizon] and deduplicated by cycle (the kind of the
 * lowest-ordered adjacent event wins ties, so the result is a pure
 * function of the trace). Events at identical cycles across components
 * collapse — that is the pruning that makes campaigns cheap.
 */
CrashPointSet enumerateCrashPoints(TraceSink &sink, Cycle horizon);

} // namespace sbrp

#endif // SBRP_CRASHTEST_CRASH_POINTS_HH
