#include "crashtest/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_versions.hh"
#include "common/rng.hh"
#include "crashtest/work_queue.hh"

namespace sbrp
{

bool
CampaignResult::pass() const
{
    if (!probe.cleanConsistent || probe.cleanPmoViolations != 0 ||
            probe.cleanPersistFaults != 0) {
        return false;
    }
    for (const CrashVerdict &v : verdicts) {
        if (v.executed && !v.pass())
            return false;
    }
    return true;
}

CampaignEngine::CampaignEngine(const CampaignConfig &cfg)
    : cfg_(cfg), group_("campaign")
{
    stats_.add(&group_);
}

CampaignResult
CampaignEngine::run()
{
    using SteadyClock = std::chrono::steady_clock;
    const auto started = SteadyClock::now();

    CampaignResult result;

    // Phase 1: the oracle run. The main runner also serves the
    // minimization probes later. Provenance rides along on the oracle
    // run (passive — the run stays cycle-identical) so every report
    // carries a slowest-op summary and callers can export the audit
    // stream.
    ScenarioRunner mainRunner(cfg_.scenario);
    PersistProvenance localProv;
    PersistProvenance *prov =
        cfg_.provenance ? cfg_.provenance : &localProv;
    result.probe = mainRunner.probe(prov);
    result.slowestOps = prov->slowest();
    const auto &points = result.probe.points.points;

    // Deterministic budget truncation: the first N points of the
    // sorted list, independent of thread count.
    std::size_t toRun = points.size();
    if (cfg_.budgetRuns != 0 && cfg_.budgetRuns < toRun) {
        toRun = static_cast<std::size_t>(cfg_.budgetRuns);
        result.budgetTruncated = true;
    }

    result.verdicts.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        result.verdicts[i].crashAt = points[i].cycle;
        result.verdicts[i].kind = points[i].kind;
    }

    // Execution order: a seeded Fisher–Yates shuffle of the budgeted
    // prefix when the scenario carries a master seed (identity order
    // otherwise). Verdict slots stay keyed by the *original* sorted
    // index, so shuffling — like the thread count — only changes who
    // computes what and when, never what the verdict set contains.
    std::vector<std::size_t> order(toRun);
    for (std::size_t i = 0; i < toRun; ++i)
        order[i] = i;
    if (cfg_.scenario.cfg.seed != 0) {
        Rng shuffle(cfg_.scenario.cfg.seed ^ 0xc2b2ae3d27d4eb4full);
        for (std::size_t i = toRun; i > 1; --i)
            std::swap(order[i - 1], order[shuffle.below(i)]);
    }

    // Phase 2: the parallel crash sweep. Workers write disjoint
    // verdict slots, so no synchronization beyond the queue is needed.
    const unsigned jobs =
        std::max(1u, std::min(cfg_.jobs,
                              static_cast<unsigned>(std::max<std::size_t>(
                                  toRun, 1))));
    WorkQueue queue(toRun, jobs);
    std::atomic<bool> wallExpired{false};

    auto worker = [&](unsigned id) {
        ScenarioRunner runner(cfg_.scenario);
        while (auto slot = queue.next(id)) {
            const std::size_t idx = order[*slot];
            const CrashPoint &p = points[idx];
            try {
                result.verdicts[idx] = runner.runCrashAt(p.cycle, p.kind);
            } catch (const std::exception &) {
                // A simulator fault counts as a failing verdict rather
                // than tearing down the whole campaign.
                CrashVerdict v;
                v.crashAt = p.cycle;
                v.kind = p.kind;
                v.executed = true;
                v.crashed = false;
                v.recoveredOk = false;
                result.verdicts[idx] = v;
            }
            if (cfg_.wallLimitMs != 0) {
                const auto elapsed =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        SteadyClock::now() - started).count();
                if (static_cast<std::uint64_t>(elapsed) >=
                        cfg_.wallLimitMs) {
                    wallExpired.store(true, std::memory_order_relaxed);
                    queue.stop();
                }
            }
        }
    };

    if (jobs == 1) {
        // Single-job campaigns run inline; no thread overhead.
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            threads.emplace_back(worker, w);
        for (auto &t : threads)
            t.join();
    }
    result.wallTruncated = wallExpired.load(std::memory_order_relaxed);

    // Phase 3: tally.
    const std::size_t firstFail = campaignTallyVerdicts(&result);

    // Phase 4: minimize the first failure and capture a replay
    // artifact that reproduces it.
    if (result.failures > 0 && cfg_.minimize) {
        campaignMinimizeFirstFailure(cfg_, mainRunner, firstFail,
                                     &result);
        group_.stat("minimize_probes").inc(result.minimized.probes);
    }

    // Export the campaign counters for --stats-json.
    campaignExportStats(group_, result, jobs);

    return result;
}

std::size_t
campaignTallyVerdicts(CampaignResult *result)
{
    result->runsExecuted = 0;
    result->failures = 0;
    result->wallUsTotal = 0.0;
    std::size_t firstFail = result->verdicts.size();
    for (std::size_t i = 0; i < result->verdicts.size(); ++i) {
        const CrashVerdict &v = result->verdicts[i];
        if (!v.executed)
            continue;
        ++result->runsExecuted;
        result->wallUsTotal += v.wallUs;
        if (!v.pass()) {
            ++result->failures;
            if (i < firstFail)
                firstFail = i;
        }
    }
    return firstFail;
}

std::uint64_t
campaignMinimizeFirstFailure(const CampaignConfig &cfg,
                             ScenarioRunner &runner,
                             std::size_t firstFail, CampaignResult *result)
{
    const auto &points = result->probe.points.points;
    std::vector<Cycle> cycles;
    cycles.reserve(points.size());
    for (const CrashPoint &p : points)
        cycles.push_back(p.cycle);

    result->minimized = minimizeFailure(
        cycles, firstFail,
        [&](Cycle c) { return !runner.runCrashAt(c).pass(); });

    // Re-run the minimized point to record its exact verdict.
    const CrashPoint &mp = points[result->minimized.index];
    CrashVerdict mv = runner.runCrashAt(mp.cycle, mp.kind);
    result->artifact =
        ReplayArtifact::fromScenario(cfg.scenario, cfg.paperConfig, mv);
    result->hasMinimized = true;
    return result->minimized.probes;
}

void
campaignExportStats(StatGroup &group, const CampaignResult &result,
                    unsigned jobs)
{
    const auto &points = result.probe.points.points;
    group.stat("points_enumerated").set(points.size());
    group.stat("candidates_pruned")
        .set(result.probe.points.prunedCandidates);
    group.stat("raw_events").set(result.probe.points.rawEvents);
    group.stat("horizon_cycles").set(result.probe.horizon);
    group.stat("runs_executed").set(result.runsExecuted);
    group.stat("runs_skipped")
        .set(points.size() - result.runsExecuted);
    group.stat("verdict_pass")
        .set(result.runsExecuted - result.failures);
    group.stat("verdict_fail").set(result.failures);
    std::uint64_t formalFails = 0, recoveryFails = 0;
    std::uint64_t persistFaults = result.probe.cleanPersistFaults;
    std::array<std::uint64_t, kNumCycleCats> ledger{};
    std::uint64_t ledgerWarpActive = 0;
    for (const CrashVerdict &v : result.verdicts) {
        if (!v.executed)
            continue;
        if (v.pmoViolations != 0)
            ++formalFails;
        if (!v.recoveredOk)
            ++recoveryFails;
        persistFaults += v.persistFaults;
        for (std::size_t c = 0; c < kNumCycleCats; ++c)
            ledger[c] += v.ledgerCycles[c];
        ledgerWarpActive += v.ledgerWarpActive;
    }
    group.stat("formal_fail").set(formalFails);
    group.stat("recovery_fail").set(recoveryFails);
    group.stat("persist_faults").set(persistFaults);
    // Cycle attribution summed over every executed crash + recovery
    // run. Verdicts are pure functions of their crash point, so these
    // counters are identical at any --jobs value (and across any shard
    // layout when merged from journals).
    for (std::size_t c = 0; c < kNumCycleCats; ++c) {
        if (ledger[c] != 0) {
            group.stat(std::string("ledger_") +
                       toString(static_cast<CycleCat>(c))).set(ledger[c]);
        }
    }
    if (ledgerWarpActive != 0)
        group.stat("ledger_warp_active_cycles").set(ledgerWarpActive);
    group.stat("budget_truncated").set(result.budgetTruncated ? 1 : 0);
    group.stat("wall_truncated").set(result.wallTruncated ? 1 : 0);
    group.stat("jobs").set(jobs);
}

JsonValue
campaignReportJson(const CampaignConfig &cfg, const CampaignResult &result,
                   const CampaignExecutionInfo *exec)
{
    JsonValue o = JsonValue::object();
    o.set("schema_version",
          JsonValue(std::uint64_t{schema::kCampaignReport}));
    o.set("app", JsonValue(cfg.scenario.app));
    o.set("model",
          JsonValue(std::string(toString(cfg.scenario.cfg.model))));
    o.set("design",
          JsonValue(std::string(toString(cfg.scenario.cfg.design))));
    o.set("config", JsonValue(cfg.scenario.cfg.describe()));
    o.set("budget_runs", JsonValue(cfg.budgetRuns));
    o.set("fault_spec", JsonValue(cfg.scenario.cfg.faults.describe()));
    o.set("fault_seed", JsonValue(cfg.scenario.cfg.seed));
    o.set("retry_budget",
          JsonValue(std::uint64_t{cfg.scenario.cfg.persistRetryBudget}));

    o.set("horizon_cycles", JsonValue(result.probe.horizon));
    o.set("clean_consistent", JsonValue(result.probe.cleanConsistent));
    o.set("clean_pmo_violations",
          JsonValue(result.probe.cleanPmoViolations));
    o.set("clean_persist_faults",
          JsonValue(result.probe.cleanPersistFaults));
    o.set("raw_events", JsonValue(result.probe.points.rawEvents));
    o.set("candidates_pruned",
          JsonValue(result.probe.points.prunedCandidates));
    o.set("points_enumerated",
          JsonValue(std::uint64_t{result.probe.points.points.size()}));
    o.set("runs_executed", JsonValue(result.runsExecuted));
    o.set("budget_truncated", JsonValue(result.budgetTruncated));
    o.set("failures", JsonValue(result.failures));
    o.set("pass", JsonValue(result.pass()));

    // The execution section: how the verdicts were computed — thread
    // count, wall-clock timing, shard layout. Everything here is
    // environment-dependent; comparators strip the whole object, which
    // is what makes merged and single-process reports byte-identical.
    {
        JsonValue ex = JsonValue::object();
        ex.set("mode", JsonValue(exec ? exec->mode
                                      : std::string("single-process")));
        ex.set("jobs", JsonValue(std::uint64_t{cfg.jobs}));
        ex.set("wall_limit_ms", JsonValue(cfg.wallLimitMs));
        ex.set("wall_truncated", JsonValue(result.wallTruncated));
        ex.set("wall_us_total", JsonValue(result.wallUsTotal));
        if (exec && exec->shards != 0) {
            ex.set("shards", JsonValue(std::uint64_t{exec->shards}));
            JsonValue inc = JsonValue::array();
            for (std::uint64_t s : exec->incompleteShards)
                inc.push(JsonValue(s));
            ex.set("incomplete_shards", std::move(inc));
            ex.set("resumed", JsonValue(exec->resumed));
        }
        if (exec && exec->heartbeatMs != 0) {
            JsonValue hb = JsonValue::object();
            hb.set("interval_ms", JsonValue(exec->heartbeatMs));
            hb.set("records", JsonValue(exec->heartbeatRecords));
            hb.set("worker_restarts",
                   JsonValue(exec->workerRestarts));
            ex.set("heartbeat", std::move(hb));
        }

        // Slowest executed crash points by host wall time (diagnosing
        // which crash points dominate campaign run time).
        std::vector<const CrashVerdict *> byWall;
        for (const CrashVerdict &v : result.verdicts) {
            if (v.executed)
                byWall.push_back(&v);
        }
        std::stable_sort(byWall.begin(), byWall.end(),
                         [](const CrashVerdict *a, const CrashVerdict *b) {
                             return a->wallUs > b->wallUs;
                         });
        if (byWall.size() > 8)
            byWall.resize(8);
        JsonValue slow = JsonValue::array();
        for (const CrashVerdict *v : byWall) {
            JsonValue s = JsonValue::object();
            s.set("crash_cycle", JsonValue(v->crashAt));
            s.set("event_kind",
                  JsonValue(std::string(toString(v->kind))));
            s.set("wall_us", JsonValue(v->wallUs));
            slow.push(std::move(s));
        }
        ex.set("slowest_points", std::move(slow));
        o.set("execution", std::move(ex));
    }

    JsonValue fails = JsonValue::array();
    for (const CrashVerdict &v : result.verdicts) {
        if (!v.executed || v.pass())
            continue;
        JsonValue f = JsonValue::object();
        f.set("crash_cycle", JsonValue(v.crashAt));
        f.set("event_kind", JsonValue(std::string(toString(v.kind))));
        f.set("crashed", JsonValue(v.crashed));
        f.set("pmo_violations", JsonValue(v.pmoViolations));
        f.set("recovered_ok", JsonValue(v.recoveredOk));
        f.set("persist_faults", JsonValue(v.persistFaults));
        f.set("wall_us", JsonValue(v.wallUs));
        fails.push(std::move(f));
    }
    o.set("failing_points", std::move(fails));

    // Slowest persist ops of the oracle run (cycle-based and fully
    // deterministic, unlike the wall-time keys above).
    JsonValue slowOps = JsonValue::array();
    for (const PersistOpRecord &r : result.slowestOps)
        slowOps.push(persistOpJson(r));
    o.set("slowest_ops", std::move(slowOps));

    if (result.hasMinimized) {
        JsonValue m = JsonValue::object();
        m.set("earliest_failing_cycle", JsonValue(result.minimized.cycle));
        m.set("point_index",
              JsonValue(std::uint64_t{result.minimized.index}));
        m.set("probes", JsonValue(result.minimized.probes));
        o.set("minimized", std::move(m));
        o.set("replay", result.artifact.toJson());
    }
    return o;
}

JsonValue
campaignReportStripWall(const JsonValue &report)
{
    if (report.isArray()) {
        JsonValue a = JsonValue::array();
        for (const JsonValue &item : report.items())
            a.push(campaignReportStripWall(item));
        return a;
    }
    if (report.isObject()) {
        JsonValue o = JsonValue::object();
        for (const auto &kv : report.fields()) {
            if (kv.first == "wall_us" || kv.first == "wall_us_total" ||
                    kv.first == "slowest_points" ||
                    kv.first == "execution") {
                continue;
            }
            o.set(kv.first, campaignReportStripWall(kv.second));
        }
        return o;
    }
    return report;
}

bool
campaignReportFromJson(const JsonValue &v, CampaignReportSummary *out,
                       std::string *err)
{
    auto fail = [&](const char *msg) {
        if (err)
            *err = msg;
        return false;
    };
    if (!v.isObject())
        return fail("campaign report: not a JSON object");
    const JsonValue *ver = v.find("schema_version");
    if (!ver)
        return fail("campaign report: missing schema_version");
    const std::uint64_t schema = ver->asU64();
    if (schema < 2 || schema > 4)
        return fail("campaign report: unsupported schema_version");

    CampaignReportSummary s;
    s.schemaVersion = schema;
    const JsonValue *f;
    if (!(f = v.find("app")) || !f->isString())
        return fail("campaign report: missing app");
    s.app = f->asString();
    if (!(f = v.find("model")) || !f->isString())
        return fail("campaign report: missing model");
    s.model = f->asString();
    if (!(f = v.find("design")) || !f->isString())
        return fail("campaign report: missing design");
    s.design = f->asString();
    if (!(f = v.find("points_enumerated")))
        return fail("campaign report: missing points_enumerated");
    s.pointsEnumerated = f->asU64();
    if (!(f = v.find("runs_executed")))
        return fail("campaign report: missing runs_executed");
    s.runsExecuted = f->asU64();
    if (!(f = v.find("failures")))
        return fail("campaign report: missing failures");
    s.failures = f->asU64();
    if (!(f = v.find("pass")))
        return fail("campaign report: missing pass");
    s.pass = f->asBool();
    if (!(f = v.find("failing_points")) || !f->isArray())
        return fail("campaign report: missing failing_points");
    s.failingPoints = f->items().size();

    // Wall time: top-level under v3, inside `execution` under v4, and
    // legitimately absent under v2.
    if (schema >= 4) {
        const JsonValue *ex = v.find("execution");
        if (!ex || !ex->isObject())
            return fail("campaign report: v4 missing execution");
        const JsonValue *w = ex->find("wall_us_total");
        if (!w)
            return fail("campaign report: v4 missing wall_us_total");
        s.wallUsTotal = w->asNumber();
    } else if (const JsonValue *w = v.find("wall_us_total")) {
        s.wallUsTotal = w->asNumber();
    } else if (schema >= 3) {
        return fail("campaign report: v3 missing wall_us_total");
    }
    if (const JsonValue *so = v.find("slowest_ops")) {
        if (!so->isArray())
            return fail("campaign report: slowest_ops not an array");
        s.slowestOps = so->items().size();
    } else if (schema >= 3) {
        return fail("campaign report: v3 missing slowest_ops");
    }

    *out = s;
    return true;
}

} // namespace sbrp
