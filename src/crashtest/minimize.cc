#include "crashtest/minimize.hh"

#include "common/log.hh"

namespace sbrp
{

MinimizeResult
minimizeFailure(const std::vector<Cycle> &cycles,
                std::size_t known_fail_index,
                const std::function<bool(Cycle)> &fails)
{
    sbrp_assert(known_fail_index < cycles.size(),
                "known-failing index out of range");

    MinimizeResult r;
    // Invariant: cycles[hi] is known to fail; everything below lo is
    // known (or assumed, per the monotonicity caveat) to pass.
    std::size_t lo = 0;
    std::size_t hi = known_fail_index;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        ++r.probes;
        if (fails(cycles[mid]))
            hi = mid;
        else
            lo = mid + 1;
    }
    r.index = hi;
    r.cycle = cycles[hi];
    return r;
}

} // namespace sbrp
