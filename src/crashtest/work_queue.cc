#include "crashtest/work_queue.hh"

#include "common/log.hh"

namespace sbrp
{

WorkQueue::WorkQueue(std::size_t items, unsigned workers)
{
    if (workers == 0)
        sbrp_fatal("WorkQueue needs at least one worker");
    ranges_.resize(workers);
    // Remainder items go to the first ranges, one each, so every index
    // is covered exactly once.
    const std::size_t base = items / workers;
    const std::size_t extra = items % workers;
    std::size_t lo = 0;
    for (unsigned w = 0; w < workers; ++w) {
        const std::size_t n = base + (w < extra ? 1 : 0);
        ranges_[w] = Range{lo, lo + n};
        lo += n;
    }
}

std::optional<std::size_t>
WorkQueue::next(unsigned worker)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_)
        return std::nullopt;
    sbrp_assert(worker < ranges_.size(), "worker id out of range");

    Range &own = ranges_[worker];
    if (own.size() > 0)
        return own.lo++;

    // Steal the upper half of the largest remaining range (lowest
    // worker index breaks ties, for determinism under the lock).
    std::size_t victim = ranges_.size();
    std::size_t best = 0;
    for (std::size_t w = 0; w < ranges_.size(); ++w) {
        if (w != worker && ranges_[w].size() > best) {
            best = ranges_[w].size();
            victim = w;
        }
    }
    if (victim == ranges_.size())
        return std::nullopt;

    Range &v = ranges_[victim];
    const std::size_t half = (v.size() + 1) / 2;
    own.lo = v.hi - half;
    own.hi = v.hi;
    v.hi = own.lo;
    return own.lo++;
}

void
WorkQueue::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
}

bool
WorkQueue::stopped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopped_;
}

std::size_t
WorkQueue::remaining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Range &r : ranges_)
        n += r.size();
    return n;
}

} // namespace sbrp
