/**
 * @file
 * One crash-testing scenario: an application + configuration pair that
 * can be probed for crash points and re-run against any of them.
 *
 * The runner owns a *golden* NvmDevice holding the durable image as the
 * app's setupNvm left it, and a *live* NvmDevice the simulations mutate.
 * Every crash run starts by restoring the live image from the golden
 * one — the app object itself is built exactly once, so the region
 * addresses it recorded during setup stay valid (NVM allocation is a
 * deterministic bump allocator). This makes crash runs O(image-copy)
 * instead of O(app-reconstruction) and, more importantly, guarantees
 * every crash point sees the *same* initial durable state.
 *
 * Verdicts are judged by two independent oracles:
 *  1. Formal: the PmoChecker validates the physical commit order of the
 *     crashed run against the paper's PMO rules; because the commit
 *     stream is prefix-closed, a clean check means every crash prefix
 *     is PMO-downward-closed.
 *  2. Recovery: a fresh GpuSystem is powered up over the surviving
 *     durable image, the app's recovery kernel runs, and
 *     verifyRecovered() checks application-level consistency.
 */

#ifndef SBRP_CRASHTEST_SCENARIO_HH
#define SBRP_CRASHTEST_SCENARIO_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "apps/app.hh"
#include "common/config.hh"
#include "crashtest/crash_points.hh"
#include "gpu/cycle_ledger.hh"
#include "mem/nvm_device.hh"

namespace sbrp
{

class PersistProvenance;

/** Everything needed to reconstruct a campaign's runs exactly. */
struct CrashScenario
{
    std::string app;        ///< Canonical or alias registry name.
    SystemConfig cfg;
    bool benchScale = false;
    std::uint64_t seed = 0; ///< 0 = the app's built-in default seed.
};

/** Result of the crash-free oracle run. */
struct CrashProbe
{
    CrashPointSet points;
    Cycle horizon = 0;              ///< Crash-free run length.
    bool cleanConsistent = false;   ///< verify() after the clean run.
    std::uint64_t cleanPmoViolations = 0;
    /** Terminal persist faults (retry budget exhausted / sticky) in the
        clean run. Transient faults retried to success never count. */
    std::uint64_t cleanPersistFaults = 0;
};

/** Verdict of one crash-point run (pure function of the crash point). */
struct CrashVerdict
{
    Cycle crashAt = 0;
    CrashEventKind kind = CrashEventKind::PersistAccept;
    bool executed = false;   ///< False when cut off by the budget.
    bool crashed = false;    ///< The launch actually crashed.
    std::uint64_t pmoViolations = 0;  ///< Formal oracle.
    bool recoveredOk = false;         ///< Recovery oracle.
    /** Terminal persist faults across the crashed run + recovery run.
        Under fault injection these mean data was silently at risk:
        a passing verdict requires every fault to have retired. */
    std::uint64_t persistFaults = 0;

    /** Cycle-attribution totals summed over the crashed run and the
        recovery run (all SMs). A pure function of the crash point, so
        campaign aggregates are --jobs-invariant. */
    std::array<std::uint64_t, kNumCycleCats> ledgerCycles{};
    std::uint64_t ledgerWarpActive = 0;

    /** Host wall time of this crash + recovery run (microseconds).
        The only non-deterministic verdict field: report comparators
        must ignore it. */
    double wallUs = 0.0;

    bool
    pass() const
    {
        return executed && crashed && pmoViolations == 0 &&
               recoveredOk && persistFaults == 0;
    }
};

/**
 * Executes a scenario's runs. Not thread-safe: parallel campaigns give
 * each worker its own ScenarioRunner (construction is deterministic, so
 * all runners are interchangeable).
 */
class ScenarioRunner
{
  public:
    /** Builds the app and golden image; throws FatalError on an
        unknown app name. */
    explicit ScenarioRunner(const CrashScenario &scenario);

    /**
     * Runs crash-free with tracing and enumerates crash points. When
     * `prov` is non-null the oracle run records per-op persist
     * provenance into it (purely passive — the run stays
     * cycle-identical), giving campaigns an audit stream and a
     * slowest-op summary for free.
     */
    CrashProbe probe(PersistProvenance *prov = nullptr);

    /** Crash at `crash_at`, power-cycle, recover, judge both oracles. */
    CrashVerdict runCrashAt(Cycle crash_at,
                            CrashEventKind kind =
                                CrashEventKind::PersistAccept);

    const CrashScenario &scenario() const { return scenario_; }
    PmApp &app() { return *app_; }

  private:
    void resetImage();

    CrashScenario scenario_;
    std::unique_ptr<PmApp> app_;
    NvmDevice golden_;   ///< Durable image as setupNvm left it.
    NvmDevice live_;     ///< Mutated by runs; restored from golden_.
};

} // namespace sbrp

#endif // SBRP_CRASHTEST_SCENARIO_HH
