#include "crashtest/crash_points.hh"

#include <cstring>
#include <map>

#include "common/trace.hh"

namespace sbrp
{

const char *
toString(CrashEventKind k)
{
    switch (k) {
      case CrashEventKind::PersistAccept: return "persist-accept";
      case CrashEventKind::PbAdmit: return "pb-admit";
      case CrashEventKind::PbPop: return "pb-pop";
      case CrashEventKind::L1PmEvict: return "l1-pm-evict";
      case CrashEventKind::OFenceRetire: return "ofence";
      case CrashEventKind::DFenceRetire: return "dfence";
      case CrashEventKind::FenceRetire: return "fence";
      case CrashEventKind::RelRetire: return "prel";
      case CrashEventKind::AcqRetire: return "pacq";
    }
    return "?";
}

bool
crashEventKindFromString(const std::string &s, CrashEventKind *out)
{
    for (auto k : {CrashEventKind::PersistAccept, CrashEventKind::PbAdmit,
                   CrashEventKind::PbPop, CrashEventKind::L1PmEvict,
                   CrashEventKind::OFenceRetire, CrashEventKind::DFenceRetire,
                   CrashEventKind::FenceRetire, CrashEventKind::RelRetire,
                   CrashEventKind::AcqRetire}) {
        if (s == toString(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

namespace
{

/**
 * Maps one stored trace event to the (cycle, kind) it makes
 * interesting, or returns false for events the oracle ignores.
 * Stall-span *ends* are the cycles the blocked operation unblocked at,
 * which is exactly when ODM/EDM state transitioned.
 */
bool
classify(const TraceEvent &e, Cycle *cycle, CrashEventKind *kind)
{
    if (!e.name)
        return false;
    *cycle = e.start;
    if (e.kind == TraceEventKind::Counter) {
        if (std::strcmp(e.name, "wpq_lines") == 0) {
            *kind = CrashEventKind::PersistAccept;
            return true;
        }
        return false;
    }
    if (e.kind == TraceEventKind::Span) {
        *cycle = e.end;
        if (std::strcmp(e.name, "stall:odm_dfence") == 0)
            *kind = CrashEventKind::DFenceRetire;
        else if (std::strcmp(e.name, "stall:odm_rel_dev") == 0)
            *kind = CrashEventKind::RelRetire;
        else if (std::strcmp(e.name, "stall:spin_acquire") == 0)
            *kind = CrashEventKind::AcqRetire;
        else
            return false;
        return true;
    }
    // Instants.
    if (std::strcmp(e.name, "pb:ack") == 0)
        *kind = CrashEventKind::PersistAccept;
    else if (std::strcmp(e.name, "pb:admit") == 0)
        *kind = CrashEventKind::PbAdmit;
    else if (std::strcmp(e.name, "pb:flush") == 0)
        *kind = CrashEventKind::PbPop;
    else if (std::strcmp(e.name, "l1:evict_pm") == 0)
        *kind = CrashEventKind::L1PmEvict;
    else if (std::strcmp(e.name, "op:ofence") == 0)
        *kind = CrashEventKind::OFenceRetire;
    else if (std::strcmp(e.name, "op:dfence") == 0)
        *kind = CrashEventKind::DFenceRetire;
    else if (std::strcmp(e.name, "op:fence") == 0)
        *kind = CrashEventKind::FenceRetire;
    else if (std::strcmp(e.name, "op:prel") == 0)
        *kind = CrashEventKind::RelRetire;
    else if (std::strcmp(e.name, "op:pacq") == 0)
        *kind = CrashEventKind::AcqRetire;
    else
        return false;
    return true;
}

} // namespace

CrashPointSet
enumerateCrashPoints(TraceSink &sink, Cycle horizon)
{
    sink.flushAll();

    CrashPointSet set;
    set.horizon = horizon;

    // Dedup by cycle; the lowest-ordered kind wins so the outcome does
    // not depend on drain order across components.
    std::map<Cycle, CrashEventKind> byCycle;
    std::uint64_t candidates = 0;
    for (const auto &stored : sink.events()) {
        Cycle c = 0;
        CrashEventKind kind = CrashEventKind::PersistAccept;
        if (!classify(stored.event, &c, &kind))
            continue;
        ++set.rawEvents;
        const Cycle lo = c > 0 ? c - 1 : c;
        const Cycle hi = c + 1;
        for (Cycle cand = lo; cand <= hi; ++cand) {
            ++candidates;
            if (cand < 1 || cand > horizon)
                continue;
            auto [it, inserted] = byCycle.emplace(cand, kind);
            if (!inserted && kind < it->second)
                it->second = kind;
        }
    }

    set.points.reserve(byCycle.size());
    for (const auto &[cycle, kind] : byCycle)
        set.points.push_back(CrashPoint{cycle, kind});
    set.prunedCandidates = candidates - set.points.size();
    return set;
}

} // namespace sbrp
