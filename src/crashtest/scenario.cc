#include "crashtest/scenario.hh"

#include <chrono>

#include "apps/registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "formal/checker.hh"
#include "formal/trace.hh"
#include "gpu/gpu_system.hh"

namespace sbrp
{

ScenarioRunner::ScenarioRunner(const CrashScenario &scenario)
    : scenario_(scenario)
{
    scenario_.cfg.validate();
    app_ = makeRegisteredApp(scenario_.app, scenario_.cfg.model,
                             scenario_.benchScale, scenario_.seed);
    if (!app_)
        sbrp_fatal("unknown application '%s'", scenario_.app);
    // Region addresses the app records here stay valid across
    // resetImage(): the namespace table is part of the golden image.
    app_->setupNvm(golden_);
    resetImage();
}

void
ScenarioRunner::resetImage()
{
    live_.restoreImageFrom(golden_);
}

CrashProbe
ScenarioRunner::probe(PersistProvenance *prov)
{
    resetImage();

    CrashProbe p;
    ExecutionTrace trace;
    TraceSink sink;
    {
        GpuSystem gpu(scenario_.cfg, live_, &trace, &sink, prov);
        app_->setupGpu(gpu);
        auto res = gpu.launch(app_->forward());
        p.horizon = res.cycles;
        p.cleanPersistFaults = gpu.fabric().persistFaults().size();
    }
    p.cleanConsistent = app_->verify(live_);
    {
        PmoChecker checker(trace);
        p.cleanPmoViolations = checker.check().size();
    }
    p.points = enumerateCrashPoints(sink, p.horizon);
    return p;
}

CrashVerdict
ScenarioRunner::runCrashAt(Cycle crash_at, CrashEventKind kind)
{
    resetImage();

    CrashVerdict v;
    v.crashAt = crash_at;
    v.kind = kind;
    v.executed = true;
    const auto wall0 = std::chrono::steady_clock::now();

    ExecutionTrace trace;
    {
        GpuSystem gpu(scenario_.cfg, live_, &trace);
        app_->setupGpu(gpu);
        auto res = gpu.launch(app_->forward(), crash_at);
        v.crashed = res.crashed;
        v.persistFaults = gpu.fabric().persistFaults().size();
        auto bd = gpu.cycleBreakdown();
        for (std::size_t c = 0; c < kNumCycleCats; ++c)
            v.ledgerCycles[c] += bd.cycles[c];
        v.ledgerWarpActive += bd.warpActiveCycles;
    }   // Power failure: caches, PBs and WPQs are gone.

    {
        PmoChecker checker(trace);
        v.pmoViolations = checker.check().size();
    }

    {
        // Power-up: fresh GPU over the surviving durable image. The
        // fault plan restarts from the same master seed, so recovery
        // sees the same schedule every time this point re-runs.
        GpuSystem gpu(scenario_.cfg, live_);
        app_->setupGpu(gpu);
        gpu.launch(app_->recovery());
        v.persistFaults += gpu.fabric().persistFaults().size();
        auto bd = gpu.cycleBreakdown();
        for (std::size_t c = 0; c < kNumCycleCats; ++c)
            v.ledgerCycles[c] += bd.cycles[c];
        v.ledgerWarpActive += bd.warpActiveCycles;
    }
    v.recoveredOk = app_->verifyRecovered(live_);
    v.wallUs = std::chrono::duration<double, std::micro>(
        std::chrono::steady_clock::now() - wall0).count();
    return v;
}

} // namespace sbrp
