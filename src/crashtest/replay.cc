#include "crashtest/replay.hh"

#include "apps/registry.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace sbrp
{

namespace
{

/** Reads a required field; false (with *err) when absent. */
const JsonValue *
require(const JsonValue &v, const char *key, std::string *err)
{
    const JsonValue *f = v.find(key);
    if (!f && err)
        *err = std::string("replay artifact: missing field '") + key + "'";
    return f;
}

} // namespace

ReplayArtifact
ReplayArtifact::fromScenario(const CrashScenario &s, bool paper_config,
                             const CrashVerdict &v)
{
    ReplayArtifact a;
    a.app = resolveAppName(s.app);
    a.paperConfig = paper_config;
    a.benchScale = s.benchScale;
    a.seed = s.seed;
    a.model = s.cfg.model;
    a.design = s.cfg.design;
    a.persistPoint = s.cfg.persistPoint;
    a.flushPolicy = s.cfg.flushPolicy;
    a.window = s.cfg.window;
    a.preciseFsm = s.cfg.preciseFsm;
    a.pbCoverage = s.cfg.pbCoverage;
    a.nvmBwScale = s.cfg.nvmBwScale;
    a.unsafeRelaxedPersistOrder = s.cfg.unsafeRelaxedPersistOrder;
    a.faultSpec = s.cfg.faults.describe();
    a.faultSeed = s.cfg.seed;
    a.retryBudget = s.cfg.persistRetryBudget;
    a.backoffBase = s.cfg.retryBackoffBase;
    a.crashCycle = v.crashAt;
    a.eventKind = v.kind;
    a.expectViolation = !v.pass();
    a.pmoViolations = v.pmoViolations;
    a.recoveredOk = v.recoveredOk;
    return a;
}

CrashScenario
ReplayArtifact::toScenario() const
{
    CrashScenario s;
    s.app = app;
    s.benchScale = benchScale;
    s.seed = seed;
    s.cfg = paperConfig ? SystemConfig::paperDefault(model, design)
                        : SystemConfig::testDefault(model, design);
    s.cfg.persistPoint = persistPoint;
    s.cfg.flushPolicy = flushPolicy;
    s.cfg.window = window;
    s.cfg.preciseFsm = preciseFsm;
    s.cfg.pbCoverage = pbCoverage;
    s.cfg.nvmBwScale = nvmBwScale;
    s.cfg.unsafeRelaxedPersistOrder = unsafeRelaxedPersistOrder;
    std::string err;
    if (!FaultSpec::parse(faultSpec, &s.cfg.faults, &err))
        sbrp_fatal("replay artifact fault spec: %s", err);
    s.cfg.seed = faultSeed;
    s.cfg.persistRetryBudget = retryBudget;
    s.cfg.retryBackoffBase = backoffBase;
    return s;
}

JsonValue
ReplayArtifact::toJson() const
{
    JsonValue o = JsonValue::object();
    o.set("version", JsonValue(std::uint64_t{kVersion}));
    o.set("app", JsonValue(app));
    o.set("paper_config", JsonValue(paperConfig));
    o.set("bench_scale", JsonValue(benchScale));
    o.set("seed", JsonValue(seed));
    o.set("model", JsonValue(std::string(toString(model))));
    o.set("design", JsonValue(std::string(toString(design))));
    o.set("persist_point", JsonValue(std::string(toString(persistPoint))));
    o.set("flush_policy", JsonValue(std::string(toString(flushPolicy))));
    o.set("window", JsonValue(std::uint64_t{window}));
    o.set("precise_fsm", JsonValue(preciseFsm));
    o.set("pb_coverage", JsonValue(pbCoverage));
    o.set("nvm_bw_scale", JsonValue(nvmBwScale));
    o.set("unsafe_relaxed_persist_order",
          JsonValue(unsafeRelaxedPersistOrder));
    o.set("fault_spec", JsonValue(faultSpec));
    o.set("fault_seed", JsonValue(faultSeed));
    o.set("retry_budget", JsonValue(std::uint64_t{retryBudget}));
    o.set("backoff_base", JsonValue(backoffBase));
    o.set("crash_cycle", JsonValue(crashCycle));
    o.set("event_kind", JsonValue(std::string(toString(eventKind))));
    o.set("expect_violation", JsonValue(expectViolation));
    o.set("pmo_violations", JsonValue(pmoViolations));
    o.set("recovered_ok", JsonValue(recoveredOk));
    return o;
}

bool
ReplayArtifact::fromJson(const JsonValue &v, ReplayArtifact *out,
                         std::string *err)
{
    if (!v.isObject()) {
        if (err)
            *err = "replay artifact: top level is not an object";
        return false;
    }
    const JsonValue *f = require(v, "version", err);
    if (!f)
        return false;
    if (!f->isNumber() ||
            (f->asU64() != 1 && f->asU64() != kVersion)) {
        if (err)
            *err = "replay artifact: unsupported version";
        return false;
    }
    const bool v2 = f->asU64() >= 2;

    ReplayArtifact a;

    struct StrField
    {
        const char *key;
        std::string *dst;
    };
    std::string model_s, design_s, persist_s, flush_s, kind_s;
    for (StrField sf : {StrField{"app", &a.app},
                        StrField{"model", &model_s},
                        StrField{"design", &design_s},
                        StrField{"persist_point", &persist_s},
                        StrField{"flush_policy", &flush_s},
                        StrField{"event_kind", &kind_s}}) {
        f = require(v, sf.key, err);
        if (!f)
            return false;
        if (!f->isString()) {
            if (err)
                *err = std::string("replay artifact: '") + sf.key +
                       "' is not a string";
            return false;
        }
        *sf.dst = f->asString();
    }

    if (resolveAppName(a.app).empty()) {
        if (err)
            *err = "replay artifact: unknown app '" + a.app + "'";
        return false;
    }
    if (!modelKindFromString(model_s, &a.model) ||
            !systemDesignFromString(design_s, &a.design) ||
            !persistPointFromString(persist_s, &a.persistPoint) ||
            !flushPolicyFromString(flush_s, &a.flushPolicy) ||
            !crashEventKindFromString(kind_s, &a.eventKind)) {
        if (err)
            *err = "replay artifact: unknown enum spelling";
        return false;
    }

    struct BoolField
    {
        const char *key;
        bool *dst;
    };
    for (BoolField bf : {BoolField{"paper_config", &a.paperConfig},
                         BoolField{"bench_scale", &a.benchScale},
                         BoolField{"precise_fsm", &a.preciseFsm},
                         BoolField{"unsafe_relaxed_persist_order",
                                   &a.unsafeRelaxedPersistOrder},
                         BoolField{"expect_violation", &a.expectViolation},
                         BoolField{"recovered_ok", &a.recoveredOk}}) {
        f = require(v, bf.key, err);
        if (!f)
            return false;
        if (!f->isBool()) {
            if (err)
                *err = std::string("replay artifact: '") + bf.key +
                       "' is not a bool";
            return false;
        }
        *bf.dst = f->asBool();
    }

    struct NumField
    {
        const char *key;
        double *dst;
    };
    double window_d = 0, seed_d = 0, cycle_d = 0, pmo_d = 0;
    for (NumField nf : {NumField{"seed", &seed_d},
                        NumField{"window", &window_d},
                        NumField{"pb_coverage", &a.pbCoverage},
                        NumField{"nvm_bw_scale", &a.nvmBwScale},
                        NumField{"crash_cycle", &cycle_d},
                        NumField{"pmo_violations", &pmo_d}}) {
        f = require(v, nf.key, err);
        if (!f)
            return false;
        if (!f->isNumber()) {
            if (err)
                *err = std::string("replay artifact: '") + nf.key +
                       "' is not a number";
            return false;
        }
        *nf.dst = f->asNumber();
    }
    a.seed = static_cast<std::uint64_t>(seed_d);
    a.window = static_cast<std::uint32_t>(window_d);
    a.crashCycle = static_cast<Cycle>(cycle_d);
    a.pmoViolations = static_cast<std::uint64_t>(pmo_d);

    // v1 artifacts predate fault injection: the defaults (faults
    // disabled, unseeded) reproduce exactly what they recorded.
    if (v2) {
        f = require(v, "fault_spec", err);
        if (!f)
            return false;
        if (!f->isString()) {
            if (err)
                *err = "replay artifact: 'fault_spec' is not a string";
            return false;
        }
        a.faultSpec = f->asString();
        FaultSpec parsed;
        std::string parse_err;
        if (!FaultSpec::parse(a.faultSpec, &parsed, &parse_err)) {
            if (err)
                *err = "replay artifact: bad fault_spec: " + parse_err;
            return false;
        }

        double fault_seed_d = 0, retry_d = 0, backoff_d = 0;
        for (NumField nf : {NumField{"fault_seed", &fault_seed_d},
                            NumField{"retry_budget", &retry_d},
                            NumField{"backoff_base", &backoff_d}}) {
            f = require(v, nf.key, err);
            if (!f)
                return false;
            if (!f->isNumber()) {
                if (err)
                    *err = std::string("replay artifact: '") + nf.key +
                           "' is not a number";
                return false;
            }
            *nf.dst = f->asNumber();
        }
        a.faultSeed = static_cast<std::uint64_t>(fault_seed_d);
        a.retryBudget = static_cast<std::uint32_t>(retry_d);
        a.backoffBase = static_cast<Cycle>(backoff_d);
        if (parsed.enabled() && a.faultSeed == 0) {
            if (err)
                *err = "replay artifact: fault injection without a seed";
            return false;
        }
    }

    *out = a;
    return true;
}

} // namespace sbrp
