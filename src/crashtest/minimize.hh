/**
 * @file
 * Failure minimization: bisect a campaign failure down to the earliest
 * failing crash point.
 *
 * A campaign that finds a failing crash cycle deep in the run is an
 * awkward reproducer — the interesting bug is usually the *first*
 * moment the durable image becomes unrecoverable. Given the sorted
 * crash-point cycles and one known-failing index, the minimizer binary
 * searches the prefix for the boundary between passing and failing
 * points, re-running the scenario at each probe.
 *
 * Bisection assumes pass/fail is monotone over the point list (early
 * points pass, late points fail), which holds for the
 * lost-durable-suffix failures the fault-injection knob produces. For
 * non-monotone failure patterns the result is still a genuine failing
 * point — just not necessarily the global earliest — and the verdict
 * returned with it is always re-validated by an actual run.
 */

#ifndef SBRP_CRASHTEST_MINIMIZE_HH
#define SBRP_CRASHTEST_MINIMIZE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

struct MinimizeResult
{
    std::size_t index = 0;       ///< Earliest failing point index.
    Cycle cycle = 0;             ///< Its crash cycle.
    std::uint64_t probes = 0;    ///< Scenario re-runs spent bisecting.
};

/**
 * Binary searches `cycles` (sorted ascending) for the earliest index
 * whose crash fails, starting from `known_fail_index` (which must
 * fail). `fails(cycle)` re-runs the scenario and returns true when the
 * verdict fails.
 */
MinimizeResult minimizeFailure(const std::vector<Cycle> &cycles,
                               std::size_t known_fail_index,
                               const std::function<bool(Cycle)> &fails);

} // namespace sbrp

#endif // SBRP_CRASHTEST_MINIMIZE_HH
