/**
 * @file
 * Deterministic work-stealing index queue for parallel campaigns.
 *
 * The queue hands out indices into a fixed item list. Each worker owns
 * a contiguous range; when a worker's range drains, it steals the upper
 * half of the largest remaining range. The *assignment* of indices to
 * workers depends on timing, but that is harmless by construction: a
 * crash-point verdict is a pure function of the crash point, so the set
 * of verdicts is identical regardless of which worker computes which
 * index — the property the 1-thread-vs-N-thread tests pin down.
 *
 * stop() makes every subsequent next() return nothing, giving the
 * campaign a graceful wall-clock cutoff: in-flight runs finish, and
 * unexecuted indices are reported as truncated rather than silently
 * dropped.
 */

#ifndef SBRP_CRASHTEST_WORK_QUEUE_HH
#define SBRP_CRASHTEST_WORK_QUEUE_HH

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace sbrp
{

class WorkQueue
{
  public:
    /** Splits [0, items) into `workers` contiguous ranges. */
    WorkQueue(std::size_t items, unsigned workers);

    /**
     * Next index for `worker`: its own range first, then half of the
     * largest remaining range. std::nullopt when drained or stopped.
     */
    std::optional<std::size_t> next(unsigned worker);

    /** Graceful cutoff: all future next() calls return nothing. */
    void stop();

    bool stopped() const;

    /** Indices never handed out (nonzero only after stop()). */
    std::size_t remaining() const;

  private:
    struct Range
    {
        std::size_t lo = 0;
        std::size_t hi = 0;   // Exclusive.
        std::size_t size() const { return hi - lo; }
    };

    mutable std::mutex mutex_;
    std::vector<Range> ranges_;   // One per worker.
    bool stopped_ = false;
};

} // namespace sbrp

#endif // SBRP_CRASHTEST_WORK_QUEUE_HH
