#include "obs/provenance.hh"

#include <algorithm>

#include "common/atomic_io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_versions.hh"

#include <fstream>

namespace sbrp
{

namespace
{

/** Retry outliers kept (worst by attempt count). */
constexpr std::size_t kRetryOutlierCap = 64;

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

const char *
toString(PersistStage s)
{
    switch (s) {
      case PersistStage::IssueToPb:   return "issue_to_pb";
      case PersistStage::PbResidency: return "pb_residency";
      case PersistStage::FsmHold:     return "fsm_hold";
      case PersistStage::Fabric:      return "fabric";
      case PersistStage::Wpq:         return "wpq";
      case PersistStage::Media:       return "media";
    }
    return "?";
}

Cycle
PersistOpRecord::stageCycles(PersistStage s) const
{
    // tFsmBlock == 0 means the op was never FSM-held: the PB residency
    // runs all the way to the flush and the hold stage is empty.
    const Cycle fsm = tFsmBlock ? tFsmBlock : tFlush;
    switch (s) {
      case PersistStage::IssueToPb:   return tAdmit - tIssue;
      case PersistStage::PbResidency: return fsm - tAdmit;
      case PersistStage::FsmHold:     return tFlush - fsm;
      case PersistStage::Fabric:      return tArrive - tFlush;
      case PersistStage::Wpq:         return tAccept - tArrive;
      case PersistStage::Media:       return tAck - tAccept;
    }
    return 0;
}

PersistProvenance::PersistProvenance(std::size_t capacity,
                                     std::size_t top_k)
    : mask_(roundUpPow2(capacity == 0 ? 1 : capacity) - 1),
      topKLimit_(top_k)
{
    ring_.resize(mask_ + 1);
}

PersistOpRecord *
PersistProvenance::slot(std::uint64_t op_id)
{
    if (op_id == 0)
        return nullptr;
    PersistOpRecord &r = ring_[(op_id & 0xffffffffffull) & mask_];
    return r.opId == op_id ? &r : nullptr;
}

const PersistOpRecord *
PersistProvenance::find(std::uint64_t op_id) const
{
    return const_cast<PersistProvenance *>(this)->slot(op_id);
}

std::uint64_t
PersistProvenance::beginOp(std::uint32_t sm_id, Addr line_addr,
                           Scope scope, std::uint64_t epoch, Cycle now)
{
    std::uint64_t seq = nextSeq_++;
    // smId in bits 40+ keeps every id below 2^53, so op ids survive a
    // JSON (double) round-trip exactly.
    std::uint64_t id =
        (static_cast<std::uint64_t>(sm_id) + 1) << 40 | (seq & 0xffffffffffull);
    PersistOpRecord &r = ring_[seq & mask_];
    if (r.opId != 0 && !r.completed)
        ++lost_;   // Ring wrapped onto a still-in-flight op.
    r = PersistOpRecord{};
    r.opId = id;
    r.lineAddr = line_addr;
    r.smId = sm_id;
    r.scope = scope;
    r.epoch = epoch;
    r.tIssue = r.tAdmit = now;
    ++begun_;
    return id;
}

void
PersistProvenance::markFsmBlocked(std::uint64_t op_id, Cycle now)
{
    PersistOpRecord *r = slot(op_id);
    if (r && r->tFsmBlock == 0)
        r->tFsmBlock = now;
}

void
PersistProvenance::noteMerge(std::uint64_t op_id)
{
    if (PersistOpRecord *r = slot(op_id))
        ++r->merges;
}

void
PersistProvenance::markFlush(std::uint64_t op_id, Cycle now)
{
    if (PersistOpRecord *r = slot(op_id))
        r->tFlush = now;
}

void
PersistProvenance::noteAttempt(std::uint64_t op_id)
{
    if (PersistOpRecord *r = slot(op_id))
        ++r->attempts;
}

void
PersistProvenance::markArrive(std::uint64_t op_id, Cycle at)
{
    // Retries re-arrive; the final attempt's arrival wins, so every
    // replay and backoff folds into the fabric stage.
    if (PersistOpRecord *r = slot(op_id))
        r->tArrive = at;
}

void
PersistProvenance::markAccept(std::uint64_t op_id, Cycle at)
{
    if (PersistOpRecord *r = slot(op_id))
        r->tAccept = at;
}

void
PersistProvenance::recordCommit(std::uint64_t op_id, Cycle at)
{
    PersistOpRecord *r = slot(op_id);
    if (!r)
        return;
    PersistAuditRecord a;
    a.opId = r->opId;
    a.addr = r->lineAddr;
    a.scope = r->scope;
    a.epoch = r->epoch;
    a.commitCycle = at;
    audit_.push_back(a);
}

void
PersistProvenance::complete(std::uint64_t op_id, Cycle ack, bool faulted)
{
    PersistOpRecord *r = slot(op_id);
    if (!r)
        return;
    r->tAck = ack;
    r->completed = true;
    r->faulted = faulted;
    ++completed_;
    if (faulted) {
        // Terminal faults never committed; their trail stays findable
        // in the ring but is excluded from the waterfall (a faulted op
        // has no accept point, so its stages would not telescope).
        ++faulted_;
        return;
    }
    for (std::size_t s = 0; s < kNumPersistStages; ++s)
        stageDist_[s].record(
            r->stageCycles(static_cast<PersistStage>(s)));
    ackDist_.record(r->ackLatency());

    if (r->attempts > 1) {
        retried_.push_back(*r);
        if (retried_.size() > kRetryOutlierCap) {
            std::stable_sort(retried_.begin(), retried_.end(),
                             [](const PersistOpRecord &a,
                                const PersistOpRecord &b) {
                                 return a.attempts > b.attempts;
                             });
            retried_.resize(kRetryOutlierCap);
        }
    }

    // Bounded top-K by ack latency (stable on ties: earlier op wins).
    if (topK_.size() < topKLimit_ ||
            r->ackLatency() > topK_.back().ackLatency()) {
        topK_.push_back(*r);
        std::stable_sort(topK_.begin(), topK_.end(),
                         [](const PersistOpRecord &a,
                            const PersistOpRecord &b) {
                             return a.ackLatency() > b.ackLatency();
                         });
        if (topK_.size() > topKLimit_)
            topK_.resize(topKLimit_);
    }
}

namespace
{

JsonValue
distJson(const Distribution &d)
{
    JsonValue o = JsonValue::object();
    o.set("count", JsonValue(d.count()));
    o.set("sum", JsonValue(d.sum()));
    o.set("min", JsonValue(d.min()));
    o.set("max", JsonValue(d.max()));
    o.set("p50", JsonValue(d.p50()));
    o.set("p95", JsonValue(d.p95()));
    o.set("p99", JsonValue(d.p99()));
    return o;
}

} // namespace

JsonValue
persistOpJson(const PersistOpRecord &r)
{
    JsonValue o = JsonValue::object();
    o.set("op_id", JsonValue(r.opId));
    o.set("sm", JsonValue(static_cast<std::uint64_t>(r.smId)));
    o.set("addr", JsonValue(r.lineAddr));
    o.set("scope", JsonValue(std::string(toString(r.scope))));
    o.set("epoch", JsonValue(r.epoch));
    o.set("attempts", JsonValue(static_cast<std::uint64_t>(r.attempts)));
    o.set("merges", JsonValue(static_cast<std::uint64_t>(r.merges)));
    o.set("faulted", JsonValue(r.faulted));
    o.set("issue_cycle", JsonValue(r.tIssue));
    o.set("ack_cycle", JsonValue(r.tAck));
    o.set("ack_latency", JsonValue(r.ackLatency()));
    JsonValue stages = JsonValue::object();
    for (std::size_t s = 0; s < kNumPersistStages; ++s) {
        auto st = static_cast<PersistStage>(s);
        stages.set(toString(st), JsonValue(r.stageCycles(st)));
    }
    o.set("stages", stages);
    return o;
}

bool
persistOpFromJson(const JsonValue &v, PersistOpRecord *out,
                  std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = "persist op: " + msg;
        return false;
    };
    if (!v.isObject())
        return fail("not a JSON object");

    auto num = [&](const char *key, std::uint64_t *dst) {
        const JsonValue *f = v.find(key);
        if (!f || !f->isNumber())
            return false;
        *dst = f->asU64();
        return true;
    };

    PersistOpRecord r;
    std::uint64_t sm = 0, attempts = 0, merges = 0;
    std::uint64_t issue = 0, ack = 0, latency = 0;
    if (!num("op_id", &r.opId) || !num("sm", &sm) ||
            !num("addr", &r.lineAddr) || !num("epoch", &r.epoch) ||
            !num("attempts", &attempts) || !num("merges", &merges) ||
            !num("issue_cycle", &issue) || !num("ack_cycle", &ack) ||
            !num("ack_latency", &latency)) {
        return fail("missing or non-numeric field");
    }
    r.smId = static_cast<std::uint32_t>(sm);
    r.attempts = static_cast<std::uint32_t>(attempts);
    r.merges = static_cast<std::uint32_t>(merges);

    const JsonValue *f = v.find("scope");
    if (!f || !f->isString() || !scopeFromString(f->asString(), &r.scope))
        return fail("bad scope");
    f = v.find("faulted");
    if (!f || !f->isBool())
        return fail("bad faulted");
    r.faulted = f->asBool();

    const JsonValue *stages = v.find("stages");
    if (!stages || !stages->isObject())
        return fail("missing stages");
    std::array<Cycle, kNumPersistStages> cyc{};
    for (std::size_t s = 0; s < kNumPersistStages; ++s) {
        const JsonValue *sf =
            stages->find(toString(static_cast<PersistStage>(s)));
        if (!sf || !sf->isNumber())
            return fail(std::string("missing stage '") +
                        toString(static_cast<PersistStage>(s)) + "'");
        cyc[s] = sf->asU64();
    }

    // Rebuild the monotone trail from the issue cycle + residencies.
    // A zero FSM hold reads back as "never held" (tFsmBlock = 0),
    // which stageCycles() renders identically.
    r.tIssue = issue;
    r.tAdmit = r.tIssue + cyc[0];
    r.tFsmBlock = cyc[2] != 0 ? r.tAdmit + cyc[1] : 0;
    r.tFlush = r.tAdmit + cyc[1] + cyc[2];
    r.tArrive = r.tFlush + cyc[3];
    r.tAccept = r.tArrive + cyc[4];
    r.tAck = r.tAccept + cyc[5];
    r.completed = true;
    if (r.tAck != ack || r.ackLatency() != latency)
        return fail("stage trail does not telescope to the ack latency");

    *out = r;
    return true;
}

std::string
PersistProvenance::auditJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema_version",
            JsonValue(std::uint64_t{schema::kProvenance}));
    doc.set("ops_begun", JsonValue(begun_));
    doc.set("ops_completed", JsonValue(completed_));
    doc.set("ops_faulted", JsonValue(faulted_));
    doc.set("records_lost", JsonValue(lost_));

    JsonValue waterfall = JsonValue::object();
    for (std::size_t s = 0; s < kNumPersistStages; ++s) {
        auto st = static_cast<PersistStage>(s);
        waterfall.set(toString(st), distJson(stageDist(st)));
    }
    waterfall.set("ack_latency", distJson(ackDist_));
    doc.set("waterfall", waterfall);

    JsonValue slow = JsonValue::array();
    for (const PersistOpRecord &r : topK_)
        slow.push(persistOpJson(r));
    doc.set("slowest_ops", slow);

    JsonValue outliers = JsonValue::array();
    for (const PersistOpRecord &r : retried_)
        outliers.push(persistOpJson(r));
    doc.set("retry_outliers", outliers);

    JsonValue records = JsonValue::array();
    for (const PersistAuditRecord &a : audit_) {
        JsonValue o = JsonValue::object();
        o.set("op_id", JsonValue(a.opId));
        o.set("addr", JsonValue(a.addr));
        o.set("scope", JsonValue(std::string(toString(a.scope))));
        o.set("epoch", JsonValue(a.epoch));
        o.set("commit_cycle", JsonValue(a.commitCycle));
        records.push(o);
    }
    doc.set("audit", records);
    return doc.dump(2);
}

void
PersistProvenance::writeAuditJsonFile(const std::string &path) const
{
    std::string err;
    if (!writeFileAtomic(path, auditJson(), &err))
        sbrp_fatal("audit output file: %s", err);
}

} // namespace sbrp
