/**
 * @file
 * End-to-end persist-op provenance: the journey of one persist.
 *
 * Every persist operation — a PB-buffered line persist, an epoch or
 * barrier flush, a capacity eviction, a durable flag publication — gets
 * a stable 64-bit op id at issue and a fixed-size record of stage-entry
 * timestamps as it moves through the machine:
 *
 *   issue -> PB admit -> (FSM hold) -> flush -> fabric arrival ->
 *   persistence-domain accept -> ack
 *
 * The timestamps are monotone, so the six stage residencies telescope:
 * their sum is exactly the observed ack latency of the op — the
 * waterfall invariant, test-enforced like the cycle ledger's.
 *
 * Overhead discipline mirrors trace.hh: components hold a null
 * PersistProvenance* when provenance is off, and every instrumentation
 * site is one pointer null-check. Recording never perturbs timing — it
 * only observes cycles the simulator already computed — so seeded runs
 * are cycle-identical with provenance on or off.
 *
 * Three consumers:
 *  - Chrome trace flow events ("s"/"t"/"f") emitted at the same sites
 *    link the existing component spans into one clickable arrow chain
 *    per op in Perfetto (see TraceBuffer::flowStart and friends).
 *  - Per-stage Distribution histograms (the stage-residency waterfall)
 *    and a bounded top-K of the slowest completed ops with full trails.
 *  - The persist-order audit stream: one (op_id, addr, scope, epoch,
 *    commit_cycle) record per durable commit, appended in the exact
 *    order the simulator wrote the durable image. PmoChecker
 *    cross-validates this observed order against the formal trace.
 */

#ifndef SBRP_OBS_PROVENANCE_HH
#define SBRP_OBS_PROVENANCE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sbrp
{

class JsonValue;

/** The six waterfall stages, in journey order. */
enum class PersistStage : std::uint8_t
{
    IssueToPb,   ///< Op creation -> PB admission (same-cycle today).
    PbResidency, ///< PB admission -> first FSM block (or flush).
    FsmHold,     ///< FSM hazard hold at the PB head (0 if never held).
    Fabric,      ///< Flush -> arrival at the persistence controller
                 ///< (L2 hop, PCIe crossing, every fault retry+backoff).
    Wpq,         ///< Arrival -> persistence-domain accept (WPQ queueing;
                 ///< 0 under eADR, whose domain is the host LLC).
    Media,       ///< Accept -> ack at the SM (media/ack return leg).
};

constexpr std::size_t kNumPersistStages = 6;

const char *toString(PersistStage s);

/** Fixed-size per-op record: identity + monotone stage-entry cycles. */
struct PersistOpRecord
{
    std::uint64_t opId = 0;
    Addr lineAddr = 0;
    std::uint32_t smId = 0;
    Scope scope = Scope::Device;
    std::uint64_t epoch = 0;     ///< Issuing model's ordering epoch.
    std::uint32_t attempts = 0;  ///< Fabric attempts (1 = clean).
    std::uint32_t merges = 0;    ///< Stores coalesced into the PB entry.
    bool completed = false;
    bool faulted = false;        ///< Terminal PersistFault (no commit).

    // Monotone: tIssue <= tAdmit <= tFsmBlock <= tFlush <= tArrive <=
    // tAccept <= tAck. tFsmBlock == 0 means "never FSM-held" and reads
    // as tFlush for the telescoping.
    Cycle tIssue = 0;
    Cycle tAdmit = 0;
    Cycle tFsmBlock = 0;
    Cycle tFlush = 0;
    Cycle tArrive = 0;
    Cycle tAccept = 0;
    Cycle tAck = 0;

    /** Residency of one stage (consecutive timestamp differences). */
    Cycle stageCycles(PersistStage s) const;

    /** Observed ack latency; equals the sum of all six stages. */
    Cycle ackLatency() const { return tAck - tIssue; }
};

/** One op record as a JSON object (identity, trail, stage cycles) —
    the shape used by both the provenance document's `slowest_ops` /
    `retry_outliers` arrays and campaign reports. */
JsonValue persistOpJson(const PersistOpRecord &r);

/**
 * Inverse of persistOpJson, exact enough that re-serializing yields a
 * byte-identical object: campaign manifests carry the oracle run's
 * slowest ops through plan/merge without re-simulating. The absolute
 * stage-entry timestamps other than issue/ack are not serialized; the
 * per-stage residencies are reconstructed onto the trail in journey
 * order. Returns false and sets *err on malformed input.
 */
bool persistOpFromJson(const JsonValue &v, PersistOpRecord *out,
                       std::string *err);

/** One durable commit, in the order the durable image was written. */
struct PersistAuditRecord
{
    std::uint64_t opId = 0;
    Addr addr = 0;
    Scope scope = Scope::Device;
    std::uint64_t epoch = 0;
    Cycle commitCycle = 0;
};

/**
 * The provenance recorder. One instance per GpuSystem, shared by every
 * SM's model and the fabric (the simulator is single-threaded). Op
 * records live in a fixed-size ring indexed by the op id's sequence
 * bits; completed stage residencies fold into per-stage Distributions
 * and a bounded top-K, so a wrapped ring only loses cold full trails.
 */
class PersistProvenance
{
  public:
    /** Ring capacity is rounded up to a power of two. */
    explicit PersistProvenance(std::size_t capacity = 1u << 15,
                               std::size_t top_k = 16);

    PersistProvenance(const PersistProvenance &) = delete;
    PersistProvenance &operator=(const PersistProvenance &) = delete;

    /**
     * Opens a new op at `now` (tIssue = tAdmit = now) and returns its
     * id: (smId + 1) << 40 | sequence (< 2^53, so ids survive JSON
     * doubles exactly). Issue order is deterministic, so ids are
     * stable across seeded runs.
     */
    std::uint64_t beginOp(std::uint32_t sm_id, Addr line_addr,
                          Scope scope, std::uint64_t epoch, Cycle now);

    /** First FSM hold at the PB head; later calls are no-ops. */
    void markFsmBlocked(std::uint64_t op_id, Cycle now);

    /** A store coalesced into the op's PB entry. */
    void noteMerge(std::uint64_t op_id);

    /** The op's line left the SM (persistWrite issued). */
    void markFlush(std::uint64_t op_id, Cycle now);

    /** One fabric delivery attempt (retries call this again). */
    void noteAttempt(std::uint64_t op_id);

    /** Arrival at the persistence controller (final attempt). */
    void markArrive(std::uint64_t op_id, Cycle at);

    /** Persistence-domain accept (WPQ accept / host-LLC arrival). */
    void markAccept(std::uint64_t op_id, Cycle at);

    /** Durable commit: appends the audit record (commit order). */
    void recordCommit(std::uint64_t op_id, Cycle at);

    /**
     * Ack observed at the SM. Folds the stage residencies into the
     * waterfall histograms (clean ops only) and the top-K.
     */
    void complete(std::uint64_t op_id, Cycle ack, bool faulted);

    // --- Introspection ---

    /** Record lookup; null once the ring slot was reused. */
    const PersistOpRecord *find(std::uint64_t op_id) const;

    const Distribution &stageDist(PersistStage s) const
    { return stageDist_[static_cast<std::size_t>(s)]; }

    const Distribution &ackDist() const { return ackDist_; }

    /** Slowest completed ops by ack latency, descending (full trails). */
    const std::vector<PersistOpRecord> &slowest() const { return topK_; }

    /** The raw record ring (test introspection): slots with opId == 0
        are unused; live slots may be in any completion state. */
    const std::vector<PersistOpRecord> &records() const { return ring_; }

    /** Completed ops that needed more than one fabric attempt. */
    const std::vector<PersistOpRecord> &retryOutliers() const
    { return retried_; }

    const std::vector<PersistAuditRecord> &audit() const { return audit_; }

    std::uint64_t opsBegun() const { return begun_; }
    std::uint64_t opsCompleted() const { return completed_; }
    std::uint64_t opsFaulted() const { return faulted_; }
    /** In-flight records evicted by ring wrap (0 in healthy runs). */
    std::uint64_t recordsLost() const { return lost_; }

    // --- Export ---

    /**
     * The audit stream + waterfall + slowest-op trails as one JSON
     * document (schema_version 1). Deterministic for seeded runs:
     * byte-identical output for byte-identical histories.
     */
    std::string auditJson() const;

    /** auditJson() to a file; throws FatalError on I/O failure. */
    void writeAuditJsonFile(const std::string &path) const;

  private:
    PersistOpRecord *slot(std::uint64_t op_id);

    std::size_t mask_;
    std::size_t topKLimit_;
    std::vector<PersistOpRecord> ring_;
    std::vector<PersistOpRecord> topK_;
    std::vector<PersistOpRecord> retried_;
    std::vector<PersistAuditRecord> audit_;
    std::array<Distribution, kNumPersistStages> stageDist_;
    Distribution ackDist_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t begun_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t faulted_ = 0;
    std::uint64_t lost_ = 0;
};

} // namespace sbrp

#endif // SBRP_OBS_PROVENANCE_HH
