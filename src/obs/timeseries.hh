/**
 * @file
 * Windowed time-series telemetry: how the run behaved over time.
 *
 * Every observability surface before this one (stats, the cycle
 * ledger, persist-op provenance) reports end-of-run aggregates only —
 * a run that degrades halfway through looks identical to one that is
 * uniformly mediocre. MetricsTimeseries closes that gap: every N sim
 * cycles (the window, default 4096) it snapshots the whole
 * StatRegistry and emits the per-window *delta* of every counter and
 * Distribution, plus instantaneous gauges (PB occupancy, WPQ depth,
 * channel backlogs) sampled at the window boundary.
 *
 * Window semantics: window k covers cycles [k*N, (k+1)*N). The
 * quiescence-aware launch loop closes windows immediately before
 * advancing the clock: since no activity exists strictly between the
 * current cycle and the next scheduled activity, a snapshot taken
 * before advanceTo(next) is exact at every boundary in (now, next] —
 * windows are cycle-exact even when the clock jumps over several of
 * them (each skipped window is emitted, empty). The trailing partial
 * window is closed by finalize() after end-of-run settling, so the
 * deltas telescope: summed over all windows they equal the end-of-run
 * aggregates exactly, counter by counter and histogram bucket by
 * bucket (test-enforced, like the provenance waterfall invariant).
 *
 * Distribution deltas are bucket-wise snapshot subtractions: count,
 * sum and the sparse per-bucket deltas are exact and mergeable;
 * per-window p50/p99 are rank-interpolated from the delta buckets the
 * same way Distribution::percentile interpolates (per-window min/max
 * are not recoverable from snapshots and are not reported).
 *
 * Overhead discipline mirrors trace.hh and provenance.hh: components
 * hold a null MetricsTimeseries* when metrics are off, the launch
 * loop's hook is one null-check, and sampling never perturbs timing —
 * it only reads state the simulator already computed — so seeded runs
 * are cycle-identical with metrics on or off (bench/trace_overhead
 * enforces cycle equality).
 *
 * Windows land in a bounded ring. When the ring overflows, the oldest
 * window's deltas are folded into a cumulative `dropped` base record
 * instead of being discarded, so the telescoping invariant survives
 * arbitrarily long runs: dropped + retained windows == totals.
 *
 * Export is JSONL (schema_versions.hh kMetrics), one self-describing
 * record per line: a header, the `dropped` base (when any), every
 * retained window, and a final cumulative `totals` record the offline
 * analyzer (tools/timeseries_report.py) checks the telescoping
 * against. Written via atomic_io, so readers never see a torn file.
 */

#ifndef SBRP_OBS_TIMESERIES_HH
#define SBRP_OBS_TIMESERIES_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sbrp
{

/** Exact per-window Distribution delta (snapshot subtraction). */
struct MetricsDistDelta
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /** Sparse (bucket index, sample-count delta), ascending index. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    /**
     * Rank-interpolated p-quantile over the delta buckets, mirroring
     * Distribution::percentile but clamped to the log2 bucket bounds
     * (per-window extrema are not recoverable from snapshots).
     */
    std::uint64_t percentile(double p) const;
};

/** One closed window: deltas over [begin, end) plus boundary gauges. */
struct MetricsWindow
{
    std::uint64_t index = 0;
    Cycle begin = 0;
    Cycle end = 0;
    /** Counter deltas, only non-zero entries. Signed: a counter set
        backwards mid-run still telescopes exactly. */
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, MetricsDistDelta> dists;
    /** Instantaneous values sampled at the window's closing boundary. */
    std::map<std::string, std::uint64_t> gauges;
};

class MetricsTimeseries
{
  public:
    static constexpr Cycle kDefaultWindow = 4096;

    /**
     * An unbound sampler: the owning GpuSystem binds its own registry
     * (bindRegistry) when the sampler is attached, which is what lets
     * the CLI construct the sampler before the system that owns the
     * registry exists. `capacity` bounds the retained-window ring.
     */
    explicit MetricsTimeseries(Cycle window = kDefaultWindow,
                               std::size_t capacity = 8192);

    /**
     * Samples `registry` every `window` cycles (unit tests). The
     * registry must outlive this object; groups may keep registering
     * stats lazily between windows (new names simply start delta-ing
     * from zero).
     */
    explicit MetricsTimeseries(const StatRegistry &registry,
                               Cycle window = kDefaultWindow,
                               std::size_t capacity = 8192);

    /**
     * (Re)binds the sampled registry. The attaching GpuSystem calls
     * this from its constructor, so a sampler reused across a
     * crash/power-cycle pair follows the replacement system's registry
     * and its windows keep telescoping across the power cycle.
     */
    void bindRegistry(const StatRegistry &registry)
    {
        registry_ = &registry;
    }

    /**
     * Drops every registered gauge and cumulative callback. The
     * attaching GpuSystem calls this from its destructor: the
     * callbacks capture that system, so clearing them is what makes
     * the sampler safe to keep (export, re-attach) after the system
     * is gone.
     */
    void
    clearCallbacks()
    {
        gauges_.clear();
        cumulatives_.clear();
    }

    MetricsTimeseries(const MetricsTimeseries &) = delete;
    MetricsTimeseries &operator=(const MetricsTimeseries &) = delete;

    /** Free-form header metadata (app, model, design — set by the CLI). */
    void setMeta(const std::string &key, const std::string &value);

    /**
     * Registers an instantaneous gauge, sampled at every window close
     * in registration order (which must therefore be deterministic).
     */
    void addGauge(std::string name, std::function<std::uint64_t()> fn);

    /**
     * Registers a cumulative series (e.g. a cycle-ledger category that
     * lives outside the registry): the callback returns a running
     * total, and the per-window delta is emitted under `name` next to
     * the registry counters.
     */
    void addCumulative(std::string name,
                       std::function<std::uint64_t()> fn);

    Cycle window() const { return window_; }

    /** First boundary not yet closed (windows are closed through it). */
    Cycle nextBoundary() const { return nextBoundary_; }

    /**
     * Closes every window whose boundary is <= `next`, sampling the
     * registry once per boundary. The launch loop calls this right
     * before advancing the clock to `next`; see the header comment for
     * why that point is exact. One branch when no boundary is due.
     */
    void
    closeThrough(Cycle next)
    {
        while (next >= nextBoundary_)
            closeOne();
    }

    /**
     * Closes the trailing partial window at `end` (no-op when the run
     * ended exactly on a boundary and nothing moved since). Call after
     * end-of-run stat settling — on crash exits too — so the deltas
     * telescope to the published aggregates. Idempotent, and re-arms
     * naturally: a later launch on the same system keeps appending
     * windows (the trailing window's `begin` is the last sampled
     * cycle, so ranges never overlap).
     */
    void finalize(Cycle end);

    // --- Introspection (tests) ---

    const std::deque<MetricsWindow> &windows() const { return ring_; }
    std::uint64_t windowsClosed() const { return closed_; }
    std::uint64_t windowsDropped() const { return dropped_; }
    /** Folded deltas of ring-evicted windows (empty when none). */
    const MetricsWindow &droppedBase() const { return droppedBase_; }

    // --- Export ---

    /**
     * The whole series as JSONL (schema kMetrics): header, optional
     * dropped base, retained windows, cumulative totals. Deterministic
     * for seeded runs: byte-identical output for identical histories.
     */
    std::string jsonl() const;

    /** jsonl() to a file via atomic_io; throws FatalError on failure. */
    void writeJsonlFile(const std::string &path) const;

  private:
    struct DistSnapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, Distribution::kBuckets> buckets{};
    };

    /** Closes the window ending at nextBoundary_ and advances it. */
    void closeOne();

    /** Delta-samples the registry + cumulatives into `w`. */
    void sampleInto(MetricsWindow &w);

    /** Folds `w`'s deltas into the dropped base (ring eviction). */
    void foldDropped(const MetricsWindow &w);

    const StatRegistry *registry_ = nullptr;
    Cycle window_;
    std::size_t capacity_;
    Cycle nextBoundary_;
    std::uint64_t closed_ = 0;
    std::uint64_t dropped_ = 0;
    Cycle lastSampled_ = 0;

    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
        gauges_;
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
        cumulatives_;

    std::map<std::string, std::uint64_t> prevCounters_;
    std::map<std::string, DistSnapshot> prevDists_;

    std::deque<MetricsWindow> ring_;
    MetricsWindow droppedBase_;
};

} // namespace sbrp

#endif // SBRP_OBS_TIMESERIES_HH
