#include "obs/timeseries.hh"

#include <algorithm>
#include <sstream>

#include "common/atomic_io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_versions.hh"

namespace sbrp
{

std::uint64_t
MetricsDistDelta::percentile(double p) const
{
    if (count == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(p * count + 0.5);
    target = std::clamp<std::uint64_t>(target, 1, count);
    std::uint64_t seen = 0;
    for (const auto &[b, n] : buckets) {
        if (seen + n < target) {
            seen += n;
            continue;
        }
        // Same rank interpolation as Distribution::percentile, but
        // clamped to the log2 bucket bounds: the window's true extrema
        // are not recoverable from cumulative snapshots.
        if (b == 0)
            return 0;
        std::uint64_t lo = 1ull << (b - 1);
        std::uint64_t hi = b >= 64 ? ~0ull : (1ull << b) - 1;
        std::uint64_t k = target - seen; // 1-based rank in bucket.
        double frac = (static_cast<double>(k) - 0.5) /
                      static_cast<double>(n);
        return lo + static_cast<std::uint64_t>(
                        static_cast<double>(hi - lo) * frac + 0.5);
    }
    return 0;
}

MetricsTimeseries::MetricsTimeseries(Cycle window, std::size_t capacity)
    : window_(window == 0 ? kDefaultWindow : window),
      capacity_(std::max<std::size_t>(1, capacity)),
      nextBoundary_(window_)
{
}

MetricsTimeseries::MetricsTimeseries(const StatRegistry &registry,
                                     Cycle window, std::size_t capacity)
    : MetricsTimeseries(window, capacity)
{
    registry_ = &registry;
}

void
MetricsTimeseries::setMeta(const std::string &key, const std::string &value)
{
    for (auto &kv : meta_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    meta_.emplace_back(key, value);
}

void
MetricsTimeseries::addGauge(std::string name,
                            std::function<std::uint64_t()> fn)
{
    gauges_.emplace_back(std::move(name), std::move(fn));
}

void
MetricsTimeseries::addCumulative(std::string name,
                                 std::function<std::uint64_t()> fn)
{
    cumulatives_.emplace_back(std::move(name), std::move(fn));
}

void
MetricsTimeseries::sampleInto(MetricsWindow &w)
{
    // Accumulate the current registry state by fully-qualified name
    // first: robust against two groups sharing a name (their counters
    // pool, exactly as a reader of dumpJson would pool them).
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, DistSnapshot> dists;
    const std::vector<StatGroup *> empty;
    for (const StatGroup *g : registry_ ? registry_->groups() : empty) {
        for (const auto &kv : g->all())
            counters[g->name() + "." + kv.first] += kv.second.value();
        for (const auto &kv : g->allDists()) {
            const Distribution &d = kv.second;
            if (d.count() == 0)
                continue;
            DistSnapshot &s = dists[g->name() + "." + kv.first];
            s.count += d.count();
            s.sum += d.sum();
            for (std::uint32_t b = 0; b < Distribution::kBuckets; ++b)
                s.buckets[b] += d.bucketCount(b);
        }
    }
    for (const auto &kv : cumulatives_)
        counters[kv.first] += kv.second();

    for (const auto &[name, cur] : counters) {
        const std::uint64_t prev = prevCounters_[name];
        const auto delta =
            static_cast<std::int64_t>(cur - prev); // wrap-safe
        if (delta != 0)
            w.counters[name] = delta;
        prevCounters_[name] = cur;
    }
    for (const auto &[name, cur] : dists) {
        DistSnapshot &prev = prevDists_[name];
        if (cur.count != prev.count) {
            MetricsDistDelta d;
            d.count = cur.count - prev.count;
            d.sum = cur.sum - prev.sum;
            for (std::uint32_t b = 0; b < Distribution::kBuckets; ++b) {
                if (cur.buckets[b] != prev.buckets[b])
                    d.buckets.emplace_back(b, cur.buckets[b] -
                                                  prev.buckets[b]);
            }
            w.dists.emplace(name, std::move(d));
        }
        prev = cur;
    }
    for (const auto &kv : gauges_)
        w.gauges[kv.first] = kv.second();
}

void
MetricsTimeseries::foldDropped(const MetricsWindow &w)
{
    if (dropped_ == 0) {
        droppedBase_.begin = w.begin;
        droppedBase_.index = w.index;
    }
    droppedBase_.end = w.end;
    ++dropped_;
    for (const auto &kv : w.counters)
        droppedBase_.counters[kv.first] += kv.second;
    for (const auto &kv : w.dists) {
        MetricsDistDelta &base = droppedBase_.dists[kv.first];
        base.count += kv.second.count;
        base.sum += kv.second.sum;
        // Sparse merge: both sides are ascending by bucket index.
        std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
        auto a = base.buckets.begin();
        auto b = kv.second.buckets.begin();
        while (a != base.buckets.end() || b != kv.second.buckets.end()) {
            if (b == kv.second.buckets.end() ||
                (a != base.buckets.end() && a->first < b->first)) {
                merged.push_back(*a++);
            } else if (a == base.buckets.end() || b->first < a->first) {
                merged.push_back(*b++);
            } else {
                merged.emplace_back(a->first, a->second + b->second);
                ++a;
                ++b;
            }
        }
        base.buckets = std::move(merged);
    }
}

void
MetricsTimeseries::closeOne()
{
    MetricsWindow w;
    w.index = closed_;
    // A mid-window trailing partial (finalize between boundaries) may
    // already have sampled past this window's natural start; clamp so
    // ranges never overlap across a finalize/re-launch pair.
    w.begin = nextBoundary_ - window_;
    if (w.begin < lastSampled_)
        w.begin = lastSampled_;
    w.end = nextBoundary_;
    sampleInto(w);
    if (ring_.size() == capacity_) {
        foldDropped(ring_.front());
        ring_.pop_front();
    }
    lastSampled_ = w.end;
    ring_.push_back(std::move(w));
    ++closed_;
    nextBoundary_ += window_;
}

void
MetricsTimeseries::finalize(Cycle end)
{
    while (nextBoundary_ <= end)
        closeOne();
    // Trailing partial window, which also absorbs any lazily-settled
    // end-of-run accounting (finalizeAllSms). Starts at the last
    // sampled cycle, so repeated finalization (or a later launch on
    // the same system) never overlaps ranges and a finalize with
    // nothing new to report emits nothing.
    MetricsWindow w;
    w.index = closed_;
    w.begin = lastSampled_;
    w.end = end;
    sampleInto(w);
    if (w.end > w.begin || !w.counters.empty() || !w.dists.empty()) {
        if (ring_.size() == capacity_) {
            foldDropped(ring_.front());
            ring_.pop_front();
        }
        lastSampled_ = end;
        ring_.push_back(std::move(w));
        ++closed_;
    }
}

namespace
{

void
emitCounters(std::ostringstream &oss,
             const std::map<std::string, std::int64_t> &counters)
{
    oss << "\"counters\":{";
    bool first = true;
    for (const auto &kv : counters) {
        if (!first)
            oss << ",";
        first = false;
        oss << jsonQuote(kv.first) << ":" << kv.second;
    }
    oss << "}";
}

void
emitDistDelta(std::ostringstream &oss, const MetricsDistDelta &d)
{
    oss << "{\"count\":" << d.count << ",\"sum\":" << d.sum
        << ",\"p50\":" << d.percentile(0.50)
        << ",\"p99\":" << d.percentile(0.99) << ",\"buckets\":{";
    bool first = true;
    for (const auto &[b, n] : d.buckets) {
        if (!first)
            oss << ",";
        first = false;
        oss << "\"" << b << "\":" << n;
    }
    oss << "}}";
}

void
emitDists(std::ostringstream &oss,
          const std::map<std::string, MetricsDistDelta> &dists)
{
    oss << "\"dists\":{";
    bool first = true;
    for (const auto &kv : dists) {
        if (!first)
            oss << ",";
        first = false;
        oss << jsonQuote(kv.first) << ":";
        emitDistDelta(oss, kv.second);
    }
    oss << "}";
}

} // namespace

std::string
MetricsTimeseries::jsonl() const
{
    std::ostringstream oss;
    oss << "{\"kind\":\"metrics_header\",\"schema_version\":"
        << schema::kMetrics << ",\"window\":" << window_;
    for (const auto &kv : meta_)
        oss << "," << jsonQuote(kv.first) << ":" << jsonQuote(kv.second);
    oss << "}\n";

    if (dropped_ != 0) {
        oss << "{\"kind\":\"dropped\",\"windows\":" << dropped_
            << ",\"begin\":" << droppedBase_.begin
            << ",\"end\":" << droppedBase_.end << ",";
        emitCounters(oss, droppedBase_.counters);
        oss << ",";
        emitDists(oss, droppedBase_.dists);
        oss << "}\n";
    }

    for (const MetricsWindow &w : ring_) {
        oss << "{\"kind\":\"window\",\"index\":" << w.index
            << ",\"begin\":" << w.begin << ",\"end\":" << w.end << ",";
        emitCounters(oss, w.counters);
        oss << ",";
        emitDists(oss, w.dists);
        oss << ",\"gauges\":{";
        bool first = true;
        for (const auto &kv : w.gauges) {
            if (!first)
                oss << ",";
            first = false;
            oss << jsonQuote(kv.first) << ":" << kv.second;
        }
        oss << "}}\n";
    }

    // Cumulative totals: the telescoping anchor. prev* snapshots hold
    // the final registry state once finalize() ran.
    oss << "{\"kind\":\"totals\",\"end_cycle\":" << lastSampled_
        << ",\"windows\":" << closed_ << ",\"windows_dropped\":"
        << dropped_ << ",\"counters\":{";
    bool first = true;
    for (const auto &kv : prevCounters_) {
        if (kv.second == 0)
            continue;
        if (!first)
            oss << ",";
        first = false;
        oss << jsonQuote(kv.first) << ":" << kv.second;
    }
    oss << "},\"dists\":{";
    first = true;
    for (const auto &kv : prevDists_) {
        if (kv.second.count == 0)
            continue;
        if (!first)
            oss << ",";
        first = false;
        oss << jsonQuote(kv.first) << ":{\"count\":" << kv.second.count
            << ",\"sum\":" << kv.second.sum << ",\"buckets\":{";
        bool bFirst = true;
        for (std::uint32_t b = 0; b < Distribution::kBuckets; ++b) {
            if (kv.second.buckets[b] == 0)
                continue;
            if (!bFirst)
                oss << ",";
            bFirst = false;
            oss << "\"" << b << "\":" << kv.second.buckets[b];
        }
        oss << "}}";
    }
    oss << "}}";
    return oss.str();
}

void
MetricsTimeseries::writeJsonlFile(const std::string &path) const
{
    std::string err;
    if (!writeFileAtomic(path, jsonl(), &err))
        sbrp_fatal("metrics output file: %s", err);
}

} // namespace sbrp
