#include "sim/event_queue.hh"

#include <utility>

namespace sbrp
{

void
EventQueue::schedule(Cycle when, Callback cb)
{
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::runUntil(Cycle now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // priority_queue::top() is const; move out via const_cast is UB,
        // so copy the callback before popping.
        Callback cb = heap_.top().cb;
        heap_.pop();
        cb();
    }
}

Cycle
EventQueue::nextEventCycle() const
{
    if (heap_.empty())
        return kNoEvent;
    return heap_.top().when;
}

} // namespace sbrp
