/**
 * @file
 * Quiescence-aware simulation scheduler: owns the clock, the event
 * queue, and per-component wake requests.
 *
 * The engine is a hybrid of cycle-stepping and discrete events. Each
 * wakeable component (an SM) publishes the next cycle it needs to be
 * ticked at — a ready warp next cycle, a compute/backoff timer, a spin
 * recheck, a workable persist-buffer drain — or kNoEvent to sleep until
 * something wakes it. The launch loop advances the clock straight to
 * the earliest pending activity instead of spinning through idle
 * cycles, and ticks only the components whose wake is due.
 *
 * Cycle-exactness contract (docs/SIM_CORE.md): sleeping must be
 * unobservable. A component may only sleep through cycles where its
 * tick would have had no side effect beyond bulk-accountable counters,
 * and every event callback that mutates component state must first
 * settle that accounting and request a wake at the current cycle
 * (SmServices::noteAsyncActivity). Spurious (early) wakes are always
 * safe — the cycle-stepped engine ticked everything every cycle — so
 * components round wake estimates down, never up.
 */

#ifndef SBRP_SIM_SCHEDULER_HH
#define SBRP_SIM_SCHEDULER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace sbrp
{

/**
 * One issuable warp at a scheduling choice point, with the footprint
 * the model checker needs for conflict analysis. Candidates are listed
 * in the SM's round-robin scan order, so index 0 is always the warp the
 * uncontrolled scheduler would have preferred.
 */
struct IssueCandidate
{
    std::uint32_t slot = 0;   ///< Warp slot within the SM.
    std::uint32_t pc = 0;     ///< Program counter of the pending instr.
    std::uint8_t op = 0;      ///< static_cast<uint8_t>(Op) of that instr.
    std::uint8_t scope = 0;   ///< static_cast<uint8_t>(Scope).
    /** Persist-relevant: store/atomic/fence/release/acquire/barrier.
        Orderings of invisible ops (ALU, loads) are not explored. */
    bool visible = false;
    bool write = false;       ///< Writes memory (store/atomic/release).
    Addr line = 0;            ///< Cache line of the first active lane.
};

/**
 * External schedule driver for stateless model checking (src/mc/).
 *
 * When attached to a Scheduler, every SM funnels its nondeterministic
 * choice points through this interface instead of its built-in
 * policies: which issuable warp issues this cycle (the SM then issues
 * exactly ONE instruction per cycle, serializing interleavings so a
 * schedule is a total order of decisions), and whether an eligible
 * persist-buffer head line flushes now or is deferred. Given the same
 * decision sequence the simulation is bit-identical — all remaining
 * timing (memory latencies, channel arbitration, spin polls) is
 * already deterministic.
 */
class ScheduleController
{
  public:
    virtual ~ScheduleController() = default;

    /**
     * Picks which candidate issues on SM `sm` this cycle. `cands` is
     * non-empty and in round-robin scan order (index 0 = default).
     * Must return a valid index; the SM issues that warp.
     */
    virtual std::size_t pickIssue(std::uint32_t sm,
                                  const std::vector<IssueCandidate> &cands)
        = 0;

    /**
     * Gates a persist-buffer head flush that has already passed the
     * model's own hazard checks (FSM, ACTR). Returning false defers
     * the flush; the model will ask again on a later drain attempt.
     * Implementations must eventually allow every flush or the
     * end-of-kernel drain would hang against the watchdog.
     */
    virtual bool allowFlush(std::uint32_t sm, std::uint64_t entryId,
                            Addr line, Cycle now) = 0;

    /**
     * The SM entered its end-of-kernel drain: no further issues will
     * happen there, so flush deferral must stop.
     */
    virtual void noteKernelDrain(std::uint32_t sm) { (void)sm; }
};

class Scheduler
{
  public:
    /** Registers a wakeable component; returns its wake-slot id.
        Components start asleep (kNoEvent). */
    std::uint32_t
    registerComponent()
    {
        wakes_.push_back(kNoEvent);
        return static_cast<std::uint32_t>(wakes_.size() - 1);
    }

    /** The shared delayed-callback queue (memory responses, acks). */
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }

    Cycle now() const { return now_; }

    /** Address of the clock, for TraceSink::setClock. */
    const Cycle *clockPtr() const { return &now_; }

    /**
     * The cycle a component should treat as "now". Inside event
     * callbacks this is now_ - 1: the cycle-stepped engine ran the
     * event phase before refreshing per-SM clocks, so timestamps taken
     * inside callbacks lag the wall clock by one cycle. Preserving the
     * lag keeps the quiescence-aware engine cycle-exact.
     */
    Cycle componentNow() const { return inEvents_ ? now_ - 1 : now_; }

    /** Sets a component's absolute wake cycle (kNoEvent: sleep). */
    void wakeAt(std::uint32_t id, Cycle when) { wakes_[id] = when; }

    /** Requests a wake no later than the current cycle. */
    void
    wakeNow(std::uint32_t id)
    {
        wakes_[id] = std::min(wakes_[id], now_);
    }

    /** Is the component's wake due at `cycle`? */
    bool
    due(std::uint32_t id, Cycle cycle) const
    {
        return wakes_[id] <= cycle;
    }

    /** Earliest pending activity: next event or component wake
        (kNoEvent when fully quiescent). */
    Cycle
    nextActivity() const
    {
        Cycle next = events_.nextEventCycle();
        for (Cycle w : wakes_)
            next = std::min(next, w);
        return next;
    }

    /** Advances the clock to `cycle` and runs the due events. */
    void
    advanceTo(Cycle cycle)
    {
        now_ = cycle;
        inEvents_ = true;
        events_.runUntil(cycle);
        inEvents_ = false;
    }

    /**
     * Attaches (or detaches, with nullptr) the model-checking schedule
     * driver. Must be set before the first launch; null (the default)
     * keeps the built-in scheduling policies untouched.
     */
    void setController(ScheduleController *c) { controller_ = c; }
    ScheduleController *controller() const { return controller_; }

  private:
    EventQueue events_;
    std::vector<Cycle> wakes_;
    Cycle now_ = 0;
    bool inEvents_ = false;
    ScheduleController *controller_ = nullptr;
};

} // namespace sbrp

#endif // SBRP_SIM_SCHEDULER_HH
