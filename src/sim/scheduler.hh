/**
 * @file
 * Quiescence-aware simulation scheduler: owns the clock, the event
 * queue, and per-component wake requests.
 *
 * The engine is a hybrid of cycle-stepping and discrete events. Each
 * wakeable component (an SM) publishes the next cycle it needs to be
 * ticked at — a ready warp next cycle, a compute/backoff timer, a spin
 * recheck, a workable persist-buffer drain — or kNoEvent to sleep until
 * something wakes it. The launch loop advances the clock straight to
 * the earliest pending activity instead of spinning through idle
 * cycles, and ticks only the components whose wake is due.
 *
 * Cycle-exactness contract (docs/SIM_CORE.md): sleeping must be
 * unobservable. A component may only sleep through cycles where its
 * tick would have had no side effect beyond bulk-accountable counters,
 * and every event callback that mutates component state must first
 * settle that accounting and request a wake at the current cycle
 * (SmServices::noteAsyncActivity). Spurious (early) wakes are always
 * safe — the cycle-stepped engine ticked everything every cycle — so
 * components round wake estimates down, never up.
 */

#ifndef SBRP_SIM_SCHEDULER_HH
#define SBRP_SIM_SCHEDULER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace sbrp
{

class Scheduler
{
  public:
    /** Registers a wakeable component; returns its wake-slot id.
        Components start asleep (kNoEvent). */
    std::uint32_t
    registerComponent()
    {
        wakes_.push_back(kNoEvent);
        return static_cast<std::uint32_t>(wakes_.size() - 1);
    }

    /** The shared delayed-callback queue (memory responses, acks). */
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }

    Cycle now() const { return now_; }

    /** Address of the clock, for TraceSink::setClock. */
    const Cycle *clockPtr() const { return &now_; }

    /**
     * The cycle a component should treat as "now". Inside event
     * callbacks this is now_ - 1: the cycle-stepped engine ran the
     * event phase before refreshing per-SM clocks, so timestamps taken
     * inside callbacks lag the wall clock by one cycle. Preserving the
     * lag keeps the quiescence-aware engine cycle-exact.
     */
    Cycle componentNow() const { return inEvents_ ? now_ - 1 : now_; }

    /** Sets a component's absolute wake cycle (kNoEvent: sleep). */
    void wakeAt(std::uint32_t id, Cycle when) { wakes_[id] = when; }

    /** Requests a wake no later than the current cycle. */
    void
    wakeNow(std::uint32_t id)
    {
        wakes_[id] = std::min(wakes_[id], now_);
    }

    /** Is the component's wake due at `cycle`? */
    bool
    due(std::uint32_t id, Cycle cycle) const
    {
        return wakes_[id] <= cycle;
    }

    /** Earliest pending activity: next event or component wake
        (kNoEvent when fully quiescent). */
    Cycle
    nextActivity() const
    {
        Cycle next = events_.nextEventCycle();
        for (Cycle w : wakes_)
            next = std::min(next, w);
        return next;
    }

    /** Advances the clock to `cycle` and runs the due events. */
    void
    advanceTo(Cycle cycle)
    {
        now_ = cycle;
        inEvents_ = true;
        events_.runUntil(cycle);
        inEvents_ = false;
    }

  private:
    EventQueue events_;
    std::vector<Cycle> wakes_;
    Cycle now_ = 0;
    bool inEvents_ = false;
};

} // namespace sbrp

#endif // SBRP_SIM_SCHEDULER_HH
