/**
 * @file
 * Deterministic discrete-event queue used for delayed callbacks
 * (memory responses, link deliveries) inside the cycle-driven model.
 */

#ifndef SBRP_SIM_EVENT_QUEUE_HH
#define SBRP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace sbrp
{

/**
 * Min-heap of (cycle, insertion-sequence) ordered callbacks. Ties on the
 * same cycle fire in insertion order, which keeps simulations fully
 * deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedules cb to run at absolute cycle `when` (>= now). */
    void schedule(Cycle when, Callback cb);

    /** Runs every event scheduled at or before `now`. */
    void runUntil(Cycle now);

    /** Cycle of the earliest pending event; kNoEvent when empty. */
    Cycle nextEventCycle() const;

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sbrp

#endif // SBRP_SIM_EVENT_QUEUE_HH
