/**
 * @file
 * The shard worker: executes one manifest shard's crash-point range,
 * journaling every verdict durably before moving to the next.
 *
 * A worker never re-probes — it reconstructs the scenario from the
 * manifest and walks its index range in order. With `resume` it first
 * replays the existing journal, truncates a torn tail, and skips every
 * index already acknowledged, so a worker killed at any instant (power
 * loss, `kill -9`, supervisor timeout) restarts with at most one crash
 * point of repeated work. Without `resume` an existing journal is an
 * error: silently clobbering durable verdicts is exactly the failure
 * mode this layer exists to prevent.
 *
 * The stop flag (set by SIGINT/SIGTERM handlers) is checked between
 * crash points only: the in-flight scenario finishes, its verdict is
 * journaled, and the worker reports Interrupted — a clean resumable
 * exit, never a torn one.
 */

#ifndef SBRP_SVC_WORKER_HH
#define SBRP_SVC_WORKER_HH

#include <csignal>
#include <cstdint>
#include <string>

namespace sbrp
{

struct CampaignManifest;

enum class ShardRunStatus : std::uint8_t
{
    Complete,      ///< Every index in the range is journaled.
    Interrupted,   ///< Stop flag observed; journal is clean, resume ok.
    Error,         ///< Usage/corruption/I-O failure (exit 2 material).
};

struct ShardRunResult
{
    ShardRunStatus status = ShardRunStatus::Error;
    std::uint64_t executed = 0;   ///< Crash points run by this call.
    std::uint64_t skipped = 0;    ///< Already journaled (resume).
    bool tornTail = false;        ///< Resume dropped a torn record.
    std::string error;            ///< Set when status == Error.
};

/**
 * Runs shard `shard` of `manifest`, journaling into
 * shardJournalPath(journal_dir, shard). `throttle_ms` sleeps between
 * crash points (testing hook: makes kill-mid-shard timing windows
 * reproducibly wide). `stop` may be null.
 *
 * `heartbeat_ms` (0 = off) additionally appends progress heartbeats to
 * shardHeartbeatPath(journal_dir, shard) on that wall-clock cadence —
 * one record at startup, one at least every `heartbeat_ms` while
 * points execute (throttle sleeps are sliced so cadence survives
 * throttling), and a final record on every clean exit. Heartbeats are
 * advisory (svc/heartbeat.hh): they never affect verdicts, resume, or
 * the run's exit status.
 */
ShardRunResult runShard(const CampaignManifest &manifest,
                        std::uint32_t shard,
                        const std::string &journal_dir, bool resume,
                        const volatile std::sig_atomic_t *stop = nullptr,
                        std::uint64_t throttle_ms = 0,
                        std::uint64_t heartbeat_ms = 0);

} // namespace sbrp

#endif // SBRP_SVC_WORKER_HH
