#include "svc/merge.hh"

#include "svc/journal.hh"
#include "svc/manifest.hh"

namespace sbrp
{

bool
mergeShardJournals(const CampaignManifest &manifest,
                   const std::string &journal_dir, MergeOutcome *out,
                   std::string *err)
{
    *out = MergeOutcome{};
    out->cfg = manifest.toCampaignConfig();

    CampaignResult &result = out->result;
    result.probe = manifest.probe;
    result.slowestOps = manifest.slowestOps;
    const auto &points = manifest.probe.points.points;
    const std::uint64_t to_run = manifest.pointsToRun();
    result.budgetTruncated = to_run < points.size();

    // Verdict slots keyed by global sorted index, exactly as the
    // single-process engine lays them out; journal records land in
    // their slots and everything else stays executed == false.
    result.verdicts.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        result.verdicts[i].crashAt = points[i].cycle;
        result.verdicts[i].kind = points[i].kind;
    }

    out->complete = true;
    for (std::uint32_t s = 0; s < manifest.shards; ++s) {
        ShardMergeInfo info;
        info.shard = s;
        info.expected = manifest.ranges[s].size();

        ShardJournalContents contents;
        const JournalLoad load =
            loadShardJournal(shardJournalPath(journal_dir, s), &manifest,
                             s, &contents, err);
        if (load == JournalLoad::Corrupt)
            return false;
        if (load == JournalLoad::Ok) {
            info.journalPresent = true;
            info.found = contents.records.size();
            for (const ShardJournalRecord &r : contents.records)
                result.verdicts[r.index] = r.verdict;
        }
        info.complete = info.found == info.expected;
        if (!info.complete) {
            out->complete = false;
            out->exec.incompleteShards.push_back(s);
        }
        out->shards.push_back(info);
    }

    const std::size_t firstFail = campaignTallyVerdicts(&result);
    if (result.failures > 0 && manifest.minimize) {
        // Runners are deterministic and interchangeable, so a fresh one
        // bisects to the same minimized point and artifact a
        // single-process engine would have recorded.
        ScenarioRunner runner(manifest.scenario);
        campaignMinimizeFirstFailure(out->cfg, runner, firstFail,
                                     &result);
    }

    out->exec.mode = "merged";
    out->exec.shards = manifest.shards;
    return true;
}

} // namespace sbrp
